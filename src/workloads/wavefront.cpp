#include "workloads/wavefront.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/strutil.hpp"
#include "mpism/types.hpp"

namespace dampi::workloads {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::pack;
using mpism::Proc;
using mpism::Status;
using mpism::unpack;

}  // namespace

std::pair<int, int> wavefront_grid(int nprocs) {
  int rows = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
  while (rows > 1 && nprocs % rows != 0) --rows;
  return {rows, nprocs / rows};
}

double wavefront_expected_corner(int rows, int cols) {
  // Serial evaluation of the correct recurrence
  //   v(i,j) = v(i-1,j) + 2 v(i,j-1),  v(0,0) = 1, missing input = 0.
  std::vector<double> table(static_cast<std::size_t>(rows) * cols, 0.0);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (i == 0 && j == 0) {
        table[0] = 1.0;
        continue;
      }
      const double north = i > 0 ? table[static_cast<std::size_t>(i - 1) *
                                             cols + j]
                                 : 0.0;
      const double west =
          j > 0 ? table[static_cast<std::size_t>(i) * cols + (j - 1)] : 0.0;
      table[static_cast<std::size_t>(i) * cols + j] = north + 2.0 * west;
    }
  }
  return table[static_cast<std::size_t>(rows) * cols - 1];
}

void wavefront(Proc& p, const WavefrontConfig& config) {
  const auto [rows, cols] = wavefront_grid(p.size());
  const int ri = p.rank() / cols;
  const int rj = p.rank() % cols;
  const int north_rank = ri > 0 ? p.rank() - cols : -1;
  const int west_rank = rj > 0 ? p.rank() - 1 : -1;
  const int south_rank = ri + 1 < rows ? p.rank() + cols : -1;
  const int east_rank = rj + 1 < cols ? p.rank() + 1 : -1;

  const double expected_corner = wavefront_expected_corner(rows, cols);

  for (int sweep = 0; sweep < config.sweeps; ++sweep) {
    const mpism::Tag tag = sweep % 1024;

    double value;
    const int inputs = (north_rank >= 0 ? 1 : 0) + (west_rank >= 0 ? 1 : 0);
    if (inputs == 0) {
      value = 1.0;  // the origin seeds the sweep
    } else if (inputs == 1) {
      Bytes data;
      const Status st = p.recv(kAnySource, tag, &data);
      const double input = unpack<double>(data);
      value = st.source == north_rank ? input : 2.0 * input;
    } else {
      // Two wildcard receives: the sweep's non-determinism.
      Bytes first_data, second_data;
      const Status first = p.recv(kAnySource, tag, &first_data);
      const Status second = p.recv(kAnySource, tag, &second_data);
      const double a = unpack<double>(first_data);
      const double b = unpack<double>(second_data);
      if (config.inject_order_bug) {
        // Assumes north always arrives first — true on the home system,
        // false under other matchings.
        value = a + 2.0 * b;
      } else {
        const double north = first.source == north_rank ? a : b;
        const double west = first.source == west_rank ? a : b;
        value = north + 2.0 * west;
        p.require(first.source != second.source,
                  "wavefront: duplicate input source");
      }
    }

    p.compute(config.flop_cost_us);
    if (south_rank >= 0) p.send(south_rank, tag, pack(value));
    if (east_rank >= 0) p.send(east_rank, tag, pack(value));

    if (south_rank < 0 && east_rank < 0) {
      // Corner rank: end-to-end check of the whole sweep.
      p.require(value == expected_corner,
                strfmt("wavefront: corner %g, expected %g (sweep %d)", value,
                       expected_corner, sweep));
    }
  }
}

}  // namespace dampi::workloads
