file(REMOVE_RECURSE
  "CMakeFiles/test_mpism_tools.dir/test_mpism_tools.cpp.o"
  "CMakeFiles/test_mpism_tools.dir/test_mpism_tools.cpp.o.d"
  "test_mpism_tools"
  "test_mpism_tools.pdb"
  "test_mpism_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpism_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
