// dampi-verify: a command-line front end over the verifier.
//
// Usage:
//   verify_cli --list
//   verify_cli --program fig3 [--procs 3] [--k 1] [--clock vector]
//              [--max-interleavings 1000] [--deferred-sync]
//              [--auto-loop N] [--jobs N] [--isp]
//
// Programs: the paper's pattern fixtures, matmult, mini-ADLB, the
// ParMETIS proxy, and every Table II suite entry by name (104.milc, BT,
// LU, ...).
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>

#include "core/decision_io.hpp"
#include "core/report_format.hpp"
#include "core/verifier.hpp"
#include "isp/isp_verifier.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workloads/adlb.hpp"
#include "workloads/matmult.hpp"
#include "workloads/parmetis_proxy.hpp"
#include "workloads/patterns.hpp"
#include "workloads/suites.hpp"

using namespace dampi;

namespace {

std::map<std::string, mpism::ProgramFn> program_registry() {
  std::map<std::string, mpism::ProgramFn> programs;
  programs["fig3"] = workloads::fig3_wildcard_bug;
  programs["fig3-benign"] = workloads::fig3_benign;
  programs["fig4"] = workloads::fig4_cross_coupled;
  programs["fig10"] = workloads::fig10_unsafe_pattern;
  programs["deadlock"] = workloads::simple_deadlock;
  programs["wildcard-deadlock"] = workloads::wildcard_dependent_deadlock;
  programs["leaky"] = workloads::leaky_program;
  programs["matmult"] = [](mpism::Proc& p) {
    workloads::MatmultConfig config;
    config.n = 8;
    config.chunk_rows = 1;
    workloads::matmult(p, config);
  };
  programs["matmult-bug"] = [](mpism::Proc& p) {
    workloads::MatmultConfig config;
    config.n = 8;
    config.chunk_rows = 1;
    config.inject_order_bug = true;
    workloads::matmult(p, config);
  };
  programs["adlb"] = [](mpism::Proc& p) {
    workloads::adlb::Config config;
    config.roots_per_server = 4;
    workloads::adlb::run(p, config);
  };
  programs["parmetis"] = [](mpism::Proc& p) {
    workloads::parmetis_proxy(p, workloads::ParmetisConfig{}.scaled(5));
  };
  for (const auto& entry : workloads::table2_suite()) {
    programs[entry.spec.name] = [spec = entry.spec](mpism::Proc& p) {
      workloads::run_skeleton(p, spec);
    };
  }
  return programs;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s --program <name> [options]\n"
      "       %s --list\n"
      "options:\n"
      "  --procs N              ranks to simulate (default 4)\n"
      "  --k N                  bounded mixing window (default: unbounded)\n"
      "  --clock lamport|vector causality tracker (default lamport)\n"
      "  --max-interleavings N  exploration budget (default 4096)\n"
      "  --deferred-sync        enable the par-of-clocks fix for the S5 "
      "pattern\n"
      "  --auto-loop N          automatic loop detection threshold\n"
      "  --jobs N               replay-worker pool width (default 1; "
      "results\n"
      "                         are identical at every width)\n"
      "  --sched KIND           rank scheduler: thread (OS thread per "
      "rank),\n"
      "                         coop / coop-rr, coop-random, coop-priority\n"
      "                         (deterministic run-to-block fibers; "
      "default\n"
      "                         thread, or $DAMPI_SCHED when set)\n"
      "  --sched-seed N         seed for coop-random / coop-priority "
      "picks\n"
      "  --match KIND           message matcher: indexed (O(1) lanes, "
      "default)\n"
      "                         or linear (scan oracle; $DAMPI_MATCH when "
      "set)\n"
      "  --isp                  use the centralized ISP baseline instead\n"
      "  --save-repro FILE      write the first bug's epoch-decisions "
      "file\n"
      "  --replay FILE          run once under a saved epoch-decisions "
      "file\n"
      "  --trace FILE           record a Chrome trace_event JSON of the "
      "run\n"
      "                         (open in chrome://tracing or Perfetto)\n"
      "  --trace-capacity N     events retained per lane (default 16384)\n"
      "  --metrics              print the metrics registry after the run\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto programs = program_registry();

  std::string name;
  int procs = 4;
  std::optional<int> k;
  core::ClockMode clock_mode = core::ClockMode::kLamport;
  std::uint64_t max_interleavings = 4096;
  bool deferred_sync = false;
  int auto_loop = 0;
  int jobs = 1;
  mpism::SchedOptions sched = mpism::default_sched_options();
  mpism::MatchKind match = mpism::default_match_kind();
  bool use_isp = false;
  std::string save_repro_path;
  std::string replay_path;
  std::string trace_path;
  std::size_t trace_capacity = 0;
  bool print_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& [prog_name, fn] : programs) {
        std::printf("%s\n", prog_name.c_str());
      }
      return 0;
    } else if (arg == "--program") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      name = v;
    } else if (arg == "--procs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      procs = std::atoi(v);
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      k = std::atoi(v);
    } else if (arg == "--clock") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      clock_mode = std::strcmp(v, "vector") == 0 ? core::ClockMode::kVector
                                                 : core::ClockMode::kLamport;
    } else if (arg == "--max-interleavings") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      max_interleavings = std::strtoull(v, nullptr, 10);
    } else if (arg == "--deferred-sync") {
      deferred_sync = true;
    } else if (arg == "--auto-loop") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      auto_loop = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      jobs = std::atoi(v);
      if (jobs < 1) {
        std::printf("--jobs must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--sched") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!mpism::parse_sched_spec(v, &sched)) {
        std::printf("unknown --sched value: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--sched-seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sched.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--match") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!mpism::parse_match_spec(v, &match)) {
        std::printf("unknown --match value: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--isp") {
      use_isp = true;
    } else if (arg == "--save-repro") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      save_repro_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      replay_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trace_path = v;
    } else if (arg == "--trace-capacity") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trace_capacity = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else {
      std::printf("unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  auto it = programs.find(name);
  if (it == programs.end()) {
    std::printf("unknown or missing --program (try --list)\n");
    return usage(argv[0]);
  }

  if (!trace_path.empty()) {
    if (!DAMPI_TRACE_ENABLED) {
      std::printf(
          "warning: this binary was built with DAMPI_TRACE=OFF; the "
          "trace will contain no events\n");
    }
    if (trace_capacity > 0) {
      obs::Tracer::instance().set_capacity(trace_capacity);
    }
    obs::Tracer::instance().set_enabled(true);
  }
  // Emits the trace/metrics on every exit path of the run below.
  auto finish = [&](int code) {
    if (!trace_path.empty()) {
      obs::Tracer::instance().set_enabled(false);
      if (obs::write_chrome_trace(trace_path)) {
        std::printf("trace written          : %s\n", trace_path.c_str());
      } else {
        std::printf("could not write trace %s\n", trace_path.c_str());
        code = code == 0 ? 2 : code;
      }
    }
    if (print_metrics) {
      std::printf("metrics:\n%s", obs::Registry::instance().dump().c_str());
    }
    return code;
  };

  core::ExplorerOptions explorer_options;
  explorer_options.nprocs = procs;
  explorer_options.mixing_bound = k;
  explorer_options.clock_mode = clock_mode;
  explorer_options.max_interleavings = max_interleavings;
  explorer_options.deferred_clock_sync = deferred_sync;
  explorer_options.auto_loop_threshold = auto_loop;
  explorer_options.jobs = jobs;
  explorer_options.sched = sched;
  explorer_options.match = match;

  if (!replay_path.empty()) {
    std::string error;
    const auto schedule = core::load_schedule(replay_path, &error);
    if (!schedule.has_value()) {
      std::printf("cannot load %s: %s\n", replay_path.c_str(), error.c_str());
      return 2;
    }
    const auto run =
        core::run_guided_once(explorer_options, *schedule, it->second);
    std::printf("replay of %s (%zu decisions):\n", replay_path.c_str(),
                schedule->forced.size());
    if (run.report.deadlocked) {
      std::printf("DEADLOCK reproduced:\n%s",
                  run.report.deadlock_detail.c_str());
      return finish(1);
    }
    if (!run.report.errors.empty()) {
      std::printf("FAILURE reproduced:\n");
      for (const auto& error_info : run.report.errors) {
        std::printf("  rank %d: %s\n", error_info.rank,
                    error_info.message.c_str());
      }
      return finish(1);
    }
    std::printf("run completed cleanly (divergences: %llu)\n",
                static_cast<unsigned long long>(run.divergences));
    return finish(0);
  }

  core::VerifyResult result;
  if (use_isp) {
    isp::IspOptions options;
    options.explorer = explorer_options;
    isp::IspVerifier verifier(options);
    result = verifier.verify(it->second);
  } else {
    core::VerifyOptions options;
    options.explorer = explorer_options;
    core::Verifier verifier(options);
    result = verifier.verify(it->second);
  }

  std::printf("program                : %s (%d ranks, %s, sched %s, match "
              "%s)\n",
              name.c_str(), procs, use_isp ? "ISP baseline" : "DAMPI",
              mpism::sched_spec(sched).c_str(), mpism::match_spec(match));
  std::printf("%s", core::format_verify_result(result).c_str());
  if (result.exploration.bugs.empty()) return finish(0);
  if (!save_repro_path.empty()) {
    if (core::save_schedule(result.exploration.bugs.front().schedule,
                            save_repro_path)) {
      std::printf("reproducer saved       : %s (replay with --replay)\n",
                  save_repro_path.c_str());
    } else {
      std::printf("could not write %s\n", save_repro_path.c_str());
    }
  }
  return finish(1);
}
