file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_parmetis.dir/bench_fig5_parmetis.cpp.o"
  "CMakeFiles/bench_fig5_parmetis.dir/bench_fig5_parmetis.cpp.o.d"
  "bench_fig5_parmetis"
  "bench_fig5_parmetis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_parmetis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
