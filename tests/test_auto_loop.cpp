// Automatic loop-iteration detection (§VI future work implemented):
// consecutive identical-signature ND events past a threshold keep their
// self-run matches, collapsing loop-dominated interleaving spaces
// without user annotations.
#include <gtest/gtest.h>

#include "support/verify_helpers.hpp"
#include "workloads/adlb.hpp"
#include "workloads/matmult.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::ExplorerOptions;
using mpism::kAnySource;
using mpism::pack;
using mpism::Proc;

TEST(AutoLoop, DisabledByDefault) {
  ExplorerOptions options = explorer_options(4);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    workloads::fan_in_rounds(p, 1);
  });
  ASSERT_TRUE(result.report.completed);
  EXPECT_EQ(result.trace.auto_abstracted_epochs, 0u);
}

TEST(AutoLoop, StreakBeyondThresholdIsAbstracted) {
  // fan_in_rounds(1) on 5 ranks: rank 0 posts 4 identical wildcards.
  ExplorerOptions options = explorer_options(5);
  options.auto_loop_threshold = 2;
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    workloads::fan_in_rounds(p, 1);
  });
  ASSERT_TRUE(result.report.completed);
  // Epochs 0,1 explored; 2,3 auto-abstracted.
  EXPECT_EQ(result.trace.auto_abstracted_epochs, 2u);
  EXPECT_FALSE(find_epoch(result.trace, 0, 0)->in_ignored_region);
  EXPECT_FALSE(find_epoch(result.trace, 0, 1)->in_ignored_region);
  EXPECT_TRUE(find_epoch(result.trace, 0, 2)->auto_abstracted);
  EXPECT_TRUE(find_epoch(result.trace, 0, 3)->auto_abstracted);
}

TEST(AutoLoop, SignatureChangeResetsTheStreak) {
  // Alternating tags never build a streak of 2.
  ExplorerOptions options = explorer_options(3);
  options.auto_loop_threshold = 1;
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    if (p.rank() == 0) {
      p.barrier();
      for (int i = 0; i < 4; ++i) p.recv(kAnySource, /*tag=*/i % 2);
    } else {
      for (int i = 0; i < 4; ++i) {
        if (i % 2 == static_cast<int>(p.rank()) % 2) {
          p.send(0, i % 2, pack<int>(i));
          p.send(0, i % 2, pack<int>(i));
        }
      }
      p.barrier();
    }
  });
  ASSERT_TRUE(result.report.completed) << result.report.deadlock_detail;
  EXPECT_EQ(result.trace.auto_abstracted_epochs, 0u);
}

TEST(AutoLoop, CollapsesMatmultExplorationLikeManualPcontrol) {
  workloads::MatmultConfig config;
  config.n = 6;
  config.chunk_rows = 1;
  const auto program = [config](Proc& p) { workloads::matmult(p, config); };

  auto interleavings_with = [&program](int threshold) {
    ExplorerOptions options = explorer_options(4);
    options.auto_loop_threshold = threshold;
    options.max_interleavings = 4096;
    core::Explorer explorer(options);
    return explorer.explore(program).interleavings;
  };
  const auto full = interleavings_with(0);
  const auto collapsed = interleavings_with(1);
  EXPECT_GT(full, collapsed);
  // Only the first collect epoch keeps alternatives.
  EXPECT_LE(collapsed, 4u);
}

TEST(AutoLoop, TamesAdlbServerLoop) {
  workloads::adlb::Config config;
  config.roots_per_server = 3;
  const auto program = [config](Proc& p) { workloads::adlb::run(p, config); };

  ExplorerOptions options = explorer_options(4);
  options.auto_loop_threshold = 3;
  options.max_interleavings = 4096;
  core::Explorer explorer(options);
  const auto with_auto = explorer.explore(program);

  ExplorerOptions unbounded = explorer_options(4);
  unbounded.max_interleavings = 4096;
  core::Explorer full_explorer(unbounded);
  const auto full = full_explorer.explore(program);

  EXPECT_FALSE(with_auto.found_bug());
  EXPECT_LT(with_auto.interleavings, full.interleavings);
  EXPECT_GT(with_auto.interleavings, 1u);  // early iterations still explored
}

TEST(AutoLoop, BugInEarlyIterationsStillFound) {
  // fig3's single buggy epoch is within any reasonable threshold.
  ExplorerOptions options = explorer_options(3);
  options.auto_loop_threshold = 2;
  core::Explorer explorer(options);
  auto result = explorer.explore(workloads::fig3_wildcard_bug);
  EXPECT_TRUE(result.found_bug());
}

}  // namespace
}  // namespace dampi::test
