// Mini-ADLB: a working Asynchronous Dynamic Load Balancing library in
// the style of Lusk/Pieper/Butler/Chan's ADLB, the paper's most
// aggressively non-deterministic workload (§III, Fig. 9).
//
// Architecture (like the original): ranks split into *servers*, which
// own shared work queues, and *workers* (application ranks). Workers
// interact with their server through Put (add a work unit) and Get
// (request a unit); the server's main loop is a hot wildcard receive —
// every message that arrives is a non-deterministic match, which is why
// the paper calls ADLB "very difficult to control through all possible
// outcomes during conventional testing".
//
// The work model: seeded root units; each unit may spawn children up to
// a depth bound, so the total unit count is fixed while *which worker
// processes which unit* — and therefore the server's entire receive
// sequence — varies with matching. Termination: a server counts queued +
// in-flight units and answers Get with NoMoreWork once everything is
// drained; workers exit on that reply.
#pragma once

#include <cstdint>
#include <vector>

#include "mpism/proc.hpp"

namespace dampi::workloads::adlb {

struct Config {
  /// Servers occupy the highest ranks; the rest are workers. Workers are
  /// assigned to servers round-robin.
  int num_servers = 1;
  /// Root work units seeded into each server's queue.
  int roots_per_server = 4;
  /// Each unit at depth < spawn_depth puts this many children.
  int children_per_unit = 1;
  int spawn_depth = 1;
  /// Virtual microseconds of compute per unit.
  double compute_us_per_unit = 50.0;
  /// Bracket the server loop in an MPI_Pcontrol region (the paper's
  /// loop-iteration abstraction applies naturally to it).
  bool abstract_server_loop = false;
};

/// Totals a run must conserve (used by tests): units processed overall.
std::uint64_t total_units(const Config& config);

/// The application entry point: run on every rank of the world.
void run(mpism::Proc& p, const Config& config);

}  // namespace dampi::workloads::adlb
