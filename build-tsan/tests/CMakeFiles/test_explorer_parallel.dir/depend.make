# Empty dependencies file for test_explorer_parallel.
# This may be replaced when dependencies are built.
