// Rendering of verification results.
#include <gtest/gtest.h>

#include "core/report_format.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

TEST(ReportFormat, CleanRun) {
  core::VerifyOptions options;
  options.explorer = explorer_options(3);
  core::Verifier verifier(options);
  const auto result = verifier.verify(workloads::fig3_benign);
  const std::string text = core::format_verify_result(result);
  EXPECT_NE(text.find("interleavings explored : 2"), std::string::npos);
  EXPECT_NE(text.find("wildcard epochs (R*)   : 2 recv"), std::string::npos);
  EXPECT_NE(text.find("no deadlock or failure found"), std::string::npos);
  EXPECT_EQ(text.find("FAILURE"), std::string::npos);
}

TEST(ReportFormat, BugWithDecisions) {
  core::VerifyOptions options;
  options.explorer = explorer_options(3);
  core::Verifier verifier(options);
  const auto result = verifier.verify(workloads::fig3_wildcard_bug);
  ASSERT_TRUE(result.error_found);
  const std::string text = core::format_verify_result(result);
  EXPECT_NE(text.find("FAILURE in interleaving"), std::string::npos);
  EXPECT_NE(text.find("x == 33"), std::string::npos);
  EXPECT_NE(text.find("epoch decisions to replay it:"), std::string::npos);
  EXPECT_NE(text.find("-> source"), std::string::npos);
}

TEST(ReportFormat, DeadlockAndLeaks) {
  core::VerifyOptions options;
  options.explorer = explorer_options(3);
  core::Verifier verifier(options);
  const auto result =
      verifier.verify(workloads::wildcard_dependent_deadlock);
  ASSERT_TRUE(result.deadlock_found);
  const std::string text = core::format_verify_result(result);
  EXPECT_NE(text.find("DEADLOCK in interleaving"), std::string::npos);
  EXPECT_NE(text.find("blocked in"), std::string::npos);
}

TEST(ReportFormat, AlertsIncluded) {
  core::VerifyOptions options;
  options.explorer = explorer_options(3);
  core::Verifier verifier(options);
  const auto result = verifier.verify(workloads::fig10_unsafe_pattern);
  const std::string text = core::format_verify_result(result);
  EXPECT_NE(text.find("unsafe pattern (S5)"), std::string::npos);
}

}  // namespace
}  // namespace dampi::test
