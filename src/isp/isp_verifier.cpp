#include "isp/isp_verifier.hpp"

namespace dampi::isp {

IspVerifier::IspVerifier(IspOptions options) : options_(std::move(options)) {}

core::VerifyResult IspVerifier::verify(
    const mpism::ProgramFn& program,
    const core::Explorer::RunObserver& observer) {
  core::VerifyOptions verify_options;
  verify_options.explorer = options_.explorer;
  verify_options.measure_native = options_.measure_native;

  // The central scheduler sees everything: exact causality, no piggyback
  // traffic.
  verify_options.explorer.clock_mode = core::ClockMode::kVector;
  verify_options.explorer.transport = piggyback::TransportKind::kTelepathic;
  // DAMPI's decentralized bookkeeping costs do not apply; ISP's costs are
  // the scheduler round trips.
  verify_options.explorer.epoch_record_cost_us = 0.0;
  verify_options.explorer.late_analysis_cost_us = 0.0;

  const IspCostParams cost = options_.cost;
  verify_options.explorer.extra_layers_per_run = [cost]() {
    auto sim = std::make_shared<SchedulerSim>();
    return core::LayerStackFactory(
        [sim, cost](int, int) {
          std::vector<std::unique_ptr<mpism::ToolLayer>> stack;
          stack.push_back(std::make_unique<IspCostLayer>(sim, cost));
          return stack;
        });
  };

  core::Verifier verifier(std::move(verify_options));
  return verifier.verify(program, observer);
}

}  // namespace dampi::isp
