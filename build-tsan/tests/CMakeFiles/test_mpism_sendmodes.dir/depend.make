# Empty dependencies file for test_mpism_sendmodes.
# This may be replaced when dependencies are built.
