#include "mpism/comm.hpp"

#include <numeric>

#include "common/check.hpp"

namespace dampi::mpism {

void CommTable::init(int nprocs) {
  DAMPI_CHECK(nprocs > 0);
  world_size_ = nprocs;
  comms_.clear();
  std::vector<Rank> all(static_cast<std::size_t>(nprocs));
  std::iota(all.begin(), all.end(), 0);
  const CommId id = create(std::move(all), /*tool_internal=*/false);
  DAMPI_CHECK(id == kCommWorld);
}

const CommRecord& CommTable::get(CommId id) const {
  DAMPI_CHECK_MSG(valid(id), "invalid communicator " + std::to_string(id));
  return comms_[static_cast<std::size_t>(id)];
}

bool CommTable::valid(CommId id) const {
  return id >= 0 && id < static_cast<CommId>(comms_.size()) &&
         !comms_[static_cast<std::size_t>(id)].freed;
}

CommId CommTable::create(std::vector<Rank> members, bool tool_internal) {
  CommRecord rec;
  rec.id = static_cast<CommId>(comms_.size());
  rec.tool_internal = tool_internal;
  rec.world_to_comm.assign(static_cast<std::size_t>(world_size_), kAnySource);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Rank w = members[i];
    DAMPI_CHECK(w >= 0 && w < world_size_);
    rec.world_to_comm[static_cast<std::size_t>(w)] = static_cast<Rank>(i);
  }
  rec.members = std::move(members);
  comms_.push_back(std::move(rec));
  return comms_.back().id;
}

void CommTable::free(CommId id) {
  DAMPI_CHECK_MSG(id != kCommWorld, "cannot free MPI_COMM_WORLD");
  DAMPI_CHECK_MSG(valid(id), "double free of communicator");
  comms_[static_cast<std::size_t>(id)].freed = true;
}

void CommTable::mark_tool_internal(CommId id) {
  DAMPI_CHECK(valid(id));
  comms_[static_cast<std::size_t>(id)].tool_internal = true;
}

Rank CommTable::to_world(CommId id, Rank rel) const {
  if (rel == kAnySource) return kAnySource;
  const CommRecord& rec = get(id);
  DAMPI_CHECK_MSG(rel >= 0 && rel < rec.size(),
                  "rank out of range for communicator");
  return rec.members[static_cast<std::size_t>(rel)];
}

Rank CommTable::to_rel(CommId id, Rank world) const {
  if (world == kAnySource) return kAnySource;
  const CommRecord& rec = get(id);
  DAMPI_CHECK(world >= 0 && world < world_size_);
  return rec.world_to_comm[static_cast<std::size_t>(world)];
}

int CommTable::leaked_user_comms() const {
  int leaks = 0;
  for (const CommRecord& rec : comms_) {
    if (rec.id == kCommWorld || rec.tool_internal || rec.freed) continue;
    ++leaks;
  }
  return leaks;
}

}  // namespace dampi::mpism
