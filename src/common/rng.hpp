// Deterministic seeded RNG used everywhere randomness is needed.
//
// Verification replays must be reproducible, so all stochastic choices
// (wildcard match policies, synthetic workload shapes) draw from SplitMix64
// streams derived from explicit seeds — never from global entropy.
#pragma once

#include <cstdint>

namespace dampi {

/// SplitMix64: tiny, fast, and statistically solid for simulation purposes.
/// Each instance is an independent stream fully determined by its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Modulo bias is irrelevant at simulation scales; keep it branch-free.
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Derive an independent stream (e.g. one per rank) from this seed.
  Rng fork(std::uint64_t salt) const {
    return Rng(state_ ^ (0x5851f42d4c957f2dULL * (salt + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace dampi
