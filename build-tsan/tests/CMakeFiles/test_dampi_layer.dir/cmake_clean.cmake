file(REMOVE_RECURSE
  "CMakeFiles/test_dampi_layer.dir/test_dampi_layer.cpp.o"
  "CMakeFiles/test_dampi_layer.dir/test_dampi_layer.cpp.o.d"
  "test_dampi_layer"
  "test_dampi_layer.pdb"
  "test_dampi_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dampi_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
