// Process-wide metrics registry: named counters, gauges, and
// fixed-bucket histograms with atomic update paths.
//
// Naming convention: dotted lowercase `<subsystem>.<metric>` —
// e.g. `pool.worker_runs`, `engine.deadlocks`, `layer.epochs_recv`.
// Instruments are created on first lookup and live for the process;
// references returned by the registry are stable, so hot paths resolve
// a name once (at construction) and update through the reference.
// Unlike the per-explore PoolStats snapshot, the registry accumulates
// across runs — reset() zeroes it between experiments.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dampi::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins level, plus a high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Power-of-two bucketed histogram over positive samples, same bucket
/// geometry as dampi::Histogram but updatable concurrently: bucket i
/// covers [first_limit * 2^(i-1), first_limit * 2^i), the last bucket
/// is a catch-all.
class FixedHistogram {
 public:
  FixedHistogram(double first_limit, int buckets);

  void add(double x);
  std::uint64_t count() const;
  /// Smallest bucket upper bound covering fraction `q` of samples.
  double quantile_bound(double q) const;
  /// "n=37 p50<=2.0e-03 p90<=8.0e-03 p99<=1.6e-02"
  std::string str() const;
  void reset();

 private:
  double first_limit_;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

/// Singleton name -> instrument table.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  FixedHistogram& histogram(const std::string& name, double first_limit = 1e-6,
                            int buckets = 32);

  /// Plain-text dump, one `name value` line per instrument, sorted by
  /// name — the format appended to verifier reports.
  std::string dump() const;

  /// Zero every instrument (references stay valid).
  void reset();

  /// Import another process's dump() into this registry: every counter
  /// line (`name value`) is added both under `<prefix>.<name>` — the
  /// per-worker namespace, so concurrent workers' counters never
  /// collide — and into a `dist.<name>` campaign aggregate. Gauge and
  /// histogram lines are not single integers and are skipped.
  void merge_dump(const std::string& dump, const std::string& prefix);

 private:
  Registry() = default;

  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };

  Entry& find_or_add(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace dampi::obs
