// The paper's illustrative programs, reproduced as runnable workloads:
//
//  - fig3:  the replay example (§II-E) — a wildcard receive whose buggy
//           outcome only appears when the alternate match is enforced;
//  - fig4:  the cross-coupled wildcards (§II-F) where Lamport clocks lose
//           completeness and vector clocks do not;
//  - fig10: the §V omission pattern — a barrier transmits the epoch's
//           clock before the wildcard receive's Wait, hiding a competitor
//           send from late-message analysis (the unsafe-pattern monitor
//           flags it).
//
// Plus small deadlock/leak fixtures used by tests and examples.
#pragma once

#include "mpism/proc.hpp"
#include "mpism/runtime.hpp"

namespace dampi::workloads {

/// Fig. 3 (3 ranks): P0 sends 22, P2 sends 33, P1 receives one of them
/// with a wildcard and crashes iff it got 33.
void fig3_wildcard_bug(mpism::Proc& p);

/// Fig. 3 variant with no error branch, for overhead/coverage tests.
void fig3_benign(mpism::Proc& p);

/// Fig. 4 (4 ranks): cross-coupled wildcard receives. Deterministic
/// completion; interesting only for what the clocks record.
void fig4_cross_coupled(mpism::Proc& p);

/// Fig. 10 (3 ranks): wildcard Irecv, then a barrier crossed before the
/// Wait; P2's competing send is issued after the barrier and crashes P1
/// if matched.
void fig10_unsafe_pattern(mpism::Proc& p);

/// 2 ranks: mutual blocking receives (plain deadlock).
void simple_deadlock(mpism::Proc& p);

/// 2 ranks: a deadlock reachable only under one wildcard outcome — if
/// the wildcard matches rank 2's send, rank 1 then waits for a message
/// nobody sends. Exposed by replay, hidden in the biased self-run.
void wildcard_dependent_deadlock(mpism::Proc& p);

/// Any ranks: leaks one duplicated communicator and one request per rank.
void leaky_program(mpism::Proc& p);

/// Deterministic wildcard fan-in: every non-root rank sends one message
/// per round (tag = round) *before* a barrier, then the root receives
/// them all with wildcards. Because every candidate is queued before any
/// receive posts, the self-run outcome and the discovered alternatives
/// are fully deterministic — the fixture for exact interleaving-count
/// assertions (bounded mixing, k=0 formula).
void fan_in_rounds(mpism::Proc& p, int rounds);

/// `groups` disjoint wildcard fan-ins: group g is ranks {3g, 3g+1,
/// 3g+2}; the two non-root members send to root 3g (tag g) before a
/// global barrier, then the root drains them with two wildcard
/// receives. The groups never exchange a message, so under vector
/// clocks every cross-group decision pair commutes: --por off walks the
/// full 2^groups cross-product while sleep-set pruning needs only
/// groups+1 interleavings for the same per-epoch coverage. Ranks beyond
/// 3*groups just hit the barrier.
void fan_in_groups(mpism::Proc& p, int groups);

/// Adversarial POR fixture: every rank sends one message (tag = round)
/// to every other rank, a barrier, then every rank drains its size-1
/// incoming with wildcard receives. All candidate sets overlap, so no
/// decision pair commutes — sleep-set pruning must prune nothing and
/// match --por off exactly.
void all_pairs_churn(mpism::Proc& p, int rounds);

/// Distributed-campaign fixture: fan_in_rounds plus `spin_us` of
/// busy-work at the root per received message. The wildcard fan-in
/// gives the campaign a wide, deterministic frontier to shard while the
/// compute makes each interleaving cost real virtual time, so worker
/// scaling (and mid-shard kills) are observable instead of instant.
void dist_fanout(mpism::Proc& p, int rounds, double spin_us);

/// 2+ ranks, never terminates: rank 0 blocks on a receive nobody
/// satisfies while rank 1 spins on iprobe for a message nobody sends,
/// burning virtual time each poll. The live spinner defeats the
/// blocked-count deadlock detector, so without a per-run watchdog the
/// run wedges forever — the fixture for kHang verdicts.
void livelock(mpism::Proc& p);

}  // namespace dampi::workloads
