#!/usr/bin/env bash
# Tier-1 gate: the full build + test sweep (once under the default
# thread-per-rank scheduler, once with DAMPI_SCHED=coop so every test
# also runs on the cooperative fiber scheduler, once with
# DAMPI_MATCH=linear so every test also runs on the linear matching
# oracle, once with DAMPI_ENGINE_LOCK=global so every test also runs on
# the single-mutex engine baseline, once with DAMPI_POR=off so every
# test also runs on the unpruned cross-product walk), the resilience
# stage (resil-labelled tests, the verify_cli
# exit-code contract, a livelock watchdog sweep across schedulers and
# jobs widths, and a SIGINT kill + --resume determinism smoke), a trace
# smoke test (a real workload exported with --trace
# must validate under trace_check), a DAMPI_TRACE=OFF configure+build
# check, a warn-only matcher perf smoke (bench_compare.py), a
# fault-sweep stage (sweep-labelled tests, the --sweep-faults exit-code
# contract, a SIGINT kill + --resume byte-identity smoke, and the
# bench_sweep worker-count determinism check), then the
# concurrent explorer tests again under ThreadSanitizer
# (-DDAMPI_SANITIZE=thread; only the
# `concurrency`/`obs`/`match`/`enginelock` labelled tests rerun there,
# so the TSan stage stays fast; coop fibers
# are unsupported under TSan and fall back to the thread scheduler,
# which is exactly the path TSan can check).
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

# The whole suite again under the cooperative scheduler: DAMPI_SCHED
# switches the default SchedOptions every engine picks up, so any test
# not pinning a scheduler reruns on coop fibers.
(cd build && DAMPI_SCHED=coop ctest --output-on-failure -j "${jobs}")
echo "tier1: coop-scheduler sweep OK"

# And again with the linear matcher: DAMPI_MATCH swaps the default
# matching structure, so every test not pinning one reruns on the
# O(queue) scan oracle. Any behavioural gap between the matchers shows
# up as a suite difference here.
(cd build && DAMPI_MATCH=linear ctest --output-on-failure -j "${jobs}")
echo "tier1: linear-matcher sweep OK"

# And with the global-mutex engine baseline: DAMPI_ENGINE_LOCK swaps the
# default engine concurrency control, so every test not pinning a lock
# mode reruns on the pre-sharding single-mutex path. Verdicts are
# identical across modes by contract.
(cd build && DAMPI_ENGINE_LOCK=global ctest --output-on-failure -j "${jobs}")
echo "tier1: global-engine-lock sweep OK"

# And with sleep-set pruning disabled: DAMPI_POR swaps the default
# partial-order reduction mode, so every test not pinning one reruns on
# the full cross-product walk. Bug sets and per-epoch outcome sets are
# identical across modes by contract (the default suite already runs
# --por sleep, which prunes nothing without vector clocks).
(cd build && DAMPI_POR=off ctest --output-on-failure -j "${jobs}")
echo "tier1: por-off sweep OK"

# Resilience tests on their own label, so the stage shows up by name in
# the log even though the default sweep above already ran them.
(cd build && ctest --output-on-failure -L resil -j "${jobs}")
echo "tier1: resil sweep OK"

# Exit-code contract: 0 clean, 1 bugs, 2 partial coverage (budget /
# interrupted / quarantined), 3 usage or internal error.
expect_exit() {
  local want="$1"
  shift
  local got=0
  "$@" > /dev/null 2>&1 || got=$?
  if [[ "${got}" != "${want}" ]]; then
    echo "tier1: FAIL: expected exit ${want}, got ${got}: $*" >&2
    exit 1
  fi
}
expect_exit 0 build/examples/verify_cli --program fig3-benign --procs 3
expect_exit 1 build/examples/verify_cli --program fig3 --procs 3
expect_exit 2 build/examples/verify_cli --program fig3-benign --procs 3 \
  --max-interleavings 1
expect_exit 3 build/examples/verify_cli --program no-such-program
echo "tier1: exit-code contract OK"

# Watchdog end-to-end: the livelocked example must become a HANG verdict
# (exit 1) under both schedulers at every jobs width, well inside the
# deadline instead of wedging the campaign.
for sched in thread coop; do
  for w in 1 4; do
    out="$(timeout 60 build/examples/verify_cli --program livelock \
      --procs 2 --sched "${sched}" --jobs "${w}" --run-deadline 2 \
      --max-interleavings 4)" && rc=0 || rc=$?
    if [[ "${rc}" != 1 ]] || ! grep -q "HANG (watchdog)" <<< "${out}"; then
      echo "tier1: FAIL: livelock sched=${sched} jobs=${w} rc=${rc}" >&2
      exit 1
    fi
  done
done
echo "tier1: livelock watchdog sweep OK"

# Kill/resume smoke: SIGINT a checkpointing exploration mid-flight, then
# --resume it; the resumed campaign must report exactly what an
# uninterrupted one does (works even if the signal lands after the walk
# finished — then the resume is a no-op continuation).
ckpt="build/tier1-resume.ckpt"
rm -f "${ckpt}"
baseline_rc=0
baseline="$(build/examples/verify_cli --program matmult --procs 4 \
  --sched coop --max-interleavings 150)" || baseline_rc=$?
build/examples/verify_cli --program matmult --procs 4 --sched coop \
  --max-interleavings 150 --checkpoint "${ckpt}" \
  --checkpoint-interval 5 > /dev/null &
pid=$!
sleep 0.4
kill -INT "${pid}" 2> /dev/null || true
wait "${pid}" || true
resumed_rc=0
resumed="$(build/examples/verify_cli --program matmult --procs 4 \
  --sched coop --max-interleavings 150 --checkpoint "${ckpt}" \
  --resume)" || resumed_rc=$?
filter() { grep -E "interleavings explored|verdict" <<< "$1" | \
  sed 's/ (interrupted)//'; }
if [[ "${resumed_rc}" != "${baseline_rc}" ]] || \
   [[ "$(filter "${baseline}")" != "$(filter "${resumed}")" ]]; then
  echo "tier1: FAIL: resume mismatch (rc ${baseline_rc} vs ${resumed_rc})" >&2
  diff <(filter "${baseline}") <(filter "${resumed}") >&2 || true
  exit 1
fi
rm -f "${ckpt}"
echo "tier1: SIGINT kill/resume smoke OK"

# Distributed campaign stage. A 4-worker sharded campaign must report
# exactly what the 1-worker campaign does on every example — same exit
# code, same interleaving count, same verdict (coop scheduler: both
# sides fully deterministic).
for prog in fig3-benign fig3 fig4 wildcard-deadlock; do
  single_rc=0
  single="$(build/examples/verify_cli --program "${prog}" --sched coop \
    --workers 1)" || single_rc=$?
  multi_rc=0
  multi="$(build/examples/verify_cli --program "${prog}" --sched coop \
    --workers 4)" || multi_rc=$?
  if [[ "${multi_rc}" != "${single_rc}" ]] || \
     [[ "$(filter "${single}")" != "$(filter "${multi}")" ]]; then
    echo "tier1: FAIL: distributed mismatch on ${prog}" \
      "(rc ${single_rc} vs ${multi_rc})" >&2
    diff <(filter "${single}") <(filter "${multi}") >&2 || true
    exit 1
  fi
done
echo "tier1: distributed 4-worker sweep OK"

# Kill-a-worker smoke: SIGKILL a worker process mid-campaign; the
# coordinator must requeue its shard from the per-worker journal
# (<ckpt>.wN) and finish with the undisturbed campaign's exact result.
# (If the kill races past the campaign's end it degrades to a plain
# equality check, same stance as the SIGINT smoke above.)
dist_ckpt="build/tier1-dist.ckpt"
rm -f "${dist_ckpt}" "${dist_ckpt}".w*
expected_rc=0
expected="$(build/examples/verify_cli --program dist-fanout --procs 6 \
  --sched coop --max-interleavings 100000 --workers 2)" || expected_rc=$?
build/examples/verify_cli --program dist-fanout --procs 6 --sched coop \
  --max-interleavings 100000 --workers 2 --checkpoint "${dist_ckpt}" \
  > build/tier1-dist.out 2>&1 &
coord=$!
for _ in $(seq 1 100); do
  wpid="$(pgrep -n -f "verify_cli.*--worker-id" || true)"
  [[ -n "${wpid}" ]] && break
  kill -0 "${coord}" 2> /dev/null || break
  sleep 0.01
done
sleep 0.3
[[ -n "${wpid:-}" ]] && kill -KILL "${wpid}" 2> /dev/null || true
killed_rc=0
wait "${coord}" || killed_rc=$?
killed="$(cat build/tier1-dist.out)"
if [[ "${killed_rc}" != "${expected_rc}" ]] || \
   [[ "$(filter "${expected}")" != "$(filter "${killed}")" ]]; then
  echo "tier1: FAIL: kill-a-worker result mismatch" \
    "(rc ${expected_rc} vs ${killed_rc})" >&2
  diff <(filter "${expected}") <(filter "${killed}") >&2 || true
  exit 1
fi
rm -f "${dist_ckpt}" "${dist_ckpt}".w* build/tier1-dist.out
echo "tier1: distributed kill-a-worker smoke OK"

# Distributed tests on their own label, same visibility rationale as the
# resil stage.
(cd build && ctest --output-on-failure -L dist -j "${jobs}")
echo "tier1: dist sweep OK"

# Trace smoke test: a parallel exploration traced end to end must export
# a valid Chrome trace with a lane per rank (4), per worker (3), and the
# explorer lane. Exit 2 is expected: 200 interleavings do not finish
# matmult's decision space (partial coverage is the point of the smoke).
trace_out="build/tier1-trace.json"
trace_rc=0
build/examples/verify_cli --program matmult --procs 4 --jobs 4 \
  --max-interleavings 200 --trace "${trace_out}" > /dev/null || trace_rc=$?
if [[ "${trace_rc}" != 0 && "${trace_rc}" != 2 ]]; then
  echo "tier1: FAIL: trace smoke exited ${trace_rc}" >&2
  exit 1
fi
build/src/obs/trace_check "${trace_out}" --min-lanes 8
rm -f "${trace_out}"

# The tracer must also compile out cleanly.
cmake -B build-off -S . -DDAMPI_TRACE=OFF
cmake --build build-off -j "${jobs}" --target verify_cli trace_check
echo "tier1: DAMPI_TRACE=OFF build OK"

# Perf smoke: the indexed matcher (the default) must not lose to the
# linear oracle on the engine-path microbenchmarks. Warn-only — shared
# CI hosts are too noisy to gate on, but the table lands in the log.
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/bench_compare.py --warn-only
  echo "tier1: matcher perf smoke OK"
else
  echo "tier1: python3 unavailable, skipping matcher perf smoke"
fi

# Lock-contention smoke: global mutex vs sharded engine lock. Warn-only
# for the same reason — and on a 1-core host the sharded curve is
# legitimately flat (the JSON records hw_threads for exactly that).
(cd build/bench && DAMPI_BENCH_QUICK=1 ./bench_contention > /dev/null)
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/bench_compare.py \
    --contention build/bench/BENCH_contention.json --warn-only
fi
echo "tier1: lock-contention smoke OK"

# Distributed scaling smoke: the bench itself fails on any cross-width
# divergence; the compare step re-checks the JSON (warn-only for the
# speedup column — scaling is conditional on cores, equivalence is not).
DAMPI_BENCH_QUICK=1 DAMPI_BENCH_OUT=build/BENCH_distributed.json \
  build/bench/bench_distributed
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/bench_compare.py \
    --distributed build/BENCH_distributed.json --warn-only
fi
echo "tier1: distributed scaling smoke OK"

# POR soundness smoke: the bench exits non-zero if --por sleep ever
# diverges from off (equivalence is the gate; the reduction ratio is
# informational and re-printed by the compare step).
DAMPI_BENCH_QUICK=1 DAMPI_BENCH_OUT=build/BENCH_por.json \
  build/bench/bench_por
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/bench_compare.py --por build/BENCH_por.json --warn-only
fi
echo "tier1: POR soundness smoke OK"

# Fault-sweep tests on their own label, same visibility rationale as the
# resil and dist stages.
(cd build && ctest --output-on-failure -L sweep -j "${jobs}")
echo "tier1: sweep tests OK"

# Sweep exit-code contract: 0 = every injection tolerated (propagated or
# masked), 1 = a plan uncovered a deadlock/hang/latent bug, 3 = usage
# error (--fault conflicts with --sweep-faults; an out-of-range fault
# rank is rejected eagerly, before any exploration runs).
expect_exit 0 build/examples/verify_cli --program fig3-benign --procs 3 \
  --sched coop --sweep-faults --sweep-budget 8 --max-interleavings 16
expect_exit 1 build/examples/verify_cli --program wildcard-deadlock \
  --procs 3 --sched coop --sweep-faults --sweep-kinds delay \
  --sweep-budget 6 --max-interleavings 32
expect_exit 3 build/examples/verify_cli --program fig3-benign --procs 3 \
  --sweep-faults --fault abort@0:1
expect_exit 3 build/examples/verify_cli --program fig3-benign --procs 3 \
  --fault abort@5:1
echo "tier1: sweep exit-code contract OK"

# Sweep SIGINT kill + --resume smoke: interrupt a journalled sweep
# mid-flight, then --resume it. The resumed report must be byte-identical
# to an uninterrupted run's, and the journalled plans must not re-execute
# (resumed count == plans completed before the kill). Delay plans on
# matmult keep the sweep alive long enough (~0.9s) for the signal to
# land; if it races past the end anyway, the resume degrades to an
# idempotence check — 0 executed, all resumed — same stance as the
# checkpoint smoke above.
sweep_journal="build/tier1-sweep.journal"
sweep_ref="build/tier1-sweep-ref.json"
sweep_resumed="build/tier1-sweep-resumed.json"
rm -f "${sweep_journal}" "${sweep_ref}" "${sweep_resumed}"
sweep_cmd=(build/examples/verify_cli --program matmult --procs 4 \
  --sched coop --sweep-faults --sweep-kinds delay --sweep-budget 8 \
  --max-interleavings 1024)
ref_rc=0
"${sweep_cmd[@]}" --sweep-report "${sweep_ref}" > /dev/null || ref_rc=$?
"${sweep_cmd[@]}" --sweep-journal "${sweep_journal}" > /dev/null 2>&1 &
sweep_pid=$!
sleep 0.35
kill -INT "${sweep_pid}" 2> /dev/null || true
wait "${sweep_pid}" || true
journalled="$(grep -c '^plan ' "${sweep_journal}" 2> /dev/null || echo 0)"
resume_rc=0
resume_out="$("${sweep_cmd[@]}" --sweep-journal "${sweep_journal}" \
  --resume --sweep-report "${sweep_resumed}")" || resume_rc=$?
if [[ "${resume_rc}" != "${ref_rc}" ]] || \
   ! cmp -s "${sweep_ref}" "${sweep_resumed}"; then
  echo "tier1: FAIL: sweep resume mismatch (rc ${ref_rc} vs ${resume_rc})" >&2
  diff "${sweep_ref}" "${sweep_resumed}" >&2 || true
  exit 1
fi
if ! grep -q "${journalled} resumed" <<< "${resume_out}"; then
  echo "tier1: FAIL: sweep resume re-executed journalled plans" \
    "(expected ${journalled} resumed)" >&2
  grep "resumed" <<< "${resume_out}" >&2 || true
  exit 1
fi
rm -f "${sweep_journal}" "${sweep_ref}" "${sweep_resumed}"
echo "tier1: sweep SIGINT kill/resume smoke OK"

# Sweep throughput smoke: the bench fails on any report divergence across
# worker counts; the compare step re-checks the JSON (warn-only for the
# speedup column, equivalence is the gate).
DAMPI_BENCH_QUICK=1 DAMPI_BENCH_OUT=build/BENCH_sweep.json \
  build/bench/bench_sweep
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/bench_compare.py --sweep build/BENCH_sweep.json --warn-only
fi
echo "tier1: sweep throughput smoke OK"

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "tier1: skipping ThreadSanitizer stage"
  exit 0
fi

cmake -B build-tsan -S . -DDAMPI_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" \
  --target test_explorer_parallel test_obs test_match_index \
           test_engine_lock test_por test_sweep
(cd build-tsan && ctest --output-on-failure \
  -L 'concurrency|obs|match|enginelock|por|sweep' -j "${jobs}")
echo "tier1: OK (including TSan concurrency + obs + match + enginelock + por + sweep stage)"
