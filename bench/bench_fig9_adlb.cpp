// Figure 9: ADLB with bounded mixing — interleavings explored vs
// process count for k = 0, 1, 2.
//
// Paper: ADLB's degree of non-determinism is "usually far beyond that of
// a typical MPI program"; verifying it unbounded is impractical even for
// a dozen processes, while bounded mixing keeps the counts tractable
// (tens of thousands at 32 procs for k=2) and growing smoothly.
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "workloads/adlb.hpp"

using namespace dampi;

int main() {
  bench::banner(
      "Figure 9 — ADLB with bounded mixing (interleavings vs procs)",
      "bounded mixing keeps ADLB's enormous interleaving space tractable; "
      "counts grow with procs and with k");

  const std::uint64_t cap = bench::quick_mode() ? 1500 : 8000;
  const std::vector<int> proc_counts =
      bench::quick_mode() ? std::vector<int>{4, 8}
                          : std::vector<int>{4, 8, 12, 16, 20, 24, 28, 32};
  const std::vector<std::optional<int>> bounds = {0, 1, 2};

  TextTable table;
  table.header({"procs", "k=0", "k=1", "k=2"});

  bench::WallTimer total;
  for (const int procs : proc_counts) {
    workloads::adlb::Config config;
    config.roots_per_server = 3;
    config.children_per_unit = 1;
    config.spawn_depth = 1;
    config.compute_us_per_unit = 25.0;
    std::vector<std::string> cells = {std::to_string(procs)};
    for (const auto& k : bounds) {
      core::ExplorerOptions options;
      options.nprocs = procs;
      options.mixing_bound = k;
      options.max_interleavings = cap;
      core::Explorer explorer(options);
      const auto result = explorer.explore([config](mpism::Proc& p) {
        workloads::adlb::run(p, config);
      });
      std::string cell = std::to_string(result.interleavings);
      if (result.interleaving_budget_exhausted) cell = ">" + cell;
      cells.push_back(std::move(cell));
      if (result.found_bug()) {
        std::printf("unexpected ADLB bug at procs=%d!\n", procs);
        return 1;
      }
    }
    table.row(std::move(cells));
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: counts rise with both procs and k, staying "
              "far below the astronomic unbounded space (\">N\" marks the "
              "cap).\n");
  std::printf("(harness wall time: %.1fs)\n", total.seconds());
  return 0;
}
