#include "workloads/patterns.hpp"

#include "common/check.hpp"

namespace dampi::workloads {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::pack;
using mpism::Proc;
using mpism::RequestId;
using mpism::Status;
using mpism::unpack;

namespace {
constexpr mpism::Tag kTag = 0;
}

void fig3_wildcard_bug(Proc& p) {
  DAMPI_CHECK(p.size() >= 3);
  switch (p.rank()) {
    case 0: {
      RequestId s = p.isend(1, kTag, pack<int>(22));
      p.wait(s);
      break;
    }
    case 1: {
      RequestId r = p.irecv(kAnySource, kTag);
      Bytes data;
      p.wait(r, &data);
      const int x = unpack<int>(data);
      p.require(x != 33, "fig3: x == 33");
      break;
    }
    case 2: {
      RequestId s = p.isend(1, kTag, pack<int>(33));
      p.wait(s);
      break;
    }
    default:
      break;
  }
}

void fig3_benign(Proc& p) {
  DAMPI_CHECK(p.size() >= 3);
  switch (p.rank()) {
    case 0:
      p.send(1, kTag, pack<int>(22));
      break;
    case 1:
      p.recv(kAnySource, kTag);
      p.recv(kAnySource, kTag);
      break;
    case 2:
      p.send(1, kTag, pack<int>(33));
      break;
    default:
      break;
  }
}

void fig4_cross_coupled(Proc& p) {
  DAMPI_CHECK(p.size() >= 4);
  switch (p.rank()) {
    case 0:
      p.send(1, kTag, pack<int>(100));
      break;
    case 1: {
      p.recv(kAnySource, kTag);       // epoch: matches P0 (or P2's late send)
      p.send(2, kTag, pack<int>(111));  // cross-coupled competitor for P2
      p.recv(kAnySource, kTag);         // drain whichever message remains
      break;
    }
    case 2: {
      p.recv(kAnySource, kTag);       // epoch: matches P3 (or P1's late send)
      p.send(1, kTag, pack<int>(222));  // cross-coupled competitor for P1
      p.recv(kAnySource, kTag);         // drain whichever message remains
      break;
    }
    case 3:
      p.send(2, kTag, pack<int>(300));
      break;
    default:
      break;
  }
}

void fig10_unsafe_pattern(Proc& p) {
  DAMPI_CHECK(p.size() >= 3);
  switch (p.rank()) {
    case 0: {
      RequestId s = p.isend(1, kTag, pack<int>(22));
      p.wait(s);
      p.barrier();
      break;
    }
    case 1: {
      RequestId r = p.irecv(kAnySource, kTag);
      p.barrier();  // crossed while the wildcard is pending: §V pattern
      Bytes data;
      p.wait(r, &data);
      p.require(unpack<int>(data) != 33, "fig10: x == 33");
      break;
    }
    case 2: {
      p.barrier();
      p.send(1, kTag, pack<int>(33));  // competitor hidden from analysis
      break;
    }
    default:
      break;
  }
  // Drain rank 2's message when rank 1 survived with x == 22, so the run
  // ends cleanly whichever way the race went.
  if (p.rank() == 1) p.recv(kAnySource, kTag);
}

void simple_deadlock(Proc& p) {
  DAMPI_CHECK(p.size() >= 2);
  if (p.rank() < 2) p.recv(1 - p.rank(), kTag);
}

void wildcard_dependent_deadlock(Proc& p) {
  DAMPI_CHECK(p.size() >= 3);
  switch (p.rank()) {
    case 0:
      p.send(1, kTag, pack<int>(0));
      break;
    case 1: {
      const Status st = p.recv(kAnySource, kTag);
      if (st.source == 2) {
        // Only reachable when the wildcard matched rank 2: wait for a
        // message rank 0 never sends on tag 1 -> deadlock.
        p.recv(0, 1);
      } else {
        p.recv(2, kTag);  // benign path drains rank 2's message
      }
      break;
    }
    case 2:
      p.send(1, kTag, pack<int>(0));
      break;
    default:
      break;
  }
}

void leaky_program(Proc& p) {
  p.comm_dup();  // never freed: one C-leak per run
  // One unconsumed request per rank: an isend to self that is never
  // waited (the matching receive consumes the data, not the request).
  p.isend(p.rank(), 3, pack<int>(p.rank()),
          mpism::kCommWorld);
  p.recv(p.rank(), 3);
}

void fan_in_rounds(Proc& p, int rounds) {
  DAMPI_CHECK(p.size() >= 2);
  if (p.rank() == 0) {
    p.barrier();
    for (int r = 0; r < rounds; ++r) {
      for (int i = 1; i < p.size(); ++i) {
        p.recv(kAnySource, /*tag=*/r);
      }
    }
  } else {
    for (int r = 0; r < rounds; ++r) {
      p.send(0, /*tag=*/r, pack<int>(p.rank() * 1000 + r));
    }
    p.barrier();
  }
}

void fan_in_groups(Proc& p, int groups) {
  DAMPI_CHECK(p.size() >= 3 * groups);
  const int g = p.rank() / 3;
  const bool is_root = g < groups && p.rank() % 3 == 0;
  if (is_root) {
    p.barrier();
    p.recv(kAnySource, /*tag=*/g);
    p.recv(kAnySource, /*tag=*/g);
  } else {
    if (g < groups) p.send(3 * g, /*tag=*/g, pack<int>(p.rank()));
    p.barrier();
  }
}

void all_pairs_churn(Proc& p, int rounds) {
  DAMPI_CHECK(p.size() >= 2);
  for (int r = 0; r < rounds; ++r) {
    for (int dst = 0; dst < p.size(); ++dst) {
      if (dst != p.rank()) p.send(dst, /*tag=*/r, pack<int>(p.rank()));
    }
    p.barrier();
    for (int i = 1; i < p.size(); ++i) {
      p.recv(kAnySource, /*tag=*/r);
    }
    p.barrier();
  }
}

void dist_fanout(Proc& p, int rounds, double spin_us) {
  DAMPI_CHECK(p.size() >= 2);
  if (p.rank() == 0) {
    p.barrier();
    for (int r = 0; r < rounds; ++r) {
      for (int i = 1; i < p.size(); ++i) {
        p.recv(kAnySource, /*tag=*/r);
        p.compute(spin_us);
      }
    }
  } else {
    for (int r = 0; r < rounds; ++r) {
      p.send(0, /*tag=*/r, pack<int>(p.rank() * 1000 + r));
    }
    p.barrier();
  }
}

void livelock(Proc& p) {
  DAMPI_CHECK(p.size() >= 2);
  if (p.rank() == 0) {
    p.recv(1, /*tag=*/7);  // rank 1 never sends tag 7
  } else if (p.rank() == 1) {
    for (;;) {
      if (p.iprobe(0, /*tag=*/9)) break;  // rank 0 never sends tag 9
      p.compute(0.5);
    }
  }
  // Ranks >= 2 finish immediately; their exit keeps the run "live".
}

}  // namespace dampi::workloads
