// PnMPI-style interposition: a per-rank stack of tool layers sees every
// MPI call before the runtime executes it and every completion after.
//
// This is the moral equivalent of the paper's "DAMPI-PnMPI modules": a
// layer may rewrite call arguments (DAMPI's GUIDED_RUN determinizes
// MPI_ANY_SOURCE this way), issue additional raw operations that bypass
// the stack (piggyback messages on shadow communicators), and account
// extra virtual time (the ISP layer's per-call scheduler round-trips).
//
// Hook discipline: pre_* hooks run top-to-bottom, post_* hooks run
// bottom-to-top, mirroring how a PMPI wrapper wraps the layer beneath it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mpism/request.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

/// Arguments of a send as seen (and possibly rewritten) by tool layers.
/// dst is communicator-relative.
struct SendCall {
  Rank dst = -1;
  Tag tag = 0;
  CommId comm = kCommWorld;
  Bytes* payload = nullptr;  ///< mutable: packed-payload piggyback rewrites it
  bool blocking = false;
};

/// Identity of an injected message, reported to post_isend hooks.
struct SendInfo {
  std::uint64_t seq = 0;
  std::uint64_t msg_id = 0;
  Rank dst_world = -1;
};

/// Arguments of a receive. src may be rewritten (kAnySource -> concrete
/// source is exactly how guided replay enforces an epoch decision).
struct RecvCall {
  Rank src = kAnySource;
  Tag tag = kAnyTag;
  CommId comm = kCommWorld;
  bool blocking = false;
};

struct ProbeCall {
  Rank src = kAnySource;
  Tag tag = kAnyTag;
  CommId comm = kCommWorld;
  bool blocking = false;
};

/// A collective call crossing the stack. Layers deposit a piggyback
/// contribution in pre_collective; the runtime routes contributions
/// according to the data-flow direction of the operation (see CollResult).
struct CollCall {
  CollKind kind = CollKind::kBarrier;
  CommId comm = kCommWorld;
  Rank root = 0;  ///< comm-relative; meaningful for rooted collectives
  Bytes pb_contribution;
};

/// What a completed collective hands back to tool layers:
///  - all-to-all-flavored ops (barrier, allreduce, allgather, alltoall,
///    comm_dup, comm_split): `incoming` = merge of every participant's
///    contribution (via RunOptions::tools.coll_merge);
///  - bcast/scatter at a non-root: `incoming` = the root's contribution;
///  - reduce/gather at the root: merge of all contributions;
///  - otherwise (root of bcast/scatter, non-root of reduce/gather):
///    has_incoming = false — no clock flows toward this process, which is
///    precisely the paper's per-collective Lamport update rule.
struct CollResult {
  bool has_incoming = false;
  Bytes incoming;
  CommId new_comm = kCommNull;  ///< comm_dup / comm_split product
};

/// A completed request as seen by post_wait hooks, before user delivery.
struct ReqCompletion {
  RequestId id = kNullRequest;
  ReqKind kind = ReqKind::kSend;
  CommId comm = kCommWorld;
  /// As posted to the runtime, i.e. after any tool rewrites upstream.
  Rank posted_src = kAnySource;
  Tag posted_tag = kAnyTag;
  /// Matched message identity (receives only). src_world is the sender's
  /// world rank; status.source is communicator-relative.
  Rank src_world = -1;
  Tag tag = kAnyTag;
  std::uint64_t seq = 0;
  std::uint64_t msg_id = 0;
  Status status;
  /// Receive payload; hooks may rewrite (packed piggyback strips its
  /// prefix here) before the engine hands it to the user.
  Bytes* payload = nullptr;
};

/// Runtime services available to tool layers. Raw operations bypass the
/// tool stack (they are the PMPI_* calls of the paper's pseudocode) but
/// still travel through the engine, so they pay virtual-time costs and
/// obey matching semantics. All ranks are communicator-relative.
class ToolCtx {
 public:
  virtual ~ToolCtx() = default;

  virtual Rank world_rank() const = 0;
  virtual int world_size() const = 0;
  virtual int comm_size(CommId comm) const = 0;
  virtual Rank comm_rank(CommId comm) const = 0;
  virtual Rank to_world(CommId comm, Rank rel) const = 0;
  virtual Rank to_rel(CommId comm, Rank world) const = 0;

  virtual RequestId raw_isend(Rank dst, Tag tag, CommId comm,
                              Bytes payload) = 0;
  virtual RequestId raw_irecv(Rank src, Tag tag, CommId comm) = 0;
  /// Blocks until the request completes; returns its status.
  virtual Status raw_wait(RequestId req, Bytes* out) = 0;
  virtual Status raw_recv(Rank src, Tag tag, CommId comm, Bytes* out) = 0;
  /// Nonblocking probe over user (non-tool) messages.
  virtual bool raw_iprobe(Rank src, Tag tag, CommId comm, Status* status) = 0;
  /// Tool-internal barrier over `comm` (used by the finalize-time drain
  /// that mirrors MPI_Finalize's collective semantics).
  virtual void raw_barrier(CommId comm) = 0;
  /// Collective among the members of `comm`; every member's stack must
  /// call it the same number of times in the same order. The new
  /// communicator is tool-internal (exempt from leak accounting).
  virtual CommId raw_comm_dup(CommId comm) = 0;

  /// Charge `us` of virtual time to this rank (tool bookkeeping costs).
  virtual void add_cost(double us) = 0;

  /// Current virtual time of this rank, in microseconds.
  virtual double vtime() const = 0;
};

/// Base class for interposition layers. Default implementations are
/// no-ops, so layers override only the hooks they care about.
class ToolLayer {
 public:
  virtual ~ToolLayer() = default;

  virtual void on_init(ToolCtx&) {}
  /// Runs when the rank's program returns, before leak accounting.
  virtual void on_finalize(ToolCtx&) {}

  virtual void pre_isend(ToolCtx&, SendCall&) {}
  virtual void post_isend(ToolCtx&, const SendCall&, RequestId,
                          const SendInfo&) {}

  virtual void pre_irecv(ToolCtx&, RecvCall&) {}
  virtual void post_irecv(ToolCtx&, const RecvCall&, RequestId) {}

  virtual void pre_wait(ToolCtx&, RequestId) {}
  virtual void post_wait(ToolCtx&, ReqCompletion&) {}

  virtual void pre_probe(ToolCtx&, ProbeCall&) {}
  virtual void post_probe(ToolCtx&, const ProbeCall&, bool /*flag*/,
                          Status&) {}

  virtual void pre_collective(ToolCtx&, CollCall&) {}
  virtual void post_collective(ToolCtx&, const CollCall&, const CollResult&) {}

  virtual void on_pcontrol(ToolCtx&, int /*level*/, const std::string&) {}
};

/// Per-run tool configuration: a factory producing each rank's layer
/// stack (index 0 = top of stack) plus the merge function the runtime
/// uses to combine collective piggyback contributions (component-wise max
/// for vector clocks, scalar max for Lamport clocks).
struct ToolSetup {
  std::function<std::vector<std::unique_ptr<ToolLayer>>(Rank rank,
                                                        int nprocs)>
      make_stack;
  std::function<Bytes(const std::vector<Bytes>&)> coll_merge;

  bool empty() const { return !make_stack; }
};

}  // namespace dampi::mpism
