// Deadlocks and resource leaks: DAMPI's local error checks.
//
// Three short sessions:
//   1. a deadlock reachable only under one wildcard outcome — invisible
//      to the biased native run, found by replay, reported with the
//      epoch decisions that reproduce it;
//   2. communicator / request leak detection at MPI_Finalize (Table II's
//      C-Leak and R-Leak columns);
//   3. the §V unsafe pattern (fig. 10): DAMPI cannot force that bug —
//      Lamport clocks hide the competitor — but its dynamic monitor
//      alerts that the program is vulnerable.
//
//   $ ./examples/deadlock_and_leaks
#include <cstdio>

#include "core/verifier.hpp"
#include "workloads/patterns.hpp"

using namespace dampi;

namespace {

core::VerifyResult verify(const mpism::ProgramFn& program, int procs) {
  core::VerifyOptions options;
  options.explorer.nprocs = procs;
  options.explorer.max_interleavings = 64;
  core::Verifier verifier(options);
  return verifier.verify(program);
}

}  // namespace

int main() {
  std::printf("-- 1. wildcard-dependent deadlock ------------------------\n");
  const auto deadlock = verify(workloads::wildcard_dependent_deadlock, 3);
  if (deadlock.deadlock_found) {
    const auto& bug = deadlock.exploration.bugs.back();
    std::printf("deadlock found in interleaving %llu:\n%s",
                static_cast<unsigned long long>(bug.interleaving),
                bug.deadlock_detail.c_str());
    std::printf("reproducer decisions:\n");
    for (const auto& [key, src] : bug.schedule.forced) {
      std::printf("  rank %d nd#%llu -> source %d\n", key.rank,
                  static_cast<unsigned long long>(key.nd_index), src);
    }
  } else {
    std::printf("MISSED the deadlock (unexpected)\n");
    return 1;
  }

  std::printf("\n-- 2. resource leaks at finalize -------------------------\n");
  const auto leaks = verify(workloads::leaky_program, 4);
  std::printf("communicator leaks: %d, request leaks: %llu\n",
              leaks.comm_leaks,
              static_cast<unsigned long long>(leaks.request_leaks));
  if (leaks.comm_leaks == 0 || leaks.request_leaks == 0) {
    std::printf("expected leaks were not detected!\n");
    return 1;
  }

  std::printf("\n-- 3. the §V unsafe pattern (fig. 10) --------------------\n");
  const auto unsafe = verify(workloads::fig10_unsafe_pattern, 3);
  std::printf("bug forced by replay: %s\n",
              unsafe.error_found ? "yes" : "no (Lamport clocks hide the "
                                           "competitor — the documented "
                                           "omission)");
  for (const auto& alert : unsafe.exploration.unsafe_alerts) {
    std::printf("monitor alert: %s\n", alert.c_str());
  }
  if (unsafe.exploration.unsafe_alerts.empty()) {
    std::printf("the monitor failed to flag the pattern!\n");
    return 1;
  }

  std::printf("\n-- 4. the §V fix: deferred clock sync --------------------\n");
  core::VerifyOptions fixed_options;
  fixed_options.explorer.nprocs = 3;
  fixed_options.explorer.max_interleavings = 64;
  fixed_options.explorer.deferred_clock_sync = true;
  core::Verifier fixed_verifier(fixed_options);
  const auto fixed = fixed_verifier.verify(workloads::fig10_unsafe_pattern);
  std::printf("with the pair-of-clocks scheme the competitor is recorded "
              "and the bug is forced: %s\n",
              fixed.error_found ? "FOUND" : "still missed (unexpected!)");
  return fixed.error_found ? 0 : 1;
}
