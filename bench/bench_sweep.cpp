// Fault-sweep throughput: plans/sec at workers {1, 2, 4} over the
// fig3-benign fixture, with the byte-identity contract asserted — every
// worker count must produce the exact same crash-tolerance report (the
// sweep is a pure function of program/budget/seed, workers only change
// the wall clock).
//
// Emits BENCH_sweep.json (override with DAMPI_BENCH_OUT) for
// scripts/bench_compare.py --sweep.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mpism/runtime.hpp"
#include "sweep/sweep.hpp"
#include "workloads/patterns.hpp"

namespace {

struct Row {
  int workers = 0;
  double wall_s = 0.0;
  std::size_t plans = 0;
  double plans_per_s = 0.0;
  int exit_code = -1;
};

}  // namespace

int main() {
  dampi::bench::banner(
      "Fault-sweep campaigns: plans/sec vs sweep worker count",
      "the crash-tolerance report is byte-identical at any worker count; "
      "throughput scales with workers when cores are available");

  if (!dampi::mpism::coop_supported()) {
    // The sweep contract is determinism, which needs the coop scheduler;
    // sanitizer builds without fibers have nothing meaningful to time.
    std::printf("coop fibers unsupported in this build; skipping\n");
    return 0;
  }

  const unsigned nproc = std::thread::hardware_concurrency();
  const std::uint64_t budget =
      static_cast<std::uint64_t>(dampi::bench::quick_mode() ? 16 : 48);
  std::printf("host cores: %u, plan budget: %llu\n\n", nproc,
              static_cast<unsigned long long>(budget));

  dampi::sweep::SweepOptions base;
  base.explorer.nprocs = 3;
  if (!dampi::mpism::parse_sched_spec("coop", &base.explorer.sched)) {
    std::fprintf(stderr, "bench_sweep: cannot parse coop sched spec\n");
    return 2;
  }
  base.program_name = "fig3-benign";
  base.budget = budget;
  base.seed = 5;
  base.plan_max_interleavings = 16;

  std::vector<int> widths = {1, 2, 4};
  if (dampi::bench::quick_mode()) widths = {1, 2};

  std::vector<Row> rows;
  std::string reference_report;
  std::printf("%8s %10s %8s %12s %8s\n", "workers", "wall_s", "plans",
              "plans/s", "speedup");
  for (const int w : widths) {
    dampi::sweep::SweepOptions options = base;
    options.workers = w;
    dampi::bench::WallTimer timer;
    const dampi::sweep::SweepResult result =
        dampi::sweep::run_sweep(options, dampi::workloads::fig3_benign);
    Row row;
    row.workers = w;
    row.wall_s = timer.seconds();
    row.plans = result.records.size();
    row.plans_per_s = row.wall_s > 0.0 ? row.plans / row.wall_s : 0.0;
    row.exit_code = dampi::sweep::sweep_exit_code(result);
    if (!result.error.empty()) {
      std::fprintf(stderr, "bench_sweep: sweep failed at %d workers: %s\n", w,
                   result.error.c_str());
      return 2;
    }
    const std::string report =
        dampi::sweep::format_sweep_report_json(options, result);
    if (reference_report.empty()) {
      reference_report = report;
    } else if (report != reference_report) {
      std::fprintf(stderr,
                   "bench_sweep: DIVERGENCE at %d workers — the report is "
                   "not byte-identical to the 1-worker run\n",
                   w);
      return 1;
    }
    const double speedup = rows.empty() || row.wall_s <= 0.0
                               ? 1.0
                               : rows.front().wall_s / row.wall_s;
    std::printf("%8d %10.3f %8zu %12.1f %7.2fx\n", row.workers, row.wall_s,
                row.plans, row.plans_per_s, speedup);
    rows.push_back(row);
  }

  const char* out_path = std::getenv("DAMPI_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_sweep.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sweep: cannot write %s\n", out_path);
    return 2;
  }
  std::fprintf(f,
               "{\n  \"program\": \"fig3-benign\",\n  \"budget\": %llu,\n"
               "  \"nproc\": %u,\n  \"rows\": [\n",
               static_cast<unsigned long long>(budget), nproc);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup =
        r.wall_s <= 0.0 ? 0.0 : rows.front().wall_s / r.wall_s;
    std::fprintf(f,
                 "    {\"workers\": %d, \"wall_s\": %.6f, \"plans\": %zu, "
                 "\"plans_per_s\": %.3f, \"speedup\": %.4f, \"exit\": %d}%s\n",
                 r.workers, r.wall_s, r.plans, r.plans_per_s, speedup,
                 r.exit_code, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  for (const Row& r : rows) {
    if (r.plans != rows.front().plans || r.exit_code != rows.front().exit_code) {
      std::fprintf(stderr,
                   "bench_sweep: DIVERGENCE at %d workers (plans %zu vs %zu, "
                   "exit %d vs %d)\n",
                   r.workers, r.plans, rows.front().plans, r.exit_code,
                   rows.front().exit_code);
      return 1;
    }
  }
  return 0;
}
