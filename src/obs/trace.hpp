// Lock-free per-thread event tracer.
//
// Every participating thread (simulated rank, replay worker, the
// exploring thread) claims a *lane*: a fixed-capacity single-producer
// ring buffer of POD events stamped with monotonic timestamps. Emitting
// is wait-free and allocation-free — one relaxed load of the global
// enable flag, one slot write, one release store — so instrumentation
// can sit on the engine's matching hot path. The ring keeps the most
// recent `capacity` events per lane (older ones are overwritten; the
// drop count is reported at export time).
//
// Compile-time gate: when the CMake option DAMPI_TRACE is OFF the emit
// macros expand to nothing and no call site survives; the library API
// itself stays available so exporters and tests still link.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#if defined(DAMPI_TRACE) && DAMPI_TRACE
#define DAMPI_TRACE_ENABLED 1
#else
#define DAMPI_TRACE_ENABLED 0
#endif

namespace dampi::obs {

/// Event taxonomy. Names and argument meanings for the exporter live in
/// kind_info() — keep the two in sync when adding kinds.
enum class EventKind : std::uint16_t {
  // mpism engine (lanes: "rank N")
  kSendMatch = 0,   ///< send matched a posted receive; a=src b=dst c=tag
  kSendQueued,      ///< send queued unexpected; a=src b=dst c=tag
  kRecvPost,        ///< receive posted, no match yet; a=posted_src c=tag
  kRecvMatch,       ///< receive completed; a=src b=dst c=tag
  kBlock,           ///< span: rank blocked; a=rank b=BlockKind ordinal
  kCollective,      ///< span: collective enter..exit; a=kind b=comm
  kDeadlock,        ///< instant: deadlock declared on this thread
  // DAMPI layer (lanes: "rank N")
  kEpochOpen,       ///< wildcard epoch recorded; a=rank b=nd_index
  kEpochClose,      ///< epoch bound to its match; a=rank b=nd_index c=src
  kLateSend,        ///< potential match recorded; a=src b=nd c=tag d=seq
  kPiggybackAttach, ///< clock attached to outgoing send; a=clock bytes
  // explorer / replay pool (lanes: "explore", "worker N")
  kDecisionPush,    ///< DFS frame added; a=rank b=nd_index c=alternatives
  kDecisionPop,     ///< DFS frame flipped; a=rank b=nd_index c=forced src
  kPorPrune,        ///< sleep-set prune; a=rank b=nd_index c=slept sources
  kRun,             ///< span: one replay; a=speculative d=interleaving
  kRunDiscard,      ///< instant: speculative result dropped at shutdown
  // coop scheduler (emitted in the host thread's lane)
  kSchedSwitch,     ///< span: a rank fiber held the host thread; a=rank
  // resilience (engine / fault layer / explorer lanes)
  kRunTimeout,      ///< instant: a per-run budget expired (watchdog)
  kRunCancel,       ///< instant: an external CancelSource ended the run
  kFaultInject,     ///< instant: fault point fired; a=rank b=op c=kind
  kRetry,           ///< instant: failed replay re-executed; a=attempt
  kQuarantine,      ///< instant: decision subtree quarantined; d=interleaving
  kCheckpoint,      ///< span: checkpoint write; a=frames d=interleaving
  // fault sweep (lane: "sweep")
  kSweepPlan,       ///< span: one plan campaign; a=plan b=verdict d=interleavings
  kKindCount
};

enum class Phase : std::uint8_t { kInstant = 0, kBegin, kEnd };

/// Exporter-facing description of an EventKind.
struct KindInfo {
  const char* name;     ///< Chrome trace event name
  const char* args[4];  ///< labels for a, b, c, d (nullptr = unused)
};
const KindInfo& kind_info(EventKind kind);

/// POD event record; 32 bytes, written in place in the ring.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< monotonic, since process trace origin
  EventKind kind = EventKind::kKindCount;
  Phase phase = Phase::kInstant;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::uint64_t d = 0;
};

/// Nanoseconds since the process-wide trace origin (first use).
std::uint64_t trace_now_ns();

/// One single-producer ring buffer. The owning thread emits; snapshots
/// happen under the tracer registry lock once the owner is quiescent
/// (released the lane or stopped emitting).
class Lane {
 public:
  Lane(std::string name, std::size_t capacity_pow2);

  const std::string& name() const { return name_; }

  /// Wait-free append (owner thread only).
  void emit(EventKind kind, Phase phase, std::int32_t a, std::int32_t b,
            std::int32_t c, std::uint64_t d) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    TraceEvent& slot = ring_[h & mask_];
    slot.ts_ns = trace_now_ns();
    slot.kind = kind;
    slot.phase = phase;
    slot.a = a;
    slot.b = b;
    slot.c = c;
    slot.d = d;
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint64_t emitted() const {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return ring_.size(); }

  /// Oldest-to-newest copy of the retained window.
  std::vector<TraceEvent> events() const;

 private:
  std::string name_;
  std::vector<TraceEvent> ring_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

/// Copy of one lane for export/analysis.
struct LaneSnapshot {
  std::string name;
  std::uint64_t emitted = 0;  ///< total events ever (>= events.size())
  std::vector<TraceEvent> events;
};

/// Process-wide lane registry. Lanes are recycled by name: a thread
/// claiming "rank 0" reuses the lane a previous run's rank 0 released,
/// so sequential replays share lanes while concurrent ones get their
/// own (exported as separate Chrome-trace tids with the same label).
class Tracer {
 public:
  static Tracer& instance();

  /// Runtime switch consulted by the emit macros (relaxed load).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Events retained per lane; applies to lanes created afterwards.
  /// Rounded up to a power of two.
  void set_capacity(std::size_t events);

  /// Claim a lane for the calling thread (nullptr when tracing is
  /// disabled — threads started while off stay unobserved).
  Lane* acquire(std::string name);
  void release(Lane* lane);

  /// Copies of every lane ever created, in creation (tid) order. Call
  /// at quiescence for exact results; concurrent emitters at most
  /// contribute a clipped tail.
  std::vector<LaneSnapshot> snapshot() const;

  /// Drop all lanes (test isolation; no lane may be claimed).
  void reset();

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< index == exported tid
  std::vector<Lane*> free_;
  std::size_t capacity_ = 1u << 14;
  std::atomic<bool> enabled_{false};
};

namespace detail {
extern thread_local Lane* tls_lane;
}  // namespace detail

/// Point the calling thread's emits at `lane` (nullptr detaches) and
/// return the previous lane. The coop scheduler uses this to redirect a
/// single host thread into the lane of whichever rank fiber it resumes;
/// ThreadLane remains the RAII path for threads that own one lane.
Lane* exchange_thread_lane(Lane* lane);

inline bool trace_on() {
#if DAMPI_TRACE_ENABLED
  return Tracer::instance().enabled();
#else
  return false;
#endif
}

/// Emit into the calling thread's lane (no-op for unclaimed threads).
inline void emit(EventKind kind, Phase phase, std::int32_t a = 0,
                 std::int32_t b = 0, std::int32_t c = 0,
                 std::uint64_t d = 0) {
  Lane* lane = detail::tls_lane;
  if (lane != nullptr) lane->emit(kind, phase, a, b, c, d);
}

/// RAII lane claim for the calling thread; restores any previous claim.
class ThreadLane {
 public:
  explicit ThreadLane(std::string name);
  ~ThreadLane();

  ThreadLane(const ThreadLane&) = delete;
  ThreadLane& operator=(const ThreadLane&) = delete;

 private:
  Lane* lane_ = nullptr;
  Lane* prev_ = nullptr;
};

}  // namespace dampi::obs

// Hot-path emit macros: compiled out entirely under DAMPI_TRACE=OFF
// (arguments are never evaluated), one relaxed load + branch when
// compiled in but disabled at runtime.
#if DAMPI_TRACE_ENABLED
#define DAMPI_TEVENT(kind, phase, ...)                              \
  do {                                                              \
    if (::dampi::obs::trace_on()) {                                 \
      ::dampi::obs::emit((kind), (phase)__VA_OPT__(, ) __VA_ARGS__); \
    }                                                               \
  } while (0)
#define DAMPI_TRACE_THREAD_LANE(name_expr) \
  ::dampi::obs::ThreadLane dampi_obs_thread_lane_ {(name_expr)}
#else
// Arguments are typechecked but never evaluated (unevaluated sizeof
// operand), so variables used only for tracing don't warn under OFF.
#define DAMPI_TEVENT(kind, phase, ...)                                        \
  do {                                                                        \
    (void)sizeof(                                                             \
        (::dampi::obs::emit((kind), (phase)__VA_OPT__(, ) __VA_ARGS__), 0));  \
  } while (0)
#define DAMPI_TRACE_THREAD_LANE(name_expr) \
  do {                                     \
    (void)sizeof(name_expr);               \
  } while (0)
#endif
