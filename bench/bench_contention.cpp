// Engine-lock contention: global mutex vs destination-rank shards
// under the thread-per-rank scheduler.
//
// The sharded engine's claim: when N OS threads hammer the engine at
// once, one global mutex serializes every MPI call, while per-rank
// shards let disjoint (caller, destination) pairs proceed in parallel.
// Measured here as native-engine runs/second of an all-pairs churn
// workload (every rank posts a receive from and sends to every other
// rank each round — the worst realistic cross-shard traffic), plus the
// engine.lock.* accounting each mode records: acquisitions, contended
// acquisitions (futex-path fallbacks), and all-shard escalations.
//
// On a single-core host the two modes are expected to tie (there is no
// parallelism to unlock); the honest flat curve still belongs in
// BENCH_contention.json. On multi-core, sharded should pull ahead as
// ranks grow, and the contended/acquired ratio is the direct evidence.
//
// Output: the table on stdout and BENCH_contention.json
// (machine-readable, referenced by EXPERIMENTS.md; compare runs with
// scripts/bench_compare.py --contention A.json B.json).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "mpism/runtime.hpp"
#include "obs/metrics.hpp"

using namespace dampi;

namespace {

/// Every rank posts a receive from and sends to every other rank each
/// round; sync sends are mixed in so the cross-shard rendezvous
/// handshake is part of the measured path.
void all_pairs_churn(mpism::Proc& p, int rounds) {
  const int n = p.size();
  for (int round = 0; round < rounds; ++round) {
    std::vector<mpism::RequestId> recvs;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == p.rank()) continue;
      recvs.push_back(p.irecv(peer, mpism::kAnyTag));
    }
    std::vector<mpism::RequestId> sends;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == p.rank()) continue;
      mpism::Bytes payload(
          static_cast<std::size_t>(8 + 8 * ((p.rank() + round) % 12)),
          static_cast<std::byte>(round));
      sends.push_back(((p.rank() + peer + round) % 4 == 0)
                          ? p.issend(peer, round % 3, std::move(payload))
                          : p.isend(peer, round % 3, std::move(payload)));
    }
    p.waitall(recvs);
    p.waitall(sends);
    if (round % 2 == 0) p.barrier();
  }
}

struct Cell {
  std::string lock;
  int nprocs = 0;
  int runs = 0;
  double wall_seconds = 0.0;
  double runs_per_sec = 0.0;
  std::uint64_t lock_acquired = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t lock_all_shards = 0;
  std::uint64_t inline_hits = 0;
  std::uint64_t heap_spills = 0;
};

Cell measure(mpism::EngineLockKind lock, int nprocs, int runs, int rounds) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  mpism::RunOptions options;
  options.nprocs = nprocs;
  options.engine_lock = lock;
  options.sched.kind = mpism::SchedulerKind::kThread;
  const auto program = [rounds](mpism::Proc& p) {
    all_pairs_churn(p, rounds);
  };
  bench::WallTimer timer;
  for (int i = 0; i < runs; ++i) {
    mpism::Runtime runtime(options);
    const auto report = runtime.run(program);
    if (!report.ok()) {
      std::printf("UNEXPECTED FAILURE (%s, %d ranks): %s\n",
                  mpism::engine_lock_spec(lock).c_str(), nprocs,
                  report.deadlock_detail.c_str());
      std::exit(1);
    }
  }
  Cell cell;
  cell.lock = mpism::engine_lock_spec(lock);
  cell.nprocs = nprocs;
  cell.runs = runs;
  cell.wall_seconds = timer.seconds();
  cell.runs_per_sec = runs / cell.wall_seconds;
  cell.lock_acquired = reg.counter("engine.lock.acquired").value();
  cell.lock_contended = reg.counter("engine.lock.contended").value();
  cell.lock_all_shards = reg.counter("engine.lock.all_shards").value();
  cell.inline_hits = reg.counter("engine.envelope.inline_hits").value();
  cell.heap_spills = reg.counter("engine.envelope.heap_spills").value();
  reg.reset();
  return cell;
}

bool write_json(const char* path, const std::vector<Cell>& cells,
                unsigned hw_threads) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"bench\": \"contention\",\n  \"workload\": "
               "\"all-pairs churn\",\n  \"hw_threads\": %u,\n"
               "  \"cells\": [\n",
               hw_threads);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"lock\": \"%s\", \"nprocs\": %d, \"runs\": %d, "
        "\"wall_seconds\": %.6f, \"runs_per_sec\": %.3f, "
        "\"lock_acquired\": %llu, \"lock_contended\": %llu, "
        "\"lock_all_shards\": %llu, \"inline_hits\": %llu, "
        "\"heap_spills\": %llu}%s\n",
        c.lock.c_str(), c.nprocs, c.runs, c.wall_seconds, c.runs_per_sec,
        static_cast<unsigned long long>(c.lock_acquired),
        static_cast<unsigned long long>(c.lock_contended),
        static_cast<unsigned long long>(c.lock_all_shards),
        static_cast<unsigned long long>(c.inline_hits),
        static_cast<unsigned long long>(c.heap_spills),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  bench::banner(
      "Engine-lock contention — global mutex vs destination-rank shards",
      "per-rank lock shards let disjoint sender/receiver pairs make "
      "progress in parallel where one global mutex serializes them");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n\n", hw,
              hw <= 1 ? "  (single core: expect a flat curve)" : "");

  const std::vector<int> scales{2, 4, 8, 16};
  const auto reps_for = [](int nprocs) {
    const int reps = nprocs <= 4 ? 60 : nprocs <= 8 ? 30 : 12;
    return bench::quick_mode() ? std::max(2, reps / 4) : reps;
  };
  const int rounds = bench::quick_mode() ? 4 : 8;

  std::vector<Cell> cells;
  for (const auto lock : {mpism::EngineLockKind::kGlobal,
                          mpism::EngineLockKind::kSharded}) {
    for (const int nprocs : scales) {
      cells.push_back(measure(lock, nprocs, reps_for(nprocs), rounds));
    }
  }

  TextTable table;
  table.header({"lock", "ranks", "runs", "runs/sec", "acquired", "contended",
                "all-shards", "inline", "spills"});
  for (const Cell& c : cells) {
    table.row({c.lock, std::to_string(c.nprocs), std::to_string(c.runs),
               fmt_fixed(c.runs_per_sec, 1), std::to_string(c.lock_acquired),
               std::to_string(c.lock_contended),
               std::to_string(c.lock_all_shards),
               std::to_string(c.inline_hits), std::to_string(c.heap_spills)});
  }
  std::printf("%s", table.str().c_str());

  // Headline: sharded-over-global speedup at the largest scale.
  const Cell* global_big = nullptr;
  const Cell* sharded_big = nullptr;
  for (const Cell& c : cells) {
    if (c.nprocs != scales.back()) continue;
    (c.lock == "global" ? global_big : sharded_big) = &c;
  }
  if (global_big != nullptr && sharded_big != nullptr) {
    std::printf("\nsharded/global at %d ranks: %.2fx runs/sec\n",
                scales.back(),
                sharded_big->runs_per_sec / global_big->runs_per_sec);
  }

  if (write_json("BENCH_contention.json", cells, hw)) {
    std::printf("wrote BENCH_contention.json\n");
  }
  return 0;
}
