// DAMPI layer unit tests: epoch recording, late-message potential-match
// analysis, guided replay, piggyback transports under the layer, loop
// abstraction, and the §V unsafe-pattern monitor — one instrumented run
// at a time (the explorer has its own suite).
#include <gtest/gtest.h>

#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::ClockMode;
using core::EpochKey;
using core::ExplorerOptions;
using core::Schedule;
using mpism::Bytes;
using mpism::kAnySource;
using mpism::pack;
using mpism::Proc;
using mpism::unpack;
using piggyback::TransportKind;

// A transport sweep: the layer's behaviour must be identical under the
// separate-message, packed-payload, and telepathic mechanisms.
class TransportSweep : public ::testing::TestWithParam<TransportKind> {};

TEST_P(TransportSweep, Fig3EpochRecordsBothCandidates) {
  ExplorerOptions options = explorer_options(3);
  options.transport = GetParam();
  auto result = run_dampi_once(options, {}, workloads::fig3_benign);
  ASSERT_TRUE(result.report.ok()) << result.report.deadlock_detail;

  // Rank 1 has two wildcard epochs; between them both senders were seen.
  ASSERT_EQ(result.trace.wildcard_recv_epochs, 2u);
  const auto* first = find_epoch(result.trace, 1, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->is_probe);
  // Whichever send matched, the other is a recorded alternative.
  ASSERT_EQ(first->alternatives.size(), 1u);
  const int matched = first->matched_src_world;
  const int alt = first->alternatives.begin()->first;
  EXPECT_TRUE((matched == 0 && alt == 2) || (matched == 2 && alt == 0));
}

TEST_P(TransportSweep, GuidedReplayForcesTheAlternate) {
  ExplorerOptions options = explorer_options(3);
  options.transport = GetParam();
  Schedule schedule;
  schedule.forced[EpochKey{1, 0}] = 2;  // force the first epoch to rank 2
  auto result = run_dampi_once(options, schedule, workloads::fig3_benign);
  ASSERT_TRUE(result.report.ok());
  const auto* first = find_epoch(result.trace, 1, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->matched_src_world, 2);
  // In the guided run, rank 0's send becomes the late alternative.
  ASSERT_EQ(first->alternatives.size(), 1u);
  EXPECT_EQ(first->alternatives.begin()->first, 0);
}

TEST_P(TransportSweep, GuidedReplayExposesFig3Bug) {
  ExplorerOptions options = explorer_options(3);
  options.transport = GetParam();
  Schedule schedule;
  schedule.forced[EpochKey{1, 0}] = 2;
  auto result = run_dampi_once(options, schedule, workloads::fig3_wildcard_bug);
  EXPECT_FALSE(result.report.ok());
  ASSERT_FALSE(result.report.errors.empty());
  EXPECT_NE(result.report.errors[0].message.find("x == 33"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportSweep,
                         ::testing::Values(TransportKind::kSeparateMessage,
                                           TransportKind::kPackedPayload,
                                           TransportKind::kTelepathic));

TEST(DampiLayer, DeterministicProgramRecordsNoEpochs) {
  ExplorerOptions options = explorer_options(2);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(1));
    } else {
      p.recv(0, 1);
    }
    p.barrier();
  });
  ASSERT_TRUE(result.report.ok());
  EXPECT_EQ(result.trace.wildcard_recv_epochs, 0u);
  EXPECT_TRUE(result.trace.epochs.empty());
}

// A send causally *after* the epoch must not be a potential match: the
// receiver's post-epoch clock reaches the sender first.
TEST(DampiLayer, CausallyLaterSendIsNotAPotentialMatch) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 5;
    if (p.rank() == 0) {
      p.send(1, t, pack<int>(1));
    } else if (p.rank() == 1) {
      p.recv(kAnySource, t);          // epoch (matches rank 0)
      p.send(2, t, pack<int>(2));     // carries the post-epoch clock
      p.recv(2, t);                   // rank 2's reply: causally after
    } else {
      p.recv(1, t);
      p.send(1, t, pack<int>(3));     // after seeing rank 1's clock
    }
  });
  ASSERT_TRUE(result.report.ok());
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->matched_src_world, 0);
  EXPECT_TRUE(epoch->alternatives.empty());
}

// Tag-incompatible late sends are not alternatives.
TEST(DampiLayer, TagMismatchExcludedFromAlternatives) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 7, pack<int>(1));
    } else if (p.rank() == 2) {
      p.send(1, 8, pack<int>(2));  // different tag: cannot match epoch
    } else {
      p.recv(kAnySource, 7);  // epoch on tag 7 (matches rank 0)
      p.recv(2, 8);
    }
  });
  ASSERT_TRUE(result.report.ok());
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->alternatives.empty());
}

// Non-overtaking: of two late sends from one source only the earliest is
// the recorded alternative.
TEST(DampiLayer, EarliestLateSendPerSource) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 4;
    if (p.rank() == 0) {
      p.send(1, t, pack<int>(1));
    } else if (p.rank() == 2) {
      p.send(1, t, pack<int>(20));  // seq 0: the only legal alternative
      p.send(1, t, pack<int>(21));  // seq 1: blocked by non-overtaking
    } else {
      p.barrier();
      p.recv(kAnySource, t);  // epoch
      p.recv(2, t);
      p.recv(2, t);
    }
    if (p.rank() != 1) p.barrier();
  });
  ASSERT_TRUE(result.report.ok());
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  // Wildcard matched rank 0 (lowest-source policy among queued heads).
  EXPECT_EQ(epoch->matched_src_world, 0);
  ASSERT_EQ(epoch->alternatives.size(), 1u);
  EXPECT_EQ(epoch->alternatives.at(2).seq, 0u);
}

// Wildcard probes are epochs too; a flagged probe records its source.
TEST(DampiLayer, WildcardProbeRecordsEpoch) {
  ExplorerOptions options = explorer_options(2);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 3, pack<int>(9));
    } else {
      const mpism::Status st = p.probe(kAnySource, 3);
      p.recv(st.source, st.tag);
    }
  });
  ASSERT_TRUE(result.report.ok());
  EXPECT_EQ(result.trace.wildcard_probe_epochs, 1u);
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->is_probe);
  EXPECT_EQ(epoch->matched_src_world, 0);
}

// Loop abstraction (§III-B1): epochs inside a Pcontrol region keep their
// match but record no alternatives.
TEST(DampiLayer, PcontrolRegionSuppressesAlternatives) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 0;
    if (p.rank() == 1) {
      p.barrier();
      p.pcontrol(1, "loop");
      p.recv(kAnySource, t);
      p.pcontrol(0, "loop");
      p.recv(kAnySource, t);  // outside the region: alternatives allowed
    } else {
      p.send(1, t, pack<int>(p.rank()));
      p.barrier();
    }
  });
  ASSERT_TRUE(result.report.ok());
  const auto* inside = find_epoch(result.trace, 1, 0);
  const auto* outside = find_epoch(result.trace, 1, 1);
  ASSERT_NE(inside, nullptr);
  ASSERT_NE(outside, nullptr);
  EXPECT_TRUE(inside->in_ignored_region);
  EXPECT_TRUE(inside->alternatives.empty());
  EXPECT_FALSE(outside->in_ignored_region);
}

TEST(DampiLayer, LoopAbstractionCanBeDisabled) {
  ExplorerOptions options = explorer_options(3);
  options.loop_abstraction = false;
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    if (p.rank() == 1) {
      p.barrier();
      p.pcontrol(1, "loop");
      p.recv(kAnySource, 0);
      p.recv(kAnySource, 0);
      p.pcontrol(0, "loop");
    } else {
      p.send(1, 0, pack<int>(p.rank()));
      p.barrier();
    }
  });
  ASSERT_TRUE(result.report.ok());
  const auto* first = find_epoch(result.trace, 1, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->in_ignored_region);
  EXPECT_EQ(first->alternatives.size(), 1u);
}

// §V monitor: fig10 raises an alert; compliant programs stay silent.
TEST(DampiLayer, UnsafeMonitorFlagsFig10) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, workloads::fig10_unsafe_pattern);
  ASSERT_TRUE(result.report.ok());
  ASSERT_FALSE(result.trace.alerts.empty());
  EXPECT_EQ(result.trace.alerts[0].rank, 1);
  EXPECT_NE(result.trace.alerts[0].detail.find("collective"),
            std::string::npos);
}

TEST(DampiLayer, UnsafeMonitorSilentOnCompliantProgram) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, workloads::fig3_benign);
  ASSERT_TRUE(result.report.ok());
  EXPECT_TRUE(result.trace.alerts.empty());
}

// Fig. 4 (§II-F): Lamport clocks miss the cross-coupled alternatives;
// vector clocks find them. Forced schedule pins the canonical matching
// (P0->P1, P3->P2) so the assertion is deterministic.
TEST(DampiLayer, Fig4LamportMissesCrossAlternatives) {
  ExplorerOptions options = explorer_options(4);
  options.clock_mode = ClockMode::kLamport;
  Schedule canonical;
  canonical.forced[EpochKey{1, 0}] = 0;
  canonical.forced[EpochKey{2, 0}] = 3;
  auto result =
      run_dampi_once(options, canonical, workloads::fig4_cross_coupled);
  ASSERT_TRUE(result.report.ok());
  const auto* e1 = find_epoch(result.trace, 1, 0);
  const auto* e2 = find_epoch(result.trace, 2, 0);
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  // The cross-coupled sends carry Lamport clocks equal to the epochs'
  // clocks, so neither is classified late: the documented imprecision.
  EXPECT_TRUE(e1->alternatives.empty());
  EXPECT_TRUE(e2->alternatives.empty());
}

TEST(DampiLayer, Fig4VectorClocksFindCrossAlternatives) {
  ExplorerOptions options = explorer_options(4);
  options.clock_mode = ClockMode::kVector;
  Schedule canonical;
  canonical.forced[EpochKey{1, 0}] = 0;
  canonical.forced[EpochKey{2, 0}] = 3;
  auto result =
      run_dampi_once(options, canonical, workloads::fig4_cross_coupled);
  ASSERT_TRUE(result.report.ok());
  const auto* e1 = find_epoch(result.trace, 1, 0);
  const auto* e2 = find_epoch(result.trace, 2, 0);
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  // Vector clocks see the cross sends as concurrent with the epochs.
  EXPECT_EQ(e1->alternatives.count(2), 1u);
  EXPECT_EQ(e2->alternatives.count(1), 1u);
}

// Collective clock semantics: after an allreduce every rank's clock
// dominates every pre-collective send, so later sends are never "late"
// for pre-collective epochs of other ranks... but a receiver's *own*
// pre-barrier epoch still sees pre-barrier sends as late.
TEST(DampiLayer, BarrierPropagatesClocksAcrossRanks) {
  ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 6;
    if (p.rank() == 1) {
      p.recv(kAnySource, t);  // epoch, matches rank 0
      p.barrier();
      p.recv(2, t);  // rank 2 sent after the barrier: not late
    } else if (p.rank() == 0) {
      p.send(1, t, pack<int>(1));
      p.barrier();
    } else {
      p.barrier();
      p.send(1, t, pack<int>(2));  // post-barrier: causally after epoch
    }
  });
  ASSERT_TRUE(result.report.ok());
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->alternatives.empty());
}

// The packed transport must leave user payloads byte-identical.
TEST(DampiLayer, PackedTransportPreservesPayloads) {
  ExplorerOptions options = explorer_options(2);
  options.transport = TransportKind::kPackedPayload;
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    if (p.rank() == 0) {
      std::vector<double> data = {1.5, -2.25, 1e300, 0.0};
      p.send(1, 1, mpism::pack_vec(data));
    } else {
      Bytes data;
      const mpism::Status st = p.recv(0, 1, &data);
      const auto v = mpism::unpack_vec<double>(data);
      p.require(v.size() == 4 && v[0] == 1.5 && v[1] == -2.25 &&
                    v[2] == 1e300 && v[3] == 0.0,
                "payload corrupted by packed piggyback");
      p.require(st.bytes == 4 * sizeof(double), "status bytes wrong");
    }
  });
  EXPECT_TRUE(result.report.ok());
}

// Wildcard receives on a split communicator: alternatives respect the
// communicator boundary.
TEST(DampiLayer, AlternativesScopedToCommunicator) {
  ExplorerOptions options = explorer_options(4);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 2;
    const mpism::CommId sub = p.comm_split(p.rank() % 2, p.rank());
    // Odd group: ranks 1 and 3 (sub ranks 0 and 1).
    if (p.rank() == 1) {
      p.recv(kAnySource, t, nullptr, sub);  // epoch on sub
    } else if (p.rank() == 3) {
      p.send(0, t, pack<int>(1), sub);
    } else if (p.rank() == 0) {
      p.send(1, t, pack<int>(2));  // world message, same tag
    }
    if (p.rank() == 1) p.recv(0, t);
    p.comm_free(sub);
  });
  ASSERT_TRUE(result.report.ok()) << result.report.deadlock_detail;
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->matched_src_world, 3);
  // Rank 0's world-comm send, though late, is not an alternative.
  EXPECT_TRUE(epoch->alternatives.empty());
}

}  // namespace
}  // namespace dampi::test
