// Runtime: executes an MPI-like program over N simulated ranks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "mpism/cancel.hpp"
#include "mpism/cost_model.hpp"
#include "mpism/engine_lock.hpp"
#include "mpism/match_index.hpp"
#include "mpism/policy.hpp"
#include "mpism/proc.hpp"
#include "mpism/report.hpp"
#include "mpism/scheduler.hpp"
#include "mpism/tool.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

/// The program under test: executed once on every rank, in its own
/// thread. Programs must be deterministic functions of their rank and of
/// message-match outcomes — the precondition every dynamic verifier
/// (ISP, DAMPI) places on replay.
using ProgramFn = std::function<void(Proc&)>;

struct RunOptions {
  int nprocs = 2;
  CostModel cost;
  /// How the runtime resolves wildcard matches when several sources are
  /// eligible (SELF_RUN behaviour).
  PolicyKind policy = PolicyKind::kLowestSource;
  std::uint64_t policy_seed = 1;
  /// How ranks execute and who advances next (thread-per-rank, or
  /// deterministic run-to-block fibers). Defaults honor DAMPI_SCHED.
  SchedOptions sched = default_sched_options();
  /// Message-matching structure: indexed O(1) lanes (default) or the
  /// linear scan kept as the differential oracle. Honors DAMPI_MATCH.
  MatchKind match = default_match_kind();
  /// Engine concurrency control: per-destination-rank lock shards
  /// (default) or the single global mutex kept as the differential
  /// baseline. Honors DAMPI_ENGINE_LOCK. Verdicts and RunReport
  /// fingerprints are identical across modes.
  EngineLockKind engine_lock = default_engine_lock_kind();
  /// Interposition stack; empty means a native (uninstrumented) run.
  ToolSetup tools;
  /// Per-run budgets, all 0 = unlimited. A run that exceeds any of them
  /// ends with RunReport::timed_out (watchdog verdict) instead of
  /// hanging: wall-clock deadline (enforced at scheduler block/yield
  /// points and at every MPI-call entry), virtual-time ceiling, and
  /// MPI-op-count ceiling.
  double max_run_wall_seconds = 0.0;
  double max_run_vtime_us = 0.0;
  std::uint64_t max_ops = 0;
  /// External cancellation: when set, firing the source ends the run
  /// with RunReport::cancelled (neither a verdict nor a bug). One
  /// source may span many concurrent runs.
  std::shared_ptr<CancelSource> cancel;
};

/// One Runtime executes one run. Construct fresh per run (replays build a
/// new Runtime so no state bleeds between interleavings).
class Runtime {
 public:
  explicit Runtime(RunOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Blocks until every rank finishes, a deadlock is detected, or the
  /// program under test fails.
  RunReport run(const ProgramFn& program);

 private:
  std::unique_ptr<Engine> engine_;
};

}  // namespace dampi::mpism
