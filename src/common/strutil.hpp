// printf-style string formatting (GCC 12 lacks <format>).
#pragma once

#include <string>

namespace dampi {

/// snprintf into a std::string. Format string must be a literal under
/// -Wformat; arguments follow printf conventions.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-decimal double rendering, e.g. fmt_fixed(1.1834, 2) -> "1.18".
std::string fmt_fixed(double value, int decimals);

/// One-line-safe encoding for free-form text embedded in line-oriented
/// file and wire formats (checkpoint journals, the dist protocol):
/// backslash-escapes newlines and carriage returns.
std::string escape_line(const std::string& text);
std::string unescape_line(const std::string& text);

}  // namespace dampi
