// Internal invariant checking.
//
// DAMPI_CHECK is active in all build types: the verifier's own invariants
// guard the soundness of verification results, so compiling them out in
// release builds would be self-defeating. Violations throw InternalError,
// which the runtime surfaces as a tool failure (distinct from an error
// found in the program under test).
#pragma once

#include <stdexcept>
#include <string>

namespace dampi {

/// Raised when an internal invariant of the verifier or runtime is violated.
/// Never used to report errors in the program under verification.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InternalError(std::string("DAMPI_CHECK failed: ") + expr + " at " +
                      file + ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace dampi

#define DAMPI_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::dampi::detail::check_failed(#expr, __FILE__, __LINE__, {});       \
    }                                                                     \
  } while (false)

#define DAMPI_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::dampi::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)
