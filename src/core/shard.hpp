// Frontier sharding and campaign-level result merging — the core half
// of the distributed explorer (src/dist/ holds the process plumbing).
//
// A *shard* is an ordinary resume checkpoint whose prefix frames are
// flagged escape_alts: the worker that resumes it explores exactly the
// untried alternatives the shard carries (plus everything below them),
// and *escapes* any newly revealed alternative of a prefix frame back
// to the coordinator instead of exploring it. The coordinator dedups
// escapes against a per-site global seen set and spawns new shards for
// the genuinely new ones. Together these give the exactly-once shard
// accounting invariant (DESIGN.md §4.12): the union of interleavings
// explored across all shards equals the single-process walk's set,
// each explored exactly once, modulo order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/explorer.hpp"

namespace dampi::core {

/// Split a frontier (the frame stack a discovery_only explore exported,
/// packaged as a Checkpoint) into independently explorable shards, one
/// unit of work per untried alternative. With `max_shards` > 0 the
/// alternatives are grouped round-robin into at most that many shards
/// (each still a valid DFS stack — untried lists at several positions
/// are consumed deepest-first). Counters are zeroed: a shard's result
/// accounts only the runs the shard itself performed. Returns an empty
/// vector when the frontier has no untried alternatives.
///
/// Under --por sleep every shard's skeleton spans the FULL frontier, not
/// just its deepest assigned frame: the suffix frames carry no untried
/// work (their alternatives belong to other shards) but their seen sets
/// travel with the shard, so the worker's harvest-at-truncation can put
/// sibling-covered sources to sleep exactly as the single-process walk
/// would. Replayed schedules are unchanged — schedule_for() only forces
/// decisions above the flip, and the suffix is truncated (harvested) at
/// the first flip before any run.
std::vector<Checkpoint> split_frontier(const Checkpoint& root,
                                       std::size_t max_shards = 0,
                                       PorMode por = PorMode::kOff);

/// Identity of a decision site: the forced decisions of frames
/// 0..pos-1 plus frame pos's epoch key. Two shards that carry the same
/// prefix denote the same site, whichever worker runs them.
std::string site_id(const std::vector<DfsFrame>& frames, std::size_t pos);

/// Site identity modulo commuting prefix decisions. Under --por sleep a
/// worker can reveal an alternative for a prefix site while a commuting
/// decision above it sits flipped; the raw site_id then differs from the
/// id the site was registered under and the coordinator would resurrect
/// a schedule the sequential sleep walk prunes. Canonicalization drops
/// every prefix decision the independence relation proves commutes with
/// the site's own decision (por.hpp; conservative fallbacks keep the
/// decision in the id, which at worst costs an extra shard, never
/// coverage). With por == kOff this is exactly site_id().
std::string canonical_site_id(const std::vector<DfsFrame>& frames,
                              std::size_t pos, PorMode por);

/// Shard exploring exactly one escaped alternative: the escape's frame
/// prefix copied (every frame escape_alts, untried cleared) with the
/// escaped source as the deepest frame's only untried alternative.
Checkpoint make_escape_shard(const EscapedAlt& escape,
                             const std::string& fingerprint);

/// Canonical identity of a bug for cross-shard dedup: the kind plus the
/// reproducer schedule (which pins the whole run, so equal keys mean
/// the same interleaving failed the same way).
std::string bug_key(const BugRecord& bug);

/// Accumulates the discovery run plus every shard result into one
/// campaign-level ExploreResult with deduplicated bugs and alerts, and
/// owns the per-site seen sets that make escape processing exactly-once.
class CampaignMerge {
 public:
  /// Seeds the accumulator from the discovery (or resume-restore)
  /// result: first-run stats, initial bugs/alerts, journalled counters.
  /// `por` must match the campaign's ExplorerOptions::por — it selects
  /// the site-id canonicalization used by the escape dedup.
  explicit CampaignMerge(ExploreResult discovery,
                         PorMode por = PorMode::kOff);

  /// Register every escape_alts prefix site of a shard about to be
  /// queued (idempotent; unions the frames' seen sets in).
  void register_shard_sites(const Checkpoint& shard);

  /// True — and the site's seen set is extended — iff this escaped
  /// alternative has never been queued, taken, or escaped before.
  bool escape_is_new(const EscapedAlt& escape);

  /// Fold one shard walk's results in (bug/alert dedup, counter sums,
  /// partial-coverage flags OR'd). ExploreResult::escaped is NOT
  /// consumed here — route it through escape_is_new/make_escape_shard.
  void add(const ExploreResult& shard);

  /// Record a shard dropped after repeated worker deaths.
  void quarantine_shard();

  std::uint64_t interleavings() const { return merged_.interleavings; }
  bool found_bug() const { return merged_.found_bug(); }

  /// Final merged result; bugs sorted canonically (by bug_key) so the
  /// campaign report is deterministic regardless of arrival order.
  ExploreResult finish();

 private:
  PorMode por_ = PorMode::kOff;
  ExploreResult merged_;
  std::unordered_set<std::string> bug_keys_;
  std::unordered_set<std::string> alert_keys_;
  std::map<std::string, std::set<mpism::Rank>> site_seen_;
};

}  // namespace dampi::core
