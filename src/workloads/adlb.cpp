#include "workloads/adlb.hpp"

#include <deque>
#include <unordered_map>

#include "common/check.hpp"
#include "mpism/types.hpp"

namespace dampi::workloads::adlb {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::kAnyTag;
using mpism::Proc;
using mpism::Status;

constexpr mpism::Tag kGetTag = 1;
constexpr mpism::Tag kPutTag = 2;
constexpr mpism::Tag kReplyTag = 3;

struct WorkUnit {
  std::uint32_t id = 0;
  std::uint32_t depth = 0;
};

Bytes encode(const WorkUnit& unit) { return mpism::pack(unit); }
WorkUnit decode(const Bytes& bytes) { return mpism::unpack<WorkUnit>(bytes); }

int server_of(int worker, int nprocs, const Config& config) {
  return nprocs - config.num_servers + (worker % config.num_servers);
}

// ---------------------------------------------------------------------------
// Server: the wildcard-receive hot loop.
// ---------------------------------------------------------------------------

class Server {
 public:
  Server(Proc& p, const Config& config) : p_(p), config_(config) {
    const int workers = p.size() - config.num_servers;
    for (int w = 0; w < workers; ++w) {
      if (server_of(w, p.size(), config) == p.rank()) my_workers_.push_back(w);
    }
    for (int r = 0; r < config.roots_per_server; ++r) {
      pending_.push_back(WorkUnit{next_id_++, 0});
    }
  }

  void run() {
    if (config_.abstract_server_loop) p_.pcontrol(1, "adlb-server");
    while (done_workers_ < static_cast<int>(my_workers_.size())) {
      Bytes data;
      const Status st = p_.recv(kAnySource, kAnyTag, &data);
      if (st.tag == kPutTag) {
        pending_.push_back(decode(data));
      } else {
        DAMPI_CHECK(st.tag == kGetTag);
        on_get(st.source);
      }
      // A Put may unblock waiting workers; drained state may terminate
      // the ones still waiting.
      serve_waiting();
      maybe_finish_waiting();
    }
    if (config_.abstract_server_loop) p_.pcontrol(0, "adlb-server");
  }

 private:
  void on_get(int worker) {
    // Non-overtaking guarantees this worker's child Puts (sent before its
    // next Get) were received first, so its previous unit is fully done.
    auto it = has_outstanding_.find(worker);
    if (it != has_outstanding_.end() && it->second) {
      it->second = false;
      --outstanding_;
    }
    if (!pending_.empty()) {
      hand_out(worker);
    } else if (outstanding_ == 0) {
      finish_worker(worker);
    } else {
      waiting_.push_back(worker);  // defer: work may still be spawned
    }
  }

  void hand_out(int worker) {
    const WorkUnit unit = pending_.front();
    pending_.pop_front();
    p_.send(worker, kReplyTag, encode(unit));
    has_outstanding_[worker] = true;
    ++outstanding_;
  }

  void serve_waiting() {
    while (!pending_.empty() && !waiting_.empty()) {
      const int worker = waiting_.front();
      waiting_.pop_front();
      hand_out(worker);
    }
  }

  void maybe_finish_waiting() {
    if (!pending_.empty() || outstanding_ != 0) return;
    while (!waiting_.empty()) {
      finish_worker(waiting_.front());
      waiting_.pop_front();
    }
  }

  void finish_worker(int worker) {
    p_.send(worker, kReplyTag, Bytes{});  // empty = NoMoreWork
    ++done_workers_;
  }

  Proc& p_;
  const Config& config_;
  std::vector<int> my_workers_;
  std::deque<WorkUnit> pending_;
  std::deque<int> waiting_;
  std::unordered_map<int, bool> has_outstanding_;
  int outstanding_ = 0;
  int done_workers_ = 0;
  std::uint32_t next_id_ = 0;
};

// ---------------------------------------------------------------------------
// Worker: Get -> compute -> Put children -> repeat.
// ---------------------------------------------------------------------------

void worker_loop(Proc& p, const Config& config) {
  const int server = server_of(p.rank(), p.size(), config);
  std::uint32_t child_id = 0x10000u * static_cast<std::uint32_t>(p.rank());
  while (true) {
    p.send(server, kGetTag, Bytes{});
    Bytes reply;
    p.recv(server, kReplyTag, &reply);
    if (reply.empty()) break;  // NoMoreWork
    const WorkUnit unit = decode(reply);
    p.compute(config.compute_us_per_unit);
    if (static_cast<int>(unit.depth) < config.spawn_depth) {
      for (int c = 0; c < config.children_per_unit; ++c) {
        p.send(server, kPutTag,
               encode(WorkUnit{++child_id, unit.depth + 1}));
      }
    }
  }
}

}  // namespace

std::uint64_t total_units(const Config& config) {
  std::uint64_t per_root = 0;
  std::uint64_t level = 1;
  for (int d = 0; d <= config.spawn_depth; ++d) {
    per_root += level;
    level *= static_cast<std::uint64_t>(config.children_per_unit);
  }
  return static_cast<std::uint64_t>(config.num_servers) *
         static_cast<std::uint64_t>(config.roots_per_server) * per_root;
}

void run(Proc& p, const Config& config) {
  DAMPI_CHECK(config.num_servers >= 1);
  DAMPI_CHECK_MSG(p.size() > config.num_servers,
                  "ADLB needs at least one worker rank");
  if (p.rank() >= p.size() - config.num_servers) {
    Server(p, config).run();
  } else {
    worker_loop(p, config);
  }
}

}  // namespace dampi::workloads::adlb
