# Empty dependencies file for bench_ablation_clocks.
# This may be replaced when dependencies are built.
