# Empty dependencies file for test_mpism_deadlock.
# This may be replaced when dependencies are built.
