// Pluggable rank scheduling for the mpism engine.
//
// The engine executes one program instance per rank; how those instances
// share the host is a policy question this interface isolates:
//
//  - ThreadScheduler: one OS thread per rank (the original engine
//    behaviour). Preemption points are wherever the OS puts them, so
//    wildcard match order on a native run depends on host scheduling.
//  - CoopScheduler: every rank is a ucontext fiber on the *calling*
//    thread. A rank runs until it blocks in an MPI operation, then
//    yields to the scheduler, which deterministically picks the next
//    runnable rank (round-robin, seeded-random, or seeded-priority).
//    Native runs become bit-reproducible by construction, and rank
//    counts in the hundreds cost fibers instead of OS threads — the
//    run-to-block discipline of centralized-scheduler verifiers (ISP,
//    MPI-SV) applied to the paper's eager-matching simulator.
//
// Contract: the engine's state is guarded by an EngineLock (one global
// mutex, or per-rank shards — see engine_lock.hpp). `block`/`yield` are
// called by a rank holding an EngineGuard over its state and return with
// the same guard held once `wake_ready(rank)` or `stop()` is true; the
// scheduler releases and reacquires the guard around the actual park.
// `wake`/`wake_all` may be called from any thread, with or without
// shards held (they only touch scheduler-internal leaf state), and are
// hints — a scheduler may wake spuriously but must never lose a wakeup.
// `wake_ready(r)` is only ever evaluated by rank r itself under its own
// guard (ThreadScheduler) or by the single dispatch thread
// (CoopScheduler), so the predicate reads rank-r state race-free. Under
// the coop scheduler a stall (no runnable rank, not all finished) is
// reported through `on_stall`, which must acquire whatever engine locks
// it needs itself; with eager matching this is an exact deadlock
// criterion, replacing the engine's own count-based check (see
// Engine::maybe_declare_deadlock).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mpism/engine_lock.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

enum class SchedulerKind { kThread, kCoop };

/// How the coop scheduler picks among runnable ranks. All three are
/// deterministic functions of (seed, pick history), so a given
/// (policy, seed) pair replays the same interleaving every time.
enum class SchedPolicy { kRoundRobin, kRandomSeeded, kPriority };

struct SchedOptions {
  SchedulerKind kind = SchedulerKind::kThread;
  SchedPolicy pick = SchedPolicy::kRoundRobin;
  std::uint64_t seed = 1;
  /// Per-fiber stack size (coop only); allocated lazily on first
  /// dispatch, so unstarted ranks cost nothing.
  std::size_t stack_bytes = 256 * 1024;
};

class RankScheduler {
 public:
  /// Engine-provided hooks. See the locking contract in the header
  /// comment: wake_ready(r) is evaluated only by rank r (under its
  /// guard) or by the coop dispatch thread; stop() reads only atomics;
  /// on_stall/on_deadline acquire their own engine locks.
  struct Callbacks {
    /// Runs one rank's program instance to completion; must not throw
    /// (the engine catches everything inside).
    std::function<void(Rank)> body;
    /// True when the blocked rank's wake predicate holds.
    std::function<bool(Rank)> wake_ready;
    /// True once the run is aborting or deadlocked: every parked rank
    /// must be released so it can unwind. Reads only atomics — callable
    /// from any thread without locks.
    std::function<bool()> stop;
    /// No rank is runnable and not all have finished (coop only).
    /// Called lock-free; acquires what it needs and must make stop()
    /// true.
    std::function<void()> on_stall;
    /// Wall-clock deadline for the whole run; the epoch time_point (the
    /// default) means unarmed. CoopScheduler checks it in its dispatch
    /// loop (amortized over 64 dispatches) — that is what catches a
    /// yield-looping spinner, whose yields never pass through the
    /// engine's blocking paths. ThreadScheduler ignores it: a parked
    /// rank is released by stop() when a peer's per-op budget charge or
    /// the stall detector declares the verdict, so its waits stay
    /// untimed and off the message critical path.
    std::chrono::steady_clock::time_point deadline{};
    /// Invoked lock-free when `deadline` has passed and the run has not
    /// stopped. Must be idempotent and must make stop() true.
    std::function<void()> on_deadline;
  };

  virtual ~RankScheduler() = default;

  /// Executes `body` for ranks 0..nprocs-1; returns when all finished.
  virtual void run(const Callbacks& cb) = 0;
  /// Parks the calling rank until wake_ready(r) or stop(). `g` holds
  /// the rank's engine guard on entry and on return; the scheduler
  /// releases it while parked.
  virtual void block(EngineGuard& g, Rank r) = 0;
  /// Cedes the processor without blocking: the rank stays runnable and
  /// will be rescheduled per policy. Called when a non-blocking poll
  /// (test*/iprobe) observes "not ready" — under run-to-block execution
  /// a busy-poll loop would otherwise starve every other rank forever.
  /// No-op for preemptive schedulers.
  virtual void yield(EngineGuard& g, Rank r) {
    (void)g;
    (void)r;
  }
  /// Hints that r's wake predicate may have flipped. Callable from any
  /// thread; takes only scheduler-leaf locks, so it is safe (and usual)
  /// to call while holding engine shards.
  virtual void wake(Rank r) = 0;
  virtual void wake_all() = 0;
  /// True when this scheduler performs its own stall (deadlock)
  /// detection via on_stall, making the engine's count-based check both
  /// redundant and wrong (a runnable-but-unscheduled rank is neither
  /// blocked nor finished yet must not trip "everyone is stuck").
  virtual bool detects_stall() const = 0;
  virtual const char* name() const = 0;
};

/// False when fibers cannot work in this build (thread/address sanitizer
/// instrumentation does not track ucontext stack switches); callers fall
/// back to ThreadScheduler.
bool coop_supported();

std::unique_ptr<RankScheduler> make_scheduler(const SchedOptions& options,
                                              int nprocs);

/// Parse a CLI/env scheduler spec: "thread", "coop" (round-robin),
/// "coop-rr", "coop-random", "coop-priority". Returns false (leaving
/// `out` untouched) on anything else.
bool parse_sched_spec(const std::string& spec, SchedOptions* out);

/// Canonical spec string for the given options (inverse of parse).
std::string sched_spec(const SchedOptions& options);

/// Process-wide default: SchedOptions{} unless the DAMPI_SCHED
/// environment variable holds a valid spec (read once, cached). Lets
/// tier-1 re-run the full test suite under the coop scheduler without
/// touching every call site.
const SchedOptions& default_sched_options();

}  // namespace dampi::mpism
