#include "piggyback/packed_payload.hpp"

#include <cstring>

#include "common/check.hpp"

namespace dampi::piggyback {
namespace {

// Wire prefix: u32 clock length, then the clock bytes, then the payload.
constexpr std::size_t kLenBytes = 4;
// Sender-side virtual cost of re-copying a payload byte while packing.
constexpr double kCopyUsPerByte = 0.002;

}  // namespace

void PackedPayloadTransport::on_pre_send(mpism::ToolCtx& ctx,
                                         mpism::SendCall& call,
                                         const mpism::Bytes& clock) {
  // Packing re-copies the entire user payload — the mechanism's real
  // cost, paid per byte at the sender (the receiver strips in place).
  ctx.add_cost(kCopyUsPerByte *
               static_cast<double>(call.payload->size() + clock.size()));
  mpism::Bytes packed;
  packed.reserve(kLenBytes + clock.size() + call.payload->size());
  const std::uint32_t len = static_cast<std::uint32_t>(clock.size());
  packed.resize(kLenBytes);
  std::memcpy(packed.data(), &len, kLenBytes);
  packed.insert(packed.end(), clock.begin(), clock.end());
  packed.insert(packed.end(), call.payload->begin(), call.payload->end());
  *call.payload = std::move(packed);
}

mpism::Bytes PackedPayloadTransport::on_recv_complete(mpism::ToolCtx&,
                                                      mpism::ReqCompletion& c) {
  mpism::Bytes& payload = *c.payload;
  DAMPI_CHECK_MSG(payload.size() >= kLenBytes,
                  "packed piggyback prefix missing");
  std::uint32_t len = 0;
  std::memcpy(&len, payload.data(), kLenBytes);
  DAMPI_CHECK_MSG(payload.size() >= kLenBytes + len,
                  "packed piggyback prefix truncated");
  mpism::Bytes clock(payload.begin() + kLenBytes,
                     payload.begin() + static_cast<std::ptrdiff_t>(
                                           kLenBytes + len));
  payload.erase(payload.begin(),
                payload.begin() + static_cast<std::ptrdiff_t>(kLenBytes + len));
  c.status.bytes = payload.size();
  return clock;
}

}  // namespace dampi::piggyback
