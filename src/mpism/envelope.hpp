// Message envelope: what travels from a sender to a receiver's queues.
#pragma once

#include <cstdint>

#include "mpism/types.hpp"

namespace dampi::mpism {

/// One in-flight (or delivered-but-unmatched) message. Ranks are *world*
/// ranks; user-facing APIs translate to communicator-relative ranks at the
/// boundary.
struct Envelope {
  Rank src_world = -1;
  Rank dst_world = -1;
  Tag tag = 0;
  CommId comm = kCommWorld;
  /// Send order within (src_world, dst_world, comm): the engine enforces
  /// MPI's non-overtaking rule using this.
  std::uint64_t seq = 0;
  /// Globally unique id across the run.
  std::uint64_t msg_id = 0;
  /// Virtual time at which the message becomes visible at the destination
  /// (sender's clock at injection + latency + bandwidth term).
  double arrival_vtime = 0.0;
  Bytes payload;
  /// True for messages issued by tool layers (piggyback traffic); excluded
  /// from user-visible op statistics and leak accounting.
  bool tool_internal = false;
  /// Non-null for synchronous sends: the sender's request, which only
  /// completes when this envelope is matched by a receive (rendezvous
  /// semantics — the MPI_Ssend mode eager buffering hides).
  RequestId sender_req = kNullRequest;
  Rank sender_world = -1;
};

}  // namespace dampi::mpism
