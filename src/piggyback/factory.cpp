#include "common/check.hpp"
#include "piggyback/packed_payload.hpp"
#include "piggyback/separate_message.hpp"
#include "piggyback/telepathic.hpp"
#include "piggyback/transport.hpp"

namespace dampi::piggyback {

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const TransportFactoryState& state) {
  switch (kind) {
    case TransportKind::kSeparateMessage:
      return std::make_unique<SeparateMessageTransport>();
    case TransportKind::kPackedPayload:
      return std::make_unique<PackedPayloadTransport>();
    case TransportKind::kTelepathic:
      DAMPI_CHECK_MSG(state.board != nullptr,
                      "telepathic transport needs a shared board");
      return std::make_unique<TelepathicTransport>(state.board);
  }
  DAMPI_CHECK_MSG(false, "unknown transport kind");
  return nullptr;
}

}  // namespace dampi::piggyback
