// Deadlock detection: under eager sends, "every live rank is blocked" is
// an exact criterion — these tests pin both directions (real deadlocks
// are detected; progressing programs never trigger it).
#include <gtest/gtest.h>

#include "support/run_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::pack;
using mpism::unpack;

TEST(Deadlock, MutualRecvDeadlocks) {
  auto report = run_program(2, [](Proc& p) {
    // Both wait for a message that is never sent.
    p.recv(1 - p.rank(), 1);
  });
  EXPECT_TRUE(report.deadlocked);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.deadlock_detail.find("rank 0"), std::string::npos);
  EXPECT_NE(report.deadlock_detail.find("rank 1"), std::string::npos);
}

TEST(Deadlock, RecvFromFinishedRankDeadlocks) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) p.recv(1, 1);
    // rank 1 exits immediately; rank 0 can never be satisfied
  });
  EXPECT_TRUE(report.deadlocked);
}

TEST(Deadlock, WrongTagDeadlocks) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(1));
      p.recv(1, 2);
    } else {
      p.recv(0, 3);  // tag mismatch: never matches
    }
  });
  EXPECT_TRUE(report.deadlocked);
}

TEST(Deadlock, PartialBarrierDeadlocks) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() != 2) p.barrier();
    // rank 2 skips the barrier and exits
  });
  EXPECT_TRUE(report.deadlocked);
  EXPECT_NE(report.deadlock_detail.find("barrier"), std::string::npos);
}

TEST(Deadlock, BlockingProbeWithNoSenderDeadlocks) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) p.probe(1, 5);
  });
  EXPECT_TRUE(report.deadlocked);
  EXPECT_NE(report.deadlock_detail.find("probe"), std::string::npos);
}

// Classic head-to-head blocking sends do NOT deadlock under eager sends
// (both buffered) — this models the common MPI eager-protocol reality and
// matches ISP/DAMPI's buffering assumption.
TEST(Deadlock, HeadToHeadEagerSendsComplete) {
  auto report = run_program(2, [](Proc& p) {
    const int other = 1 - p.rank();
    p.send(other, 1, pack<int>(p.rank()));
    Bytes data;
    p.recv(other, 1, &data);
    EXPECT_EQ(unpack<int>(data), other);
  });
  EXPECT_TRUE(report.ok());
}

// A ring of dependent receives that IS satisfiable must not be flagged.
TEST(Deadlock, DependencyChainCompletes) {
  auto report = run_program(4, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(0));
      p.recv(3, 1);
    } else {
      p.recv(p.rank() - 1, 1);
      p.send((p.rank() + 1) % 4, 1, pack<int>(p.rank()));
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

// Wildcard receive that has at least one matching sender completes even
// when other ranks are blocked.
TEST(Deadlock, WildcardWithOneSenderCompletes) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 0) {
      p.recv(kAnySource, 1);
      p.send(2, 2, pack<int>(1));
    } else if (p.rank() == 1) {
      p.send(0, 1, pack<int>(1));
    } else {
      p.recv(0, 2);
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

TEST(Deadlock, LastRankFinishingTriggersDetection) {
  // Rank 1 blocks first; rank 0 computes, then exits without sending.
  // Detection must fire when the last runner *finishes*, not blocks.
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 1) {
      p.recv(0, 1);
    } else {
      p.compute(10.0);
    }
  });
  EXPECT_TRUE(report.deadlocked);
}

TEST(Deadlock, WaitanyWithUnsatisfiableRequestsDeadlocks) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 0) {
      std::vector<mpism::RequestId> reqs = {p.irecv(1, 1), p.irecv(2, 1)};
      p.waitany(reqs);
    }
  });
  EXPECT_TRUE(report.deadlocked);
}

// Scale sweep: deadlock detection stays exact with many ranks blocked in
// mixed states (collective + receive).
class DeadlockScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockScaleTest, MixedBlockedStatesDetected) {
  const int n = GetParam();
  auto report = run_program(n, [n](Proc& p) {
    if (p.rank() == n - 1) {
      p.recv(0, 99);  // never sent
    } else {
      p.barrier();  // rank n-1 never joins
    }
  });
  EXPECT_TRUE(report.deadlocked);
}

INSTANTIATE_TEST_SUITE_P(Scales, DeadlockScaleTest,
                         ::testing::Values(2, 4, 16, 64));

}  // namespace
}  // namespace dampi::test
