// Distributed campaign scaling: verify_cli --workers {1,2,4,8} on the
// dist-fanout fixture, reporting wall time, interleaving counts, and
// speedup vs 1 worker, plus the host core count — on a 1-core box the
// honest curve is flat and the JSON records why.
//
// Unlike the in-process benches this one shells out to verify_cli (the
// campaign IS a process tree; there is nothing meaningful to measure
// in-process). The binary is located relative to argv[0]
// (../examples/verify_cli) or via DAMPI_VERIFY_CLI.
//
// Emits BENCH_distributed.json (override with DAMPI_BENCH_OUT) for
// scripts/bench_compare.py --distributed, which asserts the campaign
// result is invariant across worker counts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

std::string verify_cli_path(const char* argv0) {
  if (const char* v = std::getenv("DAMPI_VERIFY_CLI")) return v;
  std::string self(argv0);
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../examples/verify_cli";
}

struct Row {
  int workers = 0;
  double wall_s = 0.0;
  long long interleavings = -1;
  int exit_code = -1;
  std::string verdict;
};

Row run_campaign(const std::string& cli, int workers, int procs) {
  Row row;
  row.workers = workers;
  // coop sched: deterministic, so every worker count must agree exactly.
  std::string cmd = cli + " --program dist-fanout --sched coop --procs " +
                    std::to_string(procs) + " --max-interleavings 1000000";
  if (workers > 0) cmd += " --workers " + std::to_string(workers);
  cmd += " 2>&1";

  dampi::bench::WallTimer timer;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "bench_distributed: cannot run %s\n", cmd.c_str());
    std::exit(2);
  }
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = ::pclose(pipe);
  row.wall_s = timer.seconds();
  row.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;

  std::size_t pos = out.find("interleavings explored :");
  if (pos != std::string::npos) {
    row.interleavings = std::atoll(out.c_str() + pos + std::strlen("interleavings explored :"));
  }
  pos = out.find("verdict                :");
  if (pos != std::string::npos) {
    const std::size_t start = pos + std::strlen("verdict                : ");
    const std::size_t eol = out.find('\n', start);
    row.verdict = out.substr(start, eol - start);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  dampi::bench::banner(
      "Distributed sharded exploration: scaling vs worker count",
      "sharded campaigns reach the same verdict as one process; wall time "
      "scales with workers when cores are available");

  const std::string cli = verify_cli_path(argv[0]);
  const unsigned nproc = std::thread::hardware_concurrency();
  std::printf("verify_cli: %s\nhost cores: %u\n\n", cli.c_str(), nproc);

  // 6 ranks = 14400 interleavings (~1s of campaign), enough for shard
  // queue + steals to matter; quick mode keeps the 36-run smoke.
  const int procs = dampi::bench::env_procs(6, 4);
  std::vector<int> widths = {1, 2, 4, 8};
  if (dampi::bench::quick_mode()) widths = {1, 2};
  if (argc > 1) {
    widths.clear();
    for (int i = 1; i < argc; ++i) widths.push_back(std::atoi(argv[i]));
  }

  std::vector<Row> rows;
  std::printf("%8s %10s %15s %8s  %s\n", "workers", "wall_s", "interleavings",
              "speedup", "verdict");
  for (const int w : widths) {
    Row row = run_campaign(cli, w, procs);
    const double speedup =
        rows.empty() || row.wall_s <= 0.0 ? 1.0 : rows.front().wall_s / row.wall_s;
    std::printf("%8d %10.3f %15lld %7.2fx  %s\n", row.workers, row.wall_s,
                row.interleavings, speedup, row.verdict.c_str());
    rows.push_back(row);
  }

  const char* out_path = std::getenv("DAMPI_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_distributed.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_distributed: cannot write %s\n", out_path);
    return 2;
  }
  std::fprintf(f, "{\n  \"program\": \"dist-fanout\",\n  \"procs\": %d,\n"
               "  \"nproc\": %u,\n  \"rows\": [\n", procs, nproc);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup =
        r.wall_s <= 0.0 ? 0.0 : rows.front().wall_s / r.wall_s;
    std::fprintf(f,
                 "    {\"workers\": %d, \"wall_s\": %.6f, "
                 "\"interleavings\": %lld, \"exit\": %d, "
                 "\"speedup\": %.4f, \"verdict\": \"%s\"}%s\n",
                 r.workers, r.wall_s, r.interleavings, r.exit_code, speedup,
                 r.verdict.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  // The scaling claim is conditional on cores; the equivalence claim is
  // not — fail loudly here too, not only in bench_compare.
  for (const Row& r : rows) {
    if (r.interleavings != rows.front().interleavings ||
        r.exit_code != rows.front().exit_code) {
      std::fprintf(stderr,
                   "bench_distributed: DIVERGENCE at %d workers "
                   "(interleavings %lld vs %lld, exit %d vs %d)\n",
                   r.workers, r.interleavings, rows.front().interleavings,
                   r.exit_code, rows.front().exit_code);
      return 1;
    }
  }
  return 0;
}
