# Empty compiler generated dependencies file for deadlock_and_leaks.
# This may be replaced when dependencies are built.
