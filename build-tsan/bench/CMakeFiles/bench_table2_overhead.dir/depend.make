# Empty dependencies file for bench_table2_overhead.
# This may be replaced when dependencies are built.
