file(REMOVE_RECURSE
  "libdampi_workloads.a"
)
