#include "core/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_set>

#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "core/dampi_layer.hpp"
#include "core/por.hpp"
#include "core/replay_pool.hpp"
#include "mpism/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "piggyback/telepathic.hpp"

namespace dampi::core {
namespace {

/// Dedup alerts through a keyed set instead of a linear scan (the vector
/// in ExploreResult keeps first-seen order for reporting). Called only on
/// the exploring thread — outcome merging is single-threaded by design,
/// which is what keeps parallel exploration deterministic.
void collect_alerts(const RunTrace& trace,
                    std::unordered_set<std::string>& seen,
                    ExploreResult& result) {
  for (const UnsafeAlert& alert : trace.alerts) {
    if (seen.insert(alert.detail).second) {
      result.unsafe_alerts.push_back(alert.detail);
    }
  }
}

/// Reproducer for a failing run: the decisions that were forced plus
/// every match the run actually observed. Replaying this schedule pins
/// the entire matching, so even a bug first seen in a native race (empty
/// forced set) replays deterministically.
Schedule reproducer_schedule(const Schedule& forced, const RunTrace& trace) {
  Schedule out = forced;
  for (const EpochRecord& epoch : trace.epochs) {
    if (epoch.matched_src_world < 0) continue;  // never completed
    out.forced.emplace(epoch.key, epoch.matched_src_world);
  }
  return out;
}

void record_bug_if_any(const mpism::RunReport& report,
                       const Schedule& schedule, const RunTrace& trace,
                       std::uint64_t interleaving, ExploreResult& result) {
  // External cancellation is an interruption of the campaign, not a
  // property of the program: the run is torn down, never judged.
  if (report.cancelled) return;
  if (report.deadlocked) {
    BugRecord bug;
    bug.kind = BugRecord::Kind::kDeadlock;
    bug.interleaving = interleaving;
    bug.deadlock_detail = report.deadlock_detail;
    bug.schedule = reproducer_schedule(schedule, trace);
    result.bugs.push_back(std::move(bug));
  } else if (!report.errors.empty()) {
    BugRecord bug;
    bug.kind = BugRecord::Kind::kError;
    bug.interleaving = interleaving;
    bug.errors = report.errors;
    bug.schedule = reproducer_schedule(schedule, trace);
    result.bugs.push_back(std::move(bug));
  } else if (report.timed_out) {
    // Watchdog expiry: the interleaving wedged (livelock, unbounded
    // spin, pathological slowness) instead of deadlocking. The partial
    // trace still pins every match the run made before it was killed,
    // so the schedule reproduces the hang deterministically.
    BugRecord bug;
    bug.kind = BugRecord::Kind::kHang;
    bug.interleaving = interleaving;
    bug.deadlock_detail = report.stop_reason;
    bug.schedule = reproducer_schedule(schedule, trace);
    result.bugs.push_back(std::move(bug));
  }
}

/// A run whose failure may be transient (injected fault, watchdog expiry
/// under load, program error): worth re-executing. Deadlocks are
/// verdicts — deterministic by construction — and cancellation means the
/// campaign itself is being torn down.
bool failed_retryably(const mpism::RunReport& report) {
  return !report.deadlocked && !report.cancelled &&
         (report.timed_out || !report.errors.empty());
}

/// Steal granularity floor: a frontier list must hold at least this many
/// alternatives before a thief may carve it. Carving a 1-element list
/// moves the victim's entire remaining work — on small frontiers the
/// shard then ping-pongs between workers, each steal paying a full
/// checkpoint round trip to transfer one replay. Declining (kNoSteal)
/// lets the victim just finish instead.
constexpr std::size_t kMinStealFrontier = 2;

/// Work-stealing carve: remove half of the shallowest stealable untried
/// list (shallowest = largest subtrees, the classic steal heuristic) and
/// package it as a resumable shard checkpoint. Ownership of every prefix
/// site — victim frames 0..pos — transfers to the coordinator: both the
/// victim and the thief now *escape* newly revealed alternatives there,
/// so the coordinator's per-site dedup keeps shard accounting
/// exactly-once. Returns nullptr when no list reaches kMinStealFrontier:
/// the carve never empties a list, and never fires at all when the
/// victim's frontier is too small to be worth splitting.
std::shared_ptr<Checkpoint> carve_steal(std::vector<DfsFrame>& stack,
                                        const std::string& fingerprint) {
  int pos = -1;
  for (int i = 0; i < static_cast<int>(stack.size()); ++i) {
    if (stack[static_cast<std::size_t>(i)].untried.size() >=
        kMinStealFrontier) {
      pos = i;
      break;
    }
  }
  if (pos < 0) return nullptr;

  DfsFrame& victim = stack[static_cast<std::size_t>(pos)];
  // The victim consumes untried from the back; steal from the front so
  // its imminent work is untouched. Floor division keeps at least one
  // alternative on each side (untried.size() >= kMinStealFrontier).
  const std::size_t take = victim.untried.size() / 2;
  std::vector<mpism::Rank> stolen(victim.untried.begin(),
                                  victim.untried.begin() +
                                      static_cast<std::ptrdiff_t>(take));
  victim.untried.erase(victim.untried.begin(),
                       victim.untried.begin() +
                           static_cast<std::ptrdiff_t>(take));

  auto shard = std::make_shared<Checkpoint>();
  shard->fingerprint = fingerprint;
  shard->frames.assign(stack.begin(),
                       stack.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
  // Prefix frames shallower than pos may hold sub-threshold untried
  // lists the victim keeps; the thief gets only the stolen half.
  for (DfsFrame& frame : shard->frames) {
    frame.untried.clear();
    frame.escape_alts = true;
  }
  shard->frames.back().untried = std::move(stolen);
  // Ownership transfer on the victim side too: every prefix site is now
  // shared with the thief, so newly revealed alternatives there must go
  // through the coordinator's dedup.
  for (int j = 0; j <= pos; ++j) {
    stack[static_cast<std::size_t>(j)].escape_alts = true;
  }
  return shard;
}

}  // namespace

DecisionFootprint frame_footprint(const DfsFrame& frame) {
  DecisionFootprint fp;
  fp.rank = frame.key.rank;
  fp.comm = frame.comm;
  fp.tag = frame.tag;
  fp.candidates.assign(frame.seen.begin(), frame.seen.end());  // sorted
  fp.vc = frame.vc;
  return fp;
}

Explorer::Explorer(ExplorerOptions options) : options_(std::move(options)) {}

SingleRun run_guided_once(const ExplorerOptions& options,
                          const Schedule& schedule,
                          const mpism::ProgramFn& program) {
  auto sink = std::make_shared<TraceSink>();
  auto shared = std::make_shared<DampiShared>(options, schedule, sink);
  std::shared_ptr<piggyback::TelepathicBoard> board;
  if (options.transport == piggyback::TransportKind::kTelepathic) {
    board = std::make_shared<piggyback::TelepathicBoard>();
  }

  mpism::RunOptions run_options;
  run_options.nprocs = options.nprocs;
  run_options.cost = options.cost;
  run_options.policy = options.policy;
  run_options.policy_seed = options.policy_seed;
  run_options.sched = options.sched;
  run_options.match = options.match;
  run_options.engine_lock = options.engine_lock;
  run_options.max_run_wall_seconds = options.run_deadline_seconds;
  run_options.max_run_vtime_us = options.max_run_vtime_us;
  run_options.max_ops = options.max_run_ops;
  run_options.cancel = options.cancel;
  run_options.tools = make_dampi_setup(shared, board);
  if (options.fault) {
    // Fault layers sit at the very top of each rank's stack so an
    // injected abort/error/delay hits before DAMPI's bookkeeping, the
    // same place a PnMPI fault tool would wrap the application.
    auto base = run_options.tools.make_stack;
    auto plan = options.fault;
    run_options.tools.make_stack = [base, plan](int rank, int nprocs) {
      auto stack = base(rank, nprocs);
      stack.insert(stack.begin(), std::make_unique<mpism::FaultLayer>(
                                      plan, static_cast<mpism::Rank>(rank)));
      return stack;
    };
  }

  SingleRun outcome;
  {
    // Scope the Runtime so every DampiLayer flushes (even on abort)
    // before the sink is drained.
    mpism::Runtime runtime(std::move(run_options));
    outcome.report = runtime.run(program);
  }
  outcome.trace = sink->take();
  outcome.divergences = shared->divergences.load(std::memory_order_relaxed);
  return outcome;
}

void Explorer::extend_stack(const RunTrace& trace, int flip_pos,
                            ExploreResult& result) {
  const auto sorted = trace.sorted();
  std::map<EpochKey, const EpochRecord*> by_key;
  for (const EpochRecord* e : sorted) by_key[e->key] = e;

  // Sleep-set pruning (--por sleep, DESIGN.md §4.14): the frames
  // truncated when this flip was chosen were fully explored subtrees.
  // A decision site reappearing below the new sibling whose decision
  // provably commutes with the flip need not re-enumerate the sources
  // that subtree already covered — re-ordering commuting decisions only
  // permutes equivalent interleavings. Those sources go to sleep (and
  // into `seen`, which also keeps prefix merging and distributed
  // per-site dedup from waking them).
  std::map<EpochKey, const DfsFrame*> harvested;
  DecisionFootprint flip_fp;
  const bool pruning = options_.por == PorMode::kSleep && flip_pos >= 0 &&
                       !pending_sleep_.empty();
  if (pruning) {
    for (const DfsFrame& h : pending_sleep_) harvested[h.key] = &h;
    flip_fp = frame_footprint(stack_[static_cast<std::size_t>(flip_pos)]);
  }

  // Prefix frames: verify the guided replay reproduced each decision
  // (replay-determinism soundness check) and — in unbounded mode only —
  // merge in any alternatives this run revealed that the creating run
  // could not see (e.g. a send that was causally ordered in the old
  // outcome but concurrent in the new one). Full coverage is only
  // promised without a mixing bound; with one, accumulating prefix
  // alternatives would defeat the window and re-explode the search.
  const bool merge_prefix_alts = !options_.mixing_bound.has_value();
  std::set<EpochKey> prefix_keys;
  for (int j = 0; j <= flip_pos; ++j) {
    DfsFrame& frame = stack_[static_cast<std::size_t>(j)];
    prefix_keys.insert(frame.key);
    auto it = by_key.find(frame.key);
    if (it == by_key.end() ||
        it->second->matched_src_world != frame.taken_src) {
      ++result.prefix_mismatches;
      DAMPI_LOG(kWarn) << "replay prefix mismatch at epoch (rank "
                       << frame.key.rank << ", nd " << frame.key.nd_index
                       << ")";
      continue;
    }
    if (merge_prefix_alts && frame.record_alts) {
      for (const auto& [src, match] : it->second->alternatives) {
        if (frame.seen.count(src) != 0) {
          if (frame.sleep.count(src) != 0) ++result.por_sleep_hits;
          continue;
        }
        if (frame.seen.insert(src).second) {
          if (frame.escape_alts) {
            // Coordinator-owned site: report instead of exploring, so a
            // sharded campaign explores the alternative exactly once no
            // matter how many workers' runs reveal it.
            EscapedAlt escape{
                {stack_.begin(),
                 stack_.begin() + static_cast<std::ptrdiff_t>(j) + 1},
                src};
            if (options_.on_escape) {
              options_.on_escape(escape);
            } else {
              result.escaped.push_back(std::move(escape));
            }
          } else {
            frame.untried.push_back(src);
          }
        }
      }
    }
  }

  // Budget for epochs discovered below the flip: unbounded mode has no
  // window; bounded mode inherits the flipped frame's remaining budget
  // (anchored windows). Initial-trace epochs always record alternatives
  // and each carries a fresh window of k.
  constexpr int kNoLimit = 1 << 28;
  const int k = options_.mixing_bound.value_or(kNoLimit);
  const int window_budget =
      flip_pos < 0 ? kNoLimit
                   : stack_[static_cast<std::size_t>(flip_pos)].mix_budget;

  int new_depth = 0;
  for (const EpochRecord* epoch : sorted) {
    if (prefix_keys.count(epoch->key) != 0) continue;
    ++new_depth;
    DfsFrame frame;
    frame.key = epoch->key;
    frame.lc = epoch->lc;
    frame.taken_src = epoch->matched_src_world;
    frame.comm = epoch->comm;
    frame.tag = epoch->tag;
    frame.vc = epoch->vc;
    frame.seen.insert(frame.taken_src);
    if (pruning) {
      // Same decision site, fully explored in the commuting sibling
      // subtree: inherit its covered sources as the sleep set. The
      // harvested seen set already folds in anything *it* inherited, so
      // pruning chains across successive siblings.
      auto hit = harvested.find(frame.key);
      if (hit != harvested.end()) {
        if (independent(flip_fp, frame_footprint(*hit->second))) {
          for (const mpism::Rank src : hit->second->seen) {
            if (src == frame.taken_src) continue;
            if (frame.seen.insert(src).second) {
              frame.sleep.insert(src);
              ++result.por_pruned;
            }
          }
          if (!frame.sleep.empty()) {
            DAMPI_TEVENT(obs::EventKind::kPorPrune, obs::Phase::kInstant,
                         frame.key.rank,
                         static_cast<std::int32_t>(frame.key.nd_index),
                         static_cast<std::int32_t>(frame.sleep.size()));
          }
        } else {
          ++result.por_dependent_pairs;
        }
      }
    }
    const bool within_window = new_depth <= window_budget;
    frame.mix_budget =
        flip_pos < 0 ? k : std::max(window_budget - new_depth, 0);
    frame.record_alts = within_window && !epoch->in_ignored_region;
    if (frame.record_alts) {
      frame.untried.reserve(epoch->alternatives.size());
      for (const auto& [src, match] : epoch->alternatives) {
        if (frame.seen.insert(src).second) {
          frame.untried.push_back(src);
        } else if (frame.sleep.count(src) != 0) {
          ++result.por_sleep_hits;
        }
      }
    }
    DAMPI_TEVENT(obs::EventKind::kDecisionPush, obs::Phase::kInstant,
                 frame.key.rank,
                 static_cast<std::int32_t>(frame.key.nd_index),
                 static_cast<std::int32_t>(frame.untried.size()));
    stack_.push_back(std::move(frame));
  }

  // The harvest was for this extension only: the next truncation
  // collects the next fully explored subtree.
  if (flip_pos >= 0) pending_sleep_.clear();
}

Schedule Explorer::schedule_for(int frame_pos, mpism::Rank alt) const {
  Schedule schedule;
  for (int j = 0; j < frame_pos; ++j) {
    const DfsFrame& f = stack_[static_cast<std::size_t>(j)];
    schedule.forced[f.key] = f.taken_src;
  }
  schedule.forced[stack_[static_cast<std::size_t>(frame_pos)].key] = alt;
  return schedule;
}

void Explorer::speculate_frontier(ReplayPool& pool,
                                  const ExploreResult& result) {
  // Every untried alternative on the stack is a run the sequential walk
  // is guaranteed to request later with exactly this prefix: taken_src
  // above a frame cannot change before the frame itself is flipped.
  // Speculation is therefore only ever wasted when a budget or
  // stop_on_first_error ends the walk early. Deepest first matches
  // consumption order; untried is consumed back() first.
  std::uint64_t planned =
      result.interleavings + static_cast<std::uint64_t>(pool.outstanding());
  for (int i = static_cast<int>(stack_.size()) - 1; i >= 0; --i) {
    const DfsFrame& frame = stack_[static_cast<std::size_t>(i)];
    for (auto it = frame.untried.rbegin(); it != frame.untried.rend(); ++it) {
      if (planned + 1 >= options_.max_interleavings) return;
      if (!pool.speculate(schedule_for(i, *it))) return;
      ++planned;
    }
  }
}

ExploreResult Explorer::explore(const mpism::ProgramFn& program,
                                const RunObserver& observer) {
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  ExploreResult result;
  stack_.clear();
  pending_sleep_.clear();
  std::unordered_set<std::string> alert_keys;

  // One CancelSource per campaign: external callers (SIGINT bridge,
  // tests) may supply it; the global wall-budget watchdog below fires
  // the same source. Must exist before the pool copies options into its
  // per-run plumbing.
  if (!options_.cancel) {
    options_.cancel = std::make_shared<mpism::CancelSource>();
  }
  const std::shared_ptr<mpism::CancelSource> cancel = options_.cancel;
  const std::string fingerprint = options_fingerprint(options_);

  ReplayPool pool(options_, program);
  DAMPI_TRACE_THREAD_LANE("explore");

  // Global wall budget enforced *inside* runs: a watchdog thread fires
  // the campaign CancelSource at the deadline, so even an in-flight
  // replay unwinds promptly instead of the budget only being noticed
  // between runs.
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_stop = false;
  std::atomic<bool> wall_budget_fired{false};
  std::thread watchdog;
  if (options_.max_wall_seconds < 1e9) {
    const auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(options_.max_wall_seconds));
    watchdog = std::thread([&, deadline] {
      std::unique_lock<std::mutex> lk(wd_mu);
      if (!wd_cv.wait_until(lk, deadline, [&] { return wd_stop; })) {
        wall_budget_fired.store(true, std::memory_order_release);
        lk.unlock();
        cancel->cancel("global wall budget exhausted");
      }
    });
  }
  auto stop_watchdog = [&] {
    if (!watchdog.joinable()) return;
    {
      std::lock_guard<std::mutex> lk(wd_mu);
      wd_stop = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  };

  // Crash-safe frontier journal (no-op without a checkpoint path).
  auto flush_checkpoint = [&] {
    if (options_.checkpoint_path.empty()) return;
    Checkpoint cp;
    cp.fingerprint = fingerprint;
    cp.interleavings = result.interleavings;
    cp.retries = result.retries;
    cp.timeouts = result.timeouts;
    cp.quarantined = result.quarantined;
    cp.divergences = result.divergences;
    cp.prefix_mismatches = result.prefix_mismatches;
    cp.frames = stack_;
    cp.pending_sleep = pending_sleep_;
    cp.bugs = result.bugs;
    cp.unsafe_alerts = result.unsafe_alerts;
    if (options_.fault) cp.fault_fires = options_.fault->fire_counts();
    DAMPI_TEVENT(obs::EventKind::kCheckpoint, obs::Phase::kBegin,
                 static_cast<std::int32_t>(stack_.size()), 0, 0,
                 static_cast<std::int32_t>(result.interleavings));
    const bool ok = save_checkpoint(cp, options_.checkpoint_path);
    DAMPI_TEVENT(obs::EventKind::kCheckpoint, obs::Phase::kEnd,
                 static_cast<std::int32_t>(stack_.size()), 0, 0,
                 static_cast<std::int32_t>(result.interleavings));
    if (ok) {
      ++result.checkpoint_writes;
      static obs::Counter& writes_metric =
          obs::Registry::instance().counter("checkpoint.writes");
      writes_metric.add(1);
    } else {
      DAMPI_LOG(kWarn) << "checkpoint write failed: "
                       << options_.checkpoint_path;
    }
  };

  // Retry wrapper: a retryably-failed run (error or watchdog expiry —
  // possibly transient, e.g. an injected flaky fault) is re-executed up
  // to max_retries times with bounded exponential backoff. The final
  // outcome, whatever it is, is the one judged.
  auto take_with_retry = [&](const Schedule& schedule, std::uint64_t index) {
    SingleRun out = pool.take(schedule, index);
    int attempt = 0;
    while (failed_retryably(out.report) && attempt < options_.max_retries &&
           !cancel->requested()) {
      ++attempt;
      ++result.retries;
      DAMPI_TEVENT(obs::EventKind::kRetry, obs::Phase::kInstant, attempt, 0, 0,
                   static_cast<std::int32_t>(index));
      const double backoff_ms =
          std::min(options_.retry_backoff_ms *
                       static_cast<double>(1ull << std::min(attempt - 1, 10)),
                   1000.0);
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
      out = pool.take(schedule, index);
    }
    return out;
  };

  bool aborted_discovery = false;
  if (options_.resume_from) {
    // Continue a journalled walk: restore the frontier and accumulated
    // verdicts, skip discovery entirely (only the original walk executed
    // the SELF_RUN, so first-run stats stay zero).
    const Checkpoint& cp = *options_.resume_from;
    stack_ = cp.frames;
    pending_sleep_ = cp.pending_sleep;
    result.interleavings = cp.interleavings;
    result.bugs = cp.bugs;
    result.retries = cp.retries;
    result.timeouts = cp.timeouts;
    result.quarantined = cp.quarantined;
    result.divergences = cp.divergences;
    result.prefix_mismatches = cp.prefix_mismatches;
    for (const std::string& alert : cp.unsafe_alerts) {
      if (alert_keys.insert(alert).second) {
        result.unsafe_alerts.push_back(alert);
      }
    }
    // Restore fault-plan fire counters: a flaky cap exhausted before the
    // kill (or during a distributed campaign's discovery) must stay
    // exhausted, or the resumed walk fires faults the uninterrupted walk
    // would not. Monotone, so a worker reusing one plan across shards
    // never loses fires it accumulated itself.
    if (options_.fault && !cp.fault_fires.empty()) {
      options_.fault->seed_fires(cp.fault_fires);
    }
    result.resumed = true;
  } else {
    // Initial discovery execution: SELF_RUN unless the caller pinned the
    // root interleaving through options_.initial_schedule.
    SingleRun first = take_with_retry(options_.initial_schedule, 1);
    result.interleavings = 1;
    result.first_report = first.report;
    result.wildcard_recv_epochs = first.trace.wildcard_recv_epochs;
    result.wildcard_probe_epochs = first.trace.wildcard_probe_epochs;
    result.potential_matches_first_run = first.trace.potential_matches;
    result.first_run_vtime_us = first.report.vtime_us;
    result.total_vtime_us += first.report.vtime_us;
    result.divergences += first.divergences;
    if (first.report.cancelled) {
      aborted_discovery = true;
    } else {
      if (first.report.timed_out) ++result.timeouts;
      collect_alerts(first.trace, alert_keys, result);
      record_bug_if_any(first.report, options_.initial_schedule, first.trace,
                        1, result);
      if (observer) {
        observer(first.trace, first.report, options_.initial_schedule);
      }
      extend_stack(first.trace, /*flip_pos=*/-1, result);
      flush_checkpoint();
    }
  }

  const bool stop_now = aborted_discovery || options_.discovery_only ||
                        (options_.stop_on_first_error && result.found_bug());
  while (!stop_now) {
    if (cancel->requested()) {
      // The cancel landed between runs (or a cancelled run already broke
      // out below); classify it before walking on.
      if (wall_budget_fired.load(std::memory_order_acquire)) {
        result.time_budget_exhausted = true;
      } else {
        result.interrupted = true;
      }
      break;
    }
    if (result.interleavings >= options_.max_interleavings) {
      result.interleaving_budget_exhausted =
          std::any_of(stack_.begin(), stack_.end(),
                      [](const DfsFrame& f) { return !f.untried.empty(); });
      break;
    }
    if (elapsed() > options_.max_wall_seconds) {
      // Backstop for the watchdog (e.g. it lost the race to arm).
      result.time_budget_exhausted = true;
      break;
    }

    // Serve pending work-steal requests before committing to the next
    // flip: each poll consumes one request; the carve mutates the stack
    // on this thread, so the thief and the victim can never race.
    if (options_.steal_poll && options_.on_steal) {
      while (options_.steal_poll()) {
        std::shared_ptr<Checkpoint> stolen = carve_steal(stack_, fingerprint);
        // The thief may run in another process: ship the current flaky
        // accounting with the shard, like every other checkpoint.
        if (stolen && options_.fault) {
          stolen->fault_fires = options_.fault->fire_counts();
        }
        options_.on_steal(std::move(stolen));
      }
    }

    // Deepest frame with an untried alternative.
    int flip = -1;
    for (int i = static_cast<int>(stack_.size()) - 1; i >= 0; --i) {
      if (!stack_[static_cast<std::size_t>(i)].untried.empty()) {
        flip = i;
        break;
      }
    }
    if (flip < 0) break;  // all epoch decisions exhausted

    // Frames deeper than the flip are fully explored (the flip is the
    // deepest frame with untried work). Under --por sleep they are
    // harvested before the truncation discards them: the next
    // extend_stack at this flip inherits their covered sources into the
    // sibling subtree's sleep sets where the decisions commute.
    if (options_.por == PorMode::kSleep) {
      for (std::size_t i = static_cast<std::size_t>(flip) + 1;
           i < stack_.size(); ++i) {
        pending_sleep_.push_back(std::move(stack_[i]));
      }
    }
    stack_.resize(static_cast<std::size_t>(flip) + 1);
    DfsFrame& frame = stack_[static_cast<std::size_t>(flip)];
    frame.taken_src = frame.untried.back();
    frame.untried.pop_back();
    DAMPI_TEVENT(obs::EventKind::kDecisionPop, obs::Phase::kInstant,
                 frame.key.rank,
                 static_cast<std::int32_t>(frame.key.nd_index),
                 frame.taken_src);

    const Schedule schedule = schedule_for(flip, frame.taken_src);
    if (pool.workers() > 0) speculate_frontier(pool, result);

    SingleRun outcome = take_with_retry(schedule, result.interleavings + 1);
    if (outcome.report.cancelled) {
      // The run was torn down, not judged: put the alternative back so a
      // resumed walk re-executes it, and do not count the interleaving —
      // this is what makes kill/resume produce the same run sequence as
      // an uninterrupted walk.
      DfsFrame& f = stack_[static_cast<std::size_t>(flip)];
      f.untried.push_back(f.taken_src);
      if (wall_budget_fired.load(std::memory_order_acquire)) {
        result.time_budget_exhausted = true;
      } else {
        result.interrupted = true;
      }
      break;
    }
    ++result.interleavings;
    result.total_vtime_us += outcome.report.vtime_us;
    result.divergences += outcome.divergences;
    if (outcome.report.timed_out) ++result.timeouts;
    if (!outcome.report.completed && !outcome.report.deadlocked) {
      // Still failing after every retry: the subtree below this root is
      // quarantined — its bug (if any) is recorded, nothing under it is
      // extended, and the walk degrades gracefully instead of aborting.
      ++result.quarantined;
      DAMPI_TEVENT(obs::EventKind::kQuarantine, obs::Phase::kInstant, 0, 0, 0,
                   static_cast<std::int32_t>(result.interleavings));
    }
    collect_alerts(outcome.trace, alert_keys, result);
    record_bug_if_any(outcome.report, schedule, outcome.trace,
                      result.interleavings, result);
    if (observer) observer(outcome.trace, outcome.report, schedule);
    if (options_.stop_on_first_error && result.found_bug()) break;

    // Only completed runs contribute new decision points; a failed replay
    // is reported, not extended.
    if (outcome.report.completed) {
      extend_stack(outcome.trace, flip, result);
    }
    if (options_.checkpoint_interval > 0 &&
        result.interleavings % options_.checkpoint_interval == 0) {
      flush_checkpoint();
    }
  }

  if (aborted_discovery) {
    // Discovery itself was cancelled: report the partial campaign but do
    // not journal it — there is no judged frontier to resume from.
    if (wall_budget_fired.load(std::memory_order_acquire)) {
      result.time_budget_exhausted = true;
    } else {
      result.interrupted = true;
    }
  } else {
    // Final flush at every walk exit (completion, budget, cancellation,
    // first-error stop) so --resume always sees the newest frontier.
    flush_checkpoint();
  }

  if (options_.export_frontier || options_.discovery_only) {
    result.frontier = stack_;
  }
  stop_watchdog();
  pool.shutdown();
  result.pool = pool.stats();
  result.total_wall_seconds = elapsed();
  static obs::Counter& interleavings_metric =
      obs::Registry::instance().counter("explorer.interleavings");
  static obs::Counter& explorations_metric =
      obs::Registry::instance().counter("explorer.explorations");
  static obs::Counter& bugs_metric =
      obs::Registry::instance().counter("explorer.bugs");
  static obs::Counter& divergences_metric =
      obs::Registry::instance().counter("explorer.divergences");
  static obs::Counter& retries_metric =
      obs::Registry::instance().counter("explorer.retries");
  static obs::Counter& timeouts_metric =
      obs::Registry::instance().counter("explorer.timeouts");
  static obs::Counter& quarantined_metric =
      obs::Registry::instance().counter("explorer.quarantined");
  static obs::Counter& por_pruned_metric =
      obs::Registry::instance().counter("explorer.por.pruned");
  static obs::Counter& por_dependent_metric =
      obs::Registry::instance().counter("explorer.por.dependent_pairs");
  static obs::Counter& por_sleep_hits_metric =
      obs::Registry::instance().counter("explorer.por.sleep_hits");
  por_pruned_metric.add(result.por_pruned);
  por_dependent_metric.add(result.por_dependent_pairs);
  por_sleep_hits_metric.add(result.por_sleep_hits);
  interleavings_metric.add(result.interleavings);
  explorations_metric.add(1);
  bugs_metric.add(result.bugs.size());
  divergences_metric.add(result.divergences);
  retries_metric.add(result.retries);
  timeouts_metric.add(result.timeouts);
  quarantined_metric.add(result.quarantined);
  return result;
}

}  // namespace dampi::core
