# Empty dependencies file for test_dampi_layer.
# This may be replaced when dependencies are built.
