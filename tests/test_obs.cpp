// Observability subsystem tests: lock-free tracer lanes (stress,
// wraparound), Chrome trace_event export/validation, and the metrics
// registry. The emit-macro and end-to-end sections compile only when the
// tracer is compiled in (DAMPI_TRACE=ON, the default).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using obs::EventKind;
using obs::Phase;
using obs::Tracer;

/// Enables tracing for one test and restores a clean tracer afterwards.
class TracerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().set_capacity(1u << 14);
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
};

TEST_F(TracerFixture, LaneKeepsEveryEventBelowCapacity) {
  obs::Lane* lane = Tracer::instance().acquire("solo");
  ASSERT_NE(lane, nullptr);
  for (int i = 0; i < 100; ++i) {
    lane->emit(EventKind::kSendMatch, Phase::kInstant, i, 2 * i, 3 * i,
               static_cast<std::uint64_t>(i));
  }
  Tracer::instance().release(lane);

  const auto lanes = Tracer::instance().snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].name, "solo");
  EXPECT_EQ(lanes[0].emitted, 100u);
  ASSERT_EQ(lanes[0].events.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto& e = lanes[0].events[static_cast<std::size_t>(i)];
    EXPECT_EQ(e.a, i);
    EXPECT_EQ(e.b, 2 * i);
    EXPECT_EQ(e.c, 3 * i);
    EXPECT_EQ(e.d, static_cast<std::uint64_t>(i));
    EXPECT_EQ(e.kind, EventKind::kSendMatch);
  }
}

TEST_F(TracerFixture, RingWraparoundKeepsNewestEvents) {
  Tracer::instance().set_capacity(64);
  obs::Lane* lane = Tracer::instance().acquire("wrap");
  ASSERT_NE(lane, nullptr);
  const std::uint64_t total = 1000;
  for (std::uint64_t i = 0; i < total; ++i) {
    lane->emit(EventKind::kRecvMatch, Phase::kInstant, 0, 0, 0, i);
  }
  Tracer::instance().release(lane);

  const auto lanes = Tracer::instance().snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].emitted, total);
  ASSERT_EQ(lanes[0].events.size(), 64u);
  // Oldest-to-newest window ending at the last event emitted.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(lanes[0].events[i].d, total - 64 + i);
  }
}

TEST_F(TracerFixture, ConcurrentLanesLoseNoEventsAndTearNone) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEvents = 20000;
  Tracer::instance().set_capacity(kEvents);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::Lane* lane =
          Tracer::instance().acquire("stress " + std::to_string(t));
      ASSERT_NE(lane, nullptr);
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        // a/b/c/d all derived from (t, i): any torn write shows up as an
        // inconsistent tuple below.
        lane->emit(EventKind::kBlock, Phase::kInstant, t,
                   static_cast<std::int32_t>(i & 0x7fffffff),
                   t ^ static_cast<std::int32_t>(i & 0x7fffffff), i);
      }
      Tracer::instance().release(lane);
    });
  }
  for (auto& t : threads) t.join();

  const auto lanes = Tracer::instance().snapshot();
  ASSERT_EQ(lanes.size(), static_cast<std::size_t>(kThreads));
  for (const auto& lane : lanes) {
    ASSERT_EQ(lane.name.rfind("stress ", 0), 0u);
    const int t = std::stoi(lane.name.substr(7));
    EXPECT_EQ(lane.emitted, kEvents) << lane.name;
    ASSERT_EQ(lane.events.size(), kEvents) << lane.name;
    std::uint64_t prev_ts = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      const auto& e = lane.events[i];
      ASSERT_EQ(e.d, i) << lane.name;  // none lost, in order
      ASSERT_EQ(e.a, t) << lane.name;
      ASSERT_EQ(e.b, static_cast<std::int32_t>(i & 0x7fffffff));
      ASSERT_EQ(e.c, t ^ static_cast<std::int32_t>(i & 0x7fffffff));
      ASSERT_GE(e.ts_ns, prev_ts) << lane.name;  // monotone per lane
      prev_ts = e.ts_ns;
    }
  }
}

TEST_F(TracerFixture, LanesAreRecycledByName) {
  obs::Lane* first = Tracer::instance().acquire("rank 0");
  first->emit(EventKind::kSendMatch, Phase::kInstant, 1, 2, 3, 4);
  Tracer::instance().release(first);
  obs::Lane* second = Tracer::instance().acquire("rank 0");
  EXPECT_EQ(first, second);  // sequential claims share the lane
  obs::Lane* third = Tracer::instance().acquire("rank 0");
  EXPECT_NE(second, third);  // concurrent claims get a fresh one
  Tracer::instance().release(second);
  Tracer::instance().release(third);
  EXPECT_EQ(Tracer::instance().snapshot().size(), 2u);
}

TEST_F(TracerFixture, AcquireWhileDisabledReturnsNoLane) {
  Tracer::instance().set_enabled(false);
  EXPECT_EQ(Tracer::instance().acquire("off"), nullptr);
  Tracer::instance().release(nullptr);  // must be harmless
}

TEST_F(TracerFixture, ChromeExportValidatesWithMonotonicLanes) {
  for (int t = 0; t < 3; ++t) {
    obs::Lane* lane = Tracer::instance().acquire("lane " + std::to_string(t));
    for (int i = 0; i < 50; ++i) {
      lane->emit(EventKind::kCollective, Phase::kBegin, 1, 0, 0, 0);
      lane->emit(EventKind::kCollective, Phase::kEnd, 1, 0, 0, 0);
      lane->emit(EventKind::kDeadlock, Phase::kInstant, 0, 0, 0, 0);
    }
    Tracer::instance().release(lane);
  }
  const std::string json =
      obs::chrome_trace_json(Tracer::instance().snapshot());
  std::string error;
  std::size_t event_lanes = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error, &event_lanes))
      << error;
  EXPECT_EQ(event_lanes, 3u);
}

TEST_F(TracerFixture, ExportReportsDroppedEventsOnWraparound) {
  Tracer::instance().set_capacity(16);
  obs::Lane* lane = Tracer::instance().acquire("droppy");
  for (int i = 0; i < 100; ++i) {
    lane->emit(EventKind::kRecvPost, Phase::kInstant, 0, 0, 0, 0);
  }
  Tracer::instance().release(lane);
  const std::string json =
      obs::chrome_trace_json(Tracer::instance().snapshot());
  EXPECT_NE(json.find("dropped"), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
}

TEST(ChromeTraceValidator, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("not json", &error));
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &error));
  EXPECT_FALSE(obs::validate_chrome_trace("[{\"ph\":\"i\"}]", &error));
  // Non-monotone timestamps within one tid.
  const std::string backwards =
      "[{\"name\":\"a\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":5.0},"
      "{\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":4.0}]";
  EXPECT_FALSE(obs::validate_chrome_trace(backwards, &error));
  EXPECT_NE(error.find("backwards"), std::string::npos);
  // The same timestamps on different tids are fine.
  const std::string two_lanes =
      "[{\"name\":\"a\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":5.0},"
      "{\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":4.0}]";
  std::size_t event_lanes = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(two_lanes, &error, &event_lanes))
      << error;
  EXPECT_EQ(event_lanes, 2u);
}

TEST(Metrics, CountersAccumulateAcrossThreads) {
  obs::Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 100000; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), 800000u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, GaugeTracksLevelAndHighWater) {
  obs::Gauge gauge;
  gauge.set(5);
  gauge.set(12);
  gauge.set(3);
  EXPECT_EQ(gauge.value(), 3);
  EXPECT_EQ(gauge.max(), 12);
}

TEST(Metrics, HistogramQuantilesBoundSamples) {
  obs::FixedHistogram hist(1e-3, 16);
  for (int i = 0; i < 90; ++i) hist.add(1e-3);
  for (int i = 0; i < 10; ++i) hist.add(1.0);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_LE(hist.quantile_bound(0.5), 4e-3);
  EXPECT_GE(hist.quantile_bound(0.99), 1.0);
}

TEST(Metrics, RegistryReturnsStableReferencesAndDumps) {
  auto& registry = obs::Registry::instance();
  obs::Counter& c1 = registry.counter("test_obs.sample_counter");
  obs::Counter& c2 = registry.counter("test_obs.sample_counter");
  EXPECT_EQ(&c1, &c2);
  c1.add(41);
  c2.add(1);
  registry.gauge("test_obs.sample_gauge").set(7);
  registry.histogram("test_obs.sample_hist").add(0.5);
  const std::string dump = registry.dump();
  EXPECT_NE(dump.find("test_obs.sample_counter 42"), std::string::npos);
  EXPECT_NE(dump.find("test_obs.sample_gauge 7"), std::string::npos);
  EXPECT_NE(dump.find("test_obs.sample_hist n=1"), std::string::npos);
  c1.reset();
}

#if DAMPI_TRACE_ENABLED

TEST(TraceMacros, EmitIsDroppedWithoutALane) {
  Tracer::instance().reset();
  Tracer::instance().set_enabled(true);
  // This thread holds no lane: the macro must be a safe no-op.
  DAMPI_TEVENT(EventKind::kDeadlock, Phase::kInstant);
  Tracer::instance().set_enabled(false);
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  Tracer::instance().reset();
}

// End to end: a traced exploration produces one lane per simulated rank
// plus the exploring thread, and the lanes carry the event taxonomy the
// verifier promises (epoch opens/closes on rank lanes, decision events
// on the explore lane), exported as a valid Chrome trace.
TEST(TraceEndToEnd, ExplorerRunProducesRankAndExploreLanes) {
  Tracer::instance().reset();
  Tracer::instance().set_enabled(true);

  core::ExplorerOptions options = explorer_options(3);
  core::Explorer explorer(options);
  const auto result = explorer.explore(workloads::fig3_benign);
  Tracer::instance().set_enabled(false);
  EXPECT_GE(result.interleavings, 2u);

  const auto lanes = Tracer::instance().snapshot();
  std::size_t rank_lanes = 0;
  bool explore_lane_seen = false;
  std::size_t epoch_opens = 0;
  std::size_t decision_pushes = 0;
  for (const auto& lane : lanes) {
    if (lane.name.rfind("rank ", 0) == 0) ++rank_lanes;
    if (lane.name == "explore") explore_lane_seen = true;
    for (const auto& e : lane.events) {
      if (e.kind == EventKind::kEpochOpen) ++epoch_opens;
      if (e.kind == EventKind::kDecisionPush) ++decision_pushes;
      if (e.kind == EventKind::kEpochOpen ||
          e.kind == EventKind::kEpochClose) {
        EXPECT_EQ(lane.name, "rank " + std::to_string(e.a));
      }
    }
  }
  EXPECT_EQ(rank_lanes, 3u);  // sequential replays recycle the rank lanes
  EXPECT_TRUE(explore_lane_seen);
  // fig3-benign records one wildcard epoch per interleaving on rank 0.
  EXPECT_GE(epoch_opens, result.interleavings);
  EXPECT_GE(decision_pushes, 1u);

  std::string error;
  std::size_t event_lanes = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(
      obs::chrome_trace_json(lanes), &error, &event_lanes))
      << error;
  EXPECT_GE(event_lanes, 4u);
  Tracer::instance().reset();
}

#endif  // DAMPI_TRACE_ENABLED

}  // namespace
}  // namespace dampi::test
