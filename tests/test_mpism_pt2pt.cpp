// Point-to-point semantics of the mpism runtime: matching, wildcards,
// non-overtaking, probes, request lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "support/run_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::kAnyTag;
using mpism::pack;
using mpism::PolicyKind;
using mpism::RequestId;
using mpism::Status;
using mpism::unpack;

TEST(Pt2Pt, BlockingSendRecvDeliversPayload) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 7, pack<int>(42));
    } else {
      Bytes data;
      Status st = p.recv(0, 7, &data);
      EXPECT_EQ(unpack<int>(data), 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, sizeof(int));
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

TEST(Pt2Pt, NonblockingRoundTrip) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId s = p.isend(1, 3, pack<double>(2.5));
      RequestId r = p.irecv(1, 4);
      p.wait(s);
      Bytes data;
      p.wait(r, &data);
      EXPECT_DOUBLE_EQ(unpack<double>(data), 2.5 * 2);
    } else {
      Bytes data;
      p.recv(0, 3, &data);
      p.send(0, 4, pack<double>(unpack<double>(data) * 2));
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, RecvBeforeSendBlocksThenCompletes) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 1) {
      Bytes data;
      p.recv(0, 9, &data);  // posted before the send exists
      EXPECT_EQ(unpack<int>(data), 5);
    } else {
      p.compute(100.0);
      p.send(1, 9, pack<int>(5));
    }
  });
  EXPECT_TRUE(report.ok());
}

// MPI non-overtaking: two same-signature messages from one sender must be
// received in send order, whichever order the receives are posted in.
TEST(Pt2Pt, NonOvertakingSameTag) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 5, pack<int>(1));
      p.send(1, 5, pack<int>(2));
    } else {
      Bytes a, b;
      p.recv(0, 5, &a);
      p.recv(0, 5, &b);
      EXPECT_EQ(unpack<int>(a), 1);
      EXPECT_EQ(unpack<int>(b), 2);
    }
  });
  EXPECT_TRUE(report.ok());
}

// Different tags are independent streams: a tag-selective receive may
// bypass an earlier message with another tag.
TEST(Pt2Pt, TagSelectionSkipsEarlierDifferentTag) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(11));
      p.send(1, 2, pack<int>(22));
    } else {
      p.barrier();
      Bytes b2, b1;
      p.recv(0, 2, &b2);
      p.recv(0, 1, &b1);
      EXPECT_EQ(unpack<int>(b2), 22);
      EXPECT_EQ(unpack<int>(b1), 11);
    }
    if (p.rank() == 0) p.barrier();
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, AnyTagReceivesInSendOrder) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(11));
      p.send(1, 2, pack<int>(22));
      p.barrier();
    } else {
      p.barrier();  // both messages are queued now
      Bytes a, b;
      Status st1 = p.recv(0, kAnyTag, &a);
      Status st2 = p.recv(0, kAnyTag, &b);
      EXPECT_EQ(st1.tag, 1);
      EXPECT_EQ(st2.tag, 2);
      EXPECT_EQ(unpack<int>(a), 11);
      EXPECT_EQ(unpack<int>(b), 22);
    }
  });
  EXPECT_TRUE(report.ok());
}

// Wildcard receive with the lowest-source policy deterministically picks
// the smallest sender rank among queued candidates.
TEST(Pt2Pt, WildcardLowestSourcePolicy) {
  RunOptions opts;
  opts.nprocs = 4;
  opts.policy = PolicyKind::kLowestSource;
  auto report = run_program(opts, [](Proc& p) {
    if (p.rank() == 3) {
      p.barrier();  // all senders have sent
      for (int i = 0; i < 3; ++i) {
        Bytes data;
        Status st = p.recv(kAnySource, 5, &data);
        EXPECT_EQ(st.source, i);  // ascending source order
        EXPECT_EQ(unpack<int>(data), i * 10);
      }
    } else {
      p.send(3, 5, pack<int>(p.rank() * 10));
      p.barrier();
    }
  });
  EXPECT_TRUE(report.ok());
}

// Seeded random policy is reproducible: same seed -> same outcome order.
TEST(Pt2Pt, SeededRandomPolicyReproducible) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<int> order;
    RunOptions opts;
    opts.nprocs = 4;
    opts.policy = PolicyKind::kSeededRandom;
    opts.policy_seed = seed;
    auto report = run_program(opts, [&order](Proc& p) {
      if (p.rank() == 3) {
        p.barrier();
        for (int i = 0; i < 3; ++i) {
          Status st = p.recv(kAnySource, 5);
          order.push_back(st.source);
        }
      } else {
        p.send(3, 5, pack<int>(0));
        p.barrier();
      }
    });
    EXPECT_TRUE(report.ok());
    return order;
  };
  const auto a = run_once(11);
  const auto b = run_once(11);
  EXPECT_EQ(a, b);
}

TEST(Pt2Pt, WaitallCompletesEverything) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 0) {
      std::vector<RequestId> reqs;
      for (int i = 1; i < 3; ++i) {
        reqs.push_back(p.isend(i, 1, pack<int>(i)));
        reqs.push_back(p.irecv(i, 2));
      }
      p.waitall(reqs);
      for (RequestId r : reqs) EXPECT_EQ(r, mpism::kNullRequest);
    } else {
      Bytes data;
      p.recv(0, 1, &data);
      p.send(0, 2, pack<int>(unpack<int>(data) * 2));
    }
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.request_leaks, 0u);
}

TEST(Pt2Pt, WaitanyReturnsACompletedRequest) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 0) {
      std::vector<RequestId> reqs;
      reqs.push_back(p.irecv(1, 1));
      reqs.push_back(p.irecv(2, 1));
      Bytes data;
      Status st;
      const std::size_t idx = p.waitany(reqs, &st, &data);
      EXPECT_LT(idx, 2u);
      EXPECT_EQ(reqs[idx], mpism::kNullRequest);
      p.waitall(reqs);  // consume the other one
    } else {
      p.send(0, 1, pack<int>(p.rank()));
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, TestPollsUntilComplete) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId r = p.irecv(1, 1);
      bool done = false;
      int polls = 0;
      Bytes data;
      while (!done) {
        done = p.test(r, nullptr, &data);
        ++polls;
        if (polls > 1000000) break;
      }
      EXPECT_TRUE(done);
      EXPECT_EQ(unpack<int>(data), 77);
    } else {
      p.send(0, 1, pack<int>(77));
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, ProbeReportsWithoutConsuming) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 6, pack<int>(99));
    } else {
      Status st = p.probe(0, 6);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 6);
      // The message is still there.
      Bytes data;
      Status st2 = p.recv(0, 6, &data);
      EXPECT_EQ(st2.msg_id, st.msg_id);
      EXPECT_EQ(unpack<int>(data), 99);
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, IprobeFalseWhenNothingQueued) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 1) {
      Status st;
      // Rank 0 only sends after receiving the go-signal, so nothing can
      // be queued yet.
      EXPECT_FALSE(p.iprobe(0, 6, &st));
      p.send(0, 1, pack<int>(0));  // go
      p.recv(0, 2);                // rank 0 confirms the send happened
      EXPECT_TRUE(p.iprobe(0, 6, &st));
      EXPECT_EQ(st.source, 0);
      p.recv(0, 6);
    } else {
      p.recv(1, 1);
      p.send(1, 6, pack<int>(1));
      p.send(1, 2, pack<int>(0));
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, WildcardProbeSeesAnySender) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 2) {
      Status st = p.probe(kAnySource, kAnyTag);
      EXPECT_TRUE(st.source == 0 || st.source == 1);
      p.recv(st.source, st.tag);
      p.recv(kAnySource, kAnyTag);
    } else {
      p.send(2, p.rank() + 10, pack<int>(p.rank()));
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, SendToSelfWorks) {
  auto report = run_program(1, [](Proc& p) {
    p.send(0, 1, pack<int>(8));
    Bytes data;
    p.recv(0, 1, &data);
    EXPECT_EQ(unpack<int>(data), 8);
  });
  EXPECT_TRUE(report.ok());
}

TEST(Pt2Pt, UnwaitedRequestIsALeak) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.isend(1, 1, pack<int>(1));  // never waited
    } else {
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.request_leaks, 1u);
}

TEST(Pt2Pt, ErrorsSurfaceInReport) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 1) p.fail("intentional failure");
    // rank 0 idles; the abort tears it down if it blocks
    if (p.rank() == 0) p.recv(1, 1);
  });
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].rank, 1);
  EXPECT_NE(report.errors[0].message.find("intentional"), std::string::npos);
}

TEST(Pt2Pt, InvalidDestinationIsAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) p.send(5, 1, pack<int>(1));
  });
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].message.find("invalid rank"), std::string::npos);
}

TEST(Pt2Pt, NegativeTagOnSendIsAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) p.send(1, -3, pack<int>(1));
  });
  EXPECT_FALSE(report.ok());
}

TEST(Pt2Pt, WaitOnConsumedRequestIsAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId s = p.isend(1, 1, pack<int>(1));
      p.wait(s);
      p.wait(s);  // double consume
    } else {
      p.recv(0, 1);
    }
  });
  EXPECT_FALSE(report.ok());
}

// Message volume accounting feeds the Table I harness.
TEST(Pt2Pt, OpStatsCountCategories) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId s = p.isend(1, 1, pack<int>(1));  // 1 send-recv
      p.wait(s);                                  // 1 wait
    } else {
      RequestId r = p.irecv(0, 1);  // 1 send-recv
      p.wait(r);                    // 1 wait
    }
    p.barrier();  // 1 collective each
  });
  EXPECT_TRUE(report.ok());
  using mpism::OpCategory;
  EXPECT_EQ(report.stats.total(OpCategory::kSendRecv), 2u);
  EXPECT_EQ(report.stats.total(OpCategory::kWait), 2u);
  EXPECT_EQ(report.stats.total(OpCategory::kCollective), 2u);
  EXPECT_EQ(report.messages_sent, 1u);
}

// Virtual time: a receiver of a chain of messages accumulates at least
// the sum of latencies; compute() advances time.
TEST(Pt2Pt, VirtualTimeAdvances) {
  RunOptions opts;
  opts.nprocs = 2;
  auto report = run_program(opts, [](Proc& p) {
    if (p.rank() == 0) {
      p.compute(1000.0);
      p.send(1, 1, pack<int>(1));
    } else {
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.ok());
  // Receiver completed after sender's compute + latency.
  EXPECT_GT(report.vtime_us, 1000.0);
}

// Stress: many messages through the same channel preserve FIFO order.
class Pt2PtVolumeTest : public ::testing::TestWithParam<int> {};

TEST_P(Pt2PtVolumeTest, ManyMessagesInOrder) {
  const int count = GetParam();
  auto report = run_program(2, [count](Proc& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < count; ++i) p.send(1, 4, pack<int>(i));
    } else {
      for (int i = 0; i < count; ++i) {
        Bytes data;
        p.recv(kAnySource, 4, &data);
        EXPECT_EQ(unpack<int>(data), i);
      }
    }
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.messages_sent, static_cast<std::uint64_t>(count));
}

INSTANTIATE_TEST_SUITE_P(Volumes, Pt2PtVolumeTest,
                         ::testing::Values(1, 16, 256, 2048));

}  // namespace
}  // namespace dampi::test
