// Crash-safe journal of the explorer's DFS frontier.
//
// A checkpoint is everything a resumed walk needs to continue exactly
// where the original left off: the pending frame stack (keys, taken
// sources, untried alternatives, seen-sets, mixing budgets), the
// interleaving counter, the bugs and alerts already collected, and the
// resilience counters. It deliberately does NOT carry discovery-run
// statistics (R*, potential matches) — those describe the one SELF_RUN
// only the original walk executed.
//
// File format (line-oriented, versioned like decision_io's): the header
// must be the first non-blank line; `options` carries the canonical
// fingerprint of every option that affects search semantics and is
// compared whole on load — a mismatch is a clean refusal, never silent
// corruption. Writes go to `<path>.tmp` then rename(2), so a crash
// mid-write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "core/options.hpp"

namespace dampi::core {

inline constexpr const char* kCheckpointHeader = "# dampi-checkpoint v1";

struct Checkpoint {
  std::string fingerprint;  ///< options_fingerprint() at save time
  std::uint64_t interleavings = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t divergences = 0;
  std::uint64_t prefix_mismatches = 0;
  std::vector<DfsFrame> frames;
  /// Fully explored frames harvested at the walk's last stack
  /// truncation, not yet consumed by an extension (--por sleep). A kill
  /// landing between the truncation and the next extend_stack would
  /// otherwise lose them — and the resumed walk would explore *more*
  /// interleavings than the uninterrupted one, breaking the kill/resume
  /// exactness contract.
  std::vector<DfsFrame> pending_sleep;
  std::vector<BugRecord> bugs;
  std::vector<std::string> unsafe_alerts;
  /// Fault-plan fire counters (FaultPlan::fire_counts, point order) at
  /// save time; empty without a fault plan. A resumed walk seeds its
  /// plan from these so flaky caps exhausted before the kill stay
  /// exhausted — the same mechanism carries discovery-time counters
  /// into distributed shards. Written as an optional `ffires` line, so
  /// pre-existing journals load unchanged.
  std::vector<std::uint64_t> fault_fires;
};

/// Canonical, human-readable fingerprint of the options that determine
/// search semantics (nprocs, clocks, mixing, scheduler/matcher/policy
/// specs + seeds, fault plan, pinned initial schedule, checkpoint_tag).
/// Excludes anything a resume may legitimately change: jobs, budgets,
/// retry limits, checkpoint knobs.
std::string options_fingerprint(const ExplorerOptions& options);

std::string serialize_checkpoint(const Checkpoint& checkpoint);

/// Parses and validates. `expected_fingerprint` empty skips the
/// fingerprint comparison (the file's own is still required and kept).
std::optional<Checkpoint> parse_checkpoint(
    const std::string& text, const std::string& expected_fingerprint,
    std::string* error);

/// Atomic write via `<path>.tmp` + rename. False on I/O failure.
bool save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

std::optional<Checkpoint> load_checkpoint(
    const std::string& path, const std::string& expected_fingerprint,
    std::string* error);

}  // namespace dampi::core
