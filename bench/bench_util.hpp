// Shared helpers for the experiment harnesses (one binary per paper
// table/figure).
//
// Environment knobs:
//   DAMPI_BENCH_QUICK=1   shrink scales so the whole suite runs fast
//   DAMPI_BENCH_PROCS=N   override the large-scale process count
//   DAMPI_BENCH_JOBS=N    top replay-pool width for the jobs-speedup rows
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hpp"
#include "common/strutil.hpp"

namespace dampi::bench {

inline bool quick_mode() {
  const char* v = std::getenv("DAMPI_BENCH_QUICK");
  return v != nullptr && v[0] != '0';
}

inline int env_procs(int full_default, int quick_default) {
  if (const char* v = std::getenv("DAMPI_BENCH_PROCS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return quick_mode() ? quick_default : full_default;
}

/// Widest replay-pool setting the jobs-speedup sections measure (they
/// always also time jobs=1 as the baseline). Results are identical at
/// every width by construction; only the wall clock moves.
inline int env_jobs(int def = 4) {
  if (const char* v = std::getenv("DAMPI_BENCH_JOBS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return def;
}

class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Standard experiment banner: what this binary reproduces and how to
/// read it.
inline void banner(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  if (quick_mode()) std::printf("(DAMPI_BENCH_QUICK=1: reduced scales)\n");
  std::printf("==============================================================\n\n");
}

}  // namespace dampi::bench
