// Vector clocks: the precise (but per-message O(N)) causality tracker.
//
// DAMPI normally runs on Lamport clocks for scalability; vector-clock mode
// exists to (a) quantify what coverage the scalar approximation loses
// (the paper's Fig. 4 "cross-coupled" pattern) and (b) serve as the
// completeness oracle in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dampi::clocks {

/// Outcome of comparing two vector timestamps.
enum class Ordering {
  kEqual,       ///< identical vectors
  kBefore,      ///< lhs happened-before rhs
  kAfter,       ///< rhs happened-before lhs
  kConcurrent,  ///< incomparable — concurrent events
};

/// N-entry vector clock for a fixed-size process group.
class VectorClock {
 public:
  using Value = std::uint64_t;

  VectorClock() = default;
  /// Zero clock for `size` processes, owned by process `owner`.
  VectorClock(int size, int owner);

  int size() const { return static_cast<int>(v_.size()); }
  int owner() const { return owner_; }
  Value component(int i) const { return v_[static_cast<std::size_t>(i)]; }
  Value own() const { return v_[static_cast<std::size_t>(owner_)]; }

  /// Local event at the owning process.
  void tick();

  /// Component-wise max with a remote timestamp (message receipt).
  void merge(const VectorClock& remote);
  void merge(const std::vector<Value>& remote);

  /// Snapshot suitable for piggybacking.
  const std::vector<Value>& components() const { return v_; }

  /// Partial-order comparison of two timestamps (need not share owners).
  static Ordering compare(const VectorClock& a, const VectorClock& b);
  static Ordering compare(const std::vector<Value>& a,
                          const std::vector<Value>& b);

  /// True iff `a` is causally before or concurrent with `b` — the "not
  /// causally after" test DAMPI applies to classify a send as late.
  static bool not_after(const std::vector<Value>& a,
                        const std::vector<Value>& b);

  std::string str() const;

 private:
  std::vector<Value> v_;
  int owner_ = 0;
};

}  // namespace dampi::clocks
