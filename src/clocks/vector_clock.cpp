#include "clocks/vector_clock.hpp"

#include "common/check.hpp"

namespace dampi::clocks {

VectorClock::VectorClock(int size, int owner)
    : v_(static_cast<std::size_t>(size), 0), owner_(owner) {
  DAMPI_CHECK(owner >= 0 && owner < size);
}

void VectorClock::tick() { ++v_[static_cast<std::size_t>(owner_)]; }

void VectorClock::merge(const VectorClock& remote) { merge(remote.v_); }

void VectorClock::merge(const std::vector<Value>& remote) {
  DAMPI_CHECK(remote.size() == v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (remote[i] > v_[i]) v_[i] = remote[i];
  }
}

Ordering VectorClock::compare(const VectorClock& a, const VectorClock& b) {
  return compare(a.v_, b.v_);
}

Ordering VectorClock::compare(const std::vector<Value>& a,
                              const std::vector<Value>& b) {
  DAMPI_CHECK(a.size() == b.size());
  bool a_less = false;
  bool b_less = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) a_less = true;
    if (b[i] < a[i]) b_less = true;
  }
  if (a_less && b_less) return Ordering::kConcurrent;
  if (a_less) return Ordering::kBefore;
  if (b_less) return Ordering::kAfter;
  return Ordering::kEqual;
}

bool VectorClock::not_after(const std::vector<Value>& a,
                            const std::vector<Value>& b) {
  const Ordering o = compare(a, b);
  return o == Ordering::kBefore || o == Ordering::kConcurrent;
}

std::string VectorClock::str() const {
  std::string out = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v_[i]);
  }
  out += "]";
  return out;
}

}  // namespace dampi::clocks
