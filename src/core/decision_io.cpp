#include "core/decision_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strutil.hpp"

namespace dampi::core {

namespace {
constexpr const char* kHeader = "# dampi-epoch-decisions v1";
}

std::string serialize_schedule(const Schedule& schedule) {
  std::string out = kHeader;
  out += '\n';
  for (const auto& [key, src] : schedule.forced) {
    out += strfmt("%d %llu %d\n", key.rank,
                  static_cast<unsigned long long>(key.nd_index), src);
  }
  return out;
}

std::optional<Schedule> parse_schedule(const std::string& text,
                                       std::string* error) {
  auto fail = [error](std::string message) -> std::optional<Schedule> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  Schedule schedule;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim trailing carriage returns / whitespace.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    // The header must be the first non-blank line: decisions (or stray
    // comments) before it mean the file is not a decisions file, and
    // accepting them would silently replay a truncated schedule.
    if (!saw_header) {
      if (line != kHeader) {
        return fail(strfmt(
            "line %d: first non-blank line must be the '%s' header",
            line_no, kHeader));
      }
      saw_header = true;
      continue;
    }
    if (line[0] == '#') continue;
    int rank = -1;
    unsigned long long nd = 0;
    int src = -1;
    if (std::sscanf(line.c_str(), "%d %llu %d", &rank, &nd, &src) != 3) {
      return fail(strfmt("line %d: expected '<rank> <nd> <src>'", line_no));
    }
    if (rank < 0 || src < 0) {
      return fail(strfmt("line %d: negative rank or source", line_no));
    }
    // rank == src is legal: mpism permits self-sends, and a wildcard
    // receive may match one, so reproducer schedules can contain
    // self-matches.
    const EpochKey key{rank, static_cast<std::uint64_t>(nd)};
    if (schedule.forced.count(key) != 0) {
      return fail(strfmt("line %d: duplicate decision for rank %d nd %llu",
                         line_no, rank, nd));
    }
    schedule.forced[key] = src;
  }
  if (!saw_header) {
    return fail("missing '# dampi-epoch-decisions v1' header");
  }
  return schedule;
}

bool save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize_schedule(schedule);
  return static_cast<bool>(out);
}

std::optional<Schedule> load_schedule(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_schedule(buffer.str(), error);
}

}  // namespace dampi::core
