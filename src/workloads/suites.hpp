// Named proxies for the paper's Table II benchmark suite: NAS-PB 3.3 and
// SpecMPI2007, plus the ground truth the paper reports for each (R*,
// slowdown, leaks) so the Table II harness can print paper-vs-measured.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workloads/skeleton.hpp"

namespace dampi::workloads {

struct SuiteEntry {
  SkeletonSpec spec;
  /// What the paper's Table II reports for the original code.
  double paper_slowdown = 1.0;
  std::uint64_t paper_rstar = 0;
  bool paper_comm_leak = false;
  bool paper_request_leak = false;
};

/// The 14 Table II rows below ParMETIS (which has its own proxy module):
/// 104.milc, 107.leslie3d, 113.GemsFDTD, 126.lammps, 130.socorro, 137.lu,
/// then NAS BT CG DT EP FT IS LU MG — in the paper's order.
const std::vector<SuiteEntry>& table2_suite();

/// Lookup by name (e.g. "104.milc", "LU"); nullopt when unknown.
std::optional<SuiteEntry> find_suite_entry(const std::string& name);

}  // namespace dampi::workloads
