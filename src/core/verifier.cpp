#include "core/verifier.hpp"

namespace dampi::core {

VerifyResult Verifier::verify(const mpism::ProgramFn& program,
                              const Explorer::RunObserver& observer) {
  VerifyResult result;

  if (options_.measure_native) {
    mpism::RunOptions native;
    native.nprocs = options_.explorer.nprocs;
    native.cost = options_.explorer.cost;
    native.policy = options_.explorer.policy;
    native.policy_seed = options_.explorer.policy_seed;
    native.sched = options_.explorer.sched;
    native.match = options_.explorer.match;
    native.engine_lock = options_.explorer.engine_lock;
    // Watchdog budgets and external cancellation also guard the native
    // measurement run: a program that livelocks natively must not wedge
    // the verifier before exploration even starts.
    native.max_run_wall_seconds = options_.explorer.run_deadline_seconds;
    native.max_run_vtime_us = options_.explorer.max_run_vtime_us;
    native.max_ops = options_.explorer.max_run_ops;
    native.cancel = options_.explorer.cancel;
    mpism::Runtime runtime(std::move(native));
    const mpism::RunReport report = runtime.run(program);
    result.native_vtime_us = report.vtime_us;
  }

  Explorer explorer(options_.explorer);
  result.exploration = explorer.explore(program, observer);

  result.instrumented_vtime_us = result.exploration.first_run_vtime_us;
  if (result.native_vtime_us > 0.0) {
    result.slowdown = result.instrumented_vtime_us / result.native_vtime_us;
  }
  result.comm_leaks = result.exploration.first_report.comm_leaks;
  result.request_leaks = result.exploration.first_report.request_leaks;
  for (const BugRecord& bug : result.exploration.bugs) {
    if (bug.kind == BugRecord::Kind::kDeadlock) result.deadlock_found = true;
    if (bug.kind == BugRecord::Kind::kError) result.error_found = true;
    if (bug.kind == BugRecord::Kind::kHang) result.hang_found = true;
  }
  return result;
}

}  // namespace dampi::core
