file(REMOVE_RECURSE
  "CMakeFiles/test_clocks.dir/test_clocks.cpp.o"
  "CMakeFiles/test_clocks.dir/test_clocks.cpp.o.d"
  "test_clocks"
  "test_clocks.pdb"
  "test_clocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
