// Figure 6: matrix multiplication — time to explore N interleavings,
// DAMPI vs ISP (N = 250..1000).
//
// Paper: both tools grow linearly in the number of interleavings, but
// ISP's slope is vastly steeper (up to ~6000s at 1000 interleavings vs
// near-flat DAMPI) because each replay pays the full centralized
// per-call synchronization again. Measured quantity: cumulative virtual
// time across all replays, sampled at interleaving checkpoints during a
// single exploration per tool.
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "core/verifier.hpp"
#include "isp/isp_verifier.hpp"
#include "workloads/matmult.hpp"

using namespace dampi;

namespace {

/// Cumulative virtual seconds after each checkpoint interleaving count.
std::map<std::uint64_t, double> explore_checkpoints(
    bool use_isp, int procs, const workloads::MatmultConfig& config,
    const std::vector<std::uint64_t>& checkpoints, double* wall_seconds) {
  std::map<std::uint64_t, double> out;
  std::uint64_t runs = 0;
  double vtime_us = 0;
  auto observer = [&](const core::RunTrace&, const mpism::RunReport& report,
                      const core::Schedule&) {
    ++runs;
    vtime_us += report.vtime_us;
    for (const std::uint64_t c : checkpoints) {
      if (runs == c) out[c] = vtime_us / 1e6;
    }
  };
  const auto program = [config](mpism::Proc& p) {
    workloads::matmult(p, config);
  };
  bench::WallTimer timer;
  if (use_isp) {
    isp::IspOptions options;
    options.explorer.nprocs = procs;
    options.explorer.max_interleavings = checkpoints.back();
    options.measure_native = false;
    isp::IspVerifier verifier(options);
    verifier.verify(program, observer);
  } else {
    core::VerifyOptions options;
    options.explorer.nprocs = procs;
    options.explorer.max_interleavings = checkpoints.back();
    options.measure_native = false;
    core::Verifier verifier(options);
    verifier.verify(program, observer);
  }
  *wall_seconds = timer.seconds();
  // If the space was exhausted early, carry the final value forward.
  for (const std::uint64_t c : checkpoints) {
    if (out.count(c) == 0) out[c] = vtime_us / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 6 — matmult: time to explore interleavings, DAMPI vs ISP",
      "both linear in interleavings; ISP's slope is orders of magnitude "
      "steeper");

  const int procs = bench::quick_mode() ? 4 : 5;
  workloads::MatmultConfig config;
  config.n = 12;
  config.chunk_rows = 1;  // 12 chunks: a deep interleaving space
  const std::vector<std::uint64_t> checkpoints =
      bench::quick_mode() ? std::vector<std::uint64_t>{50, 100}
                          : std::vector<std::uint64_t>{250, 500, 750, 1000};

  double dampi_wall = 0, isp_wall = 0;
  const auto dampi =
      explore_checkpoints(false, procs, config, checkpoints, &dampi_wall);
  const auto ispr =
      explore_checkpoints(true, procs, config, checkpoints, &isp_wall);

  TextTable table;
  table.header({"interleavings", "DAMPI (s)", "ISP (s)", "ISP/DAMPI"});
  for (const std::uint64_t c : checkpoints) {
    table.row({std::to_string(c), fmt_fixed(dampi.at(c), 2),
               fmt_fixed(ispr.at(c), 2),
               fmt_fixed(ispr.at(c) / std::max(dampi.at(c), 1e-9), 1) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: both columns grow ~linearly with the "
              "interleaving count; the ISP/DAMPI ratio stays large and "
              "roughly constant.\n");
  std::printf("(harness wall: DAMPI %.1fs, ISP %.1fs)\n\n", dampi_wall,
              isp_wall);

  // Replay-worker pool: the same DAMPI exploration at increasing pool
  // widths. Results are bit-identical at every width (enforced below);
  // speedup is wall-clock only and needs free cores to show.
  std::printf("Replay-worker pool speedup (same exploration, "
              "DAMPI_BENCH_JOBS to widen):\n");
  const int top_jobs = bench::env_jobs();
  std::vector<int> widths = {1, 2};
  if (top_jobs > 2) widths.push_back(top_jobs);
  TextTable jt;
  jt.header({"jobs", "interleavings", "wall (s)", "speedup"});
  double base_wall = 0;
  std::uint64_t base_count = 0;
  for (const int jobs : widths) {
    core::ExplorerOptions options;
    options.nprocs = procs;
    options.max_interleavings = checkpoints.back();
    options.jobs = jobs;
    core::Explorer explorer(options);
    bench::WallTimer timer;
    const auto result = explorer.explore(
        [config](mpism::Proc& p) { workloads::matmult(p, config); });
    const double wall = timer.seconds();
    if (jobs == 1) {
      base_wall = wall;
      base_count = result.interleavings;
    } else if (result.interleavings != base_count) {
      std::printf("jobs=%d interleaving count diverged (%llu vs %llu)!\n",
                  jobs,
                  static_cast<unsigned long long>(result.interleavings),
                  static_cast<unsigned long long>(base_count));
      return 1;
    }
    jt.row({std::to_string(jobs), std::to_string(result.interleavings),
            fmt_fixed(wall, 2),
            fmt_fixed(base_wall / std::max(wall, 1e-9), 2) + "x"});
  }
  std::printf("%s\n", jt.str().c_str());
  std::printf("Shape check: identical interleaving counts in every row; "
              "on a >=%d-core host the jobs=%d row should run >=1.5x "
              "faster than jobs=1.\n", top_jobs, top_jobs);
  return 0;
}
