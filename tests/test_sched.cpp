// The cooperative run-to-block scheduler (ctest label `sched`):
//
//  - determinism: under --sched=coop the RunReport and the full
//    exploration result are bit-identical across repetitions and across
//    every replay-pool width, with no initial_schedule pinning;
//  - differential: the coop and thread schedulers visit the same
//    *outcome set* on the paper's Fig. 3 / Fig. 4 patterns, both equal
//    to the brute-force reachability oracle;
//  - deadlock: the scheduler's stall scan reports genuine deadlocks and
//    never flags a runnable-but-unscheduled rank at large nprocs;
//  - scale: a 512-rank wavefront verification completes on one host
//    thread (ranks are fibers, not OS threads).
//
// Fingerprints deliberately exclude wall-clock fields (wall_seconds,
// total_wall_seconds) and the replay-pool counters: speculation timing
// is host-dependent by design while everything else must not be.
// Doubles print as %a so "bit-identical" means bit-identical.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "common/strutil.hpp"
#include "core/explorer.hpp"
#include "support/reference_enumerator.hpp"
#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"
#include "workloads/wavefront.hpp"

namespace dampi::test {
namespace {

using dampi::strfmt;
using mpism::Bytes;
using mpism::pack;
using mpism::unpack;

mpism::SchedOptions coop(
    mpism::SchedPolicy pick = mpism::SchedPolicy::kRoundRobin,
    std::uint64_t seed = 1) {
  mpism::SchedOptions sched;
  sched.kind = mpism::SchedulerKind::kCoop;
  sched.pick = pick;
  sched.seed = seed;
  return sched;
}

mpism::SchedOptions thread_sched() {
  mpism::SchedOptions sched;
  sched.kind = mpism::SchedulerKind::kThread;
  return sched;
}

mpism::RunOptions run_options(int nprocs, const mpism::SchedOptions& sched) {
  mpism::RunOptions options;
  options.nprocs = nprocs;
  options.sched = sched;
  return options;
}

/// Every deterministic field of a RunReport, doubles in %a hex form.
/// wall_seconds is the one field that is *supposed* to vary.
std::string fingerprint(const mpism::RunReport& r) {
  std::string s = strfmt(
      "completed=%d deadlocked=%d vtime=%a comm_leaks=%d req_leaks=%llu "
      "msgs=%llu tool_msgs=%llu",
      r.completed ? 1 : 0, r.deadlocked ? 1 : 0, r.vtime_us, r.comm_leaks,
      static_cast<unsigned long long>(r.request_leaks),
      static_cast<unsigned long long>(r.messages_sent),
      static_cast<unsigned long long>(r.stats.tool_messages));
  s += "\ndeadlock_detail=" + r.deadlock_detail;
  for (const auto& e : r.errors) {
    s += strfmt("\nerror rank=%d ", e.rank) + e.message;
  }
  for (std::size_t c = 0; c < mpism::OpStats::kNumCategories; ++c) {
    s += strfmt("\ncat%zu:", c);
    for (const auto v : r.stats.counts[c]) {
      s += strfmt(" %llu", static_cast<unsigned long long>(v));
    }
  }
  return s;
}

std::string fingerprint(const core::Schedule& schedule) {
  std::string s;
  for (const auto& [key, src] : schedule.forced) {
    s += strfmt("(%d,%llu)->%d ", key.rank,
                static_cast<unsigned long long>(key.nd_index), src);
  }
  return s;
}

/// Everything an exploration decides, excluding wall time and pool
/// scheduling counters (both timing-dependent by design).
std::string fingerprint(const core::ExploreResult& r) {
  std::string s = strfmt(
      "interleavings=%llu recv_epochs=%llu probe_epochs=%llu pm=%llu "
      "first_vtime=%a total_vtime=%a div=%llu prefix=%llu budget=%d%d",
      static_cast<unsigned long long>(r.interleavings),
      static_cast<unsigned long long>(r.wildcard_recv_epochs),
      static_cast<unsigned long long>(r.wildcard_probe_epochs),
      static_cast<unsigned long long>(r.potential_matches_first_run),
      r.first_run_vtime_us, r.total_vtime_us,
      static_cast<unsigned long long>(r.divergences),
      static_cast<unsigned long long>(r.prefix_mismatches),
      r.interleaving_budget_exhausted ? 1 : 0,
      r.time_budget_exhausted ? 1 : 0);
  s += "\nfirst: " + fingerprint(r.first_report);
  for (const auto& b : r.bugs) {
    s += strfmt("\nbug kind=%d run=%llu sched=", static_cast<int>(b.kind),
                static_cast<unsigned long long>(b.interleaving));
    s += fingerprint(b.schedule);
    s += " detail=" + b.deadlock_detail;
    for (const auto& e : b.errors) {
      s += strfmt(" [rank=%d %s]", e.rank, e.message.c_str());
    }
  }
  for (const auto& a : r.unsafe_alerts) s += "\nalert: " + a;
  return s;
}

#define SKIP_WITHOUT_COOP()                                              \
  if (!mpism::coop_supported()) {                                        \
    GTEST_SKIP() << "coop fibers unsupported in this build (sanitizer)"; \
  }

TEST(SchedSpec, ParseAndFormatRoundTrip) {
  for (const char* spec :
       {"thread", "coop", "coop-rr", "coop-random", "coop-priority"}) {
    mpism::SchedOptions options;
    ASSERT_TRUE(mpism::parse_sched_spec(spec, &options)) << spec;
    // "coop" is shorthand for round-robin; it formats canonically.
    const std::string canonical =
        std::string(spec) == "coop" ? "coop-rr" : spec;
    EXPECT_EQ(mpism::sched_spec(options), canonical);
    // Round trip: parse(format(x)) == x.
    mpism::SchedOptions reparsed;
    ASSERT_TRUE(mpism::parse_sched_spec(mpism::sched_spec(options), &reparsed));
    EXPECT_EQ(reparsed.kind, options.kind);
    EXPECT_EQ(reparsed.pick, options.pick);
  }
  mpism::SchedOptions untouched;
  untouched.seed = 99;
  EXPECT_FALSE(mpism::parse_sched_spec("fifo", &untouched));
  EXPECT_FALSE(mpism::parse_sched_spec("", &untouched));
  EXPECT_EQ(untouched.seed, 99u);  // failed parse leaves *out alone
}

// Acceptance bar: same seed => bit-identical RunReport, 100/100, with
// no initial_schedule pinning anywhere. The wavefront's wildcard
// receives make this genuinely scheduling-sensitive — under the thread
// scheduler the match order (and hence message/stat details) may vary
// run to run; under coop it must not.
TEST(SchedDeterminism, RunReportBitIdentical100x) {
  SKIP_WITHOUT_COOP();
  const auto program = [](Proc& p) {
    workloads::WavefrontConfig config;
    config.sweeps = 2;
    workloads::wavefront(p, config);
  };
  for (const auto& sched :
       {coop(mpism::SchedPolicy::kRoundRobin),
        coop(mpism::SchedPolicy::kRandomSeeded, 42),
        coop(mpism::SchedPolicy::kPriority, 7)}) {
    std::optional<std::string> first;
    for (int i = 0; i < 100; ++i) {
      const auto report = run_program(run_options(8, sched), program);
      ASSERT_TRUE(report.ok()) << report.deadlock_detail;
      const std::string fp = fingerprint(report);
      if (!first.has_value()) {
        first = fp;
      } else {
        ASSERT_EQ(fp, *first)
            << mpism::sched_spec(sched) << " diverged at repetition " << i;
      }
    }
  }
}

// Different seeds must be *able* to produce different interleavings —
// otherwise the seeded policies are decoration and the explorer's
// diversity claim is hollow. (Round-robin ignores the seed by design.)
// Observed through a wildcard fan-in: whichever sender the seeded pick
// order lets arrive first is the one rank 0's first wildcard matches.
TEST(SchedDeterminism, SeedActuallySteersRandomPolicy) {
  SKIP_WITHOUT_COOP();
  std::set<int> first_sources;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    int first_src = -1;
    const auto report = run_program(
        run_options(8, coop(mpism::SchedPolicy::kRandomSeeded, seed)),
        [&first_src](Proc& p) {
          if (p.rank() == 0) {
            Bytes data;
            p.recv(mpism::kAnySource, 5, &data);
            first_src = unpack<int>(data);
            for (int i = 0; i < p.size() - 2; ++i) {
              p.recv(mpism::kAnySource, 5);
            }
          } else {
            p.send(0, 5, pack<int>(p.rank()));
          }
        });
    ASSERT_TRUE(report.ok());
    // And per seed the pick is stable: a second run must reproduce it.
    int again = -1;
    run_program(run_options(8, coop(mpism::SchedPolicy::kRandomSeeded, seed)),
                [&again](Proc& p) {
                  if (p.rank() == 0) {
                    Bytes data;
                    p.recv(mpism::kAnySource, 5, &data);
                    again = unpack<int>(data);
                    for (int i = 0; i < p.size() - 2; ++i) {
                      p.recv(mpism::kAnySource, 5);
                    }
                  } else {
                    p.send(0, 5, pack<int>(p.rank()));
                  }
                });
    ASSERT_EQ(again, first_src) << "seed " << seed;
    first_sources.insert(first_src);
  }
  EXPECT_GT(first_sources.size(), 1u);
}

// Full exploration (discovery run + DFS + replay pool) is bit-identical
// across repetitions and across every --jobs width under coop, with no
// pinning. 100 repetitions total, split across pool widths.
TEST(SchedDeterminism, ExplorationBitIdenticalAcrossJobs100x) {
  SKIP_WITHOUT_COOP();
  std::optional<std::string> first;
  for (const int jobs : {1, 4}) {
    for (int i = 0; i < 50; ++i) {
      core::ExplorerOptions options = explorer_options(3);
      options.sched = coop();
      options.jobs = jobs;
      core::Explorer explorer(options);
      const auto result = explorer.explore(workloads::fig3_wildcard_bug);
      ASSERT_TRUE(result.found_bug());
      const std::string fp = fingerprint(result);
      if (!first.has_value()) {
        first = fp;
      } else {
        ASSERT_EQ(fp, *first)
            << "jobs=" << jobs << " diverged at repetition " << i;
      }
    }
  }
}

// Differential: coop and thread schedulers drive different native match
// orders but must visit the same outcome *set*, and that set must equal
// the brute-force reachability oracle (which forces every epoch, so it
// is scheduler-independent).
TEST(SchedDifferential, CoopThreadOracleAgreeOnFig3) {
  SKIP_WITHOUT_COOP();
  core::ExplorerOptions options = explorer_options(3);
  const auto reachable =
      ReferenceEnumerator(options, workloads::fig3_benign).enumerate();
  ASSERT_EQ(reachable.size(), 2u);

  core::ExplorerOptions coop_options = options;
  coop_options.sched = coop();
  EXPECT_EQ(explored_outcomes(coop_options, workloads::fig3_benign),
            reachable);

  core::ExplorerOptions thread_options = options;
  thread_options.sched = thread_sched();
  EXPECT_EQ(explored_outcomes(thread_options, workloads::fig3_benign),
            reachable);
}

TEST(SchedDifferential, CoopThreadOracleAgreeOnFig4VectorClocks) {
  SKIP_WITHOUT_COOP();
  core::ExplorerOptions options = explorer_options(4);
  options.clock_mode = core::ClockMode::kVector;
  const auto reachable =
      ReferenceEnumerator(options, workloads::fig4_cross_coupled).enumerate();
  ASSERT_EQ(reachable.size(), 3u);

  core::ExplorerOptions coop_options = options;
  coop_options.sched = coop();
  EXPECT_EQ(explored_outcomes(coop_options, workloads::fig4_cross_coupled),
            reachable);

  core::ExplorerOptions thread_options = options;
  thread_options.sched = thread_sched();
  EXPECT_EQ(explored_outcomes(thread_options, workloads::fig4_cross_coupled),
            reachable);
}

// The initial_schedule pin exists because *thread*-scheduled discovery
// runs race (see Regression.Fig4ExplorationDeterministicFromPinnedRoot).
// Under coop the pin is optional: pinned and unpinned explorations must
// agree on the outcome set, and the pin must still be honored exactly
// when supplied.
TEST(SchedPin, Fig4PinOptionalUnderCoop) {
  SKIP_WITHOUT_COOP();
  core::Schedule canonical_first_run;
  canonical_first_run.forced[core::EpochKey{1, 0}] = 0;
  canonical_first_run.forced[core::EpochKey{2, 0}] = 3;

  core::ExplorerOptions unpinned = explorer_options(4);
  unpinned.clock_mode = core::ClockMode::kVector;
  unpinned.sched = coop();
  std::optional<std::set<OutcomeSignature>> baseline;
  for (int i = 0; i < 10; ++i) {
    const auto outcomes =
        explored_outcomes(unpinned, workloads::fig4_cross_coupled);
    if (!baseline.has_value()) {
      baseline = outcomes;
    } else {
      ASSERT_EQ(outcomes, *baseline) << "unpinned coop run " << i;
    }
  }
  ASSERT_EQ(baseline->size(), 3u);

  core::ExplorerOptions pinned = unpinned;
  pinned.initial_schedule = canonical_first_run;
  EXPECT_EQ(explored_outcomes(pinned, workloads::fig4_cross_coupled),
            *baseline);

  // The pin is honored exactly: the forced decisions appear verbatim in
  // the discovery run's trace.
  const auto single = run_dampi_once(pinned, canonical_first_run,
                                     workloads::fig4_cross_coupled);
  for (const auto& [key, src] : canonical_first_run.forced) {
    const auto* epoch = find_epoch(single.trace, key.rank, key.nd_index);
    ASSERT_NE(epoch, nullptr);
    EXPECT_EQ(epoch->matched_src_world, src);
  }
}

// The deadlock-detector satellite: a runnable-but-unscheduled fiber is
// neither blocked nor finished, so the engine's count-based criterion
// ("blocked + finished == nprocs") would fire falsely the moment the
// running rank blocks while hundreds of peers wait for their first
// dispatch. The scheduler's stall scan must not.
TEST(SchedDeadlock, NoFalseDeadlockAtLargeNprocs) {
  SKIP_WITHOUT_COOP();
  // Root blocks in its first wildcard receive while most of the other
  // 127 ranks have not run at all — the false-positive shape.
  const auto report = run_program(
      run_options(128, coop()),
      [](Proc& p) { workloads::fan_in_rounds(p, 2); });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

TEST(SchedDeadlock, GenuineDeadlocksStillDetected) {
  SKIP_WITHOUT_COOP();
  for (const auto& sched :
       {coop(mpism::SchedPolicy::kRoundRobin),
        coop(mpism::SchedPolicy::kRandomSeeded, 3)}) {
    const auto report =
        run_program(run_options(2, sched), workloads::simple_deadlock);
    EXPECT_TRUE(report.deadlocked) << mpism::sched_spec(sched);
    EXPECT_FALSE(report.deadlock_detail.empty());
    EXPECT_FALSE(report.completed);
  }
  // And through the full verification stack: the wildcard-dependent
  // deadlock is still found by exploration under coop.
  core::ExplorerOptions options = explorer_options(3);
  options.sched = coop();
  core::Explorer explorer(options);
  const auto result = explorer.explore(workloads::wildcard_dependent_deadlock);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.bugs.back().kind, core::BugRecord::Kind::kDeadlock);
}

// Non-blocking polls are yield points: a rank spinning on test() must
// cede the host or the sender it is waiting for never runs. (The
// thread scheduler passes trivially — the OS preempts.)
TEST(SchedYield, TestPollLoopCompletesUnderCoop) {
  SKIP_WITHOUT_COOP();
  const auto report = run_program(run_options(2, coop()), [](Proc& p) {
    if (p.rank() == 0) {
      const auto req = p.irecv(1, 7);
      Bytes data;
      int polls = 0;
      while (!p.test(req, nullptr, &data)) {
        p.require(++polls < 1000000, "poll cap hit: sender starved");
      }
      p.require(unpack<int>(data) == 42, "payload mangled");
      // iprobe misses must yield too (empty queue: nothing sent on tag 9).
      p.require(!p.iprobe(1, 9), "phantom message");
    } else {
      p.compute(50.0);
      p.send(0, 7, pack<int>(42));
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

// Acceptance bar: a 512-rank wavefront completes a verification run
// under --sched=coop. All 512 ranks are fibers on the exploring thread
// (jobs=1), so this exercises single-core scheduling at a rank count a
// thread-per-rank engine would need 512 OS threads for.
TEST(SchedScale, Wavefront512RankVerificationCompletes) {
  SKIP_WITHOUT_COOP();
  core::ExplorerOptions options = explorer_options(512);
  options.sched = coop();
  options.max_interleavings = 2;  // discovery + one guided replay
  core::Explorer explorer(options);
  const auto result = explorer.explore([](Proc& p) {
    workloads::WavefrontConfig config;
    config.sweeps = 1;
    workloads::wavefront(p, config);
  });
  EXPECT_TRUE(result.first_report.completed)
      << result.first_report.deadlock_detail;
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_GE(result.interleavings, 1u);
  EXPECT_GT(result.wildcard_recv_epochs, 0u);
}

}  // namespace
}  // namespace dampi::test
