// Pluggable rank scheduling for the mpism engine.
//
// The engine executes one program instance per rank; how those instances
// share the host is a policy question this interface isolates:
//
//  - ThreadScheduler: one OS thread per rank (the original engine
//    behaviour). Preemption points are wherever the OS puts them, so
//    wildcard match order on a native run depends on host scheduling.
//  - CoopScheduler: every rank is a ucontext fiber on the *calling*
//    thread. A rank runs until it blocks in an MPI operation, then
//    yields to the scheduler, which deterministically picks the next
//    runnable rank (round-robin, seeded-random, or seeded-priority).
//    Native runs become bit-reproducible by construction, and rank
//    counts in the hundreds cost fibers instead of OS threads — the
//    run-to-block discipline of centralized-scheduler verifiers (ISP,
//    MPI-SV) applied to the paper's eager-matching simulator.
//
// Contract: the engine owns one mutex; `block` is called by a rank with
// that mutex held and returns with it held once `wake_ready(rank)` or
// `stop()` is true. `wake`/`wake_all` are called with the mutex held and
// are hints — a scheduler may wake spuriously but must never lose a
// wakeup. Under the coop scheduler a stall (no runnable rank, not all
// finished) is reported through `on_stall` with the mutex held; with
// eager matching this is an exact deadlock criterion, replacing the
// engine's own count-based check (see Engine::maybe_declare_deadlock).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "mpism/types.hpp"

namespace dampi::mpism {

enum class SchedulerKind { kThread, kCoop };

/// How the coop scheduler picks among runnable ranks. All three are
/// deterministic functions of (seed, pick history), so a given
/// (policy, seed) pair replays the same interleaving every time.
enum class SchedPolicy { kRoundRobin, kRandomSeeded, kPriority };

struct SchedOptions {
  SchedulerKind kind = SchedulerKind::kThread;
  SchedPolicy pick = SchedPolicy::kRoundRobin;
  std::uint64_t seed = 1;
  /// Per-fiber stack size (coop only); allocated lazily on first
  /// dispatch, so unstarted ranks cost nothing.
  std::size_t stack_bytes = 256 * 1024;
};

class RankScheduler {
 public:
  /// Engine-provided hooks. All except `body` are invoked with the
  /// engine mutex held.
  struct Callbacks {
    /// Runs one rank's program instance to completion; must not throw
    /// (the engine catches everything inside).
    std::function<void(Rank)> body;
    /// True when the blocked rank's wake predicate holds.
    std::function<bool(Rank)> wake_ready;
    /// True once the run is aborting or deadlocked: every parked rank
    /// must be released so it can unwind.
    std::function<bool()> stop;
    /// No rank is runnable and not all have finished (coop only).
    std::function<void()> on_stall;
    /// Wall-clock deadline for the whole run; the epoch time_point (the
    /// default) means unarmed. CoopScheduler checks it in its dispatch
    /// loop (amortized over 64 dispatches) — that is what catches a
    /// yield-looping spinner, whose yields never pass through the
    /// engine's blocking paths. ThreadScheduler ignores it: a parked
    /// rank is released by stop() when a peer's per-op budget charge or
    /// the stall detector declares the verdict, so its cv waits stay
    /// untimed and off the message critical path.
    std::chrono::steady_clock::time_point deadline{};
    /// Invoked with the engine mutex held when `deadline` has passed
    /// and the run has not stopped. Must be idempotent and must make
    /// stop() true.
    std::function<void()> on_deadline;
  };

  virtual ~RankScheduler() = default;

  /// Executes `body` for ranks 0..nprocs-1; returns when all finished.
  virtual void run(std::mutex& mu, const Callbacks& cb) = 0;
  /// Parks the calling rank until wake_ready(r) or stop(). `lk` holds
  /// the engine mutex on entry and on return.
  virtual void block(std::unique_lock<std::mutex>& lk, Rank r) = 0;
  /// Cedes the processor without blocking: the rank stays runnable and
  /// will be rescheduled per policy. Called when a non-blocking poll
  /// (test*/iprobe) observes "not ready" — under run-to-block execution
  /// a busy-poll loop would otherwise starve every other rank forever.
  /// No-op for preemptive schedulers.
  virtual void yield(std::unique_lock<std::mutex>& lk, Rank r) {
    (void)lk;
    (void)r;
  }
  /// Hints that r's wake predicate may have flipped (engine mutex held).
  virtual void wake(Rank r) = 0;
  virtual void wake_all() = 0;
  /// True when this scheduler performs its own stall (deadlock)
  /// detection via on_stall, making the engine's count-based check both
  /// redundant and wrong (a runnable-but-unscheduled rank is neither
  /// blocked nor finished yet must not trip "everyone is stuck").
  virtual bool detects_stall() const = 0;
  virtual const char* name() const = 0;
};

/// False when fibers cannot work in this build (thread/address sanitizer
/// instrumentation does not track ucontext stack switches); callers fall
/// back to ThreadScheduler.
bool coop_supported();

std::unique_ptr<RankScheduler> make_scheduler(const SchedOptions& options,
                                              int nprocs);

/// Parse a CLI/env scheduler spec: "thread", "coop" (round-robin),
/// "coop-rr", "coop-random", "coop-priority". Returns false (leaving
/// `out` untouched) on anything else.
bool parse_sched_spec(const std::string& spec, SchedOptions* out);

/// Canonical spec string for the given options (inverse of parse).
std::string sched_spec(const SchedOptions& options);

/// Process-wide default: SchedOptions{} unless the DAMPI_SCHED
/// environment variable holds a valid spec (read once, cached). Lets
/// tier-1 re-run the full test suite under the coop scheduler without
/// touching every call site.
const SchedOptions& default_sched_options();

}  // namespace dampi::mpism
