#include "workloads/cg_solver.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "mpism/types.hpp"

namespace dampi::workloads {
namespace {

using mpism::Bytes;
using mpism::pack_vec;
using mpism::Proc;
using mpism::unpack_vec;

constexpr mpism::Tag kHaloUp = 11;    ///< sent to the rank above (rank-1)
constexpr mpism::Tag kHaloDown = 12;  ///< sent to the rank below (rank+1)

/// Block-row partition of the grid's n rows over nprocs ranks.
struct RowRange {
  int begin = 0;
  int end = 0;
  int count() const { return end - begin; }
};

RowRange rows_of(int rank, int nprocs, int n) {
  const int base = n / nprocs;
  const int extra = n % nprocs;
  RowRange range;
  range.begin = rank * base + std::min(rank, extra);
  range.end = range.begin + base + (rank < extra ? 1 : 0);
  return range;
}

/// Local state: vectors are (rows x n), row-major.
class LocalCg {
 public:
  LocalCg(Proc& p, const CgConfig& config)
      : p_(p),
        config_(config),
        n_(config.grid_n),
        range_(rows_of(p.rank(), p.size(), config.grid_n)) {}

  int rows() const { return range_.count(); }
  std::size_t cells() const {
    return static_cast<std::size_t>(rows()) * static_cast<std::size_t>(n_);
  }

  /// Exchange halo rows of `v` with up/down neighbors; returns the two
  /// ghost rows (empty when at the domain boundary).
  void exchange_halo(const std::vector<double>& v, std::vector<double>* up,
                     std::vector<double>* down) {
    up->clear();
    down->clear();
    const bool has_up = p_.rank() > 0;
    const bool has_down = p_.rank() + 1 < p_.size();
    const std::size_t row_bytes = static_cast<std::size_t>(n_);
    // Pair the exchanges with sendrecv so no ordering deadlock can arise.
    if (has_up) {
      Bytes ghost;
      p_.sendrecv(p_.rank() - 1, kHaloUp,
                  pack_vec(std::vector<double>(v.begin(),
                                               v.begin() + static_cast<std::ptrdiff_t>(row_bytes))),
                  p_.rank() - 1, kHaloDown, &ghost);
      *up = unpack_vec<double>(ghost);
    }
    if (has_down) {
      Bytes ghost;
      p_.sendrecv(p_.rank() + 1, kHaloDown,
                  pack_vec(std::vector<double>(v.end() - static_cast<std::ptrdiff_t>(row_bytes),
                                               v.end())),
                  p_.rank() + 1, kHaloUp, &ghost);
      *down = unpack_vec<double>(ghost);
    }
  }

  /// q = A v for the 5-point Laplacian with Dirichlet (zero) boundary.
  std::vector<double> matvec(const std::vector<double>& v) {
    std::vector<double> up, down;
    exchange_halo(v, &up, &down);
    std::vector<double> q(cells(), 0.0);
    for (int i = 0; i < rows(); ++i) {
      for (int j = 0; j < n_; ++j) {
        const auto at = [&](int ii, int jj) -> double {
          if (jj < 0 || jj >= n_) return 0.0;
          if (ii < 0) return up.empty() ? 0.0 : up[static_cast<std::size_t>(jj)];
          if (ii >= rows()) {
            return down.empty() ? 0.0 : down[static_cast<std::size_t>(jj)];
          }
          return v[static_cast<std::size_t>(ii) * n_ + jj];
        };
        q[static_cast<std::size_t>(i) * n_ + j] =
            4.0 * at(i, j) - at(i - 1, j) - at(i + 1, j) - at(i, j - 1) -
            at(i, j + 1);
      }
    }
    p_.compute(config_.flop_cost_us * static_cast<double>(cells()));
    return q;
  }

  double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double local = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
    return p_.allreduce_f64(local, mpism::ReduceOp::kSumF64);
  }

  std::vector<double> rhs() const {
    // Deterministic b from the *global* cell index, identical across
    // process counts.
    std::vector<double> b(cells());
    for (int i = 0; i < rows(); ++i) {
      for (int j = 0; j < n_; ++j) {
        Rng rng(config_.seed +
                static_cast<std::uint64_t>(range_.begin + i) * n_ + j);
        b[static_cast<std::size_t>(i) * n_ + j] = rng.next_double() - 0.5;
      }
    }
    return b;
  }

 private:
  Proc& p_;
  const CgConfig& config_;
  int n_;
  RowRange range_;
};

}  // namespace

void cg_solver(Proc& p, const CgConfig& config) {
  DAMPI_CHECK_MSG(p.size() <= config.grid_n,
                  "cg_solver needs at least one grid row per rank");
  LocalCg cg(p, config);

  const std::vector<double> b = cg.rhs();
  std::vector<double> x(cg.cells(), 0.0);
  std::vector<double> r = b;
  std::vector<double> d = r;
  double rs = cg.dot(r, r);
  const double target = config.tolerance * config.tolerance;

  int iterations = 0;
  for (; iterations < config.max_iterations && rs > target; ++iterations) {
    const std::vector<double> q = cg.matvec(d);
    const double dq = cg.dot(d, q);
    p.require(dq > 0.0, "cg: matrix lost positive definiteness");
    const double alpha = rs / dq;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * d[i];
      r[i] -= alpha * q[i];
    }
    const double rs_new = cg.dot(r, r);
    const double beta = rs_new / rs;
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = r[i] + beta * d[i];
    rs = rs_new;
  }
  p.require(rs <= target,
            strfmt("cg: no convergence after %d iterations (rs=%g)",
                   iterations, rs));

  // Independent end-to-end check: recompute the residual from x.
  const std::vector<double> ax = cg.matvec(x);
  std::vector<double> check(cg.cells());
  for (std::size_t i = 0; i < check.size(); ++i) check[i] = b[i] - ax[i];
  const double residual = std::sqrt(cg.dot(check, check));
  p.require(residual <= 10.0 * config.tolerance,
            strfmt("cg: residual check failed (%g)", residual));
}

}  // namespace dampi::workloads
