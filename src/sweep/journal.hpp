// Crash-safe sweep journal: completed plan records, one per line.
//
// A fault sweep runs hundreds of short campaigns; the journal is what
// makes a kill at any point cheap — `--resume` replays nothing that is
// already recorded. Discipline mirrors core/checkpoint.hpp: versioned
// header first, an `options` line carrying the sweep fingerprint
// (compared whole on load — a mismatch is a clean refusal), one `plan`
// line per COMPLETED campaign (in-flight campaigns are never recorded,
// so kill-at-K resumes to exactly the uninterrupted sweep), and an
// `end` trailer. Every save rewrites the whole file through
// `<path>.tmp` + rename(2), so a crash mid-write leaves the previous
// journal intact.
//
// File format (line-oriented):
//   # dampi-sweep-journal v1
//   options <sweep fingerprint>
//   plan <index> <verdict> <interleavings> <fires> <bugs> <partial> <spec>
//   latent <index> <escaped message>     (optional, follows its plan line)
//   end
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sweep/types.hpp"

namespace dampi::sweep {

inline constexpr const char* kSweepJournalHeader = "# dampi-sweep-journal v1";

struct SweepJournal {
  std::string fingerprint;  ///< sweep_fingerprint() at save time
  std::map<std::uint64_t, PlanRecord> records;  ///< by enumeration index
};

std::string serialize_sweep_journal(const SweepJournal& journal);

/// Parses and validates. `expected_fingerprint` empty skips the
/// fingerprint comparison (the file's own is still required and kept).
std::optional<SweepJournal> parse_sweep_journal(
    const std::string& text, const std::string& expected_fingerprint,
    std::string* error);

/// Atomic write via `<path>.tmp` + rename. False on I/O failure.
bool save_sweep_journal(const SweepJournal& journal, const std::string& path);

std::optional<SweepJournal> load_sweep_journal(
    const std::string& path, const std::string& expected_fingerprint,
    std::string* error);

}  // namespace dampi::sweep
