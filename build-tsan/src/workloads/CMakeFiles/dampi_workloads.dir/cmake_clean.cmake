file(REMOVE_RECURSE
  "CMakeFiles/dampi_workloads.dir/adlb.cpp.o"
  "CMakeFiles/dampi_workloads.dir/adlb.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/cg_solver.cpp.o"
  "CMakeFiles/dampi_workloads.dir/cg_solver.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/matmult.cpp.o"
  "CMakeFiles/dampi_workloads.dir/matmult.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/parmetis_proxy.cpp.o"
  "CMakeFiles/dampi_workloads.dir/parmetis_proxy.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/patterns.cpp.o"
  "CMakeFiles/dampi_workloads.dir/patterns.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/skeleton.cpp.o"
  "CMakeFiles/dampi_workloads.dir/skeleton.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/suites.cpp.o"
  "CMakeFiles/dampi_workloads.dir/suites.cpp.o.d"
  "CMakeFiles/dampi_workloads.dir/wavefront.cpp.o"
  "CMakeFiles/dampi_workloads.dir/wavefront.cpp.o.d"
  "libdampi_workloads.a"
  "libdampi_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dampi_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
