// Matching-structure cost: linear scan vs indexed lanes, swept over
// unexpected-queue depth (16..8192) and wildcard fan-in.
//
// The engine change this measures: find_specific / take / posted-match
// were O(queue length) deque walks; the indexed structure answers them
// from hashed per-source FIFO lanes in O(1) amortized, and wildcard
// candidates come off precomputed lane heads (O(sources), not
// O(queued)). Measured here at the structure level — same MatchIndex
// interface the engine drives, no scheduler noise — as ns/op per
// matcher plus the speedup, then an engine-level run to confirm the
// indexed matcher's match.scan_length histogram collapses to 1.
//
// Output: the table on stdout and BENCH_matching.json
// (machine-readable, referenced by EXPERIMENTS.md).
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mpism/match_index.hpp"
#include "mpism/runtime.hpp"
#include "obs/metrics.hpp"

using namespace dampi;

namespace {

using mpism::Envelope;
using mpism::MatchCandidate;
using mpism::MatchIndex;
using mpism::MatchKind;

Envelope make_env(mpism::Rank src, mpism::Tag tag, std::uint64_t seq,
                  std::uint64_t msg_id) {
  Envelope e;
  e.src_world = src;
  e.dst_world = 0;
  e.tag = tag;
  e.seq = seq;
  e.msg_id = msg_id;
  e.payload = mpism::pack<std::uint64_t>(msg_id);
  return e;
}

/// ns/op of `op`, batched until the sample is long enough to trust.
double measure_ns(const std::function<void()>& op) {
  const double min_seconds = bench::quick_mode() ? 0.005 : 0.02;
  for (int i = 0; i < 100; ++i) op();  // warm caches and lanes
  std::uint64_t iters = 0;
  bench::WallTimer timer;
  do {
    for (int i = 0; i < 200; ++i) op();
    iters += 200;
  } while (timer.seconds() < min_seconds);
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

struct Cell {
  std::string scenario;
  int depth = 0;
  int fanin = 0;
  double linear_ns = 0.0;
  double indexed_ns = 0.0;
  double speedup() const { return linear_ns / indexed_ns; }
};

/// Worst-case specific receive: q messages from other (src, tag) pairs
/// queued ahead of the one the receive names — the linear matcher walks
/// all of them, the indexed one reads a lane head.
double bench_find_specific(MatchKind kind, int depth) {
  auto idx = mpism::make_match_index(kind);
  std::uint64_t id = 1;
  for (int i = 0; i < depth; ++i) {
    idx->push_unexpected(
        make_env(1 + (i % 3), i % 4, static_cast<std::uint64_t>(i), id++));
  }
  idx->push_unexpected(make_env(7, 9, 0, id++));  // the needle, queued last
  return measure_ns([&idx] {
    const Envelope* e = idx->find_specific(7, 9, mpism::kCommWorld);
    if (e == nullptr) std::abort();
  });
}

/// Steady-state churn at depth q: push one message and take it back by
/// id while q older messages sit in the queue (the id-removal path a
/// deep query hands to take()). Also the slab-pool reuse loop.
double bench_churn(MatchKind kind, int depth) {
  auto idx = mpism::make_match_index(kind);
  std::uint64_t id = 1;
  for (int i = 0; i < depth; ++i) {
    idx->push_unexpected(
        make_env(1 + (i % 3), i % 4, static_cast<std::uint64_t>(i), id++));
  }
  std::uint64_t seq = static_cast<std::uint64_t>(depth);
  return measure_ns([&idx, &id, &seq] {
    idx->push_unexpected(make_env(7, 9, seq++, id));
    idx->take(id);
    ++id;
  });
}

/// Wildcard candidate build: fanin sources, depth/fanin messages each,
/// all one tag. Linear rebuilds per-source heads from the whole queue;
/// indexed reads fanin lane heads.
double bench_wildcard(MatchKind kind, int depth, int fanin) {
  auto idx = mpism::make_match_index(kind);
  std::uint64_t id = 1;
  for (int i = 0; i < depth; ++i) {
    idx->push_unexpected(make_env(i % fanin, 7,
                                  static_cast<std::uint64_t>(i / fanin),
                                  id++));
  }
  std::vector<MatchCandidate> buf;
  return measure_ns([&idx, &buf] {
    idx->wildcard_candidates(7, mpism::kCommWorld, &buf);
    if (buf.empty()) std::abort();
  });
}

/// Engine-level confirmation that the indexed matcher never scans: run a
/// deep-queue wildcard workload and read the match.scan_length p99.
/// Bucket semantics: first_limit=2.0 puts every scan-of-1 sample in
/// bucket 0, whose upper bound is 2.0 — so "p99 == 1" reads as
/// quantile_bound(0.99) <= 2.0.
double indexed_scan_p99_bound() {
  obs::Registry::instance().reset();
  mpism::RunOptions options;
  options.nprocs = 4;
  options.match = MatchKind::kIndexed;
  mpism::Runtime runtime(std::move(options));
  const int queued = bench::quick_mode() ? 128 : 1024;
  const auto report = runtime.run([queued](mpism::Proc& p) {
    if (p.rank() == 0) {
      p.barrier();
      for (int i = 0; i < 3 * queued; ++i) p.recv(mpism::kAnySource, 7);
    } else {
      for (int i = 0; i < queued; ++i) p.send(0, 7, mpism::pack<int>(i));
      p.barrier();
    }
  });
  if (!report.ok()) {
    std::printf("UNEXPECTED FAILURE: %s\n", report.deadlock_detail.c_str());
    std::exit(1);
  }
  return obs::Registry::instance()
      .histogram("match.scan_length", 2.0, 24)
      .quantile_bound(0.99);
}

bool write_json(const char* path, const std::vector<Cell>& cells,
                double scan_p99) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"bench\": \"matching\",\n"
               "  \"scan_length_p99_bound_indexed\": %.3f,\n"
               "  \"scan_p99_is_one\": %s,\n  \"cells\": [\n",
               scan_p99, scan_p99 <= 2.0 ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"depth\": %d, \"fanin\": %d, "
                 "\"linear_ns\": %.1f, \"indexed_ns\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 c.scenario.c_str(), c.depth, c.fanin, c.linear_ns,
                 c.indexed_ns, c.speedup(),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  bench::banner(
      "Message matching — linear scan vs indexed lanes (depth 16..8192)",
      "indexed per-source FIFO lanes answer specific matches and removals "
      "in O(1) and wildcard candidates in O(sources), independent of "
      "unexpected-queue depth");

  const std::vector<int> depths = bench::quick_mode()
                                      ? std::vector<int>{16, 256, 1024}
                                      : std::vector<int>{16, 64, 256, 1024,
                                                         4096, 8192};
  const std::vector<int> fanins = bench::quick_mode()
                                      ? std::vector<int>{2, 32}
                                      : std::vector<int>{2, 8, 32, 128};

  std::vector<Cell> cells;
  for (const int depth : depths) {
    Cell c;
    c.scenario = "find_specific";
    c.depth = depth;
    c.linear_ns = bench_find_specific(MatchKind::kLinear, depth);
    c.indexed_ns = bench_find_specific(MatchKind::kIndexed, depth);
    cells.push_back(c);
  }
  for (const int depth : depths) {
    Cell c;
    c.scenario = "push_take_churn";
    c.depth = depth;
    c.linear_ns = bench_churn(MatchKind::kLinear, depth);
    c.indexed_ns = bench_churn(MatchKind::kIndexed, depth);
    cells.push_back(c);
  }
  const int wc_depth = bench::quick_mode() ? 256 : 1024;
  for (const int fanin : fanins) {
    Cell c;
    c.scenario = "wildcard_candidates";
    c.depth = wc_depth;
    c.fanin = fanin;
    c.linear_ns = bench_wildcard(MatchKind::kLinear, wc_depth, fanin);
    c.indexed_ns = bench_wildcard(MatchKind::kIndexed, wc_depth, fanin);
    cells.push_back(c);
  }

  const double scan_p99 = indexed_scan_p99_bound();

  TextTable table;
  table.header({"scenario", "depth", "fan-in", "linear ns/op",
                "indexed ns/op", "speedup"});
  for (const Cell& c : cells) {
    table.row({c.scenario, std::to_string(c.depth),
               c.fanin > 0 ? std::to_string(c.fanin) : "-",
               fmt_fixed(c.linear_ns, 1), fmt_fixed(c.indexed_ns, 1),
               fmt_fixed(c.speedup(), 2) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("indexed match.scan_length p99 bound: %.1f (1 sample/bucket-0 "
              "means every query examined exactly one entry)\n\n",
              scan_p99);

  if (write_json("BENCH_matching.json", cells, scan_p99)) {
    std::printf("wrote BENCH_matching.json\n");
  } else {
    std::printf("could not write BENCH_matching.json\n");
    return 1;
  }
  std::printf("Shape check: linear ns/op grows linearly with depth while "
              "indexed stays flat; at depth >= 1024 the speedup should "
              "exceed 5x, and the indexed scan-length p99 bound must be "
              "<= 2.0 (i.e. every scan examined one entry).\n");
  return 0;
}
