# Empty dependencies file for test_engine_fuzz.
# This may be replaced when dependencies are built.
