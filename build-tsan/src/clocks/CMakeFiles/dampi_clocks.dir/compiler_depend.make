# Empty compiler generated dependencies file for dampi_clocks.
# This may be replaced when dependencies are built.
