file(REMOVE_RECURSE
  "CMakeFiles/test_vtime.dir/test_vtime.cpp.o"
  "CMakeFiles/test_vtime.dir/test_vtime.cpp.o.d"
  "test_vtime"
  "test_vtime.pdb"
  "test_vtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
