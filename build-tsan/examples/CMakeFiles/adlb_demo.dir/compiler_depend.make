# Empty compiler generated dependencies file for adlb_demo.
# This may be replaced when dependencies are built.
