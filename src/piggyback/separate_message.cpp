#include "piggyback/separate_message.hpp"

#include "common/check.hpp"

namespace dampi::piggyback {
namespace {

/// The pb message reuses the payload's channel sequence number as its
/// tag, folded into the user tag range.
mpism::Tag pb_tag(std::uint64_t seq) {
  return static_cast<mpism::Tag>(seq % (1u << 29));
}

}  // namespace

void SeparateMessageTransport::on_init(mpism::ToolCtx& ctx) {
  shadow_[mpism::kCommWorld] = ctx.raw_comm_dup(mpism::kCommWorld);
}

mpism::CommId SeparateMessageTransport::shadow_of(mpism::CommId comm) const {
  auto it = shadow_.find(comm);
  DAMPI_CHECK_MSG(it != shadow_.end(),
                  "no shadow communicator for payload communicator");
  return it->second;
}

void SeparateMessageTransport::on_post_send(mpism::ToolCtx& ctx,
                                            const mpism::SendCall& call,
                                            const mpism::SendInfo& info,
                                            const mpism::Bytes& clock) {
  ctx.raw_isend(call.dst, pb_tag(info.seq), shadow_of(call.comm), clock);
}

mpism::Bytes SeparateMessageTransport::on_recv_complete(
    mpism::ToolCtx& ctx, mpism::ReqCompletion& c) {
  mpism::Bytes clock;
  ctx.raw_recv(c.status.source, pb_tag(c.seq), shadow_of(c.comm), &clock);
  return clock;
}

void SeparateMessageTransport::on_new_comm(mpism::ToolCtx& ctx,
                                           mpism::CommId comm) {
  shadow_[comm] = ctx.raw_comm_dup(comm);
}

}  // namespace dampi::piggyback
