#include "dist/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/strutil.hpp"
#include "core/shard.hpp"

namespace dampi::dist {

namespace {

constexpr char kMagic[4] = {'D', 'M', 'P', '1'};
constexpr std::size_t kHeaderBytes = 4 + 2 + 4;
/// Backstop against a corrupt length field; real payloads are a few KB.
constexpr std::uint32_t kMaxPayload = 64u * 1024u * 1024u;

constexpr const char* kResultHeader = "# dampi-dist-result v1";

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void MessageChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool MessageChannel::send(MsgType type, std::string_view payload) {
  if (fd_ < 0) return false;
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, 4);
  const std::uint16_t t = static_cast<std::uint16_t>(type);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header + 4, &t, 2);
  std::memcpy(header + 6, &len, 4);
  return write_all(fd_, header, kHeaderBytes) &&
         write_all(fd_, payload.data(), payload.size());
}

MessageChannel::RecvStatus MessageChannel::recv(WireMessage* out,
                                                int timeout_ms) {
  if (fd_ < 0) return RecvStatus::kClosed;
  // A positive timeout bounds the whole call, not each poll: partial
  // reads and EINTR wake-ups spend the remaining budget, not a fresh one.
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline{};
  if (timeout_ms > 0) {
    deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  }
  for (;;) {
    // A complete frame may already be buffered from a previous read.
    if (rx_.size() >= kHeaderBytes) {
      if (std::memcmp(rx_.data(), kMagic, 4) != 0) {
        close();
        return RecvStatus::kClosed;
      }
      std::uint16_t t = 0;
      std::uint32_t len = 0;
      std::memcpy(&t, rx_.data() + 4, 2);
      std::memcpy(&len, rx_.data() + 6, 4);
      if (len > kMaxPayload) {
        close();
        return RecvStatus::kClosed;
      }
      if (rx_.size() >= kHeaderBytes + len) {
        out->type = static_cast<MsgType>(t);
        out->payload = rx_.substr(kHeaderBytes, len);
        rx_.erase(0, kHeaderBytes + len);
        return RecvStatus::kMessage;
      }
    }

    int wait_ms = timeout_ms;
    if (timeout_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return RecvStatus::kWouldBlock;
      wait_ms = static_cast<int>(left);
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      close();
      return RecvStatus::kClosed;
    }
    if (pr == 0) return RecvStatus::kWouldBlock;

    char buf[16384];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return RecvStatus::kWouldBlock;
      }
      close();
      return RecvStatus::kClosed;
    }
    if (n == 0) {
      // EOF with a partial frame buffered is a dead peer either way.
      close();
      return RecvStatus::kClosed;
    }
    rx_.append(buf, static_cast<std::size_t>(n));
    // Loop back to try extracting a frame; with timeout 0 this still
    // returns kWouldBlock promptly once the buffer runs dry.
  }
}

int connect_socket(const std::string& spec, std::string* error) {
  if (spec.rfind("fd:", 0) == 0) {
    const int fd = std::atoi(spec.c_str() + 3);
    if (fd < 0) {
      if (error != nullptr) *error = "bad fd spec: " + spec;
      return -1;
    }
    return fd;
  }
  struct sockaddr_un addr;
  if (spec.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + spec;
    return -1;
  }
  // The coordinator binds before spawning workers, but an externally
  // launched worker may race it — retry for a couple of seconds.
  for (int attempt = 0; attempt < 40; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) break;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    ::close(fd);
    struct timespec ts = {0, 50 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }
  if (error != nullptr) {
    *error = strfmt("cannot connect to %s: %s", spec.c_str(),
                    std::strerror(errno));
  }
  return -1;
}

int listen_socket(const std::string& path, std::string* error) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = strfmt("cannot listen on %s: %s", path.c_str(),
                      std::strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

// --- Payloads --------------------------------------------------------------

std::string serialize_hello(const Hello& hello) {
  return strfmt("id %d\n", hello.worker_id) + "options " + hello.fingerprint +
         '\n';
}

std::optional<Hello> parse_hello(const std::string& payload,
                                 std::string* error) {
  Hello hello;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "id") {
      if (!(ls >> hello.worker_id)) {
        if (error != nullptr) *error = "bad hello id line";
        return std::nullopt;
      }
    } else if (keyword == "options") {
      hello.fingerprint =
          line.size() > keyword.size() + 1 ? line.substr(keyword.size() + 1)
                                           : "";
    }
  }
  if (hello.worker_id < 0 || hello.fingerprint.empty()) {
    if (error != nullptr) *error = "incomplete hello";
    return std::nullopt;
  }
  return hello;
}

std::string serialize_shard(std::uint64_t shard_id,
                            const std::string& checkpoint_text) {
  return strfmt("shard %llu\n", static_cast<unsigned long long>(shard_id)) +
         checkpoint_text;
}

std::optional<core::Checkpoint> parse_shard(
    const std::string& payload, const std::string& expected_fingerprint,
    std::uint64_t* shard_id, std::string* error) {
  const std::size_t eol = payload.find('\n');
  unsigned long long id = 0;
  if (eol == std::string::npos ||
      std::sscanf(payload.c_str(), "shard %llu", &id) != 1) {
    if (error != nullptr) *error = "bad shard id line";
    return std::nullopt;
  }
  *shard_id = id;
  return core::parse_checkpoint(payload.substr(eol + 1), expected_fingerprint,
                                error);
}

std::string serialize_escape(const core::EscapedAlt& escape,
                             const std::string& fingerprint) {
  return core::serialize_checkpoint(
      core::make_escape_shard(escape, fingerprint));
}

std::optional<core::EscapedAlt> parse_escape(
    const std::string& payload, const std::string& expected_fingerprint,
    std::string* error) {
  auto cp = core::parse_checkpoint(payload, expected_fingerprint, error);
  if (!cp.has_value()) return std::nullopt;
  if (cp->frames.empty() || cp->frames.back().untried.size() != 1) {
    if (error != nullptr) *error = "not a one-alternative escape shard";
    return std::nullopt;
  }
  core::EscapedAlt escape;
  escape.src = cp->frames.back().untried.front();
  escape.frames = std::move(cp->frames);
  return escape;
}

std::string serialize_worker_result(const WorkerResult& result,
                                    const std::string& fingerprint) {
  const core::ExploreResult& r = result.result;
  std::string out = kResultHeader;
  out += strfmt("\nshard %llu\n",
                static_cast<unsigned long long>(result.shard_id));
  out += strfmt("flags %d %d %d\n", r.interleaving_budget_exhausted ? 1 : 0,
                r.time_budget_exhausted ? 1 : 0, r.interrupted ? 1 : 0);
  out += strfmt("vtime %.17g\n", r.total_vtime_us);
  out += strfmt("wall %.17g\n", r.total_wall_seconds);
  out += strfmt("ckwrites %llu\n",
                static_cast<unsigned long long>(r.checkpoint_writes));
  out += strfmt("pool %d %llu %llu %llu %llu %zu %zu\n", r.pool.jobs,
                static_cast<unsigned long long>(r.pool.inline_runs),
                static_cast<unsigned long long>(r.pool.worker_runs),
                static_cast<unsigned long long>(r.pool.speculative_hits),
                static_cast<unsigned long long>(r.pool.speculative_waste),
                r.pool.max_in_flight, r.pool.max_queue_depth);
  for (const core::EscapedAlt& escape : r.escaped) {
    // An escape travels as the candidate shard it would become — a full
    // checkpoint — because its site identity is the frame prefix in
    // force at escape time, not anything the coordinator could
    // reconstruct from the shard it originally assigned.
    const std::string text = core::serialize_checkpoint(
        core::make_escape_shard(escape, fingerprint));
    out += strfmt("escape %zu\n", text.size());
    out += text;
  }
  {
    std::istringstream metrics(result.metrics_dump);
    std::string line;
    while (std::getline(metrics, line)) {
      if (!line.empty()) out += "metric " + line + '\n';
    }
  }
  // The counters, bugs, and alerts ride in an embedded checkpoint so the
  // wire format reuses the journal grammar instead of duplicating it.
  core::Checkpoint cp;
  cp.fingerprint = fingerprint;
  cp.interleavings = r.interleavings;
  cp.retries = r.retries;
  cp.timeouts = r.timeouts;
  cp.quarantined = r.quarantined;
  cp.divergences = r.divergences;
  cp.prefix_mismatches = r.prefix_mismatches;
  cp.bugs = r.bugs;
  cp.unsafe_alerts = r.unsafe_alerts;
  const std::string inner = core::serialize_checkpoint(cp);
  out += strfmt("ckpt %zu\n", inner.size());
  out += inner;
  out += "end\n";
  return out;
}

std::optional<WorkerResult> parse_worker_result(
    const std::string& payload, const std::string& expected_fingerprint,
    std::string* error) {
  auto fail = [error](std::string message) -> std::optional<WorkerResult> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  WorkerResult wr;
  core::ExploreResult& r = wr.result;
  std::size_t pos = 0;
  bool saw_header = false;
  bool saw_end = false;
  bool saw_ckpt = false;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) eol = payload.size();
    const std::string line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kResultHeader) return fail("missing dist-result header");
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "shard") {
      if (!(ls >> wr.shard_id)) return fail("bad shard line");
    } else if (keyword == "flags") {
      int ib = 0, tb = 0, in = 0;
      if (!(ls >> ib >> tb >> in)) return fail("bad flags line");
      r.interleaving_budget_exhausted = ib != 0;
      r.time_budget_exhausted = tb != 0;
      r.interrupted = in != 0;
    } else if (keyword == "vtime") {
      if (!(ls >> r.total_vtime_us)) return fail("bad vtime line");
    } else if (keyword == "wall") {
      if (!(ls >> r.total_wall_seconds)) return fail("bad wall line");
    } else if (keyword == "ckwrites") {
      if (!(ls >> r.checkpoint_writes)) return fail("bad ckwrites line");
    } else if (keyword == "pool") {
      if (!(ls >> r.pool.jobs >> r.pool.inline_runs >> r.pool.worker_runs >>
            r.pool.speculative_hits >> r.pool.speculative_waste >>
            r.pool.max_in_flight >> r.pool.max_queue_depth)) {
        return fail("bad pool line");
      }
    } else if (keyword == "escape") {
      std::size_t nbytes = 0;
      if (!(ls >> nbytes) || pos + nbytes > payload.size()) {
        return fail("bad escape length");
      }
      std::string inner_err;
      const auto cp = core::parse_checkpoint(payload.substr(pos, nbytes),
                                             expected_fingerprint, &inner_err);
      if (!cp.has_value() || cp->frames.empty() ||
          cp->frames.back().untried.size() != 1) {
        return fail("embedded escape: " +
                    (inner_err.empty() ? "not a one-alternative shard"
                                       : inner_err));
      }
      core::EscapedAlt escape;
      escape.src = cp->frames.back().untried.front();
      escape.frames = std::move(cp->frames);
      r.escaped.push_back(std::move(escape));
      pos += nbytes;
    } else if (keyword == "metric") {
      if (line.size() > keyword.size() + 1) {
        wr.metrics_dump += line.substr(keyword.size() + 1);
        wr.metrics_dump += '\n';
      }
    } else if (keyword == "ckpt") {
      std::size_t nbytes = 0;
      if (!(ls >> nbytes) || pos + nbytes > payload.size()) {
        return fail("bad ckpt length");
      }
      std::string inner_err;
      const auto cp = core::parse_checkpoint(payload.substr(pos, nbytes),
                                             expected_fingerprint, &inner_err);
      if (!cp.has_value()) return fail("embedded checkpoint: " + inner_err);
      r.interleavings = cp->interleavings;
      r.retries = cp->retries;
      r.timeouts = cp->timeouts;
      r.quarantined = cp->quarantined;
      r.divergences = cp->divergences;
      r.prefix_mismatches = cp->prefix_mismatches;
      r.bugs = cp->bugs;
      r.unsafe_alerts = cp->unsafe_alerts;
      pos += nbytes;
      saw_ckpt = true;
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown dist-result keyword '" + keyword + "'");
    }
  }
  if (!saw_header || !saw_ckpt || !saw_end) {
    return fail("truncated dist-result payload");
  }
  return wr;
}

}  // namespace dampi::dist
