// LogGP-style virtual-time cost model.
//
// The paper reports wall-clock on an InfiniBand cluster; this repository
// replaces that with deterministic virtual time: each rank accumulates
// virtual microseconds, message receipt propagates max(local, arrival),
// and collectives cost alpha * ceil(log2 P) on top of the participants'
// maximum. Tool layers add their own costs (piggyback messages travel
// through the engine and therefore pay these costs naturally; the ISP
// layer serializes every call through a single scheduler timeline, which
// is what reproduces the paper's Fig. 5 collapse).
#pragma once

#include <algorithm>
#include <cmath>

namespace dampi::mpism {

struct CostModel {
  /// Bookkeeping cost of any MPI call (request creation, queue scan).
  double local_op_us = 0.2;
  /// CPU overhead at the sender per message (o_s in LogGP).
  double send_overhead_us = 0.6;
  /// CPU overhead at the receiver per message (o_r).
  double recv_overhead_us = 0.6;
  /// Network latency (L). InfiniBand-ish.
  double latency_us = 2.0;
  /// Inverse bandwidth (G), us per byte (~2 GB/s -> 0.0005).
  double per_byte_us = 0.0005;
  /// Sender CPU per byte (packing/serialization). Unlike transit time,
  /// this cannot hide in communication overlap — it is what makes large
  /// piggybacks (vector clocks: 8N bytes per message) cost the sender.
  double send_per_byte_us = 0.001;
  /// Per-stage cost of a collective; a collective over P ranks costs
  /// alpha * ceil(log2 P) after the last participant arrives.
  double collective_alpha_us = 2.5;

  double message_transit_us(std::size_t bytes) const {
    return latency_us + per_byte_us * static_cast<double>(bytes);
  }

  double collective_us(int nprocs) const {
    const int stages =
        nprocs <= 1 ? 1
                    : static_cast<int>(std::ceil(std::log2(
                          static_cast<double>(nprocs))));
    return collective_alpha_us * std::max(stages, 1);
  }
};

}  // namespace dampi::mpism
