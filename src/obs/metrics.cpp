#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strutil.hpp"

namespace dampi::obs {

FixedHistogram::FixedHistogram(double first_limit, int buckets)
    : first_limit_(first_limit),
      counts_(static_cast<std::size_t>(std::max(buckets, 2))) {}

void FixedHistogram::add(double x) {
  std::size_t i = 0;
  double limit = first_limit_;
  while (x >= limit && i + 1 < counts_.size()) {
    limit *= 2.0;
    ++i;
  }
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FixedHistogram::count() const {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

double FixedHistogram::quantile_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5);
  std::uint64_t seen = 0;
  double limit = first_limit_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= target) return limit;
    limit *= 2.0;
  }
  return limit;
}

std::string FixedHistogram::str() const {
  return strfmt("n=%llu p50<=%.1e p90<=%.1e p99<=%.1e",
                static_cast<unsigned long long>(count()), quantile_bound(0.5),
                quantile_bound(0.9), quantile_bound(0.99));
}

void FixedHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Entry& Registry::find_or_add(const std::string& name) {
  for (const auto& e : entries_) {
    if (e->name == name) return *e;
  }
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = name;
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = find_or_add(name);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = find_or_add(name);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

FixedHistogram& Registry::histogram(const std::string& name,
                                    double first_limit, int buckets) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = find_or_add(name);
  if (!e.histogram) {
    e.histogram = std::make_unique<FixedHistogram>(first_limit, buckets);
  }
  return *e.histogram;
}

std::string Registry::dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& e : entries_) sorted.push_back(e.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* x, const Entry* y) { return x->name < y->name; });
  std::string out;
  for (const Entry* e : sorted) {
    if (e->counter) {
      out += strfmt("%s %llu\n", e->name.c_str(),
                    static_cast<unsigned long long>(e->counter->value()));
    }
    if (e->gauge) {
      out += strfmt("%s %lld (max %lld)\n", e->name.c_str(),
                    static_cast<long long>(e->gauge->value()),
                    static_cast<long long>(e->gauge->max()));
    }
    if (e->histogram) {
      out += strfmt("%s %s\n", e->name.c_str(), e->histogram->str().c_str());
    }
  }
  return out;
}

void Registry::merge_dump(const std::string& dump,
                          const std::string& prefix) {
  std::size_t pos = 0;
  while (pos < dump.size()) {
    std::size_t eol = dump.find('\n', pos);
    if (eol == std::string::npos) eol = dump.size();
    const std::string line = dump.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string value_text = line.substr(space + 1);
    if (value_text.empty() ||
        value_text.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // gauge "v (max m)" or histogram "n=... p50<=..." line
    }
    const std::string name = line.substr(0, space);
    const std::uint64_t value = std::strtoull(value_text.c_str(), nullptr, 10);
    counter(prefix + "." + name).add(value);
    counter("dist." + name).add(value);
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : entries_) {
    if (e->counter) e->counter->reset();
    if (e->gauge) e->gauge->reset();
    if (e->histogram) e->histogram->reset();
  }
}

}  // namespace dampi::obs
