// The Epoch Decisions file (paper §II-B/E): which source each guided
// epoch must match in a replay. A rank runs GUIDED until the first of its
// epochs with no decision, then reverts to SELF_RUN — the paper's
// guided_epoch frontier, expressed per key.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/epoch.hpp"
#include "mpism/types.hpp"

namespace dampi::core {

/// Sorted flat map of epoch decisions. The map is consulted on every ND
/// event of every replay (DampiLayer::guided_source), so lookups run a
/// binary search over one contiguous allocation instead of chasing
/// red-black-tree nodes; bench_micro's BM_ScheduleLookup measures the
/// difference against the std::map it replaced. Iteration order and
/// operator== match the old map exactly (key-ascending), so the decision
/// file format, checkpoint grammar, and bug keys are unchanged.
class ForcedDecisions {
 public:
  using value_type = std::pair<EpochKey, mpism::Rank>;
  using const_iterator = std::vector<value_type>::const_iterator;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  const_iterator find(const EpochKey& key) const {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  std::size_t count(const EpochKey& key) const {
    return find(key) == entries_.end() ? 0 : 1;
  }

  /// Insert-or-assign, map-style.
  mpism::Rank& operator[](const EpochKey& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, {key, mpism::kAnySource});
    }
    return it->second;
  }

  /// Insert-if-absent; returns whether the key was new.
  bool emplace(const EpochKey& key, mpism::Rank src) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return false;
    entries_.insert(it, {key, src});
    return true;
  }

  friend bool operator==(const ForcedDecisions&,
                         const ForcedDecisions&) = default;

 private:
  std::vector<value_type>::iterator lower_bound(const EpochKey& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const EpochKey& k) { return e.first < k; });
  }
  const_iterator lower_bound(const EpochKey& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const EpochKey& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;  ///< sorted by key, unique
};

struct Schedule {
  /// epoch -> forced source (world rank).
  ForcedDecisions forced;

  bool empty() const { return forced.empty(); }

  /// Decision for this epoch, or kAnySource if none.
  mpism::Rank lookup(const EpochKey& key) const {
    auto it = forced.find(key);
    return it == forced.end() ? mpism::kAnySource : it->second;
  }
};

}  // namespace dampi::core
