// Table I: statistics of MPI operations in ParMETIS-3.1 at 8..128 procs.
//
// Paper's numbers (totals / per-proc): All 187K/23K at 8 procs growing
// to 7986K/62K at 128 — totals grow ~2.4x per process doubling while
// per-process counts grow only ~1.3x, and Collectives per proc *shrink*
// (2.5K -> 1.4K). This asymmetry is the paper's explanation for why a
// centralized scheduler (which sees the total) collapses while each
// DAMPI rank (which sees only its own share) keeps up.
#include <vector>

#include "bench_util.hpp"
#include "mpism/runtime.hpp"
#include "workloads/parmetis_proxy.hpp"

using namespace dampi;
using mpism::OpCategory;

namespace {

struct PaperRow {
  int procs;
  const char* all;
  const char* all_pp;
  const char* sr;
  const char* sr_pp;
  const char* coll;
  const char* coll_pp;
  const char* wait;
  const char* wait_pp;
};

constexpr PaperRow kPaper[] = {
    {8, "187K", "23K", "121K", "15K", "20K", "2.5K", "47K", "5.8K"},
    {16, "534K", "33K", "381K", "24K", "36K", "2.2K", "118K", "7.3K"},
    {32, "1315K", "41K", "981K", "31K", "63K", "2.0K", "272K", "8.5K"},
    {64, "3133K", "49K", "2416K", "38K", "105K", "1.6K", "612K", "9.6K"},
    {128, "7986K", "62K", "6346K", "50K", "178K", "1.4K", "1463K", "11K"},
};

}  // namespace

int main() {
  bench::banner(
      "Table I — statistics of MPI operations in ParMETIS-3.1",
      "total ops grow ~2.4x per process doubling; per-proc ops only "
      "~1.3x; collectives per proc shrink");

  workloads::ParmetisConfig config;
  std::vector<int> scales = {8, 16, 32, 64, 128};
  if (bench::quick_mode()) {
    config.phases = 4;
    config.iters_per_phase = 40;
    scales = {8, 16, 32};
  }

  TextTable table;
  table.header({"procs", "All", "All/pp", "SendRecv", "SR/pp", "Coll",
                "Coll/pp", "Wait", "Wait/pp", "| paper All", "All/pp",
                "SR/pp", "Coll/pp", "Wait/pp"});

  bench::WallTimer total;
  for (const int procs : scales) {
    mpism::RunOptions options;
    options.nprocs = procs;
    mpism::Runtime runtime(std::move(options));
    const auto report = runtime.run([&config](mpism::Proc& p) {
      workloads::parmetis_proxy(p, config);
    });
    if (!report.completed) {
      std::printf("run failed at %d procs: %s\n", procs,
                  report.deadlock_detail.c_str());
      return 1;
    }
    const auto& s = report.stats;
    const PaperRow* paper = nullptr;
    for (const auto& row : kPaper) {
      if (row.procs == procs) paper = &row;
    }
    table.row({std::to_string(procs), human_count(s.total_reported()),
               human_count(s.total_reported() /
                           static_cast<std::uint64_t>(procs)),
               human_count(s.total(OpCategory::kSendRecv)),
               human_count(s.per_proc(OpCategory::kSendRecv)),
               human_count(s.total(OpCategory::kCollective)),
               human_count(s.per_proc(OpCategory::kCollective)),
               human_count(s.total(OpCategory::kWait)),
               human_count(s.per_proc(OpCategory::kWait)),
               paper ? std::string("| ") + paper->all : std::string("| -"),
               paper ? paper->all_pp : "-", paper ? paper->sr_pp : "-",
               paper ? paper->coll_pp : "-", paper ? paper->wait_pp : "-"});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("(harness wall time: %.1fs)\n", total.seconds());
  return 0;
}
