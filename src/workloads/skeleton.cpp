#include "workloads/skeleton.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "mpism/types.hpp"

namespace dampi::workloads {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::Proc;
using mpism::RequestId;

/// Near-balanced factorization of P into `dims` factors (descending).
std::vector<int> factorize(int nprocs, int dims) {
  std::vector<int> out(static_cast<std::size_t>(dims), 1);
  int remaining = nprocs;
  for (int d = 0; d < dims; ++d) {
    const int target = static_cast<int>(std::round(
        std::pow(static_cast<double>(remaining),
                 1.0 / static_cast<double>(dims - d))));
    int pick = 1;
    for (int f = std::max(target, 1); f >= 1; --f) {
      if (remaining % f == 0) {
        pick = f;
        break;
      }
    }
    out[static_cast<std::size_t>(d)] = pick;
    remaining /= pick;
  }
  out.back() *= remaining;
  return out;
}

void add_torus_neighbors(std::set<int>* partners, int rank,
                         const std::vector<int>& dims) {
  // rank -> coordinates (row-major), +/-1 in each dimension with wrap.
  std::vector<int> coord(dims.size());
  int rest = rank;
  for (std::size_t d = dims.size(); d-- > 0;) {
    coord[d] = rest % dims[d];
    rest /= dims[d];
  }
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (dims[d] == 1) continue;
    for (int delta : {-1, 1}) {
      std::vector<int> c = coord;
      c[d] = (c[d] + delta + dims[d]) % dims[d];
      int neighbor = 0;
      for (std::size_t k = 0; k < dims.size(); ++k) {
        neighbor = neighbor * dims[k] + c[k];
      }
      if (neighbor != rank) partners->insert(neighbor);
    }
  }
}

}  // namespace

std::vector<int> skeleton_partners(Topology topology, int rank, int nprocs) {
  std::set<int> partners;
  switch (topology) {
    case Topology::kRing:
      if (nprocs > 1) {
        partners.insert((rank + 1) % nprocs);
        partners.insert((rank + nprocs - 1) % nprocs);
      }
      break;
    case Topology::kGrid2D:
      add_torus_neighbors(&partners, rank, factorize(nprocs, 2));
      break;
    case Topology::kGrid3D:
      add_torus_neighbors(&partners, rank, factorize(nprocs, 3));
      break;
    case Topology::kHypercube:
      for (int bit = 1; bit < nprocs; bit <<= 1) {
        const int peer = rank ^ bit;
        if (peer < nprocs && peer != rank) partners.insert(peer);
      }
      break;
    case Topology::kAlltoall:
      break;  // handled collectively
  }
  return {partners.begin(), partners.end()};
}

void run_skeleton(Proc& p, const SkeletonSpec& spec) {
  const int nprocs = p.size();
  const auto partners =
      skeleton_partners(spec.topology, p.rank(), nprocs);

  if (spec.leak_communicator) {
    p.comm_dup();  // intentionally never freed (Table II C-Leak)
  }

  const Bytes halo(spec.payload_bytes, std::byte{0});
  for (int iter = 0; iter < spec.iterations; ++iter) {
    const mpism::Tag tag = iter % 1024;
    if (spec.topology == Topology::kAlltoall) {
      std::vector<Bytes> slices(static_cast<std::size_t>(nprocs), halo);
      p.alltoall(std::move(slices));
    } else if (!partners.empty()) {
      const bool wildcard_iter =
          spec.wildcard_stride > 0 && iter % spec.wildcard_stride == 0 &&
          p.rank() % std::max(spec.wildcard_rank_stride, 1) == 0;
      std::vector<RequestId> recvs;
      std::vector<RequestId> sends;
      recvs.reserve(partners.size() *
                    static_cast<std::size_t>(spec.messages_per_partner));
      sends.reserve(recvs.capacity());
      for (const int partner : partners) {
        for (int m = 0; m < spec.messages_per_partner; ++m) {
          recvs.push_back(
              p.irecv(wildcard_iter ? kAnySource : partner, tag));
          sends.push_back(p.isend(partner, tag, halo));
        }
      }
      p.waitall(sends);
      // Complete receives in groups: the group size shapes the
      // Wait : Send-Recv operation ratio of the profile.
      const std::size_t group = static_cast<std::size_t>(
          std::max(spec.waitall_group, 1));
      for (std::size_t at = 0; at < recvs.size(); at += group) {
        const std::size_t n = std::min(group, recvs.size() - at);
        p.waitall(std::span<RequestId>(recvs.data() + at, n));
      }
    }

    if (spec.compute_us_per_iter > 0.0) p.compute(spec.compute_us_per_iter);

    if (spec.collective != CollectiveFlavor::kNone &&
        spec.collective_stride > 0 &&
        iter % spec.collective_stride == 0) {
      switch (spec.collective) {
        case CollectiveFlavor::kAllreduce:
          p.allreduce_u64(static_cast<std::uint64_t>(iter),
                          mpism::ReduceOp::kMaxU64);
          break;
        case CollectiveFlavor::kBarrier:
          p.barrier();
          break;
        case CollectiveFlavor::kBcast: {
          Bytes data;
          if (p.rank() == 0) data = mpism::pack<int>(iter);
          p.bcast(&data, 0);
          break;
        }
        case CollectiveFlavor::kNone:
          break;
      }
    }
  }

  if (spec.leak_request) {
    // The payload is consumed; the request handle is not (R-Leak).
    p.isend(p.rank(), 1023, mpism::pack<int>(1));
    p.recv(p.rank(), 1023);
  }
}

}  // namespace dampi::workloads
