// Wavefront sweep (the NAS-LU communication pattern with real data):
// ranks form a logical 2D grid; each rank's cell value depends on its
// north and west neighbors, which it receives with *wildcard* receives —
// two per sweep step, matched in whichever order the messages arrive.
//
// With a commutative combine the result is match-order independent, so
// DAMPI's exploration proves the code correct over all outcomes. With
// the injected non-commutative bug (a subtraction whose operand order is
// taken from arrival order), only some matching orders produce the right
// checksum — the paper's class of port-this-code-and-it-breaks bugs.
#pragma once

#include <cstdint>

#include "mpism/proc.hpp"

namespace dampi::workloads {

struct WavefrontConfig {
  int sweeps = 2;
  /// Combine north/west inputs in arrival order with a non-commutative
  /// operation; correct only when west happens to arrive first.
  bool inject_order_bug = false;
  double flop_cost_us = 10.0;
};

/// Runs on any nprocs >= 1 (the process grid is a near-square
/// factorization). Verifies the corner checksum every sweep.
void wavefront(mpism::Proc& p, const WavefrontConfig& config);

/// The analytically expected corner value for a grid of the given
/// dimensions after one sweep starting from value 1 at the origin
/// (exposed for tests).
double wavefront_expected_corner(int rows, int cols);

/// The process-grid factorization used for nprocs ranks (rows, cols).
std::pair<int, int> wavefront_grid(int nprocs);

}  // namespace dampi::workloads
