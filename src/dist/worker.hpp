// Worker side of a distributed campaign: connect to the coordinator,
// introduce ourselves (worker id + options fingerprint), then loop —
// resume each assigned shard checkpoint with the ordinary Explorer,
// serving steal requests between runs, and ship the walk's result
// (counters, bugs, escapes, metrics increment) home. The worker
// journals to `<checkpoint>.w<id>` so concurrent workers never race on
// one tmp+rename path, and so the coordinator can requeue a dead
// worker's shard from its last flushed frontier.
#pragma once

#include <string>

#include "core/options.hpp"
#include "mpism/runtime.hpp"

namespace dampi::dist {

struct WorkerConfig {
  /// --coordinator-socket value: "fd:N" or a filesystem path.
  std::string socket_spec;
  int worker_id = 0;
  /// Search options, identical (same fingerprint) to the coordinator's.
  /// checkpoint_path is the campaign's base path; the worker derives its
  /// private `<path>.w<id>` journal from it. resume_from / discovery /
  /// steal hooks are overwritten per shard.
  core::ExplorerOptions options;
};

/// Blocks until the coordinator sends SHUTDOWN (returns 0) or the
/// connection/protocol fails (returns nonzero).
int run_worker(const WorkerConfig& config, const mpism::ProgramFn& program);

}  // namespace dampi::dist
