// Engine locking strategies: one global mutex vs. destination-rank shards.
//
// The engine's shared state decomposes almost perfectly by destination
// rank: the match index, unexpected/posted queues, request table, pools,
// and block/wake bookkeeping of rank r are only ever touched by code that
// is operating *on* rank r (its own thread, or a sender delivering into
// r's queues). Sharding the engine mutex by rank therefore lets a send
// from 0→1 proceed concurrently with a wait on rank 2 — the old global
// mutex serialized them. Cross-cutting state (verdict flags, budgets,
// msg-id assignment, virtual clocks) moves to atomics; the few genuinely
// global operations (collectives, communicator create/free, the
// count-based deadlock scan) briefly take *all* shards in ascending rank
// order.
//
// Lock-ordering rule (deadlock freedom): shard mutexes are only ever
// acquired in ascending rank index. A guard holding shard a that needs
// shard b < a releases everything and reacquires {b, a} in order
// (EngineGuard::add reports this drop so callers can re-validate
// references). Below the shards sit only leaf mutexes — the engine's
// verdict mutex, the policy RNG mutex, and the scheduler's per-rank
// waiter mutexes — none of which are ever held while taking a shard.
//
// kGlobal degenerates every guard form to the single mutex, preserving
// the pre-shard engine behaviour as a compiled-in differential baseline
// (RunOptions::engine_lock / --engine-lock / DAMPI_ENGINE_LOCK, mirroring
// the --match linear-vs-indexed pattern).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/check.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

enum class EngineLockKind {
  kGlobal,   ///< One mutex guards all engine state (pre-shard baseline).
  kSharded,  ///< Per-destination-rank shard mutexes + atomics.
};

class EngineLock {
 public:
  EngineLock(EngineLockKind kind, int nprocs)
      : kind_(kind),
        nshards_(kind == EngineLockKind::kGlobal ? 1 : nprocs) {
    DAMPI_CHECK(nprocs > 0);
    shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(nshards_));
  }

  EngineLockKind kind() const { return kind_; }
  int shards() const { return nshards_; }

  /// Contention counters, accumulated relaxed on the hot path and
  /// published to obs once per run (engine.lock.*).
  struct Stats {
    std::uint64_t acquires = 0;    ///< Shard-mutex lock operations.
    std::uint64_t contended = 0;   ///< ... that failed the try_lock fast path.
    std::uint64_t all_shards = 0;  ///< All-shards (global section) entries.
  };

  Stats stats() const {
    Stats s;
    s.acquires = acquires_.load(std::memory_order_relaxed);
    s.contended = contended_.load(std::memory_order_relaxed);
    s.all_shards = all_shards_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class EngineGuard;

  // Cacheline-separated so two ranks hammering adjacent shards do not
  // false-share the mutex words.
  struct alignas(64) Shard {
    std::mutex mu;
  };

  int shard_of(Rank r) const {
    return kind_ == EngineLockKind::kGlobal ? 0 : r;
  }

  void lock_shard(int i) {
    std::mutex& m = shards_[static_cast<std::size_t>(i)].mu;
    acquires_.fetch_add(1, std::memory_order_relaxed);
    if (m.try_lock()) return;
    contended_.fetch_add(1, std::memory_order_relaxed);
    m.lock();
  }

  void unlock_shard(int i) { shards_[static_cast<std::size_t>(i)].mu.unlock(); }

  EngineLockKind kind_;
  int nshards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> all_shards_{0};
};

/// RAII ownership of one shard, a (sorted) shard pair, or all shards.
/// unlock()/lock() release and reacquire the whole held set — that is
/// what the scheduler's block/yield paths use to park a rank — always in
/// ascending order.
class EngineGuard {
 public:
  struct AllShardsTag {};
  static constexpr AllShardsTag kAllShards{};

  /// Acquires the shard owning rank r (global mode: the one mutex).
  EngineGuard(EngineLock& l, Rank r) : l_(&l), a_(l.shard_of(r)) {
    l_->lock_shard(a_);
    owned_ = true;
  }

  /// Acquires every shard in ascending order (a global engine section).
  EngineGuard(EngineLock& l, AllShardsTag) : l_(&l), all_(true) {
    l_->all_shards_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < l_->nshards_; ++i) l_->lock_shard(i);
    owned_ = true;
  }

  EngineGuard(const EngineGuard&) = delete;
  EngineGuard& operator=(const EngineGuard&) = delete;

  ~EngineGuard() {
    if (owned_) unlock();
  }

  /// Extends the guard to also cover rank r's shard. Returns false iff
  /// the held set had to be dropped and reacquired to respect ascending
  /// order — after a false return, any references resolved under the old
  /// critical section must be re-validated by the caller.
  bool add(Rank r) {
    DAMPI_CHECK(owned_);
    if (all_) return true;
    const int s = l_->shard_of(r);
    if (s == a_ || s == b_) return true;
    if (s > (b_ >= 0 ? b_ : a_)) {  // Still ascending: take it directly.
      DAMPI_CHECK_MSG(b_ < 0, "EngineGuard holds at most two shards");
      l_->lock_shard(s);
      b_ = s;
      return true;
    }
    // Out of order: drop everything, reacquire the sorted pair.
    DAMPI_CHECK_MSG(b_ < 0, "EngineGuard holds at most two shards");
    l_->unlock_shard(a_);
    const int lo = s < a_ ? s : a_;
    const int hi = s < a_ ? a_ : s;
    l_->lock_shard(lo);
    l_->lock_shard(hi);
    a_ = lo;
    b_ = hi;
    return false;
  }

  /// Releases the entire held set (for parking in the scheduler, or for
  /// running tool hooks outside the engine's critical section).
  void unlock() {
    DAMPI_CHECK(owned_);
    if (all_) {
      for (int i = l_->nshards_ - 1; i >= 0; --i) l_->unlock_shard(i);
    } else {
      if (b_ >= 0) l_->unlock_shard(b_);
      l_->unlock_shard(a_);
    }
    owned_ = false;
  }

  /// Reacquires the same set, ascending.
  void lock() {
    DAMPI_CHECK(!owned_);
    if (all_) {
      for (int i = 0; i < l_->nshards_; ++i) l_->lock_shard(i);
    } else {
      l_->lock_shard(a_);
      if (b_ >= 0) l_->lock_shard(b_);
    }
    owned_ = true;
  }

  bool owns() const { return owned_; }
  /// True when this guard covers every shard (a global section).
  bool all() const { return all_ || l_->nshards_ == 1; }

 private:
  EngineLock* l_;
  bool all_ = false;
  bool owned_ = false;
  int a_ = -1;  ///< First held shard index.
  int b_ = -1;  ///< Second held shard index (pair guards only), > a_.
};

/// Parse "global" | "sharded". Returns false (leaving out untouched) on
/// anything else.
bool parse_engine_lock_spec(const std::string& spec, EngineLockKind* out);

/// Canonical spec string (inverse of parse).
std::string engine_lock_spec(EngineLockKind kind);

/// Process-wide default: kSharded unless the DAMPI_ENGINE_LOCK
/// environment variable holds a valid spec (read once, cached). Lets
/// tier-1 re-run the full suite on the global-mutex baseline without
/// touching every call site.
EngineLockKind default_engine_lock_kind();

}  // namespace dampi::mpism
