// The Epoch Decisions *file* (paper §II-B: "we record it as a Potential
// Match in a file... DAMPI's scheduler computes the Epoch Decisions file
// that has the information to force alternate matches"). A schedule
// serializes to a small line-oriented text format, so reproducers can be
// saved next to a bug report and replayed later (verify_cli --replay).
//
// Format:
//   # dampi-epoch-decisions v1
//   <rank> <nd_index> <forced_source_world_rank>
//   ...
// Blank lines and #-comments are ignored.
#pragma once

#include <optional>
#include <string>

#include "core/decision.hpp"

namespace dampi::core {

std::string serialize_schedule(const Schedule& schedule);

/// Parses the textual form; nullopt (with *error filled when non-null)
/// on malformed input.
std::optional<Schedule> parse_schedule(const std::string& text,
                                       std::string* error = nullptr);

/// Write/read a schedule to/from a file. save returns false on I/O
/// failure; load returns nullopt on I/O or parse failure.
bool save_schedule(const Schedule& schedule, const std::string& path);
std::optional<Schedule> load_schedule(const std::string& path,
                                      std::string* error = nullptr);

}  // namespace dampi::core
