// Campaign coordinator: the distributed half of the verifier
// (DESIGN.md §4.12).
//
// The coordinator performs the discovery run itself (or restores a
// --resume journal), splits the resulting frontier into per-subtree
// shards, and farms them out to a pool of worker processes it spawns
// from `worker_argv` (verify_cli --worker). It then event-loops over
// the worker channels: merging shard results (CampaignMerge — bug
// dedup, counter sums, exactly-once escape processing), rebalancing by
// asking busy workers to carve off half of their shallowest untried
// list for idle ones, requeueing the shard of any worker that dies
// mid-shard (from the worker's `<ckpt>.wN` journal when loadable, else
// from the original shard text), respawning replacement workers, and
// quarantining a shard only after repeated deaths. The merged campaign
// verdict is identical to a single-process walk's, modulo order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/explorer.hpp"
#include "core/options.hpp"
#include "mpism/runtime.hpp"

namespace dampi::dist {

struct DistOptions {
  int workers = 2;
  /// Base argv of a worker (argv[0] = executable). The coordinator
  /// appends `--worker --worker-id N --coordinator-socket <spec>`.
  std::vector<std::string> worker_argv;
  /// Empty: one inherited socketpair per worker (the default). Set: a
  /// filesystem AF_UNIX path the coordinator listens on — workers (or
  /// externally launched ones) connect and identify via HELLO.
  std::string socket_path;
  /// A shard survives this many worker deaths before it is quarantined.
  int max_shard_respawns = 2;
  /// A worker slot that keeps dying before completing HELLO (e.g. the
  /// binary fails to exec) aborts the campaign after this many attempts.
  int max_spawn_failures = 3;
  /// After CANCEL/SHUTDOWN, stragglers get this long before SIGKILL.
  double shutdown_grace_seconds = 10.0;
  /// The campaign's search options; must produce the same
  /// options_fingerprint as the workers built from worker_argv.
  /// checkpoint_path (if any) is the campaign journal — discovery
  /// flushes the frontier there, workers journal to `<path>.w<id>`, and
  /// a fully completed campaign writes the merged final state back.
  core::ExplorerOptions explorer;
};

struct DistStats {
  int workers_spawned = 0;
  int worker_deaths = 0;
  std::uint64_t shards_initial = 0;   ///< from the discovery frontier
  std::uint64_t shards_stolen = 0;    ///< carved off by work-stealing
  std::uint64_t shards_escaped = 0;   ///< spawned from escaped alternatives
  std::uint64_t shards_requeued = 0;  ///< reassigned after a worker death
  std::uint64_t shards_quarantined = 0;
};

struct DistResult {
  /// Campaign-level merge: discovery + every shard, bugs deduplicated
  /// and canonically ordered, partial-coverage flags OR'd.
  core::ExploreResult exploration;
  DistStats stats;
  /// Per-shard obs-registry increments in arrival order, for namespaced
  /// merging into the coordinator's registry (obs::merge_dump).
  std::vector<std::pair<int, std::string>> worker_metrics;
  /// Non-empty on campaign infrastructure failure (fingerprint
  /// mismatch, spawn failure): the exploration is partial and the CLI
  /// reports exit code 3.
  std::string error;
};

DistResult run_distributed(const DistOptions& options,
                           const mpism::ProgramFn& program);

}  // namespace dampi::dist
