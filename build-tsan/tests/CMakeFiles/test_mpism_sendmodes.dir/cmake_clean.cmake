file(REMOVE_RECURSE
  "CMakeFiles/test_mpism_sendmodes.dir/test_mpism_sendmodes.cpp.o"
  "CMakeFiles/test_mpism_sendmodes.dir/test_mpism_sendmodes.cpp.o.d"
  "test_mpism_sendmodes"
  "test_mpism_sendmodes.pdb"
  "test_mpism_sendmodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpism_sendmodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
