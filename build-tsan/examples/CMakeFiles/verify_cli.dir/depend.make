# Empty dependencies file for verify_cli.
# This may be replaced when dependencies are built.
