file(REMOVE_RECURSE
  "CMakeFiles/test_deferred_sync.dir/test_deferred_sync.cpp.o"
  "CMakeFiles/test_deferred_sync.dir/test_deferred_sync.cpp.o.d"
  "test_deferred_sync"
  "test_deferred_sync.pdb"
  "test_deferred_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deferred_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
