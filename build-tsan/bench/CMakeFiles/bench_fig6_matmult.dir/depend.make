# Empty dependencies file for bench_fig6_matmult.
# This may be replaced when dependencies are built.
