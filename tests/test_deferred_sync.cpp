// The §V fix, implemented from the paper's future-work sketch: a pair of
// clocks, synchronized at Wait/Test. With it, the Fig. 10 omission
// pattern becomes detectable and forceable; without it, the monitor can
// only alert.
#include <gtest/gtest.h>

#include "support/reference_enumerator.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::ClockMode;
using core::ExplorerOptions;
using mpism::kAnySource;
using mpism::pack;
using mpism::Proc;

TEST(DeferredSync, PlainLamportMissesFig10Competitor) {
  ExplorerOptions options = explorer_options(3);
  options.deferred_clock_sync = false;
  auto result = run_dampi_once(options, {}, workloads::fig10_unsafe_pattern);
  ASSERT_TRUE(result.report.completed);
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  // The barrier propagated the post-epoch clock, so rank 2's send is
  // (wrongly) classified as causally after the epoch.
  EXPECT_TRUE(epoch->alternatives.empty());
  EXPECT_FALSE(result.trace.alerts.empty());  // ...but the monitor warns
}

TEST(DeferredSync, PairClockFindsFig10Competitor) {
  ExplorerOptions options = explorer_options(3);
  options.deferred_clock_sync = true;
  auto result = run_dampi_once(options, {}, workloads::fig10_unsafe_pattern);
  ASSERT_TRUE(result.report.completed);
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  // The barrier carried the *pre-epoch* transmittal clock, so rank 2's
  // send is late and recorded.
  EXPECT_EQ(epoch->alternatives.count(2), 1u);
  // The pattern is handled, so the monitor stays quiet.
  EXPECT_TRUE(result.trace.alerts.empty());
}

TEST(DeferredSync, ExplorerForcesTheFig10Bug) {
  ExplorerOptions options = explorer_options(3);
  options.deferred_clock_sync = true;
  core::Explorer explorer(options);
  auto result = explorer.explore(workloads::fig10_unsafe_pattern);
  EXPECT_TRUE(result.found_bug());
  ASSERT_FALSE(result.bugs.empty());
  EXPECT_FALSE(result.bugs.back().errors.empty());
  EXPECT_NE(result.bugs.back().errors[0].message.find("x == 33"),
            std::string::npos);
}

TEST(DeferredSync, WithoutItTheFig10BugIsMissed) {
  ExplorerOptions options = explorer_options(3);
  options.deferred_clock_sync = false;
  core::Explorer explorer(options);
  auto result = explorer.explore(workloads::fig10_unsafe_pattern);
  // The run where the wildcard natively matched rank 0 cannot be
  // diverted: the competitor was never recorded.
  EXPECT_FALSE(result.found_bug());
  EXPECT_FALSE(result.unsafe_alerts.empty());
}

// Soundness is preserved: the transmittal clock still dominates every
// *completed* receive, so genuinely-causally-after sends are never
// classified late.
TEST(DeferredSync, CausallyAfterSendsStillExcluded) {
  ExplorerOptions options = explorer_options(3);
  options.deferred_clock_sync = true;
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 5;
    if (p.rank() == 0) {
      p.send(1, t, pack<int>(1));
    } else if (p.rank() == 1) {
      p.recv(kAnySource, t);       // epoch completes here
      p.send(2, t, pack<int>(2));  // carries the synced (post-epoch) clock
      p.recv(2, t);
    } else {
      p.recv(1, t);
      p.send(1, t, pack<int>(3));  // genuinely after the epoch
    }
  });
  ASSERT_TRUE(result.report.completed);
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->alternatives.empty());
}

// Deferred sync changes nothing on compliant programs: same coverage as
// the oracle on fig3.
TEST(DeferredSync, CoverageUnchangedOnCompliantPrograms) {
  ExplorerOptions plain = explorer_options(3);
  ExplorerOptions deferred = explorer_options(3);
  deferred.deferred_clock_sync = true;

  ReferenceEnumerator oracle(plain, workloads::fig3_benign);
  const auto reachable = oracle.enumerate();

  for (const ExplorerOptions& options : {plain, deferred}) {
    std::set<OutcomeSignature> seen;
    core::Explorer explorer(options);
    explorer.explore(workloads::fig3_benign,
                     [&seen](const core::RunTrace& trace,
                             const mpism::RunReport& report,
                             const core::Schedule&) {
                       seen.insert(signature_of(trace, report));
                     });
    EXPECT_EQ(seen, reachable);
  }
}

// Works in vector mode too: a pair of vector clocks.
TEST(DeferredSync, VectorModePairClocks) {
  ExplorerOptions options = explorer_options(3);
  options.clock_mode = ClockMode::kVector;
  options.deferred_clock_sync = true;
  core::Explorer explorer(options);
  auto result = explorer.explore(workloads::fig10_unsafe_pattern);
  EXPECT_TRUE(result.found_bug());
}

// A send issued between Irecv(*) and Wait carries the pre-epoch clock.
TEST(DeferredSync, SendBetweenIrecvAndWaitCarriesOldClock) {
  ExplorerOptions options = explorer_options(3);
  options.deferred_clock_sync = true;
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 1;
    if (p.rank() == 0) {
      p.send(1, t, pack<int>(10));
      p.send(1, 99, pack<int>(0));  // "10 is queued" signal
    } else if (p.rank() == 1) {
      p.recv(0, 99);  // ensure the wildcard matches rank 0 deterministically
      mpism::RequestId r = p.irecv(kAnySource, t);
      // Send to rank 2 while the wildcard is pending: under deferred
      // sync this carries the pre-epoch clock.
      p.send(2, t, pack<int>(11));
      p.wait(r);
      p.recv(kAnySource, t);  // drain rank 2's message
    } else {
      p.recv(1, t);
      p.send(1, t, pack<int>(12));
    }
  });
  ASSERT_TRUE(result.report.completed) << result.report.deadlock_detail;
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  // Rank 2's reply was triggered by a message that predates the epoch's
  // completion advertisement, so it is concurrent — a potential match.
  EXPECT_EQ(epoch->alternatives.count(2), 1u);
}

}  // namespace
}  // namespace dampi::test
