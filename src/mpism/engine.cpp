#include "mpism/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "mpism/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dampi::mpism {
namespace {

constexpr Tag kMaxUserTag = (1 << 30);

bool is_all_style(CollKind kind) {
  switch (kind) {
    case CollKind::kBarrier:
    case CollKind::kAllreduce:
    case CollKind::kAllgather:
    case CollKind::kAlltoall:
    case CollKind::kCommDup:
    case CollKind::kCommSplit:
    case CollKind::kCommFree:
      return true;
    case CollKind::kBcast:
    case CollKind::kScatter:
    case CollKind::kReduce:
    case CollKind::kGather:
      return false;
  }
  return true;
}

bool root_to_leaves(CollKind kind) {
  return kind == CollKind::kBcast || kind == CollKind::kScatter;
}

bool leaves_to_root(CollKind kind) {
  return kind == CollKind::kReduce || kind == CollKind::kGather;
}

}  // namespace

// ---------------------------------------------------------------------------
// ToolCtx implementation
// ---------------------------------------------------------------------------

class ToolCtxImpl final : public ToolCtx {
 public:
  ToolCtxImpl(Engine& engine, Rank rank) : e_(&engine), r_(rank) {}

  Rank world_rank() const override { return r_; }
  int world_size() const override { return e_->world_size(); }
  int comm_size(CommId comm) const override { return e_->comm_size_of(comm); }
  Rank comm_rank(CommId comm) const override {
    return e_->comm_rank_of(comm, r_);
  }
  Rank to_world(CommId comm, Rank rel) const override {
    return e_->to_world(comm, rel);
  }
  Rank to_rel(CommId comm, Rank world) const override {
    return e_->to_rel(comm, world);
  }

  RequestId raw_isend(Rank dst, Tag tag, CommId comm, Bytes payload) override {
    return e_->raw_isend(r_, dst, tag, comm, std::move(payload));
  }
  RequestId raw_irecv(Rank src, Tag tag, CommId comm) override {
    return e_->raw_irecv(r_, src, tag, comm);
  }
  Status raw_wait(RequestId req, Bytes* out) override {
    return e_->raw_wait(r_, req, out);
  }
  Status raw_recv(Rank src, Tag tag, CommId comm, Bytes* out) override {
    return e_->raw_recv(r_, src, tag, comm, out);
  }
  bool raw_iprobe(Rank src, Tag tag, CommId comm, Status* status) override {
    return e_->raw_iprobe(r_, src, tag, comm, status);
  }
  void raw_barrier(CommId comm) override { return e_->raw_barrier(r_, comm); }
  CommId raw_comm_dup(CommId comm) override {
    return e_->raw_comm_dup(r_, comm);
  }
  void add_cost(double us) override { e_->add_cost(r_, us); }
  double vtime() const override { return e_->vtime_of(r_); }

 private:
  Engine* e_;
  Rank r_;
};

// ---------------------------------------------------------------------------
// Construction / run loop
// ---------------------------------------------------------------------------

Engine::Engine(RunOptions options)
    : opts_(std::move(options)), lock_(opts_.engine_lock, opts_.nprocs) {
  DAMPI_CHECK(opts_.nprocs > 0);
  ranks_.reserve(static_cast<std::size_t>(opts_.nprocs));
  for (int i = 0; i < opts_.nprocs; ++i) {
    ranks_.push_back(std::make_unique<PerRank>());
    ranks_.back()->match = make_match_index(opts_.match);
  }
  comms_.init(opts_.nprocs);
  policy_ = make_policy(opts_.policy, opts_.policy_seed);
  stats_.init(opts_.nprocs);
  sched_ = make_scheduler(opts_.sched, opts_.nprocs);
}

Engine::~Engine() = default;

RunReport Engine::run(const ProgramFn& program) {
  const auto t0 = std::chrono::steady_clock::now();
  has_wall_deadline_ = opts_.max_run_wall_seconds > 0.0;
  if (has_wall_deadline_) {
    run_deadline_ =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(opts_.max_run_wall_seconds));
  }
  budgets_armed_ = has_wall_deadline_ || opts_.max_run_vtime_us > 0.0 ||
                   opts_.max_ops > 0;
  // Subscribe for the run's duration; if the source already fired, this
  // cancels on the spot and every rank unwinds at its first MPI call.
  std::uint64_t cancel_sub = 0;
  if (opts_.cancel) {
    cancel_sub = opts_.cancel->subscribe(
        [this](const std::string& reason) { cancel(reason); });
  }
  RankScheduler::Callbacks cb;
  cb.body = [this, &program](Rank r) { rank_body(r, program); };
  cb.wake_ready = [this](Rank r) {
    const PerRank& p = pr(r);
    return p.block_pred && p.block_pred();
  };
  cb.stop = [this] { return stopped(); };
  cb.on_stall = [this] {
    // Coop stall: every fiber is parked (none holds a shard), so the
    // all-shards section is uncontended; the verdict mutex arbitrates
    // against a concurrent external cancel.
    EngineGuard all(lock_, EngineGuard::kAllShards);
    declare_deadlock(all);
  };
  if (has_wall_deadline_) {
    cb.deadline = run_deadline_;
    cb.on_deadline = [this] {
      declare_timeout(strfmt("run wall deadline exceeded (%.3f s)",
                             opts_.max_run_wall_seconds));
    };
  }
  sched_->run(cb);
  if (opts_.cancel) opts_.cancel->unsubscribe(cancel_sub);

  RunReport report;
  report.completed = !stopped();
  report.deadlocked = deadlocked_.load(std::memory_order_acquire);
  report.errors = errors_;
  report.deadlock_detail = deadlock_detail_;
  report.timed_out = timed_out_.load(std::memory_order_acquire);
  report.cancelled = cancelled_.load(std::memory_order_acquire);
  report.stop_reason = stop_reason_;
  for (const auto& pr_ptr : ranks_) {
    report.vtime_us = std::max(report.vtime_us, pr_ptr->vt());
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.stats = stats_;
  report.stats.tool_messages = tool_messages_.load(std::memory_order_relaxed);
  report.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  if (report.completed) {
    report.comm_leaks = comms_.leaked_user_comms();
    report.request_leaks = request_leaks_.load(std::memory_order_relaxed);
  }

  // Once-per-run registry updates (off every per-op hot path).
  static obs::Counter& runs_metric =
      obs::Registry::instance().counter("engine.runs");
  static obs::Counter& messages_metric =
      obs::Registry::instance().counter("engine.messages_sent");
  static obs::Counter& deadlocks_metric =
      obs::Registry::instance().counter("engine.deadlocks");
  static obs::Counter& timeouts_metric =
      obs::Registry::instance().counter("engine.timed_out");
  static obs::Counter& cancelled_metric =
      obs::Registry::instance().counter("engine.cancelled");
  runs_metric.add(1);
  messages_metric.add(report.messages_sent);
  if (report.deadlocked) deadlocks_metric.add(1);
  if (report.timed_out) timeouts_metric.add(1);
  if (report.cancelled) cancelled_metric.add(1);

  // Pool effectiveness: acquired vs freelist-reused. A warm steady state
  // shows reused converging on acquired (allocation-free matching).
  static obs::Counter& req_acquired_metric =
      obs::Registry::instance().counter("engine.pool.req_acquired");
  static obs::Counter& req_reused_metric =
      obs::Registry::instance().counter("engine.pool.req_reused");
  static obs::Counter& node_acquired_metric =
      obs::Registry::instance().counter("engine.pool.node_acquired");
  static obs::Counter& node_reused_metric =
      obs::Registry::instance().counter("engine.pool.node_reused");
  static obs::Counter& buf_acquired_metric =
      obs::Registry::instance().counter("engine.pool.buf_acquired");
  static obs::Counter& buf_reused_metric =
      obs::Registry::instance().counter("engine.pool.buf_reused");
  PoolStats req_total;
  PoolStats nodes;
  BufferPool::Stats buf_total;
  for (const auto& pr_ptr : ranks_) {
    req_total.acquired += pr_ptr->req_pool.stats().acquired;
    req_total.reused += pr_ptr->req_pool.stats().reused;
    const PoolStats s = pr_ptr->match->pool_stats();
    nodes.acquired += s.acquired;
    nodes.reused += s.reused;
    buf_total.acquired += pr_ptr->buf_pool.stats().acquired;
    buf_total.reused += pr_ptr->buf_pool.stats().reused;
  }
  req_acquired_metric.add(req_total.acquired);
  req_reused_metric.add(req_total.reused);
  node_acquired_metric.add(nodes.acquired);
  node_reused_metric.add(nodes.reused);
  buf_acquired_metric.add(buf_total.acquired);
  buf_reused_metric.add(buf_total.reused);

  // Lock-shard contention and envelope small-buffer effectiveness.
  static obs::Counter& lock_acquired_metric =
      obs::Registry::instance().counter("engine.lock.acquired");
  static obs::Counter& lock_contended_metric =
      obs::Registry::instance().counter("engine.lock.contended");
  static obs::Counter& lock_all_shards_metric =
      obs::Registry::instance().counter("engine.lock.all_shards");
  static obs::Counter& env_inline_metric =
      obs::Registry::instance().counter("engine.envelope.inline_hits");
  static obs::Counter& env_spill_metric =
      obs::Registry::instance().counter("engine.envelope.heap_spills");
  const EngineLock::Stats ls = lock_.stats();
  lock_acquired_metric.add(ls.acquires);
  lock_contended_metric.add(ls.contended);
  lock_all_shards_metric.add(ls.all_shards);
  env_inline_metric.add(payload_inline_hits_.load(std::memory_order_relaxed));
  env_spill_metric.add(payload_heap_spills_.load(std::memory_order_relaxed));
  return report;
}

void Engine::rank_body(Rank r, const ProgramFn& program) {
  PerRank& me = pr(r);
  if (opts_.tools.make_stack) {
    me.tools = opts_.tools.make_stack(r, opts_.nprocs);
  }
  me.ctx = std::make_unique<ToolCtxImpl>(*this, r);

  bool finished_normally = false;
  try {
    hooks_init(r);
    Proc proc(*this, r);
    program(proc);
    hooks_finalize(r);
    finished_normally = true;
  } catch (const AbortRun&) {
    // Another rank failed or a deadlock was declared; unwind quietly.
  } catch (const ProgramFailure&) {
    // Error already recorded by throw_program_error / api_fail.
  } catch (const InternalError& e) {
    {
      std::lock_guard<std::mutex> vl(verdict_mu_);
      errors_.push_back({r, std::string("tool internal error: ") + e.what()});
    }
    abort_all();
  } catch (const FaultInjected& e) {
    {
      std::lock_guard<std::mutex> vl(verdict_mu_);
      errors_.push_back({r, std::string("fault injected: ") + e.what()});
    }
    abort_all();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> vl(verdict_mu_);
      errors_.push_back({r, std::string("uncaught exception: ") + e.what()});
    }
    abort_all();
  }

  EngineGuard g(lock_, r);
  me.finished = true;
  finished_count_.fetch_add(1, std::memory_order_acq_rel);
  if (finished_normally && !stopped()) {
    for (const auto& [id, rec] : me.reqs) {
      if (!rec->tool_internal) {
        request_leaks_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (blocked_count_.load(std::memory_order_acquire) > 0) {
    maybe_declare_deadlock(g, r);
  }
}

// ---------------------------------------------------------------------------
// Blocking / abort machinery
// ---------------------------------------------------------------------------

template <typename Pred>
void Engine::blocking_wait(EngineGuard& g, Rank r, BlockKind kind,
                           std::string desc, Pred pred) {
  if (pred()) return;
  check_abort(g);
  PerRank& me = pr(r);
  me.blocked = true;
  me.block_kind = kind;
  me.block_desc = std::move(desc);
  me.block_pred = pred;
  blocked_count_.fetch_add(1, std::memory_order_acq_rel);
  DAMPI_TEVENT(obs::EventKind::kBlock, obs::Phase::kBegin, r,
               static_cast<std::int32_t>(kind));
  maybe_declare_deadlock(g, r);
  sched_->block(g, r);
  DAMPI_TEVENT(obs::EventKind::kBlock, obs::Phase::kEnd, r,
               static_cast<std::int32_t>(kind));
  blocked_count_.fetch_sub(1, std::memory_order_acq_rel);
  me.blocked = false;
  me.block_kind = BlockKind::kNone;
  me.block_pred = nullptr;
  if (stopped()) {
    g.unlock();
    throw AbortRun{};
  }
}

void Engine::maybe_declare_deadlock(EngineGuard& g, Rank) {
  // Schedulers that run ranks to their blocking point detect stalls
  // exactly (no runnable candidate anywhere); the count below would
  // misfire there, because a runnable-but-unscheduled rank is neither
  // blocked nor finished — at large nprocs the last scheduled rank
  // blocking must not read "everyone is stuck".
  if (sched_->detects_stall()) return;
  // A deadlock needs at least one blocked rank: without the > 0 guard,
  // "everyone finished" also sums to nprocs, and the escalation below
  // could reach that state if the last blocked rank wakes and finishes
  // between the caller's count read and the all-shards reacquisition.
  if (blocked_count_.load(std::memory_order_acquire) == 0 ||
      blocked_count_.load(std::memory_order_acquire) +
              finished_count_.load(std::memory_order_acquire) !=
          opts_.nprocs ||
      stopped()) {
    return;
  }
  // A rank whose wake condition already holds is merely late to wake, not
  // stuck; with eager matching no spontaneous events exist, so "all
  // blocked with no satisfied predicate" is an exact deadlock. The scan
  // reads every rank's block state, so it needs every shard: escalate if
  // this guard holds fewer, re-validating the counts afterwards (a peer
  // may have woken while we held nothing).
  if (g.all()) {
    for (const auto& p : ranks_) {
      if (p->blocked && p->block_pred && p->block_pred()) return;
    }
    declare_deadlock(g);
    return;
  }
  g.unlock();
  {
    EngineGuard all(lock_, EngineGuard::kAllShards);
    // Re-validate the blocked > 0 guard too: the last blocked rank can
    // wake and finish while we held nothing, leaving blocked=0 and
    // finished=nprocs — the sum still matches, but that is a completed
    // run, not a deadlock (and the scan below would be vacuous).
    if (blocked_count_.load(std::memory_order_acquire) > 0 &&
        blocked_count_.load(std::memory_order_acquire) +
                finished_count_.load(std::memory_order_acquire) ==
            opts_.nprocs &&
        !stopped()) {
      bool satisfied = false;
      for (const auto& p : ranks_) {
        if (p->blocked && p->block_pred && p->block_pred()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) declare_deadlock(all);
    }
  }
  g.lock();
}

void Engine::declare_deadlock(EngineGuard& g) {
  DAMPI_CHECK(g.all());
  {
    // The verdict mutex arbitrates against a concurrent cancel/timeout:
    // exactly one of them wins and the rest become no-ops.
    std::lock_guard<std::mutex> vl(verdict_mu_);
    if (stopped()) return;
    DAMPI_TEVENT(obs::EventKind::kDeadlock, obs::Phase::kInstant);
    std::string detail;
    for (Rank r = 0; r < opts_.nprocs; ++r) {
      const PerRank& p = pr(r);
      if (p.blocked) {
        detail += strfmt("rank %d blocked in %s\n", r, p.block_desc.c_str());
      }
    }
    deadlock_detail_ = detail;
    deadlocked_.store(true, std::memory_order_release);
  }
  sched_->wake_all();
}

void Engine::abort_all() {
  aborted_.store(true, std::memory_order_release);
  sched_->wake_all();
}

void Engine::declare_timeout(std::string reason) {
  {
    std::lock_guard<std::mutex> vl(verdict_mu_);
    if (stopped()) return;
    timed_out_.store(true, std::memory_order_relaxed);
    stop_reason_ = std::move(reason);
    DAMPI_TEVENT(obs::EventKind::kRunTimeout, obs::Phase::kInstant);
    aborted_.store(true, std::memory_order_release);
  }
  sched_->wake_all();
}

void Engine::cancel(const std::string& reason) {
  {
    std::lock_guard<std::mutex> vl(verdict_mu_);
    if (stopped()) return;
    cancelled_.store(true, std::memory_order_relaxed);
    stop_reason_ = reason.empty() ? "externally cancelled" : reason;
    DAMPI_TEVENT(obs::EventKind::kRunCancel, obs::Phase::kInstant);
    aborted_.store(true, std::memory_order_release);
  }
  sched_->wake_all();
}

void Engine::charge_op(EngineGuard& g, Rank r) {
  if (!budgets_armed_) return;
  const std::uint64_t ops =
      ops_executed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (opts_.max_ops > 0 && ops > opts_.max_ops) {
    declare_timeout(strfmt("op budget exhausted (%llu ops)",
                           static_cast<unsigned long long>(opts_.max_ops)));
  } else if (opts_.max_run_vtime_us > 0.0 &&
             pr(r).vt() > opts_.max_run_vtime_us) {
    declare_timeout(strfmt("virtual-time budget exhausted (%.0f us)",
                           opts_.max_run_vtime_us));
  } else if (has_wall_deadline_ && (ops & 31) == 0 &&
             std::chrono::steady_clock::now() >= run_deadline_) {
    // The clock read is amortized over 32 ops: a busy rank issues ops
    // microseconds apart, so the detection slack is negligible, while a
    // blocked rank is woken exactly at the deadline by the scheduler's
    // timed wait regardless of this stride.
    declare_timeout(strfmt("run wall deadline exceeded (%.3f s)",
                           opts_.max_run_wall_seconds));
  }
  check_abort(g);
}

void Engine::throw_program_error(EngineGuard& g, Rank r,
                                 const std::string& message) {
  {
    std::lock_guard<std::mutex> vl(verdict_mu_);
    errors_.push_back({r, message});
  }
  abort_all();
  g.unlock();
  throw ProgramFailure{message};
}

void Engine::check_abort(EngineGuard& g) {
  if (stopped()) {
    g.unlock();
    throw AbortRun{};
  }
}

// ---------------------------------------------------------------------------
// Matching engine primitives (owning shard(s) held)
// ---------------------------------------------------------------------------

std::uint64_t& Engine::seq_counter(PerRank& sender, Rank dst, CommId comm) {
  // Pack the pair; each component is comfortably below 2^20. The counter
  // map lives in the *sender's* PerRank (its shard serializes it), so the
  // old global (src, dst, comm) key drops the src component.
  const std::uint64_t key = (static_cast<std::uint64_t>(dst) << 20) |
                            static_cast<std::uint64_t>(comm);
  return sender.seq_counters[key];
}

RequestId Engine::do_isend(EngineGuard& g, Rank r, Rank dst_world, Tag tag,
                           CommId comm, Bytes payload, bool tool_internal,
                           bool synchronous, SendInfo* info) {
  (void)g;  // Covers shards r and dst_world (EngineGuard::add).
  PerRank& me = pr(r);
  me.vt_add(opts_.cost.send_overhead_us +
            opts_.cost.send_per_byte_us * static_cast<double>(payload.size()));

  Envelope env;
  env.src_world = r;
  env.dst_world = dst_world;
  env.tag = tag;
  env.comm = comm;
  env.seq = seq_counter(me, dst_world, comm)++;
  env.msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  env.arrival_vtime =
      me.vt() + opts_.cost.message_transit_us(payload.size());
  env.payload = Payload(std::move(payload), &me.buf_pool);
  env.tool_internal = tool_internal;
  if (env.payload.is_inline()) {
    payload_inline_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    payload_heap_spills_.fetch_add(1, std::memory_order_relaxed);
  }

  if (tool_internal) {
    tool_messages_.fetch_add(1, std::memory_order_relaxed);
  } else {
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  if (info != nullptr) {
    info->seq = env.seq;
    info->msg_id = env.msg_id;
    info->dst_world = dst_world;
  }

  RequestId id = kNullRequest;
  if (!tool_internal) {
    // Eager sends complete immediately; synchronous sends only complete
    // when matched (rendezvous). Either way the user must still consume
    // the request (wait/test) — unconsumed send requests are leaks.
    PoolPtr<RequestRecord> rec = new_request(me);
    rec->id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
    rec->kind = ReqKind::kSend;
    rec->owner_world = r;
    rec->comm = comm;
    rec->complete.store(!synchronous, std::memory_order_relaxed);
    rec->post_vtime = me.vt();
    id = rec->id;
    RequestRecord* rec_raw = rec.get();
    me.reqs.emplace(id, std::move(rec));
    if (synchronous) {
      env.sender_req = id;
      env.sender_world = r;
      env.sender_rec = rec_raw;
    }
  }

  match_arrival(dst_world, std::move(env));
  return id;
}

PoolPtr<RequestRecord> Engine::new_request(PerRank& me) {
  return PoolPtr<RequestRecord>(me.req_pool.acquire(),
                                PoolDeleter<RequestRecord>(&me.req_pool));
}

bool Engine::match_arrival(Rank dst, Envelope&& env) {
  PerRank& receiver = pr(dst);
  // Earliest-posted compatible receive (the record stays owned by the
  // request table; completion does not consume it).
  RequestRecord* rec = receiver.match->match_posted(env);
  if (rec != nullptr) {
    DAMPI_TEVENT(obs::EventKind::kSendMatch, obs::Phase::kInstant,
                 env.src_world, env.dst_world, env.tag);
    complete_recv(dst, *rec, std::move(env));
    return true;
  }
  DAMPI_TEVENT(obs::EventKind::kSendQueued, obs::Phase::kInstant,
               env.src_world, env.dst_world, env.tag);
  receiver.match->push_unexpected(std::move(env));
  // A rank blocked in a probe may now have a matchable message.
  sched_->wake(dst);
  return false;
}

void Engine::complete_recv(Rank r, RequestRecord& rec, Envelope&& env) {
  if (env.sender_rec != nullptr) {
    // Rendezvous: the matching receive releases the synchronous sender;
    // the release (ack) reaches it one latency after the match. The
    // sender's record is completed *cross-shard* through its atomics
    // (slab addresses are stable, and an incomplete send cannot be
    // consumed, so the record outlives this store): vtime first, then
    // the flag with release ordering — the sender's wake predicate
    // acquire-loads the flag.
    const Rank sender_world = env.sender_world;
    env.sender_rec->complete_vtime.store(
        std::max(pr(r).vt(), env.arrival_vtime) + opts_.cost.latency_us,
        std::memory_order_relaxed);
    env.sender_rec->complete.store(true, std::memory_order_release);
    sched_->wake(sender_world);
  }
  rec.msg = std::move(env);
  rec.complete.store(true, std::memory_order_release);
  sched_->wake(r);
}

RequestId Engine::do_irecv(EngineGuard& g, Rank r, Rank src_world, Tag tag,
                           CommId comm, bool tool_internal) {
  (void)g;  // Covers shard r.
  PerRank& me = pr(r);
  PoolPtr<RequestRecord> rec = new_request(me);
  rec->id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  rec->kind = ReqKind::kRecv;
  rec->owner_world = r;
  rec->posted_src_world = src_world;
  rec->posted_tag = tag;
  rec->comm = comm;
  rec->tool_internal = tool_internal;
  rec->post_vtime = me.vt();
  const RequestId id = rec->id;
  RequestRecord& rec_ref = *rec;
  me.reqs.emplace(id, std::move(rec));

  if (src_world == kAnySource) {
    std::vector<MatchCandidate>& cands = me.cand_buf;
    me.match->wildcard_candidates(tag, comm, &cands);
    if (!cands.empty()) {
      std::size_t pick = 0;
      if (cands.size() > 1) {
        // The policy RNG is engine-global mutable state; a leaf mutex
        // keeps wildcard draws well-defined under sharded locking.
        std::lock_guard<std::mutex> pl(policy_mu_);
        pick = policy_->choose(cands);
      }
      DAMPI_CHECK(pick < cands.size());
      DAMPI_TEVENT(obs::EventKind::kRecvMatch, obs::Phase::kInstant,
                   cands[pick].src_world, r, cands[pick].tag);
      complete_recv(r, rec_ref, me.match->take(cands[pick].msg_id));
      return id;
    }
  } else {
    const Envelope* env = me.match->find_specific(src_world, tag, comm);
    if (env != nullptr) {
      DAMPI_TEVENT(obs::EventKind::kRecvMatch, obs::Phase::kInstant,
                   env->src_world, r, env->tag);
      complete_recv(r, rec_ref, me.match->take(env->msg_id));
      return id;
    }
  }
  DAMPI_TEVENT(obs::EventKind::kRecvPost, obs::Phase::kInstant, src_world, 0,
               tag);
  me.match->post_recv(&rec_ref);
  return id;
}

void Engine::block_until_complete(EngineGuard& g, Rank r, RequestId req) {
  PerRank& me = pr(r);
  auto it = me.reqs.find(req);
  DAMPI_CHECK(it != me.reqs.end());
  RequestRecord* rec = it->second.get();
  if (rec->complete.load(std::memory_order_acquire)) return;
  const std::string desc =
      rec->kind == ReqKind::kSend
          ? strfmt("wait(ssend comm=%d)", rec->comm)
          : strfmt("wait(recv src=%d tag=%d comm=%d)", rec->posted_src_world,
                   rec->posted_tag, rec->comm);
  blocking_wait(g, r, BlockKind::kWait, desc, [rec] {
    return rec->complete.load(std::memory_order_acquire);
  });
}

Status Engine::finish_request(EngineGuard& g, Rank r, RequestId req, Bytes* out,
                              bool run_hooks) {
  PerRank& me = pr(r);
  // Extract the record so hook-issued raw operations cannot invalidate it.
  auto node = me.reqs.extract(req);
  DAMPI_CHECK_MSG(!node.empty(), "request vanished during completion");
  PoolPtr<RequestRecord> rec = std::move(node.mapped());
  DAMPI_CHECK(rec->complete.load(std::memory_order_acquire));

  Status status;
  // A synchronous send's completion waits for the remote match.
  me.vt_floor(rec->complete_vtime.load(std::memory_order_relaxed));
  if (rec->kind == ReqKind::kRecv) {
    me.vt_store(std::max(me.vt(), rec->msg.arrival_vtime) +
                opts_.cost.recv_overhead_us);
    status.source = comms_.to_rel(rec->comm, rec->msg.src_world);
    status.tag = rec->msg.tag;
    status.bytes = rec->msg.payload.size();
    status.seq = rec->msg.seq;
    status.msg_id = rec->msg.msg_id;
  }

  if (run_hooks) {
    ReqCompletion completion;
    completion.id = rec->id;
    completion.kind = rec->kind;
    completion.comm = rec->comm;
    completion.posted_src = rec->kind == ReqKind::kRecv
                                ? comms_.to_rel(rec->comm,
                                                rec->posted_src_world)
                                : kAnySource;
    if (rec->posted_src_world == kAnySource) completion.posted_src = kAnySource;
    completion.posted_tag = rec->posted_tag;
    completion.src_world = rec->msg.src_world;
    completion.tag = rec->msg.tag;
    completion.seq = rec->msg.seq;
    completion.msg_id = rec->msg.msg_id;
    completion.status = status;
    // Materialize the payload (hooks mutate it in place — piggyback
    // strip); pool access stays inside the critical section.
    Bytes hook_payload = rec->msg.payload.release(&me.buf_pool);
    completion.payload = &hook_payload;
    g.unlock();
    hooks_post_wait(r, completion);
    g.lock();
    status = completion.status;
    if (rec->kind == ReqKind::kRecv && out != nullptr) {
      *out = std::move(hook_payload);
    } else {
      // Dropped payload: keep its capacity for the next internal copy.
      me.buf_pool.recycle(std::move(hook_payload));
    }
  } else if (rec->kind == ReqKind::kRecv) {
    if (out != nullptr) {
      *out = rec->msg.payload.release(&me.buf_pool);
    } else {
      rec->msg.payload.recycle_into(me.buf_pool);
    }
  }
  return status;
}

// ---------------------------------------------------------------------------
// Proc-facing API
// ---------------------------------------------------------------------------

void Engine::validate_comm_member(EngineGuard& g, Rank r, CommId comm) {
  if (!comms_.valid(comm)) {
    throw_program_error(g, r,
                        strfmt("operation on invalid communicator %d", comm));
  }
  if (!comms_.get(comm).contains_world(r)) {
    throw_program_error(
        g, r, strfmt("rank %d is not a member of communicator %d", r, comm));
  }
}

RequestId Engine::api_isend(Rank r, Rank dst, Tag tag, Bytes payload,
                            CommId comm, bool blocking, bool synchronous) {
  SendCall call;
  call.dst = dst;
  call.tag = tag;
  call.comm = comm;
  call.payload = &payload;
  call.blocking = blocking;
  hooks_pre_isend(r, call);

  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  validate_comm_member(g, r, call.comm);
  if (call.tag < 0 || call.tag > kMaxUserTag) {
    throw_program_error(g, r, strfmt("invalid send tag %d", call.tag));
  }
  const int csize = comms_.get(call.comm).size();
  if (call.dst < 0 || call.dst >= csize) {
    throw_program_error(g, r, strfmt("send to invalid rank %d", call.dst));
  }
  stats_.bump(OpCategory::kSendRecv, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  const Rank dst_world = comms_.to_world(call.comm, call.dst);
  // Delivering into dst's queues needs its shard too. add() may drop and
  // reacquire to respect lock ordering; nothing resolved above is held by
  // reference across it, and the comm cannot be freed meanwhile (freeing
  // is collective over its members, which include the rank sending here).
  g.add(dst_world);
  SendInfo info;
  const RequestId id = do_isend(g, r, dst_world, call.tag, call.comm,
                                std::move(*call.payload), false, synchronous,
                                &info);
  g.unlock();
  hooks_post_isend(r, call, id, info);
  return id;
}

RequestId Engine::api_irecv(Rank r, Rank src, Tag tag, CommId comm,
                            bool blocking) {
  RecvCall call;
  call.src = src;
  call.tag = tag;
  call.comm = comm;
  call.blocking = blocking;
  hooks_pre_irecv(r, call);

  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  validate_comm_member(g, r, call.comm);
  if (call.tag < kAnyTag || call.tag > kMaxUserTag) {
    throw_program_error(g, r, strfmt("invalid recv tag %d", call.tag));
  }
  const int csize = comms_.get(call.comm).size();
  if (call.src != kAnySource && (call.src < 0 || call.src >= csize)) {
    throw_program_error(g, r, strfmt("recv from invalid rank %d", call.src));
  }
  stats_.bump(OpCategory::kSendRecv, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  const Rank src_world = comms_.to_world(call.comm, call.src);
  const RequestId id = do_irecv(g, r, src_world, call.tag, call.comm, false);
  g.unlock();
  hooks_post_irecv(r, call, id);
  return id;
}

Status Engine::api_wait(Rank r, RequestId req, Bytes* out, bool count_stat) {
  if (count_stat) hooks_pre_wait(r, req);

  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  if (pr(r).reqs.find(req) == pr(r).reqs.end()) {
    throw_program_error(g, r, "wait on invalid or consumed request");
  }
  if (count_stat) stats_.bump(OpCategory::kWait, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  block_until_complete(g, r, req);
  return finish_request(g, r, req, out, /*run_hooks=*/true);
}

bool Engine::api_test(Rank r, RequestId req, Status* status, Bytes* out) {
  hooks_pre_wait(r, req);

  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  auto it = pr(r).reqs.find(req);
  if (it == pr(r).reqs.end()) {
    throw_program_error(g, r, "test on invalid or consumed request");
  }
  stats_.bump(OpCategory::kWait, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  if (!it->second->complete.load(std::memory_order_acquire)) {
    // A failed poll is a scheduling point: under run-to-block execution
    // the polling rank must cede the host or a test loop starves the
    // very ranks that would complete the request.
    sched_->yield(g, r);
    return false;
  }
  Status st = finish_request(g, r, req, out, /*run_hooks=*/true);
  if (status != nullptr) *status = st;
  return true;
}

void Engine::api_waitall(Rank r, std::span<RequestId> reqs) {
  if (!reqs.empty()) hooks_pre_wait(r, reqs[0]);
  bool first = true;
  for (RequestId& req : reqs) {
    if (req == kNullRequest) continue;
    EngineGuard g(lock_, r);
    check_abort(g);
    charge_op(g, r);
    if (pr(r).reqs.find(req) == pr(r).reqs.end()) {
      throw_program_error(g, r, "waitall on invalid or consumed request");
    }
    if (first) {
      stats_.bump(OpCategory::kWait, r);
      pr(r).vt_add(opts_.cost.local_op_us);
      first = false;
    }
    block_until_complete(g, r, req);
    finish_request(g, r, req, nullptr, /*run_hooks=*/true);
    req = kNullRequest;
    g.unlock();
  }
}

std::size_t Engine::api_waitany(Rank r, std::span<RequestId> reqs,
                                Status* status, Bytes* out) {
  if (!reqs.empty()) hooks_pre_wait(r, reqs[0]);

  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  stats_.bump(OpCategory::kWait, r);
  pr(r).vt_add(opts_.cost.local_op_us);

  std::vector<RequestRecord*> recs(reqs.size(), nullptr);
  bool any_live = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i] == kNullRequest) continue;
    auto it = pr(r).reqs.find(reqs[i]);
    if (it == pr(r).reqs.end()) {
      throw_program_error(g, r, "waitany on invalid or consumed request");
    }
    recs[i] = it->second.get();
    any_live = true;
  }
  if (!any_live) {
    throw_program_error(g, r, "waitany with no live requests");
  }
  auto ready_index = [&recs]() -> std::size_t {
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i] != nullptr &&
          recs[i]->complete.load(std::memory_order_acquire)) {
        return i;
      }
    }
    return recs.size();
  };
  blocking_wait(g, r, BlockKind::kWait, "waitany",
                [&] { return ready_index() < recs.size(); });
  const std::size_t idx = ready_index();
  DAMPI_CHECK(idx < recs.size());
  Status st = finish_request(g, r, reqs[idx], out, /*run_hooks=*/true);
  if (status != nullptr) *status = st;
  reqs[idx] = kNullRequest;
  return idx;
}

bool Engine::api_testall(Rank r, std::span<RequestId> reqs) {
  if (!reqs.empty()) hooks_pre_wait(r, reqs[0]);
  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  stats_.bump(OpCategory::kWait, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  for (const RequestId req : reqs) {
    if (req == kNullRequest) continue;
    auto it = pr(r).reqs.find(req);
    if (it == pr(r).reqs.end()) {
      throw_program_error(g, r, "testall on invalid or consumed request");
    }
    if (!it->second->complete.load(std::memory_order_acquire)) {
      // MPI: consume all or none.
      sched_->yield(g, r);
      return false;
    }
  }
  for (RequestId& req : reqs) {
    if (req == kNullRequest) continue;
    finish_request(g, r, req, nullptr, /*run_hooks=*/true);
    req = kNullRequest;
  }
  return true;
}

std::size_t Engine::api_testany(Rank r, std::span<RequestId> reqs,
                                Status* status, Bytes* out) {
  if (!reqs.empty()) hooks_pre_wait(r, reqs[0]);
  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  stats_.bump(OpCategory::kWait, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i] == kNullRequest) continue;
    auto it = pr(r).reqs.find(reqs[i]);
    if (it == pr(r).reqs.end()) {
      throw_program_error(g, r, "testany on invalid or consumed request");
    }
    if (it->second->complete.load(std::memory_order_acquire)) {
      Status st = finish_request(g, r, reqs[i], out, /*run_hooks=*/true);
      if (status != nullptr) *status = st;
      reqs[i] = kNullRequest;
      return i;
    }
  }
  sched_->yield(g, r);
  return reqs.size();
}

Status Engine::api_probe(Rank r, Rank src, Tag tag, CommId comm, bool* flag) {
  ProbeCall call;
  call.src = src;
  call.tag = tag;
  call.comm = comm;
  call.blocking = (flag == nullptr);
  hooks_pre_probe(r, call);

  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  validate_comm_member(g, r, call.comm);
  stats_.bump(OpCategory::kSendRecv, r);
  pr(r).vt_add(opts_.cost.local_op_us);
  const Rank src_world = comms_.to_world(call.comm, call.src);

  auto exists = [this, r, src_world, &call]() -> bool {
    if (src_world == kAnySource) {
      return pr(r).match->has_candidates(call.tag, call.comm);
    }
    return pr(r).match->find_specific(src_world, call.tag, call.comm) !=
           nullptr;
  };

  bool found = exists();
  if (!found && call.blocking) {
    const std::string desc =
        strfmt("probe(src=%d tag=%d comm=%d)", call.src, call.tag, call.comm);
    blocking_wait(g, r, BlockKind::kProbe, desc, exists);
    found = true;
  } else if (!found) {
    sched_->yield(g, r);  // iprobe miss: see api_test
  }

  Status status;
  if (found) {
    const Envelope* env = nullptr;
    if (src_world == kAnySource) {
      std::vector<MatchCandidate>& cands = pr(r).cand_buf;
      pr(r).match->wildcard_candidates(call.tag, call.comm, &cands);
      DAMPI_CHECK(!cands.empty());
      std::size_t pick = 0;
      if (cands.size() > 1) {
        std::lock_guard<std::mutex> pl(policy_mu_);
        pick = policy_->choose(cands);
      }
      env = pr(r).match->find_by_id(cands[pick].msg_id);
    } else {
      env = pr(r).match->find_specific(src_world, call.tag, call.comm);
    }
    DAMPI_CHECK(env != nullptr);
    status.source = comms_.to_rel(call.comm, env->src_world);
    status.tag = env->tag;
    status.bytes = env->payload.size();
    status.seq = env->seq;
    status.msg_id = env->msg_id;
    pr(r).vt_store(std::max(pr(r).vt(), env->arrival_vtime) +
                   opts_.cost.local_op_us);
  }
  g.unlock();
  hooks_post_probe(r, call, found, status);
  if (flag != nullptr) *flag = found;
  return status;
}

// ---------------------------------------------------------------------------
// Collectives (all shards held: slot state and the comm table are global)
// ---------------------------------------------------------------------------

Bytes Engine::apply_reduce(EngineGuard& g, Rank r, const CollSlot& slot,
                           const CommRecord& comm_rec) {
  const std::size_t n = slot.data.empty() ? 0 : slot.data[0].size();
  for (const Bytes& b : slot.data) {
    if (b.size() != n) {
      throw_program_error(g, r, "reduce contributions differ in length");
    }
  }
  if (n % 8 != 0) {
    throw_program_error(g, r, "reduce contribution not a multiple of 8");
  }
  const std::size_t words = n / 8;
  const bool is_f64 = slot.op == ReduceOp::kSumF64 ||
                      slot.op == ReduceOp::kMaxF64 ||
                      slot.op == ReduceOp::kMinF64;
  Bytes out = pr(r).buf_pool.copy_of(slot.data[0]);
  for (int m = 1; m < comm_rec.size(); ++m) {
    const Bytes& in = slot.data[static_cast<std::size_t>(m)];
    for (std::size_t w = 0; w < words; ++w) {
      if (is_f64) {
        double a, b;
        std::memcpy(&a, out.data() + w * 8, 8);
        std::memcpy(&b, in.data() + w * 8, 8);
        switch (slot.op) {
          case ReduceOp::kSumF64: a += b; break;
          case ReduceOp::kMaxF64: a = std::max(a, b); break;
          case ReduceOp::kMinF64: a = std::min(a, b); break;
          default: break;
        }
        std::memcpy(out.data() + w * 8, &a, 8);
      } else {
        std::uint64_t a, b;
        std::memcpy(&a, out.data() + w * 8, 8);
        std::memcpy(&b, in.data() + w * 8, 8);
        switch (slot.op) {
          case ReduceOp::kSumU64: a += b; break;
          case ReduceOp::kMaxU64: a = std::max(a, b); break;
          case ReduceOp::kMinU64: a = std::min(a, b); break;
          default: break;
        }
        std::memcpy(out.data() + w * 8, &a, 8);
      }
    }
  }
  return out;
}

void Engine::compute_slot_results(CollSlot& slot, const CommRecord& comm_rec,
                                  CollKind kind) {
  if (slot.split_done) return;
  slot.split_done = true;
  if (kind == CollKind::kCommDup) {
    slot.dup_comm = comms_.create(comm_rec.members, /*tool_internal=*/false);
    return;
  }
  // comm_split: group members by color, order by (key, world rank).
  slot.comm_of_member.assign(static_cast<std::size_t>(comm_rec.size()),
                             kCommNull);
  std::map<int, std::vector<std::pair<int, Rank>>> groups;
  for (int m = 0; m < comm_rec.size(); ++m) {
    const int color = slot.colors[static_cast<std::size_t>(m)];
    if (color < 0) continue;  // MPI_UNDEFINED
    groups[color].push_back({slot.keys[static_cast<std::size_t>(m)],
                             comm_rec.members[static_cast<std::size_t>(m)]});
  }
  for (auto& [color, entries] : groups) {
    std::sort(entries.begin(), entries.end());
    std::vector<Rank> members;
    members.reserve(entries.size());
    for (auto& [key, world] : entries) members.push_back(world);
    const CommId id = comms_.create(members, /*tool_internal=*/false);
    for (int m = 0; m < comm_rec.size(); ++m) {
      if (slot.colors[static_cast<std::size_t>(m)] == color) {
        slot.comm_of_member[static_cast<std::size_t>(m)] = id;
      }
    }
  }
}

CollUserResult Engine::collective_impl(Rank r, CollKind kind, CommId comm,
                                       Rank root_rel, CollUserData data,
                                       Bytes pb_contribution,
                                       bool tool_internal,
                                       CollResult* tool_result) {
  EngineGuard g(lock_, EngineGuard::kAllShards);
  check_abort(g);
  if (!tool_internal) charge_op(g, r);
  validate_comm_member(g, r, comm);
  DAMPI_TEVENT(obs::EventKind::kCollective, obs::Phase::kBegin,
               static_cast<std::int32_t>(kind), comm);
  // Copy what we need: the comm table may grow (reallocate) while we wait.
  const CommRecord comm_rec = comms_.get(comm);
  const int size = comm_rec.size();
  const Rank cr = comm_rec.world_to_comm[static_cast<std::size_t>(r)];
  const bool rooted = root_to_leaves(kind) || leaves_to_root(kind);
  if (rooted && (root_rel < 0 || root_rel >= size)) {
    throw_program_error(g, r, strfmt("invalid collective root %d", root_rel));
  }
  const Rank root_world = rooted ? comm_rec.members[static_cast<std::size_t>(
                                       root_rel)]
                                 : -1;

  if (!tool_internal) {
    stats_.bump(OpCategory::kCollective, r);
  }
  pr(r).vt_add(opts_.cost.local_op_us);

  const std::uint64_t gen = pr(r).coll_gen[comm]++;
  CollSlot& slot = coll_slots_[{comm, gen}];
  if (slot.arrived == 0) {
    slot.kind = kind;
    slot.root_world = root_world;
    slot.pb.resize(static_cast<std::size_t>(size));
    slot.data.resize(static_cast<std::size_t>(size));
    slot.multi.resize(static_cast<std::size_t>(size));
    slot.colors.assign(static_cast<std::size_t>(size), 0);
    slot.keys.assign(static_cast<std::size_t>(size), 0);
  } else {
    if (slot.kind != kind || slot.root_world != root_world) {
      throw_program_error(
          g, r,
          strfmt("collective mismatch on comm %d: rank %d called %s but the "
                 "operation in flight is %s",
                 comm, r, coll_kind_name(kind), coll_kind_name(slot.kind)));
    }
  }
  if (kind == CollKind::kReduce || kind == CollKind::kAllreduce) {
    if (slot.op_set && slot.op != data.op) {
      throw_program_error(g, r, "mismatched reduce operators");
    }
    slot.op = data.op;
    slot.op_set = true;
  }
  if (kind == CollKind::kScatter && cr == root_rel &&
      static_cast<int>(data.multi.size()) != size) {
    throw_program_error(g, r, "scatter requires one slice per member");
  }
  if (kind == CollKind::kAlltoall &&
      static_cast<int>(data.multi.size()) != size) {
    throw_program_error(g, r, "alltoall requires one slice per member");
  }

  slot.pb[static_cast<std::size_t>(cr)] = std::move(pb_contribution);
  slot.data[static_cast<std::size_t>(cr)] = std::move(data.single);
  slot.multi[static_cast<std::size_t>(cr)] = std::move(data.multi);
  slot.colors[static_cast<std::size_t>(cr)] = data.color;
  slot.keys[static_cast<std::size_t>(cr)] = data.key;
  ++slot.arrived;
  slot.max_arrival_vtime = std::max(slot.max_arrival_vtime, pr(r).vt());
  if (rooted && cr == root_rel) {
    slot.root_arrived = true;
    slot.root_arrival_vtime = pr(r).vt();
  }

  // Wake members whose completion predicate may have flipped.
  const bool all_arrived = slot.arrived == size;
  if (is_all_style(kind) && all_arrived) {
    for (Rank w : comm_rec.members) sched_->wake(w);
  } else if (root_to_leaves(kind) && slot.root_arrived && cr == root_rel) {
    for (Rank w : comm_rec.members) sched_->wake(w);
  } else if (leaves_to_root(kind) && all_arrived) {
    sched_->wake(root_world);
  }

  // Completion predicate for this rank.
  auto my_pred = [&slot, kind, cr, root_rel, size]() -> bool {
    if (is_all_style(kind)) return slot.arrived == size;
    if (root_to_leaves(kind)) return cr == root_rel || slot.root_arrived;
    return cr != root_rel || slot.arrived == size;  // leaves_to_root
  };
  if (!my_pred()) {
    const std::string desc = strfmt("collective %s comm=%d gen=%llu",
                                    coll_kind_name(kind), comm,
                                    static_cast<unsigned long long>(gen));
    blocking_wait(g, r, BlockKind::kColl, desc, my_pred);
  }

  // Completion virtual time.
  const double coll_cost = opts_.cost.collective_us(size);
  double done_vtime;
  if (is_all_style(kind)) {
    done_vtime = slot.max_arrival_vtime + coll_cost;
  } else if (root_to_leaves(kind)) {
    done_vtime = cr == root_rel
                     ? pr(r).vt() + coll_cost
                     : std::max(pr(r).vt(),
                                slot.root_arrival_vtime + coll_cost);
  } else {  // leaves_to_root
    done_vtime = cr == root_rel ? slot.max_arrival_vtime + coll_cost
                                : pr(r).vt() + coll_cost;
  }
  pr(r).vt_floor(done_vtime);

  // Extract user-visible results.
  BufferPool& bufs = pr(r).buf_pool;
  CollUserResult result;
  switch (kind) {
    case CollKind::kBarrier:
      break;
    case CollKind::kBcast:
      result.single =
          bufs.copy_of(slot.data[static_cast<std::size_t>(root_rel)]);
      break;
    case CollKind::kReduce:
      if (cr == root_rel) {
        if (!slot.reduced_done) {
          slot.reduced = apply_reduce(g, r, slot, comm_rec);
          slot.reduced_done = true;
        }
        result.single = bufs.copy_of(slot.reduced);
      }
      break;
    case CollKind::kAllreduce:
      if (!slot.reduced_done) {
        slot.reduced = apply_reduce(g, r, slot, comm_rec);
        slot.reduced_done = true;
      }
      result.single = bufs.copy_of(slot.reduced);
      break;
    case CollKind::kGather:
      if (cr == root_rel) result.multi = slot.data;
      break;
    case CollKind::kScatter: {
      const auto& slices = slot.multi[static_cast<std::size_t>(root_rel)];
      result.single = bufs.copy_of(slices[static_cast<std::size_t>(cr)]);
      break;
    }
    case CollKind::kAllgather:
      result.multi = slot.data;
      break;
    case CollKind::kAlltoall: {
      result.multi.resize(static_cast<std::size_t>(size));
      for (int m = 0; m < size; ++m) {
        const auto& their = slot.multi[static_cast<std::size_t>(m)];
        if (static_cast<int>(their.size()) == size) {
          result.multi[static_cast<std::size_t>(m)] =
              bufs.copy_of(their[static_cast<std::size_t>(cr)]);
        }
      }
      break;
    }
    case CollKind::kCommFree:
      // All members have arrived (all-style); release the communicator
      // exactly once.
      if (!slot.split_done) {
        slot.split_done = true;
        comms_.free(comm);
      }
      break;
    case CollKind::kCommDup:
    case CollKind::kCommSplit: {
      compute_slot_results(slot, comm_rec, kind);
      if (kind == CollKind::kCommDup) {
        result.new_comm = slot.dup_comm;
        if (tool_internal) {
          // Tool shadow communicators are exempt from leak accounting.
          // compute_slot_results created it as a user comm for the first
          // departer; flip the flag exactly once.
          // (All participants of a raw_comm_dup are tool-internal calls.)
        }
      } else {
        result.new_comm = slot.comm_of_member[static_cast<std::size_t>(cr)];
      }
      break;
    }
  }

  // Piggyback routing for tool layers.
  if (tool_result != nullptr) {
    tool_result->new_comm = result.new_comm;
    auto any_pb = [&slot]() {
      for (const Bytes& b : slot.pb) {
        if (!b.empty()) return true;
      }
      return false;
    };
    if (is_all_style(kind) || (leaves_to_root(kind) && cr == root_rel)) {
      if (!slot.merged_pb_done && any_pb()) {
        DAMPI_CHECK_MSG(static_cast<bool>(opts_.tools.coll_merge),
                        "collective piggyback requires a merge function");
        std::vector<Bytes> present;
        for (const Bytes& b : slot.pb) {
          if (!b.empty()) present.push_back(b);
        }
        slot.merged_pb = opts_.tools.coll_merge(present);
        slot.merged_pb_done = true;
      }
      if (slot.merged_pb_done) {
        tool_result->has_incoming = true;
        tool_result->incoming = bufs.copy_of(slot.merged_pb);
      }
    } else if (root_to_leaves(kind) && cr != root_rel) {
      const Bytes& root_pb = slot.pb[static_cast<std::size_t>(root_rel)];
      if (!root_pb.empty()) {
        tool_result->has_incoming = true;
        tool_result->incoming = bufs.copy_of(root_pb);
      }
    }
  }

  ++slot.departed;
  if (slot.departed == size) {
    // The slot's scratch buffers are dead; keep their capacity so the
    // next collective round's contributions and copies do not allocate.
    for (Bytes& b : slot.pb) bufs.recycle(std::move(b));
    for (Bytes& b : slot.data) bufs.recycle(std::move(b));
    for (auto& v : slot.multi) {
      for (Bytes& b : v) bufs.recycle(std::move(b));
    }
    bufs.recycle(std::move(slot.merged_pb));
    bufs.recycle(std::move(slot.reduced));
    coll_slots_.erase({comm, gen});
  }
  DAMPI_TEVENT(obs::EventKind::kCollective, obs::Phase::kEnd,
               static_cast<std::int32_t>(kind), comm);
  return result;
}

CollUserResult Engine::api_collective(Rank r, CollKind kind, CommId comm,
                                      Rank root, CollUserData data) {
  CollCall call;
  call.kind = kind;
  call.comm = comm;
  call.root = root;
  hooks_pre_collective(r, call);
  CollResult tool_result;
  CollUserResult result =
      collective_impl(r, kind, call.comm, call.root, std::move(data),
                      std::move(call.pb_contribution), false, &tool_result);
  hooks_post_collective(r, call, tool_result);
  return result;
}

void Engine::api_comm_free(Rank r, CommId comm) {
  // MPI_Comm_free is collective over the communicator: synchronize all
  // members (all-style), then release it exactly once.
  {
    EngineGuard g(lock_, r);
    check_abort(g);
    if (comm == kCommWorld) {
      throw_program_error(g, r, "cannot free MPI_COMM_WORLD");
    }
    if (!comms_.valid(comm)) {
      throw_program_error(g, r,
                          strfmt("freeing invalid communicator %d", comm));
    }
    g.unlock();
  }
  api_collective(r, CollKind::kCommFree, comm, 0, {});
}

void Engine::api_pcontrol(Rank r, int level, const std::string& what) {
  {
    EngineGuard g(lock_, r);
    check_abort(g);
    charge_op(g, r);
    stats_.bump(OpCategory::kOther, r);
    pr(r).vt_add(opts_.cost.local_op_us);
  }
  hooks_pcontrol(r, level, what);
}

void Engine::api_compute(Rank r, double us) {
  EngineGuard g(lock_, r);
  check_abort(g);
  charge_op(g, r);
  pr(r).vt_add(us);
}

void Engine::api_fail(Rank r, const std::string& message) {
  {
    std::lock_guard<std::mutex> vl(verdict_mu_);
    errors_.push_back({r, message});
  }
  abort_all();
  throw ProgramFailure{message};
}

// ---------------------------------------------------------------------------
// Translation / introspection
// ---------------------------------------------------------------------------
//
// Comm-table writers hold *all* shards, so holding any one shard yields a
// consistent read; these rank-less accessors pin shard 0. (Global mode:
// shard 0 is the one mutex, preserving the old behaviour exactly.)

int Engine::comm_size_of(CommId comm) {
  EngineGuard g(lock_, Rank{0});
  return comms_.get(comm).size();
}

Rank Engine::comm_rank_of(CommId comm, Rank world) {
  EngineGuard g(lock_, Rank{0});
  return comms_.to_rel(comm, world);
}

Rank Engine::to_world(CommId comm, Rank rel) {
  EngineGuard g(lock_, Rank{0});
  return comms_.to_world(comm, rel);
}

Rank Engine::to_rel(CommId comm, Rank world) {
  EngineGuard g(lock_, Rank{0});
  return comms_.to_rel(comm, world);
}

// ---------------------------------------------------------------------------
// Raw (tool) operations
// ---------------------------------------------------------------------------

RequestId Engine::raw_isend(Rank r, Rank dst, Tag tag, CommId comm,
                            Bytes payload) {
  EngineGuard g(lock_, r);
  check_abort(g);
  const Rank dst_world = comms_.to_world(comm, dst);
  g.add(dst_world);
  // Tool sends are eager and auto-consumed: piggyback senders never wait
  // on them (the paper's pb sends are waited trivially in MPI_Wait).
  do_isend(g, r, dst_world, tag, comm, std::move(payload), true,
           /*synchronous=*/false, nullptr);
  return kNullRequest;
}

RequestId Engine::raw_irecv(Rank r, Rank src, Tag tag, CommId comm) {
  EngineGuard g(lock_, r);
  check_abort(g);
  const Rank src_world = comms_.to_world(comm, src);
  return do_irecv(g, r, src_world, tag, comm, true);
}

Status Engine::raw_wait(Rank r, RequestId req, Bytes* out) {
  EngineGuard g(lock_, r);
  check_abort(g);
  DAMPI_CHECK_MSG(pr(r).reqs.find(req) != pr(r).reqs.end(),
                  "raw_wait on invalid request");
  block_until_complete(g, r, req);
  return finish_request(g, r, req, out, /*run_hooks=*/false);
}

Status Engine::raw_recv(Rank r, Rank src, Tag tag, CommId comm, Bytes* out) {
  const RequestId req = raw_irecv(r, src, tag, comm);
  return raw_wait(r, req, out);
}

bool Engine::raw_iprobe(Rank r, Rank src, Tag tag, CommId comm,
                        Status* status) {
  EngineGuard g(lock_, r);
  check_abort(g);
  const Rank src_world = comms_.to_world(comm, src);
  const Envelope* env = nullptr;
  if (src_world == kAnySource) {
    std::vector<MatchCandidate>& cands = pr(r).cand_buf;
    pr(r).match->wildcard_candidates(tag, comm, &cands);
    if (!cands.empty()) {
      // Deterministic head (lowest source) — tool drains need no policy.
      env = pr(r).match->find_by_id(cands.front().msg_id);
    }
  } else {
    env = pr(r).match->find_specific(src_world, tag, comm);
  }
  if (env == nullptr) {
    sched_->yield(g, r);
    return false;
  }
  if (status != nullptr) {
    status->source = comms_.to_rel(comm, env->src_world);
    status->tag = env->tag;
    status->bytes = env->payload.size();
    status->seq = env->seq;
    status->msg_id = env->msg_id;
  }
  return true;
}

void Engine::raw_barrier(Rank r, CommId comm) {
  collective_impl(r, CollKind::kBarrier, comm, 0, {}, {},
                  /*tool_internal=*/true, nullptr);
}

CommId Engine::raw_comm_dup(Rank r, CommId comm) {
  CollUserResult result = collective_impl(r, CollKind::kCommDup, comm, 0, {},
                                          {}, /*tool_internal=*/true, nullptr);
  // Mark the product tool-internal (exempt from leak accounting). Every
  // participant executes this; the flag write is idempotent. Comm-table
  // writes take the all-shards section.
  EngineGuard g(lock_, EngineGuard::kAllShards);
  comms_.mark_tool_internal(result.new_comm);
  return result.new_comm;
}

void Engine::add_cost(Rank r, double us) {
  // Called by tools in rank r's own execution context: the clock is
  // single-writer, so this needs no shard.
  pr(r).vt_add(us);
}

double Engine::vtime_of(Rank r) { return pr(r).vt(); }

// ---------------------------------------------------------------------------
// Tool hook dispatch (no shards held: hooks may re-enter)
// ---------------------------------------------------------------------------

void Engine::hooks_init(Rank r) {
  auto& tools = pr(r).tools;
  for (auto& t : tools) t->on_init(*pr(r).ctx);
}

void Engine::hooks_finalize(Rank r) {
  auto& tools = pr(r).tools;
  for (auto it = tools.rbegin(); it != tools.rend(); ++it) {
    (*it)->on_finalize(*pr(r).ctx);
  }
}

void Engine::hooks_pre_isend(Rank r, SendCall& call) {
  for (auto& t : pr(r).tools) t->pre_isend(*pr(r).ctx, call);
}

void Engine::hooks_post_isend(Rank r, const SendCall& call, RequestId id,
                              const SendInfo& info) {
  auto& tools = pr(r).tools;
  for (auto it = tools.rbegin(); it != tools.rend(); ++it) {
    (*it)->post_isend(*pr(r).ctx, call, id, info);
  }
}

void Engine::hooks_pre_irecv(Rank r, RecvCall& call) {
  for (auto& t : pr(r).tools) t->pre_irecv(*pr(r).ctx, call);
}

void Engine::hooks_post_irecv(Rank r, const RecvCall& call, RequestId id) {
  auto& tools = pr(r).tools;
  for (auto it = tools.rbegin(); it != tools.rend(); ++it) {
    (*it)->post_irecv(*pr(r).ctx, call, id);
  }
}

void Engine::hooks_pre_wait(Rank r, RequestId id) {
  for (auto& t : pr(r).tools) t->pre_wait(*pr(r).ctx, id);
}

void Engine::hooks_post_wait(Rank r, ReqCompletion& completion) {
  auto& tools = pr(r).tools;
  for (auto it = tools.rbegin(); it != tools.rend(); ++it) {
    (*it)->post_wait(*pr(r).ctx, completion);
  }
}

void Engine::hooks_pre_probe(Rank r, ProbeCall& call) {
  for (auto& t : pr(r).tools) t->pre_probe(*pr(r).ctx, call);
}

void Engine::hooks_post_probe(Rank r, const ProbeCall& call, bool flag,
                              Status& status) {
  auto& tools = pr(r).tools;
  for (auto it = tools.rbegin(); it != tools.rend(); ++it) {
    (*it)->post_probe(*pr(r).ctx, call, flag, status);
  }
}

void Engine::hooks_pre_collective(Rank r, CollCall& call) {
  for (auto& t : pr(r).tools) t->pre_collective(*pr(r).ctx, call);
}

void Engine::hooks_post_collective(Rank r, const CollCall& call,
                                   const CollResult& result) {
  auto& tools = pr(r).tools;
  for (auto it = tools.rbegin(); it != tools.rend(); ++it) {
    (*it)->post_collective(*pr(r).ctx, call, result);
  }
}

void Engine::hooks_pcontrol(Rank r, int level, const std::string& what) {
  for (auto& t : pr(r).tools) t->on_pcontrol(*pr(r).ctx, level, what);
}

// ---------------------------------------------------------------------------
// Runtime wrapper
// ---------------------------------------------------------------------------

Runtime::Runtime(RunOptions options)
    : engine_(std::make_unique<Engine>(std::move(options))) {}

Runtime::~Runtime() = default;

RunReport Runtime::run(const ProgramFn& program) {
  return engine_->run(program);
}

}  // namespace dampi::mpism
