#include "mpism/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strutil.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dampi::mpism {

namespace {

const char* kind_name(FaultPoint::Kind kind) {
  switch (kind) {
    case FaultPoint::Kind::kAbort:
      return "abort";
    case FaultPoint::Kind::kError:
      return "error";
    case FaultPoint::Kind::kDelay:
      return "delay";
    case FaultPoint::Kind::kFlaky:
      return "flaky";
  }
  return "?";
}

/// Parses a non-negative integer covering the whole of `text`.
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || value < 0.0) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_point(const std::string& item, FaultPoint* out, std::string* error) {
  const std::size_t at = item.find('@');
  if (at == std::string::npos) {
    *error = strfmt("fault point '%s': missing '@'", item.c_str());
    return false;
  }
  const std::string kind = item.substr(0, at);
  FaultPoint point;
  int extra_fields = 0;
  if (kind == "abort") {
    point.kind = FaultPoint::Kind::kAbort;
  } else if (kind == "error") {
    point.kind = FaultPoint::Kind::kError;
  } else if (kind == "delay") {
    point.kind = FaultPoint::Kind::kDelay;
    extra_fields = 1;
  } else if (kind == "flaky") {
    point.kind = FaultPoint::Kind::kFlaky;
    extra_fields = 1;
  } else {
    *error = strfmt("fault point '%s': unknown kind '%s'", item.c_str(),
                    kind.c_str());
    return false;
  }

  std::vector<std::string> fields;
  std::size_t start = at + 1;
  while (true) {
    const std::size_t colon = item.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(item.substr(start));
      break;
    }
    fields.push_back(item.substr(start, colon - start));
    start = colon + 1;
  }
  if (static_cast<int>(fields.size()) != 2 + extra_fields) {
    *error = strfmt("fault point '%s': expected %d ':'-separated fields",
                    item.c_str(), 2 + extra_fields);
    return false;
  }

  std::uint64_t rank = 0;
  std::uint64_t op = 0;
  if (!parse_u64(fields[0], &rank) || !parse_u64(fields[1], &op) || op == 0) {
    *error = strfmt("fault point '%s': bad rank or op index (op is 1-based)",
                    item.c_str());
    return false;
  }
  point.rank = static_cast<Rank>(rank);
  point.op_index = op;
  if (point.kind == FaultPoint::Kind::kDelay) {
    if (!parse_double(fields[2], &point.delay_us)) {
      *error = strfmt("fault point '%s': bad delay microseconds", item.c_str());
      return false;
    }
  } else if (point.kind == FaultPoint::Kind::kFlaky) {
    if (!parse_u64(fields[2], &point.max_fires) || point.max_fires == 0) {
      *error = strfmt("fault point '%s': bad fire count", item.c_str());
      return false;
    }
  }
  *out = point;
  return true;
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultPoint> points)
    : points_(std::move(points)),
      fired_(new std::atomic<std::uint64_t>[points_.empty() ? 1
                                                            : points_.size()]) {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    fired_[i].store(0, std::memory_order_relaxed);
  }
}

bool FaultPlan::should_fire(std::size_t i) {
  const FaultPoint& point = points_[i];
  const std::uint64_t prior = fired_[i].fetch_add(1, std::memory_order_relaxed);
  if (point.kind == FaultPoint::Kind::kFlaky) {
    return prior < point.max_fires;
  }
  return true;
}

std::uint64_t FaultPlan::fires(std::size_t i) const {
  std::uint64_t count = fired_[i].load(std::memory_order_relaxed);
  if (points_[i].kind == FaultPoint::Kind::kFlaky &&
      count > points_[i].max_fires) {
    count = points_[i].max_fires;
  }
  return count;
}

std::uint64_t FaultPlan::total_fires() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    total += fires(i);
  }
  return total;
}

std::vector<std::uint64_t> FaultPlan::fire_counts() const {
  std::vector<std::uint64_t> counts(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    counts[i] = fires(i);
  }
  return counts;
}

void FaultPlan::seed_fires(const std::vector<std::uint64_t>& seed) {
  if (seed.size() != points_.size()) return;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    std::uint64_t current = fired_[i].load(std::memory_order_relaxed);
    while (seed[i] > current &&
           !fired_[i].compare_exchange_weak(current, seed[i],
                                            std::memory_order_relaxed)) {
    }
  }
}

std::shared_ptr<FaultPlan> parse_fault_plan(const std::string& spec,
                                            std::string* error) {
  std::vector<FaultPoint> points;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) {
      *error = "fault spec: empty point";
      return nullptr;
    }
    FaultPoint point;
    if (!parse_point(item, &point, error)) {
      return nullptr;
    }
    points.push_back(point);
    if (comma == spec.size()) {
      break;
    }
  }
  if (points.empty()) {
    *error = "fault spec: no points";
    return nullptr;
  }
  // Canonical order: (rank, op, kind). Two spellings of the same plan
  // then fingerprint identically, and a duplicate (rank, op, kind)
  // point — which would silently double-fire — becomes adjacent and is
  // rejected with the exact offending token.
  std::stable_sort(points.begin(), points.end(),
                   [](const FaultPoint& a, const FaultPoint& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.op_index != b.op_index) return a.op_index < b.op_index;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  for (std::size_t i = 1; i < points.size(); ++i) {
    const FaultPoint& prev = points[i - 1];
    const FaultPoint& cur = points[i];
    if (prev.rank == cur.rank && prev.op_index == cur.op_index &&
        prev.kind == cur.kind) {
      *error = strfmt(
          "fault point '%s': duplicate (rank, op, kind) point — each "
          "injection point may appear once",
          fault_point_spec(cur).c_str());
      return nullptr;
    }
  }
  return std::make_shared<FaultPlan>(std::move(points));
}

std::string fault_point_spec(const FaultPoint& p) {
  std::string out = strfmt("%s@%d:%llu", kind_name(p.kind), p.rank,
                           static_cast<unsigned long long>(p.op_index));
  if (p.kind == FaultPoint::Kind::kDelay) {
    out += strfmt(":%.0f", p.delay_us);
  } else if (p.kind == FaultPoint::Kind::kFlaky) {
    out += strfmt(":%llu", static_cast<unsigned long long>(p.max_fires));
  }
  return out;
}

std::string fault_spec(const FaultPlan& plan) {
  std::string out;
  for (const FaultPoint& p : plan.points()) {
    if (!out.empty()) {
      out += ',';
    }
    out += fault_point_spec(p);
  }
  return out;
}

std::string validate_fault_plan(const FaultPlan& plan, int nprocs) {
  for (const FaultPoint& p : plan.points()) {
    if (p.rank < 0 || p.rank >= nprocs) {
      return strfmt(
          "fault point '%s': rank %d out of range for %d ranks "
          "(valid ranks: 0..%d)",
          fault_point_spec(p).c_str(), p.rank, nprocs, nprocs - 1);
    }
  }
  return std::string();
}

FaultLayer::FaultLayer(std::shared_ptr<FaultPlan> plan, Rank rank)
    : plan_(std::move(plan)), rank_(rank) {}

void FaultLayer::pre_isend(ToolCtx& ctx, SendCall&) { on_op(ctx, "isend"); }
void FaultLayer::pre_irecv(ToolCtx& ctx, RecvCall&) { on_op(ctx, "irecv"); }
void FaultLayer::pre_wait(ToolCtx& ctx, RequestId) { on_op(ctx, "wait"); }
void FaultLayer::pre_probe(ToolCtx& ctx, ProbeCall&) { on_op(ctx, "probe"); }
void FaultLayer::pre_collective(ToolCtx& ctx, CollCall&) {
  on_op(ctx, "collective");
}

void FaultLayer::on_op(ToolCtx& ctx, const char* what) {
  ++ops_;
  const std::vector<FaultPoint>& points = plan_->points();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FaultPoint& p = points[i];
    if (p.rank != rank_ || p.op_index != ops_) {
      continue;
    }
    if (!plan_->should_fire(i)) {
      continue;
    }
    static obs::Counter& fires_metric =
        obs::Registry::instance().counter("fault.fires");
    fires_metric.add(1);
    DAMPI_TEVENT(obs::EventKind::kFaultInject, obs::Phase::kInstant,
                 static_cast<std::uint32_t>(rank_),
                 static_cast<std::uint32_t>(ops_),
                 static_cast<std::uint32_t>(p.kind));
    switch (p.kind) {
      case FaultPoint::Kind::kDelay:
        ctx.add_cost(p.delay_us);
        break;
      case FaultPoint::Kind::kError:
        throw FaultInjected(strfmt("MPI error injected at rank %d op %llu (%s)",
                                   rank_,
                                   static_cast<unsigned long long>(ops_),
                                   what));
      case FaultPoint::Kind::kAbort:
      case FaultPoint::Kind::kFlaky:
        throw FaultInjected(strfmt("rank abort injected at rank %d op %llu (%s)",
                                   rank_,
                                   static_cast<unsigned long long>(ops_),
                                   what));
    }
  }
}

}  // namespace dampi::mpism
