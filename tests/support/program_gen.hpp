// Seeded random-program generator for property tests.
//
// Generates deadlock-free-by-construction MPI programs: a set of
// messages (src, dst, tag) partitioned into barrier-separated phases;
// within a phase every sender fires its sends eagerly and every receiver
// posts one wildcard receive per incoming message. Because receives are
// wildcards and sends are eager, every matching order completes — so the
// brute-force oracle's reachable set is exactly the set of matchings,
// which the explorer must cover (vector mode) or soundly under-cover
// (Lamport mode).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "mpism/proc.hpp"
#include "mpism/types.hpp"

namespace dampi::test {

struct GenMessage {
  int src = 0;
  int dst = 0;
  mpism::Tag tag = 0;
  int phase = 0;
};

struct GeneratedProgram {
  int nprocs = 3;
  int phases = 1;
  std::vector<GenMessage> messages;
  /// When true, receivers post one fewer receive than their incoming
  /// count in the final phase, leaving an unreceived message for the
  /// finalize-time drain to analyze.
  bool leave_unreceived = false;

  /// Total wildcard receives the program posts.
  std::size_t expected_epochs() const {
    std::size_t recvs = messages.size();
    if (leave_unreceived) {
      // One receive dropped per rank that had final-phase traffic.
      std::vector<bool> dropped(static_cast<std::size_t>(nprocs), false);
      for (const GenMessage& m : messages) {
        if (m.phase == phases - 1) {
          dropped[static_cast<std::size_t>(m.dst)] = true;
        }
      }
      for (const bool d : dropped) {
        if (d) --recvs;
      }
    }
    return recvs;
  }
};

/// Draw a random program. Sizes are kept small enough for the
/// brute-force oracle (epochs <= ~5 at nprocs <= 4).
inline GeneratedProgram generate_program(std::uint64_t seed, int nprocs,
                                         int max_messages,
                                         bool leave_unreceived = false) {
  Rng rng(seed);
  GeneratedProgram prog;
  prog.nprocs = nprocs;
  prog.phases = 1 + static_cast<int>(rng.next_below(2));
  prog.leave_unreceived = leave_unreceived;
  const int count =
      2 + static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(max_messages - 1)));
  for (int i = 0; i < count; ++i) {
    GenMessage m;
    m.src = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(nprocs)));
    do {
      m.dst = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(nprocs)));
    } while (m.dst == m.src);
    m.tag = static_cast<mpism::Tag>(rng.next_below(2));
    m.phase = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(prog.phases)));
    prog.messages.push_back(m);
  }
  return prog;
}

/// Execute the generated program on one rank.
inline void run_generated(mpism::Proc& p, const GeneratedProgram& prog) {
  for (int phase = 0; phase < prog.phases; ++phase) {
    // Sends first (eager), then wildcard receives per incoming message.
    int incoming_any_tag[2] = {0, 0};
    for (const GenMessage& m : prog.messages) {
      if (m.phase != phase) continue;
      if (m.src == p.rank()) {
        p.send(m.dst, m.tag, mpism::pack<int>(m.tag));
      }
      if (m.dst == p.rank()) {
        ++incoming_any_tag[m.tag];
      }
    }
    int to_recv = incoming_any_tag[0] + incoming_any_tag[1];
    if (prog.leave_unreceived && phase == prog.phases - 1 && to_recv > 0) {
      --to_recv;
    }
    // Tag-blind wildcard receives: any matching order is feasible, so
    // the program is deadlock-free under every forced schedule.
    for (int i = 0; i < to_recv; ++i) {
      p.recv(mpism::kAnySource, mpism::kAnyTag);
    }
    p.barrier();
  }
}

}  // namespace dampi::test
