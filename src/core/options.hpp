// Configuration of the DAMPI verifier.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/decision.hpp"
#include "core/por.hpp"
#include "mpism/cancel.hpp"
#include "mpism/cost_model.hpp"
#include "mpism/fault.hpp"
#include "mpism/match_index.hpp"
#include "mpism/policy.hpp"
#include "mpism/scheduler.hpp"
#include "mpism/tool.hpp"
#include "piggyback/transport.hpp"

namespace dampi::core {

struct Checkpoint;
struct EscapedAlt;

/// Which causality tracker drives late-message analysis. Lamport is the
/// paper's scalable default; Vector restores the completeness lost on
/// cross-coupled patterns (paper §II-F) at O(N) piggyback size.
enum class ClockMode { kLamport, kVector };

/// A per-run factory of per-rank tool-layer stacks, used to prepend
/// layers above DAMPI's (the ISP baseline injects its scheduler-cost
/// layer this way). Invoked once per run so run-scoped shared state (a
/// fresh scheduler timeline) can be created.
using LayerStackFactory =
    std::function<std::vector<std::unique_ptr<mpism::ToolLayer>>(int rank,
                                                                 int nprocs)>;

/// Per-run observability record handed to ExplorerOptions::run_stats the
/// moment a replay finishes (on whichever thread ran it; delivery is
/// serialized so the callback itself need not be re-entrant).
struct RunStats {
  /// 1-based index of the run in the deterministic exploration order, or
  /// 0 for a speculative worker run whose position is not yet consumed.
  std::uint64_t interleaving = 0;
  bool speculative = false;   ///< executed by a pool worker ahead of need
  bool completed = false;     ///< run finished without deadlock/abort
  double wall_seconds = 0.0;  ///< real time this single replay took
  double vtime_us = 0.0;      ///< simulated virtual time of the replay
  std::size_t runs_in_flight = 0;  ///< replays executing concurrently now
  std::size_t queue_depth = 0;     ///< speculation queue backlog now
};

struct ExplorerOptions {
  int nprocs = 2;

  ClockMode clock_mode = ClockMode::kLamport;
  piggyback::TransportKind transport =
      piggyback::TransportKind::kSeparateMessage;

  /// Bounded mixing (paper §III-B2): after flipping an epoch decision,
  /// record alternatives only for the first k epochs discovered below the
  /// flip. nullopt = unbounded (full depth-first coverage); 0 degenerates
  /// to ~(one flip per alternative of the initial trace).
  std::optional<int> mixing_bound;

  /// Honor MPI_Pcontrol loop-abstraction regions (paper §III-B1):
  /// wildcard epochs inside a bracketed region keep their self-run match
  /// and contribute no alternatives.
  bool loop_abstraction = true;

  /// Dynamic monitor for the paper's §V omission pattern (clock escapes
  /// between a wildcard Irecv and its Wait/Test).
  bool unsafe_monitor = true;

  /// Future work from §VI, implemented: automatic loop-iteration
  /// detection. After this many *consecutive* ND events with an
  /// identical signature (communicator, tag, receive-vs-probe) on one
  /// rank, further identical events are treated like a Pcontrol region —
  /// they keep their self-run match and contribute no alternatives. This
  /// is the "recognize patterns of MPI operations and safely ignore such
  /// regions" mechanism; 0 disables it. The first `threshold` iterations
  /// of every loop are still explored, so distinct early behaviour keeps
  /// coverage.
  int auto_loop_threshold = 0;

  /// The fix §V sketches as future work, implemented: keep a *pair* of
  /// clocks — one driving wildcard epochs, one piggybacked on outgoing
  /// traffic — synchronized only when the wildcard's Wait/Test
  /// completes. A barrier or send issued between an Irecv(*) and its
  /// Wait then transmits the pre-epoch clock, so the competing send of
  /// Fig. 10 is correctly classified late and the omission disappears.
  bool deferred_clock_sync = false;

  /// Decisions forced onto the *initial* discovery run (normally empty:
  /// a pure SELF_RUN). Pinning the first run makes exploration
  /// reproducible on programs whose initial wildcard matching depends on
  /// OS scheduling — the DFS then enumerates outcomes from a known root
  /// instead of whichever matching the first native race produced.
  /// Under a coop scheduler (`sched.kind == kCoop`) discovery runs are
  /// deterministic by construction, so this pin is optional; when
  /// supplied it is still honored exactly.
  Schedule initial_schedule;

  /// Rank execution model for every run this exploration performs
  /// (discovery and replays alike). Thread-per-rank reproduces the
  /// original engine; coop fibers make each run a deterministic function
  /// of (program, schedule, sched policy, sched seed) and scale to
  /// hundreds of ranks on one core. Defaults honor DAMPI_SCHED.
  mpism::SchedOptions sched = mpism::default_sched_options();

  /// Message-matching structure for every run (discovery and replays):
  /// indexed O(1) lanes (default) or the linear-scan oracle, bit-for-bit
  /// equivalent and selectable for differential checks. Honors
  /// DAMPI_MATCH.
  mpism::MatchKind match = mpism::default_match_kind();

  /// Engine concurrency control for every run: per-destination-rank lock
  /// shards (default) or the single global mutex kept as the
  /// differential baseline; verdicts and fingerprints are identical
  /// across modes. Honors DAMPI_ENGINE_LOCK.
  mpism::EngineLockKind engine_lock = mpism::default_engine_lock_kind();

  /// Partial-order reduction of the DFS walk (core/por.hpp): sleep-set
  /// pruning over provably commuting epoch decisions (default), or the
  /// full cross-product walk kept as the differential baseline. Pruning
  /// needs vector timestamps — under Lamport clocks every decision is
  /// conservatively dependent and the two modes walk identically. The
  /// pruned walk finds the same bug set and the same per-epoch outcome
  /// sets in ≤ interleavings (tests/test_por.cpp gates this). Honors
  /// DAMPI_POR.
  PorMode por = default_por_mode();

  /// Search budget.
  std::uint64_t max_interleavings = 1u << 20;
  double max_wall_seconds = 1e9;
  bool stop_on_first_error = false;

  /// Replay workers. Guided replays are independent — each builds its own
  /// runtime from nothing but a decision file — so sibling alternatives
  /// of a flipped epoch decision run concurrently on `jobs - 1` worker
  /// threads while the exploring thread consumes outcomes in sequential
  /// DFS order. Results (interleaving indices, bugs, schedules, stack
  /// growth) are bit-identical for every value; 1 = fully sequential.
  /// Requires `extra_layers_per_run` (if set) to be callable from
  /// multiple threads at once.
  int jobs = 1;

  /// Observability: invoked once per completed replay (speculative worker
  /// runs included), serialized by the explorer. See RunStats.
  std::function<void(const RunStats&)> run_stats;

  /// Runtime knobs for each run.
  mpism::PolicyKind policy = mpism::PolicyKind::kLowestSource;
  std::uint64_t policy_seed = 1;
  mpism::CostModel cost;

  /// Virtual-time cost of DAMPI's own bookkeeping, charged by the layer:
  /// per wildcard epoch recorded (dominated by writing the epoch /
  /// potential-match record to the on-disk log the schedule generator
  /// reads) and per late-message comparison. These are what make
  /// wildcard-heavy codes (milc in Table II) an order of magnitude
  /// slower under DAMPI while deterministic codes stay near 1x.
  double epoch_record_cost_us = 150.0;
  double late_analysis_cost_us = 0.2;

  /// Extra layers stacked above DAMPI's per run (ISP baseline).
  std::function<LayerStackFactory()> extra_layers_per_run;

  /// --- Resilience ---------------------------------------------------------

  /// Per-run watchdog budgets applied to every run this exploration
  /// performs (discovery and replays; 0 = unlimited). A run exceeding
  /// any of them is reported as a kHang bug with its reproducing
  /// schedule, instead of wedging the campaign.
  double run_deadline_seconds = 0.0;
  double max_run_vtime_us = 0.0;
  std::uint64_t max_run_ops = 0;

  /// Failed replays (program errors or watchdog timeouts — possibly
  /// transient, e.g. injected faults) are re-executed up to this many
  /// times with bounded exponential backoff before their decision
  /// subtree is quarantined. Deadlocks are verdicts, never retried.
  int max_retries = 0;
  double retry_backoff_ms = 1.0;

  /// External cancellation (SIGINT bridge, tests). The explorer creates
  /// one internally when unset — its global wall-budget watchdog fires
  /// the same source, so `max_wall_seconds` cancels even an in-flight
  /// replay.
  std::shared_ptr<mpism::CancelSource> cancel;

  /// Deterministic fault injection applied to every run (see
  /// mpism/fault.hpp). Shared across runs so flaky points count their
  /// fires campaign-wide.
  std::shared_ptr<mpism::FaultPlan> fault;

  /// Crash-safe journal of the DFS frontier: when `checkpoint_path` is
  /// non-empty, the frontier is written there (atomic tmp+rename) every
  /// `checkpoint_interval` interleavings and at every walk exit
  /// (completion, budget, cancellation). `checkpoint_tag` — typically
  /// the program name — is folded into the options fingerprint a resume
  /// validates.
  std::string checkpoint_path;
  std::uint64_t checkpoint_interval = 64;
  std::string checkpoint_tag;

  /// Restored frontier from load_checkpoint(): the walk skips discovery
  /// and continues where the journal left off. The fingerprint check
  /// happens at load time.
  std::shared_ptr<const Checkpoint> resume_from;

  /// --- Distributed sharding (src/dist/) -----------------------------------

  /// Stop after the discovery run (or the resume_from restore): judge the
  /// first run, extend the frontier once, and return without walking it.
  /// Implies export_frontier. This is how the campaign coordinator
  /// obtains the frame stack it shards across worker processes.
  bool discovery_only = false;

  /// Copy the final frame stack into ExploreResult::frontier at every
  /// walk exit (cheap; off by default because the stack can be large).
  bool export_frontier = false;

  /// Invoked the moment an alternative is escaped (instead of recording
  /// it in ExploreResult::escaped), on the exploring thread. A
  /// distributed worker ships each escape to the coordinator eagerly
  /// through this hook: the send happens before the revealing run can
  /// reach the checkpoint journal, so a worker death never strands an
  /// escape inside a journalled (never re-executed) run.
  std::function<void(const EscapedAlt&)> on_escape;

  /// Work-stealing hooks, polled between runs. When steal_poll() returns
  /// true the explorer carves off half of the shallowest non-empty
  /// untried list as a shard checkpoint — transferring ownership of every
  /// prefix site to the coordinator (escape_alts) — and hands it to
  /// on_steal; nullptr means there was nothing to steal. Both hooks run
  /// on the exploring thread.
  std::function<bool()> steal_poll;
  std::function<void(std::shared_ptr<const Checkpoint>)> on_steal;
};

}  // namespace dampi::core
