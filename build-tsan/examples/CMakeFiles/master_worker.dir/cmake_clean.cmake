file(REMOVE_RECURSE
  "CMakeFiles/master_worker.dir/master_worker.cpp.o"
  "CMakeFiles/master_worker.dir/master_worker.cpp.o.d"
  "master_worker"
  "master_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
