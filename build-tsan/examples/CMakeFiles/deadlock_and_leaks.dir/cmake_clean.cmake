file(REMOVE_RECURSE
  "CMakeFiles/deadlock_and_leaks.dir/deadlock_and_leaks.cpp.o"
  "CMakeFiles/deadlock_and_leaks.dir/deadlock_and_leaks.cpp.o.d"
  "deadlock_and_leaks"
  "deadlock_and_leaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_and_leaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
