# Empty dependencies file for test_deferred_sync.
# This may be replaced when dependencies are built.
