file(REMOVE_RECURSE
  "CMakeFiles/dampi_isp.dir/isp_verifier.cpp.o"
  "CMakeFiles/dampi_isp.dir/isp_verifier.cpp.o.d"
  "libdampi_isp.a"
  "libdampi_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dampi_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
