#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dampi {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string human_count(std::uint64_t count) {
  char buf[32];
  if (count >= 10'000) {
    std::snprintf(buf, sizeof buf, "%lluK",
                  static_cast<unsigned long long>((count + 500) / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(count));
  }
  return buf;
}

void TextTable::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width;
  for (const auto& r : rows_) {
    if (width.size() < r.size()) width.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out += cell;
      out.append(width[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    emit(rows_[i]);
    if (i == 0 && has_header_) {
      std::size_t total = 0;
      for (std::size_t w : width) total += w + 2;
      out.append(total - 2, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace dampi
