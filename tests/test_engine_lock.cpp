// Engine-lock equivalence suite (ctest label `enginelock`):
//
//  - spec round-trip for --engine-lock / DAMPI_ENGINE_LOCK parsing;
//  - program-level differential: >= 600 randomized small programs run
//    under the deterministic coop scheduler with both lock modes across
//    the match sweep, asserting bit-identical RunReport fingerprints
//    (doubles printed as %a, so "identical" means identical);
//  - thread-scheduler stress: sharded-lock mode hammered with wildcard
//    fan-ins and all-pairs cross-rank churn under linear and indexed
//    matchers — the TSan workout for the shard array, the eventcount
//    parkers, and the cross-shard rendezvous handshake (label
//    `concurrency` puts it in the tier-1 sanitizer sweep);
//  - deadlock verdict parity: both lock modes reach the same verdict on
//    the deadlock patterns under both schedulers, bit-identical under
//    coop;
//  - observability: the sharded mode accounts lock acquisitions and
//    envelope inline hits in the metrics registry.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "obs/metrics.hpp"
#include "support/run_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using dampi::strfmt;
using mpism::Bytes;
using mpism::EngineLockKind;
using mpism::kAnySource;
using mpism::kAnyTag;
using mpism::MatchKind;
using mpism::pack;
using mpism::RequestId;

#define SKIP_WITHOUT_COOP()                                              \
  if (!mpism::coop_supported()) {                                        \
    GTEST_SKIP() << "coop fibers unsupported in this build (sanitizer)"; \
  }

/// Every deterministic field of a RunReport, doubles in %a hex form
/// (wall_seconds is excluded by design — it is the one
/// non-deterministic field).
std::string fingerprint(const mpism::RunReport& r) {
  std::string s = strfmt(
      "completed=%d deadlocked=%d vtime=%a comm_leaks=%d req_leaks=%llu "
      "msgs=%llu tool_msgs=%llu",
      r.completed ? 1 : 0, r.deadlocked ? 1 : 0, r.vtime_us, r.comm_leaks,
      static_cast<unsigned long long>(r.request_leaks),
      static_cast<unsigned long long>(r.messages_sent),
      static_cast<unsigned long long>(r.stats.tool_messages));
  s += "\ndeadlock_detail=" + r.deadlock_detail;
  for (const auto& e : r.errors) {
    s += strfmt("\nerror rank=%d ", e.rank) + e.message;
  }
  for (std::size_t c = 0; c < mpism::OpStats::kNumCategories; ++c) {
    s += strfmt("\ncat%zu:", c);
    for (const auto v : r.stats.counts[c]) {
      s += strfmt(" %llu", static_cast<unsigned long long>(v));
    }
  }
  return s;
}

TEST(EngineLockSpec, ParseAndFormatRoundTrip) {
  EngineLockKind kind = EngineLockKind::kGlobal;
  ASSERT_TRUE(mpism::parse_engine_lock_spec("sharded", &kind));
  EXPECT_EQ(kind, EngineLockKind::kSharded);
  EXPECT_EQ(mpism::engine_lock_spec(kind), "sharded");
  ASSERT_TRUE(mpism::parse_engine_lock_spec("global", &kind));
  EXPECT_EQ(kind, EngineLockKind::kGlobal);
  EXPECT_EQ(mpism::engine_lock_spec(kind), "global");
  kind = EngineLockKind::kSharded;
  EXPECT_FALSE(mpism::parse_engine_lock_spec("spin", &kind));
  EXPECT_FALSE(mpism::parse_engine_lock_spec("", &kind));
  EXPECT_EQ(kind, EngineLockKind::kSharded);  // failed parse leaves *out alone
}

// ---------------------------------------------------------------------
// Randomized program generator: valid-by-construction message soup
// (receives posted before sends per phase) with wildcard phases, sync
// sends (the cross-shard rendezvous path), probes, and collectives.

struct ProgramCase {
  std::uint64_t seed;
  int nprocs;
  int phases;
  int messages_per_phase;
};

struct ScriptMessage {
  int src;
  int dst;
  int tag;
  bool synchronous;
  int bytes;  // payload size: straddles the 64-byte inline threshold
};

std::vector<std::vector<ScriptMessage>> build_script(const ProgramCase& c) {
  Rng rng(c.seed);
  std::vector<std::vector<ScriptMessage>> phases(
      static_cast<std::size_t>(c.phases));
  for (auto& phase : phases) {
    const int count =
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(c.messages_per_phase)));
    for (int m = 0; m < count; ++m) {
      ScriptMessage msg;
      msg.src = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(c.nprocs)));
      do {
        msg.dst = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(c.nprocs)));
      } while (msg.dst == msg.src);
      msg.tag = static_cast<int>(rng.next_below(3));
      msg.synchronous = rng.next_bool(0.3);
      // ~1/4 of payloads spill past the 64-byte small-buffer arm.
      msg.bytes = rng.next_bool(0.25)
                      ? 64 + static_cast<int>(rng.next_below(192))
                      : 1 + static_cast<int>(rng.next_below(64));
      phase.push_back(msg);
    }
  }
  return phases;
}

void run_script(mpism::Proc& p,
                const std::vector<std::vector<ScriptMessage>>& script,
                std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef);
  int phase_index = 0;
  for (const auto& phase : script) {
    const bool wildcard_phase = rng.next_bool(0.5);
    std::vector<RequestId> recvs;
    for (const ScriptMessage& m : phase) {
      if (m.dst != p.rank()) continue;
      recvs.push_back(p.irecv(wildcard_phase ? kAnySource : m.src, kAnyTag));
    }
    std::vector<RequestId> sends;
    for (const ScriptMessage& m : phase) {
      if (m.src != p.rank()) continue;
      Bytes payload(static_cast<std::size_t>(m.bytes),
                    static_cast<std::byte>(m.tag + 1));
      sends.push_back(m.synchronous
                          ? p.issend(m.dst, m.tag, std::move(payload))
                          : p.isend(m.dst, m.tag, std::move(payload)));
    }
    if (rng.next_bool(0.5)) p.iprobe(kAnySource, kAnyTag);
    p.waitall(recvs);
    p.waitall(sends);
    if (phase_index % 2 == 0) {
      p.barrier();
    } else {
      p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
    }
    ++phase_index;
  }
}

mpism::RunOptions case_options(const ProgramCase& c, EngineLockKind lock,
                               MatchKind match,
                               mpism::SchedulerKind sched_kind) {
  mpism::RunOptions options;
  options.nprocs = c.nprocs;
  options.engine_lock = lock;
  options.match = match;
  options.sched.kind = sched_kind;
  options.sched.seed = c.seed;
  if (sched_kind == mpism::SchedulerKind::kCoop) {
    options.sched.pick = (c.seed % 2 == 0)
                             ? mpism::SchedPolicy::kRoundRobin
                             : mpism::SchedPolicy::kRandomSeeded;
  }
  switch (c.seed % 3) {
    case 0: options.policy = mpism::PolicyKind::kLowestSource; break;
    case 1: options.policy = mpism::PolicyKind::kFifoArrival; break;
    default: options.policy = mpism::PolicyKind::kSeededRandom; break;
  }
  options.policy_seed = c.seed + 1;
  return options;
}

// Acceptance bar from the issue: randomized differential suite
// asserting bit-identical fingerprints global vs sharded across the
// sched x match sweep. The coop scheduler makes whole runs
// deterministic, so any behavioral divergence between the one-mutex
// engine and the sharded engine (matching order, vtime accounting,
// message counts, verdicts) shows up as a fingerprint mismatch.
TEST(EngineLockDifferential, CoopFingerprintsIdenticalAcrossMatchSweep) {
  SKIP_WITHOUT_COOP();
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    ProgramCase c;
    c.seed = seed * 2654435761u;
    c.nprocs = 2 + static_cast<int>(seed % 5);  // 2..6
    c.phases = 2;
    c.messages_per_phase = 2 * c.nprocs;
    const auto script = build_script(c);
    const auto program = [&script, &c](mpism::Proc& p) {
      run_script(p, script, c.seed + static_cast<std::uint64_t>(p.rank()));
    };
    for (const MatchKind match : {MatchKind::kLinear, MatchKind::kIndexed}) {
      const auto global = run_program(
          case_options(c, EngineLockKind::kGlobal, match,
                       mpism::SchedulerKind::kCoop),
          program);
      const auto sharded = run_program(
          case_options(c, EngineLockKind::kSharded, match,
                       mpism::SchedulerKind::kCoop),
          program);
      ASSERT_TRUE(global.ok())
          << "seed " << seed << ": " << global.deadlock_detail;
      ASSERT_EQ(fingerprint(global), fingerprint(sharded))
          << "lock modes diverged at seed " << seed << " (nprocs "
          << c.nprocs << ", match " << mpism::match_spec(match) << ")";
      ++checked;
    }
  }
  EXPECT_EQ(checked, 600);
}

// Thread-scheduler differential: match order is host-timing-dependent,
// so only schedule-independent invariants are comparable — but those
// must agree between lock modes.
TEST(EngineLockDifferential, ThreadSchedulerInvariantsAgree) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ProgramCase c;
    c.seed = seed * 1315423911u;
    c.nprocs = 2 + static_cast<int>(seed % 4);  // 2..5
    c.phases = 2;
    c.messages_per_phase = 2 * c.nprocs;
    const auto script = build_script(c);
    std::uint64_t expected_messages = 0;
    for (const auto& phase : script) expected_messages += phase.size();
    const auto program = [&script, &c](mpism::Proc& p) {
      run_script(p, script, c.seed + static_cast<std::uint64_t>(p.rank()));
    };
    for (const EngineLockKind lock :
         {EngineLockKind::kGlobal, EngineLockKind::kSharded}) {
      const auto report = run_program(
          case_options(c, lock, MatchKind::kIndexed,
                       mpism::SchedulerKind::kThread),
          program);
      ASSERT_TRUE(report.completed)
          << mpism::engine_lock_spec(lock) << " seed " << seed << ": "
          << report.deadlock_detail;
      ASSERT_TRUE(report.errors.empty())
          << mpism::engine_lock_spec(lock) << " seed " << seed << ": "
          << report.errors[0].message;
      EXPECT_EQ(report.messages_sent, expected_messages)
          << mpism::engine_lock_spec(lock) << " seed " << seed;
      EXPECT_EQ(report.comm_leaks, 0) << mpism::engine_lock_spec(lock);
      EXPECT_EQ(report.request_leaks, 0u) << mpism::engine_lock_spec(lock);
    }
  }
}

// ---------------------------------------------------------------------
// Sharded-mode stress under real OS threads — the TSan target. Two
// traffic shapes hammer the shard array from every rank at once:
//
//  - wildcard fan-in: every rank floods rank 0, which drains the pile
//    through ANY_SOURCE receives (all senders contend on shard 0 while
//    rank 0 holds and re-drops it in blocking_wait);
//  - all-pairs churn: every rank posts a receive from and sends to
//    every other rank each round, with sync sends mixed in so the
//    cross-shard rendezvous completion handshake runs constantly.

void wildcard_fanin(mpism::Proc& p, int rounds, int senders_per_round) {
  const int n = p.size();
  for (int round = 0; round < rounds; ++round) {
    if (p.rank() == 0) {
      std::vector<RequestId> recvs;
      for (int i = 0; i < (n - 1) * senders_per_round; ++i) {
        recvs.push_back(p.irecv(kAnySource, kAnyTag));
      }
      p.waitall(recvs);
    } else {
      std::vector<RequestId> sends;
      for (int i = 0; i < senders_per_round; ++i) {
        // Alternate inline-fit and heap-spill payload sizes.
        const std::size_t bytes = (i % 2 == 0) ? 16 : 96;
        Bytes payload(bytes, static_cast<std::byte>(p.rank()));
        sends.push_back(i % 3 == 0 ? p.issend(0, round, std::move(payload))
                                   : p.isend(0, round, std::move(payload)));
      }
      p.waitall(sends);
    }
    p.barrier();
  }
}

void all_pairs_churn(mpism::Proc& p, int rounds) {
  const int n = p.size();
  for (int round = 0; round < rounds; ++round) {
    std::vector<RequestId> recvs;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == p.rank()) continue;
      recvs.push_back(p.irecv(peer, kAnyTag));
    }
    std::vector<RequestId> sends;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == p.rank()) continue;
      Bytes payload(static_cast<std::size_t>(8 + 8 * ((p.rank() + round) % 12)),
                    static_cast<std::byte>(round));
      sends.push_back(((p.rank() + peer + round) % 4 == 0)
                          ? p.issend(peer, round % 3, std::move(payload))
                          : p.isend(peer, round % 3, std::move(payload)));
    }
    p.iprobe(kAnySource, kAnyTag);
    p.waitall(recvs);
    p.waitall(sends);
    if (round % 2 == 0) p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
  }
}

TEST(EngineLockStress, ShardedWildcardFanInUnderThreads) {
  for (const MatchKind match : {MatchKind::kLinear, MatchKind::kIndexed}) {
    mpism::RunOptions options;
    options.nprocs = 6;
    options.engine_lock = EngineLockKind::kSharded;
    options.match = match;
    options.sched.kind = mpism::SchedulerKind::kThread;
    const auto report = run_program(options, [](mpism::Proc& p) {
      wildcard_fanin(p, /*rounds=*/6, /*senders_per_round=*/8);
    });
    ASSERT_TRUE(report.ok())
        << mpism::match_spec(match) << ": " << report.deadlock_detail;
    EXPECT_EQ(report.messages_sent, 6u * 5u * 8u) << mpism::match_spec(match);
  }
}

TEST(EngineLockStress, ShardedAllPairsChurnUnderThreads) {
  for (const MatchKind match : {MatchKind::kLinear, MatchKind::kIndexed}) {
    mpism::RunOptions options;
    options.nprocs = 5;
    options.engine_lock = EngineLockKind::kSharded;
    options.match = match;
    options.sched.kind = mpism::SchedulerKind::kThread;
    const auto report = run_program(options, [](mpism::Proc& p) {
      all_pairs_churn(p, /*rounds=*/10);
    });
    ASSERT_TRUE(report.ok())
        << mpism::match_spec(match) << ": " << report.deadlock_detail;
    EXPECT_EQ(report.messages_sent, 10u * 5u * 4u) << mpism::match_spec(match);
    EXPECT_EQ(report.request_leaks, 0u);
  }
}

// ---------------------------------------------------------------------
// Deadlock verdict parity between lock modes: exact-deadlock detection
// moved from "hold the one mutex" to "escalate to all shards"; both
// paths must reach the same verdict, and under coop the whole report
// (detail text included) must be bit-identical.
TEST(EngineLockDifferential, DeadlockVerdictParity) {
  struct Pattern {
    const char* name;
    mpism::ProgramFn fn;
    int nprocs;
  };
  const Pattern patterns[] = {
      {"simple_deadlock", workloads::simple_deadlock, 2},
      {"wildcard_dependent_deadlock",
       workloads::wildcard_dependent_deadlock, 3},
  };
  for (const auto& pat : patterns) {
    for (const auto sched_kind : {mpism::SchedulerKind::kThread,
                                  mpism::SchedulerKind::kCoop}) {
      if (sched_kind == mpism::SchedulerKind::kCoop &&
          !mpism::coop_supported()) {
        continue;
      }
      std::optional<std::string> coop_fp;
      for (const EngineLockKind lock :
           {EngineLockKind::kGlobal, EngineLockKind::kSharded}) {
        mpism::RunOptions options;
        options.nprocs = pat.nprocs;
        options.engine_lock = lock;
        options.sched.kind = sched_kind;
        options.policy = mpism::PolicyKind::kFifoArrival;
        const auto report = run_program(options, pat.fn);
        if (std::string(pat.name) == "simple_deadlock") {
          EXPECT_TRUE(report.deadlocked)
              << pat.name << " " << mpism::engine_lock_spec(lock);
        }
        if (sched_kind == mpism::SchedulerKind::kCoop) {
          const std::string fp = fingerprint(report);
          if (!coop_fp.has_value()) {
            coop_fp = fp;
          } else {
            EXPECT_EQ(fp, *coop_fp)
                << pat.name << ": lock modes disagree under coop";
          }
        }
      }
    }
  }
}

// The sharded engine publishes lock and envelope accounting: a run must
// acquire shards, and small payloads must land in the inline arm.
TEST(EngineLockObs, ShardedRunAccountsLockAndInlineTraffic) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  mpism::RunOptions options;
  options.nprocs = 4;
  options.engine_lock = EngineLockKind::kSharded;
  options.sched.kind = mpism::SchedulerKind::kThread;
  const auto report = run_program(options, [](mpism::Proc& p) {
    all_pairs_churn(p, /*rounds=*/4);
  });
  ASSERT_TRUE(report.ok()) << report.deadlock_detail;
  EXPECT_GT(reg.counter("engine.lock.acquired").value(), 0u);
  EXPECT_GT(reg.counter("engine.lock.all_shards").value(), 0u);
  EXPECT_GT(reg.counter("engine.envelope.inline_hits").value(), 0u);
  reg.reset();
}

}  // namespace
}  // namespace dampi::test
