#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dampi {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string human_count(std::uint64_t count) {
  char buf[32];
  if (count >= 10'000) {
    std::snprintf(buf, sizeof buf, "%lluK",
                  static_cast<unsigned long long>((count + 500) / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(count));
  }
  return buf;
}

Histogram::Histogram(double first_limit, int buckets)
    : first_limit_(first_limit),
      counts_(static_cast<std::size_t>(std::max(buckets, 1)), 0) {}

void Histogram::add(double x) {
  stat_.add(x);
  std::size_t bucket = 0;
  double limit = first_limit_;
  while (bucket + 1 < counts_.size() && x >= limit) {
    limit *= 2.0;
    ++bucket;
  }
  ++counts_[bucket];
}

void Histogram::merge(const Histogram& other) {
  stat_.merge(other.stat_);
  if (other.first_limit_ == first_limit_ &&
      other.counts_.size() == counts_.size()) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  } else {
    // Mismatched shapes: fold the other histogram's bulk into the bucket
    // of its mean; summary stats above stay exact.
    std::size_t bucket = 0;
    double limit = first_limit_;
    while (bucket + 1 < counts_.size() && other.mean() >= limit) {
      limit *= 2.0;
      ++bucket;
    }
    counts_[bucket] += other.count();
  }
}

double Histogram::quantile_bound(double q) const {
  if (stat_.count() == 0) return 0.0;
  const double target = q * static_cast<double>(stat_.count());
  std::uint64_t seen = 0;
  double limit = first_limit_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) {
      return i + 1 == counts_.size() ? stat_.max() : limit;
    }
    limit *= 2.0;
  }
  return stat_.max();
}

std::string Histogram::str() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3g p50<=%.3g p90<=%.3g max=%.3g",
                count(), mean(), quantile_bound(0.5), quantile_bound(0.9),
                max());
  return buf;
}

void TextTable::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width;
  for (const auto& r : rows_) {
    if (width.size() < r.size()) width.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out += cell;
      out.append(width[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    emit(rows_[i]);
    if (i == 0 && has_header_) {
      std::size_t total = 0;
      for (std::size_t w : width) total += w + 2;
      out.append(total - 2, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace dampi
