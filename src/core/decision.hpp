// The Epoch Decisions file (paper §II-B/E): which source each guided
// epoch must match in a replay. A rank runs GUIDED until the first of its
// epochs with no decision, then reverts to SELF_RUN — the paper's
// guided_epoch frontier, expressed per key.
#pragma once

#include <map>

#include "core/epoch.hpp"
#include "mpism/types.hpp"

namespace dampi::core {

struct Schedule {
  /// epoch -> forced source (world rank).
  std::map<EpochKey, mpism::Rank> forced;

  bool empty() const { return forced.empty(); }

  /// Decision for this epoch, or kAnySource if none.
  mpism::Rank lookup(const EpochKey& key) const {
    auto it = forced.find(key);
    return it == forced.end() ? mpism::kAnySource : it->second;
  }
};

}  // namespace dampi::core
