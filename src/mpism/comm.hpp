// Communicator table: groups, translation between communicator-relative
// and world ranks, and leak accounting (paper Table II, C-Leak column).
#pragma once

#include <cstdint>
#include <vector>

#include "mpism/types.hpp"

namespace dampi::mpism {

/// One communicator: an ordered group of world ranks. The rank of a
/// process within the communicator is its index in `members`.
struct CommRecord {
  CommId id = kCommNull;
  std::vector<Rank> members;  ///< world ranks, comm rank = index
  bool freed = false;
  /// Created by a tool layer (shadow piggyback communicators); excluded
  /// from leak accounting and user-visible statistics.
  bool tool_internal = false;
  /// World-rank -> comm-rank reverse map (kAnySource for non-members).
  std::vector<Rank> world_to_comm;

  int size() const { return static_cast<int>(members.size()); }
  bool contains_world(Rank world) const {
    return world >= 0 && world < static_cast<Rank>(world_to_comm.size()) &&
           world_to_comm[static_cast<std::size_t>(world)] != kAnySource;
  }
};

/// Owns all communicators of one run. Not thread-safe by itself; the
/// engine serializes access under its global mutex.
class CommTable {
 public:
  /// Sets up kCommWorld over `nprocs` ranks.
  void init(int nprocs);

  const CommRecord& get(CommId id) const;
  bool valid(CommId id) const;

  /// New communicator with the given member list (world ranks).
  CommId create(std::vector<Rank> members, bool tool_internal);

  void free(CommId id);

  /// Reclassify a communicator as tool-internal (shadow piggyback comms
  /// are created through the ordinary collective path, then flagged).
  void mark_tool_internal(CommId id);

  /// comm-relative -> world. `rel` may be kAnySource (passed through).
  Rank to_world(CommId id, Rank rel) const;
  /// world -> comm-relative (kAnySource if not a member).
  Rank to_rel(CommId id, Rank world) const;

  /// Number of user communicators created and not freed (excludes world
  /// and tool-internal ones) — the C-Leak count.
  int leaked_user_comms() const;

  int count() const { return static_cast<int>(comms_.size()); }

 private:
  std::vector<CommRecord> comms_;
  int world_size_ = 0;
};

}  // namespace dampi::mpism
