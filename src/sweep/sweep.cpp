#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <set>
#include <thread>
#include <utility>

#include "common/strutil.hpp"
#include "core/checkpoint.hpp"
#include "mpism/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sweep/journal.hpp"

namespace dampi::sweep {

namespace {

/// Dedup key over the coordinate a point occupies, ignoring its
/// parameter (delay length, flaky cap): two delay plans at the same
/// (rank, op) probe the same cell of the matrix.
std::string point_key(const mpism::FaultPoint& point) {
  return strfmt("%d@%d:%llu", static_cast<int>(point.kind), point.rank,
                static_cast<unsigned long long>(point.op_index));
}

/// Marker the engine prefixes onto errors raised by FaultLayer; any
/// error message without it is a latent program bug the injection
/// exposed.
constexpr const char* kInjectedMarker = "fault injected";

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The per-campaign verifier configuration: the base options with the
/// plan installed, sweep budgets applied, and every cross-campaign
/// facility (checkpoints, distributed hooks, replay pool) stripped —
/// campaigns must be independent and deterministic so the report is a
/// pure function of the sweep inputs.
core::ExplorerOptions campaign_options(
    const SweepOptions& sweep, std::shared_ptr<mpism::FaultPlan> plan,
    std::shared_ptr<mpism::CancelSource> cancel) {
  core::ExplorerOptions opts = sweep.explorer;
  opts.fault = std::move(plan);
  opts.jobs = 1;
  opts.max_interleavings = sweep.plan_max_interleavings;
  opts.max_wall_seconds = sweep.plan_wall_seconds;
  if (opts.max_run_ops == 0) opts.max_run_ops = sweep.plan_max_run_ops;
  opts.cancel = std::move(cancel);
  opts.checkpoint_path.clear();
  opts.resume_from.reset();
  opts.discovery_only = false;
  opts.export_frontier = false;
  opts.on_escape = nullptr;
  opts.steal_poll = nullptr;
  opts.on_steal = nullptr;
  opts.run_stats = nullptr;
  // A flaky point is the transient fault the retry path exists for:
  // give every campaign enough retries to burn through the cap, so the
  // sweep can observe masking instead of quarantining the subtree.
  for (const mpism::FaultPoint& point : opts.fault->points()) {
    if (point.kind == mpism::FaultPoint::Kind::kFlaky) {
      opts.max_retries = std::max(opts.max_retries,
                                  static_cast<int>(point.max_fires));
    }
  }
  return opts;
}

}  // namespace

std::string sweep_fingerprint(const SweepOptions& options) {
  core::ExplorerOptions base = options.explorer;
  base.fault.reset();
  base.checkpoint_tag = options.program_name;
  std::string fp = core::options_fingerprint(base);
  fp += strfmt(
      " sweep budget=%llu seed=%llu kinds=%s delays=%d flakys=%d "
      "planil=%llu planops=%llu",
      static_cast<unsigned long long>(options.budget),
      static_cast<unsigned long long>(options.seed),
      sweep_kinds_spec(options.kinds).c_str(), options.delay_samples,
      options.flaky_samples,
      static_cast<unsigned long long>(options.plan_max_interleavings),
      static_cast<unsigned long long>(options.plan_max_run_ops));
  return fp;
}

std::vector<std::string> enumerate_plans(const OpInventory& inventory,
                                         const SweepOptions& options,
                                         std::uint64_t* planned) {
  std::vector<std::string> specs;
  std::set<std::string> seen;
  const auto push = [&specs, &seen](const mpism::FaultPoint& point) {
    if (seen.insert(point_key(point)).second) {
      specs.push_back(mpism::fault_point_spec(point));
    }
  };

  // Exhaustive families first, op-major: shallow ops across all ranks
  // before deep ones, so a small budget still probes every rank's
  // early calls instead of spending itself on rank 0 alone.
  const std::uint64_t deepest = inventory.max_ops();
  for (std::uint64_t op = 1; op <= deepest; ++op) {
    for (std::size_t rank = 0; rank < inventory.ops.size(); ++rank) {
      if (inventory.ops[rank].size() < op) continue;
      mpism::FaultPoint point;
      point.rank = static_cast<mpism::Rank>(rank);
      point.op_index = op;
      if (options.kinds.abort_) {
        point.kind = mpism::FaultPoint::Kind::kAbort;
        push(point);
      }
      if (options.kinds.error_) {
        point.kind = mpism::FaultPoint::Kind::kError;
        push(point);
      }
    }
  }

  // Sampled perturbation families, drawn from the seeded generator in a
  // fixed order (delays before flakys; every draw happens whether or
  // not dedup keeps the point) so the enumeration is reproducible.
  std::vector<std::pair<mpism::Rank, std::uint64_t>> coords;
  for (std::size_t rank = 0; rank < inventory.ops.size(); ++rank) {
    for (std::size_t i = 0; i < inventory.ops[rank].size(); ++i) {
      coords.emplace_back(static_cast<mpism::Rank>(rank), i + 1);
    }
  }
  std::mt19937_64 rng(options.seed);
  static constexpr double kDelaysUs[] = {100.0, 1000.0, 10000.0};
  if (options.kinds.delay_ && !coords.empty()) {
    for (int i = 0; i < options.delay_samples; ++i) {
      const auto [rank, op] = coords[rng() % coords.size()];
      mpism::FaultPoint point;
      point.kind = mpism::FaultPoint::Kind::kDelay;
      point.rank = rank;
      point.op_index = op;
      point.delay_us = kDelaysUs[rng() % 3];
      push(point);
    }
  }
  if (options.kinds.flaky_ && !coords.empty()) {
    for (int i = 0; i < options.flaky_samples; ++i) {
      const auto [rank, op] = coords[rng() % coords.size()];
      mpism::FaultPoint point;
      point.kind = mpism::FaultPoint::Kind::kFlaky;
      point.rank = rank;
      point.op_index = op;
      point.max_fires = 1 + rng() % 3;
      push(point);
    }
  }

  if (planned != nullptr) *planned = specs.size();
  if (specs.size() > options.budget) {
    specs.resize(options.budget);
  }
  return specs;
}

PlanRecord classify_campaign(std::uint64_t index, const std::string& spec,
                             const core::ExploreResult& result,
                             std::uint64_t fires) {
  PlanRecord record;
  record.index = index;
  record.spec = spec;
  record.interleavings = result.interleavings;
  record.fires = fires;
  record.bugs = result.bugs.size();
  record.partial =
      result.interleaving_budget_exhausted || result.time_budget_exhausted;

  bool deadlocked = false;
  bool hung = false;
  bool errored = false;
  for (const core::BugRecord& bug : result.bugs) {
    switch (bug.kind) {
      case core::BugRecord::Kind::kDeadlock:
        deadlocked = true;
        break;
      case core::BugRecord::Kind::kHang:
        hung = true;
        break;
      case core::BugRecord::Kind::kError:
        errored = true;
        for (const mpism::ErrorInfo& err : bug.errors) {
          if (record.latent_error.empty() &&
              err.message.find(kInjectedMarker) == std::string::npos) {
            record.latent_error = err.message;
          }
        }
        break;
    }
  }
  if (deadlocked) {
    record.verdict = Verdict::kDeadlock;
  } else if (hung) {
    record.verdict = Verdict::kHang;
  } else if (errored) {
    record.verdict = Verdict::kErrorPropagated;
  } else if (fires > 0) {
    record.verdict = Verdict::kMasked;
  } else {
    record.verdict = Verdict::kClean;
  }
  return record;
}

core::ExploreResult run_plan_with_respawn(
    const std::function<core::ExploreResult()>& runner, int max_respawns,
    double backoff_ms, std::uint64_t* respawns, std::string* error) {
  double backoff = backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      return runner();
    } catch (const std::exception& e) {
      if (attempt >= max_respawns) {
        *error = e.what();
        return core::ExploreResult{};
      }
    } catch (...) {
      if (attempt >= max_respawns) {
        *error = "unknown campaign spawn failure";
        return core::ExploreResult{};
      }
    }
    if (respawns != nullptr) ++*respawns;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff));
    backoff *= 2.0;
  }
}

SweepResult run_sweep(const SweepOptions& options,
                      const mpism::ProgramFn& program) {
  SweepResult result;
  if (options.explorer.fault) {
    result.error =
        "sweep: base options already carry a fault plan — the sweep owns "
        "injection (drop --fault)";
    return result;
  }
  if (options.resume && options.journal_path.empty()) {
    result.error = "sweep: --resume requires a sweep journal path";
    return result;
  }

  result.inventory = harvest_inventory(options.explorer, program);
  if (!result.inventory.error.empty()) {
    result.error = result.inventory.error;
    return result;
  }

  const std::vector<std::string> specs =
      enumerate_plans(result.inventory, options, &result.planned);
  result.truncated = result.planned - specs.size();
  const std::string fingerprint = sweep_fingerprint(options);

  // Completed-plan slots, filled by index so worker scheduling can
  // never reorder the report.
  std::vector<PlanRecord> slots(specs.size());
  std::vector<char> done(specs.size(), 0);

  SweepJournal journal;
  journal.fingerprint = fingerprint;
  if (options.resume) {
    std::string journal_error;
    auto loaded = load_sweep_journal(options.journal_path, fingerprint,
                                     &journal_error);
    if (!loaded.has_value()) {
      result.error = "sweep journal: " + journal_error;
      return result;
    }
    journal = std::move(*loaded);
    for (const auto& [index, record] : journal.records) {
      if (index >= specs.size() || record.spec != specs[index]) {
        result.error = strfmt(
            "sweep journal: plan %llu does not match this sweep's "
            "enumeration (journal '%s')",
            static_cast<unsigned long long>(index), record.spec.c_str());
        return result;
      }
      slots[index] = record;
      done[index] = 1;
      ++result.resumed;
    }
  }

  obs::Counter& plans_metric = obs::Registry::instance().counter("sweep.plans");
  obs::Counter& executed_metric =
      obs::Registry::instance().counter("sweep.executed");
  obs::Counter& resumed_metric =
      obs::Registry::instance().counter("sweep.resumed");
  obs::Counter& respawn_metric =
      obs::Registry::instance().counter("sweep.respawns");
  resumed_metric.add(result.resumed);
  plans_metric.add(result.resumed);

  std::mutex mu;  // journal writes, result counters, on_plan_done
  std::atomic<std::size_t> next{0};
  std::atomic<bool> interrupted{false};

  const auto worker_loop = [&](int worker_index) {
    DAMPI_TRACE_THREAD_LANE(strfmt("sweep %d", worker_index));
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= specs.size()) return;
      if (done[index] != 0) continue;  // satisfied from the journal
      if (options.cancel && options.cancel->requested()) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }

      std::string parse_error;
      auto plan = mpism::parse_fault_plan(specs[index], &parse_error);
      if (!plan) {
        // Enumeration emits canonical specs; a parse failure here is a
        // sweep bug, recorded as a coverage hole rather than a crash.
        PlanRecord record;
        record.index = index;
        record.spec = specs[index];
        record.verdict = Verdict::kSweepError;
        record.latent_error = parse_error;
        std::lock_guard<std::mutex> lk(mu);
        slots[index] = record;
        done[index] = 1;
        continue;
      }

      // Per-plan cancel chained to the sweep-wide source, so one SIGINT
      // stops every in-flight campaign; the chain is detached before
      // the plan's source dies.
      auto plan_cancel = std::make_shared<mpism::CancelSource>();
      std::uint64_t subscription = 0;
      if (options.cancel) {
        subscription = options.cancel->subscribe(
            [plan_cancel](const std::string& reason) {
              plan_cancel->cancel(reason);
            });
      }
      const core::ExplorerOptions opts =
          campaign_options(options, plan, plan_cancel);
      std::uint64_t respawns = 0;
      std::string spawn_error;
      const core::ExploreResult outcome = run_plan_with_respawn(
          [&opts, &program]() {
            core::Explorer explorer(opts);
            return explorer.explore(program);
          },
          options.max_plan_respawns, options.respawn_backoff_ms, &respawns,
          &spawn_error);
      if (options.cancel) options.cancel->unsubscribe(subscription);

      if (outcome.interrupted) {
        // Cancelled mid-campaign: no verdict. Not journalled, so a
        // resume re-runs this plan from scratch — the kill/resume
        // exactness contract.
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }

      PlanRecord record;
      if (!spawn_error.empty()) {
        record.index = index;
        record.spec = specs[index];
        record.verdict = Verdict::kSweepError;
        record.latent_error = spawn_error;
      } else {
        record = classify_campaign(index, specs[index], outcome,
                                   plan->total_fires());
      }
      DAMPI_TEVENT(obs::EventKind::kSweepPlan, obs::Phase::kInstant,
                   static_cast<std::int32_t>(index),
                   static_cast<std::int32_t>(record.verdict), 0,
                   record.interleavings);
      plans_metric.add(1);
      executed_metric.add(1);
      respawn_metric.add(respawns);

      std::lock_guard<std::mutex> lk(mu);
      slots[index] = record;
      done[index] = 1;
      ++result.executed;
      result.respawns += respawns;
      if (!options.journal_path.empty()) {
        journal.records[index] = record;
        save_sweep_journal(journal, options.journal_path);
      }
      if (options.on_plan_done) options.on_plan_done(record);
    }
  };

  const int workers =
      std::max(1, std::min(options.workers,
                           static_cast<int>(specs.empty() ? 1 : specs.size())));
  if (workers == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (std::thread& t : pool) t.join();
  }

  result.interrupted = interrupted.load(std::memory_order_relaxed) ||
                       (options.cancel && options.cancel->requested());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (done[i] != 0) result.records.push_back(slots[i]);
  }
  return result;
}

std::string format_sweep_report_json(const SweepOptions& options,
                                     const SweepResult& result) {
  std::string out = "{\n";
  out += strfmt("  \"program\": \"%s\",\n",
                json_escape(options.program_name).c_str());
  out += strfmt("  \"nprocs\": %d,\n", options.explorer.nprocs);
  out += strfmt("  \"budget\": %llu,\n",
                static_cast<unsigned long long>(options.budget));
  out += strfmt("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(options.seed));
  out += strfmt("  \"kinds\": \"%s\",\n", sweep_kinds_spec(options.kinds).c_str());
  out += strfmt("  \"planned\": %llu,\n",
                static_cast<unsigned long long>(result.planned));
  out += strfmt("  \"truncated\": %llu,\n",
                static_cast<unsigned long long>(result.truncated));
  out += strfmt(
      "  \"inventory\": {\"ranks\": %zu, \"total_ops\": %llu, \"per_rank\": [",
      result.inventory.ops.size(),
      static_cast<unsigned long long>(result.inventory.total_ops()));
  for (std::size_t rank = 0; rank < result.inventory.ops.size(); ++rank) {
    if (rank > 0) out += ", ";
    out += strfmt("%zu", result.inventory.ops[rank].size());
  }
  out += "]},\n";

  std::uint64_t counts[6] = {0, 0, 0, 0, 0, 0};
  for (const PlanRecord& record : result.records) {
    ++counts[static_cast<int>(record.verdict)];
  }
  out += "  \"verdicts\": {";
  for (int v = 0; v < 6; ++v) {
    if (v > 0) out += ", ";
    out += strfmt("\"%s\": %llu", verdict_name(static_cast<Verdict>(v)),
                  static_cast<unsigned long long>(counts[v]));
  }
  out += "},\n";

  out += "  \"plans\": [\n";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const PlanRecord& record = result.records[i];
    out += strfmt(
        "    {\"index\": %llu, \"spec\": \"%s\", \"verdict\": \"%s\", "
        "\"interleavings\": %llu, \"fires\": %llu, \"bugs\": %llu, "
        "\"partial\": %s",
        static_cast<unsigned long long>(record.index),
        json_escape(record.spec).c_str(), verdict_name(record.verdict),
        static_cast<unsigned long long>(record.interleavings),
        static_cast<unsigned long long>(record.fires),
        static_cast<unsigned long long>(record.bugs),
        record.partial ? "true" : "false");
    if (!record.latent_error.empty()) {
      out += strfmt(", \"latent\": \"%s\"",
                    json_escape(record.latent_error).c_str());
    }
    out += "}";
    if (i + 1 < result.records.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string format_sweep_summary(const SweepOptions& options,
                                 const SweepResult& result) {
  std::string out;
  if (!result.error.empty()) {
    return strfmt("fault sweep failed: %s\n", result.error.c_str());
  }
  out += strfmt("fault sweep: %s (%d ranks, %llu injectable ops)\n",
                options.program_name.c_str(), options.explorer.nprocs,
                static_cast<unsigned long long>(result.inventory.total_ops()));
  out += strfmt(
      "  plans: %zu completed of %llu enumerated (%llu over budget); "
      "%llu executed, %llu resumed, %llu respawns%s\n",
      result.records.size(), static_cast<unsigned long long>(result.planned),
      static_cast<unsigned long long>(result.truncated),
      static_cast<unsigned long long>(result.executed),
      static_cast<unsigned long long>(result.resumed),
      static_cast<unsigned long long>(result.respawns),
      result.interrupted ? " — INTERRUPTED" : "");

  for (int v = 0; v < 6; ++v) {
    const Verdict verdict = static_cast<Verdict>(v);
    std::vector<const PlanRecord*> matching;
    for (const PlanRecord& record : result.records) {
      if (record.verdict == verdict) matching.push_back(&record);
    }
    if (matching.empty()) continue;
    out += strfmt("  %-16s %4zu:", verdict_name(verdict), matching.size());
    constexpr std::size_t kShown = 8;
    for (std::size_t i = 0; i < matching.size() && i < kShown; ++i) {
      out += ' ';
      out += matching[i]->spec;
    }
    if (matching.size() > kShown) {
      out += strfmt(" (+%zu more)", matching.size() - kShown);
    }
    out += '\n';
  }
  for (const PlanRecord& record : result.records) {
    if (!record.latent_error.empty() &&
        record.verdict != Verdict::kSweepError) {
      out += strfmt("  latent error under %s: %s\n", record.spec.c_str(),
                    record.latent_error.c_str());
    }
  }
  return out;
}

int sweep_exit_code(const SweepResult& result) {
  if (!result.error.empty()) return 3;
  bool bugs = false;
  bool partial = result.interrupted;
  for (const PlanRecord& record : result.records) {
    if (record.verdict == Verdict::kDeadlock ||
        record.verdict == Verdict::kHang ||
        (record.verdict == Verdict::kErrorPropagated &&
         !record.latent_error.empty())) {
      bugs = true;
    }
    if (record.partial || record.verdict == Verdict::kSweepError) {
      partial = true;
    }
  }
  if (bugs) return 1;
  if (partial) return 2;
  return 0;
}

}  // namespace dampi::sweep
