// Workload tests: the proxies must be well-formed MPI programs (no
// deadlocks, expected leak signatures, expected wildcard profiles) and
// the mini-ADLB library must conserve and complete its work under every
// matching order.
#include <gtest/gtest.h>

#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/adlb.hpp"
#include "workloads/matmult.hpp"
#include "workloads/parmetis_proxy.hpp"
#include "workloads/skeleton.hpp"
#include "workloads/suites.hpp"

namespace dampi::test {
namespace {

using mpism::OpCategory;
using mpism::Proc;
using workloads::SkeletonSpec;
using workloads::Topology;

// --- skeleton topology invariants -------------------------------------------

class TopologyTest : public ::testing::TestWithParam<Topology> {};

TEST_P(TopologyTest, PartnerSetsAreSymmetric) {
  for (int nprocs : {2, 3, 8, 12, 16, 27, 32}) {
    for (int rank = 0; rank < nprocs; ++rank) {
      for (int partner :
           workloads::skeleton_partners(GetParam(), rank, nprocs)) {
        ASSERT_GE(partner, 0);
        ASSERT_LT(partner, nprocs);
        ASSERT_NE(partner, rank);
        const auto back =
            workloads::skeleton_partners(GetParam(), partner, nprocs);
        ASSERT_NE(std::find(back.begin(), back.end(), rank), back.end())
            << "asymmetric partners: " << rank << " <-> " << partner
            << " at P=" << nprocs;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologyTest,
                         ::testing::Values(Topology::kRing, Topology::kGrid2D,
                                           Topology::kGrid3D,
                                           Topology::kHypercube));

// --- suite proxies ------------------------------------------------------------

class SuiteTest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteTest, ProxyRunsCleanlyAndMatchesLeakSignature) {
  const auto& entry = workloads::table2_suite()[static_cast<std::size_t>(
      GetParam())];
  auto report = run_program(
      8, [&entry](Proc& p) { workloads::run_skeleton(p, entry.spec); });
  ASSERT_TRUE(report.completed)
      << entry.spec.name << ": " << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty()) << entry.spec.name;
  EXPECT_EQ(report.comm_leaks > 0, entry.paper_comm_leak) << entry.spec.name;
  EXPECT_EQ(report.request_leaks > 0, entry.paper_request_leak)
      << entry.spec.name;
}

TEST_P(SuiteTest, WildcardProfileMatchesExpectation) {
  const auto& entry = workloads::table2_suite()[static_cast<std::size_t>(
      GetParam())];
  core::ExplorerOptions options = explorer_options(8);
  auto result = run_dampi_once(
      options, {}, [&entry](Proc& p) { workloads::run_skeleton(p, entry.spec); });
  ASSERT_TRUE(result.report.completed) << entry.spec.name;
  const bool expect_wildcards = entry.paper_rstar > 0;
  EXPECT_EQ(result.trace.wildcard_recv_epochs > 0, expect_wildcards)
      << entry.spec.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, SuiteTest,
                         ::testing::Range(0, 14));

TEST(Suites, LookupByName) {
  ASSERT_TRUE(workloads::find_suite_entry("104.milc").has_value());
  ASSERT_TRUE(workloads::find_suite_entry("LU").has_value());
  EXPECT_FALSE(workloads::find_suite_entry("nope").has_value());
  EXPECT_EQ(workloads::find_suite_entry("104.milc")->paper_slowdown, 15.0);
}

// --- ParMETIS proxy -----------------------------------------------------------

TEST(Parmetis, RunsDeterministicallyWithCommLeak) {
  workloads::ParmetisConfig config = workloads::ParmetisConfig{}.scaled(15);
  config.iters_per_phase = 10;
  auto report = run_program(
      8, [&config](Proc& p) { workloads::parmetis_proxy(p, config); });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.comm_leaks, 1);       // Table II: C-Leak yes
  EXPECT_EQ(report.request_leaks, 0u);   // Table II: R-Leak no
}

TEST(Parmetis, NoWildcardReceives) {
  workloads::ParmetisConfig config = workloads::ParmetisConfig{}.scaled(15);
  config.iters_per_phase = 5;
  core::ExplorerOptions options = explorer_options(4);
  auto result = run_dampi_once(options, {}, [&config](Proc& p) {
    workloads::parmetis_proxy(p, config);
  });
  ASSERT_TRUE(result.report.completed);
  EXPECT_EQ(result.trace.wildcard_recv_epochs, 0u);
}

TEST(Parmetis, OperationProfileScalesLikeTable1) {
  // Total ops grow superlinearly with P while per-proc ops grow slowly
  // and collectives per proc do not grow.
  workloads::ParmetisConfig config;
  config.phases = 2;
  config.iters_per_phase = 25;

  auto profile = [&config](int nprocs) {
    auto report = run_program(nprocs, [&config](Proc& p) {
      workloads::parmetis_proxy(p, config);
    });
    EXPECT_TRUE(report.completed);
    return report.stats;
  };
  const auto small = profile(8);
  const auto large = profile(32);

  const double total_growth =
      static_cast<double>(large.total_reported()) /
      static_cast<double>(small.total_reported());
  EXPECT_GT(total_growth, 3.0);  // much faster than the 1.3x/doubling rate

  const double per_proc_growth =
      static_cast<double>(large.per_proc(OpCategory::kSendRecv)) /
      static_cast<double>(small.per_proc(OpCategory::kSendRecv));
  // Paper: 15K -> 31K per proc over the same span (2.07x); the proxy's
  // neighbor-set quantization can overshoot slightly.
  EXPECT_GT(per_proc_growth, 1.0);
  EXPECT_LT(per_proc_growth, 3.0);

  EXPECT_LE(large.per_proc(OpCategory::kCollective),
            small.per_proc(OpCategory::kCollective));
}

TEST(Parmetis, NeighborCountGrowsSublinearly) {
  const workloads::ParmetisConfig config;
  const int n8 = workloads::parmetis_neighbors(config, 8);
  const int n128 = workloads::parmetis_neighbors(config, 128);
  EXPECT_GT(n128, n8);
  EXPECT_LT(n128, 16 * n8);  // way below linear growth
  EXPECT_EQ(workloads::parmetis_neighbors(config, 1), 0);
}

// --- mini-ADLB -----------------------------------------------------------------

TEST(Adlb, CompletesAndConservesWork) {
  workloads::adlb::Config config;
  config.roots_per_server = 4;
  config.children_per_unit = 2;
  config.spawn_depth = 2;
  // 4 roots * (1 + 2 + 4) = 28 units
  EXPECT_EQ(workloads::adlb::total_units(config), 28u);

  auto report = run_program(5, [&config](Proc& p) {
    workloads::adlb::run(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty());
  // Message conservation: gets(units + one final per worker) + puts
  // (units - roots) + replies (gets). With W=4 workers, U=28 units,
  // roots=4: gets = 28 + 4, puts = 24, replies = 32 -> 88 messages.
  EXPECT_EQ(report.messages_sent, 88u);
}

class AdlbScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(AdlbScaleTest, TerminatesAtEveryScale) {
  const int nprocs = GetParam();
  workloads::adlb::Config config;
  config.roots_per_server = 3;
  config.children_per_unit = 1;
  config.spawn_depth = 1;
  auto report = run_program(nprocs, [&config](Proc& p) {
    workloads::adlb::run(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
}

INSTANTIATE_TEST_SUITE_P(Scales, AdlbScaleTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(Adlb, MultipleServers) {
  workloads::adlb::Config config;
  config.num_servers = 2;
  config.roots_per_server = 3;
  auto report = run_program(8, [&config](Proc& p) {
    workloads::adlb::run(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_EQ(report.comm_leaks, 0);
  EXPECT_EQ(report.request_leaks, 0u);
}

TEST(Adlb, ServerWildcardsDriveExploration) {
  workloads::adlb::Config config;
  config.roots_per_server = 2;
  config.compute_us_per_unit = 20.0;
  core::ExplorerOptions options = explorer_options(4);
  options.max_interleavings = 256;
  core::Explorer explorer(options);
  auto result = explorer.explore(
      [&config](Proc& p) { workloads::adlb::run(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_GT(result.wildcard_recv_epochs, 0u);
  EXPECT_GT(result.interleavings, 1u);
}

TEST(Adlb, LoopAbstractionTamesTheServer) {
  workloads::adlb::Config config;
  config.roots_per_server = 2;
  config.abstract_server_loop = true;
  core::ExplorerOptions options = explorer_options(4);
  options.max_interleavings = 256;
  core::Explorer explorer(options);
  auto result = explorer.explore(
      [&config](Proc& p) { workloads::adlb::run(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.interleavings, 1u);
}

// Every exploration of a small ADLB instance completes with conserved
// message counts: the scheduler cannot drive the library into a lost or
// duplicated work unit whatever matching it forces.
TEST(Adlb, WorkConservedAcrossAllInterleavings) {
  workloads::adlb::Config config;
  config.roots_per_server = 3;
  config.children_per_unit = 0;
  config.spawn_depth = 0;
  core::ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 512;
  core::Explorer explorer(options);
  std::uint64_t runs = 0;
  auto result = explorer.explore(
      [&config](Proc& p) { workloads::adlb::run(p, config); },
      [&runs](const core::RunTrace&, const mpism::RunReport& report,
              const core::Schedule&) {
        ++runs;
        EXPECT_TRUE(report.completed);
        // 3 units (no children), 2 workers: gets = 3+2, puts = 0,
        // replies = 5 -> 10 messages in every interleaving.
        EXPECT_EQ(report.messages_sent, 10u);
      });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(runs, result.interleavings);
  EXPECT_GT(runs, 1u);
}

// --- matmult edge configs -------------------------------------------------------

TEST(Matmult, MoreWorkersThanChunks) {
  workloads::MatmultConfig config;
  config.n = 2;
  config.chunk_rows = 1;  // 2 chunks, 4 workers -> 2 idle workers
  auto report = run_program(5, [config](Proc& p) {
    workloads::matmult(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty());
}

TEST(Matmult, SingleWorker) {
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 1;
  auto report = run_program(2, [config](Proc& p) {
    workloads::matmult(p, config);
  });
  ASSERT_TRUE(report.completed);
  EXPECT_TRUE(report.errors.empty());
}

// --- instrumented runs at moderate scale ----------------------------------

// Every Table II proxy verifies cleanly under full DAMPI instrumentation
// at 64 ranks (overhead run; the 1024-rank version lives in the bench).
TEST(SuiteAtScale, AllProxiesInstrumentedAt64Ranks) {
  for (const auto& entry : workloads::table2_suite()) {
    core::VerifyOptions options;
    options.explorer = explorer_options(64);
    options.explorer.max_interleavings = 1;
    core::Verifier verifier(options);
    const auto result = verifier.verify([&entry](Proc& p) {
      workloads::run_skeleton(p, entry.spec);
    });
    ASSERT_TRUE(result.exploration.first_report.completed)
        << entry.spec.name;
    EXPECT_FALSE(result.deadlock_found) << entry.spec.name;
    EXPECT_FALSE(result.error_found) << entry.spec.name;
    EXPECT_GE(result.slowdown, 0.99) << entry.spec.name;
    EXPECT_EQ(result.comm_leaks > 0, entry.paper_comm_leak)
        << entry.spec.name;
  }
}

TEST(Adlb, MultiServerExplorationConservesWork) {
  workloads::adlb::Config config;
  config.num_servers = 2;
  config.roots_per_server = 2;
  config.children_per_unit = 0;
  config.spawn_depth = 0;
  // 4 units total, 2 per server; 4 workers (2 per server).
  const std::uint64_t units = workloads::adlb::total_units(config);
  EXPECT_EQ(units, 4u);
  core::ExplorerOptions options = explorer_options(6);
  options.max_interleavings = 512;
  core::Explorer explorer(options);
  std::uint64_t violations = 0;
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::adlb::run(p, config); },
      [&violations](const core::RunTrace&, const mpism::RunReport& report,
                    const core::Schedule&) {
        // gets = units + workers, puts = 0, replies = gets.
        if (!report.completed || report.messages_sent != 16u) ++violations;
      });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(violations, 0u);
}

TEST(Parmetis, InstrumentedOverheadIsModest) {
  workloads::ParmetisConfig config;
  config.phases = 2;
  config.iters_per_phase = 25;
  core::VerifyOptions options;
  options.explorer = explorer_options(32);
  options.explorer.max_interleavings = 1;
  core::Verifier verifier(options);
  const auto result = verifier.verify(
      [&config](Proc& p) { workloads::parmetis_proxy(p, config); });
  ASSERT_TRUE(result.exploration.first_report.completed);
  // Deterministic code: piggybacking only, well under 2x.
  EXPECT_LT(result.slowdown, 2.0);
  EXPECT_GE(result.slowdown, 1.0);
}

}  // namespace
}  // namespace dampi::test
