file(REMOVE_RECURSE
  "CMakeFiles/dampi_piggyback.dir/factory.cpp.o"
  "CMakeFiles/dampi_piggyback.dir/factory.cpp.o.d"
  "CMakeFiles/dampi_piggyback.dir/packed_payload.cpp.o"
  "CMakeFiles/dampi_piggyback.dir/packed_payload.cpp.o.d"
  "CMakeFiles/dampi_piggyback.dir/separate_message.cpp.o"
  "CMakeFiles/dampi_piggyback.dir/separate_message.cpp.o.d"
  "libdampi_piggyback.a"
  "libdampi_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dampi_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
