// Collective semantics: data movement, relaxed completion, reductions,
// and misuse detection.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/run_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::pack;
using mpism::ReduceOp;
using mpism::unpack;
using mpism::unpack_vec;

TEST(Collectives, BarrierSynchronizesVirtualTime) {
  auto report = run_program(4, [](Proc& p) {
    if (p.rank() == 0) p.compute(5000.0);
    p.barrier();
  });
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.vtime_us, 5000.0);  // everyone paid for rank 0's delay
}

TEST(Collectives, BcastDeliversRootData) {
  auto report = run_program(4, [](Proc& p) {
    Bytes data;
    if (p.rank() == 1) data = pack<int>(1234);
    p.bcast(&data, /*root=*/1);
    EXPECT_EQ(unpack<int>(data), 1234);
  });
  EXPECT_TRUE(report.ok());
}

// Relaxed completion: the root of a bcast does not wait for the others
// (MPI does not require synchronous completion — §II-E of the paper).
TEST(Collectives, BcastRootDoesNotWaitForLeaves) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      Bytes data = pack<int>(1);
      p.bcast(&data, 0);
      // Root proceeds and sends; leaf receives this *before* entering the
      // bcast — only possible if the root completed early.
      p.send(1, 9, pack<int>(2));
    } else {
      Bytes msg;
      p.recv(0, 9, &msg);
      Bytes data;
      p.bcast(&data, 0);
      EXPECT_EQ(unpack<int>(data), 1);
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

// Conversely, a leaf cannot pass a bcast the root never entered.
TEST(Collectives, BcastLeafWaitsForRoot) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 1) {
      Bytes data;
      p.bcast(&data, 0);  // root never calls bcast -> deadlock
    }
    // rank 0 returns immediately
  });
  EXPECT_TRUE(report.deadlocked);
}

TEST(Collectives, ReduceSumAtRoot) {
  auto report = run_program(5, [](Proc& p) {
    Bytes out = p.reduce(pack<std::uint64_t>(p.rank() + 1),
                         ReduceOp::kSumU64, /*root=*/2);
    if (p.rank() == 2) {
      EXPECT_EQ(unpack<std::uint64_t>(out), 15u);  // 1+2+3+4+5
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, AllreduceMax) {
  auto report = run_program(4, [](Proc& p) {
    const std::uint64_t result = p.allreduce_u64(
        static_cast<std::uint64_t>(p.rank() * 7), ReduceOp::kMaxU64);
    EXPECT_EQ(result, 21u);
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, AllreduceMinDouble) {
  auto report = run_program(3, [](Proc& p) {
    const double result =
        p.allreduce_f64(1.0 / (p.rank() + 1), ReduceOp::kMinF64);
    EXPECT_DOUBLE_EQ(result, 1.0 / 3.0);
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, ReduceElementwiseVector) {
  auto report = run_program(3, [](Proc& p) {
    std::vector<std::uint64_t> contrib = {1, static_cast<std::uint64_t>(p.rank())};
    Bytes out =
        p.reduce(mpism::pack_vec(contrib), ReduceOp::kSumU64, /*root=*/0);
    if (p.rank() == 0) {
      auto v = unpack_vec<std::uint64_t>(out);
      ASSERT_EQ(v.size(), 2u);
      EXPECT_EQ(v[0], 3u);
      EXPECT_EQ(v[1], 3u);  // 0+1+2
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, GatherOrdersByRank) {
  auto report = run_program(4, [](Proc& p) {
    auto all = p.gather(pack<int>(p.rank() * p.rank()), /*root=*/3);
    if (p.rank() == 3) {
      ASSERT_EQ(all.size(), 4u);
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(unpack<int>(all[static_cast<std::size_t>(i)]), i * i);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, ScatterDistributesSlices) {
  auto report = run_program(4, [](Proc& p) {
    std::vector<Bytes> slices;
    if (p.rank() == 0) {
      for (int i = 0; i < 4; ++i) slices.push_back(pack<int>(100 + i));
    }
    Bytes mine = p.scatter(std::move(slices), /*root=*/0);
    EXPECT_EQ(unpack<int>(mine), 100 + p.rank());
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, AllgatherGivesEveryoneEverything) {
  auto report = run_program(3, [](Proc& p) {
    auto all = p.allgather(pack<int>(p.rank() + 50));
    ASSERT_EQ(all.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(unpack<int>(all[static_cast<std::size_t>(i)]), i + 50);
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, AlltoallTransposes) {
  auto report = run_program(3, [](Proc& p) {
    std::vector<Bytes> in;
    for (int j = 0; j < 3; ++j) in.push_back(pack<int>(p.rank() * 10 + j));
    auto out = p.alltoall(std::move(in));
    ASSERT_EQ(out.size(), 3u);
    for (int j = 0; j < 3; ++j) {
      // out[j] = rank j's slice for me = j*10 + my_rank
      EXPECT_EQ(unpack<int>(out[static_cast<std::size_t>(j)]),
                j * 10 + p.rank());
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Collectives, MismatchedKindsAreAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.barrier();
    } else {
      Bytes b = pack<int>(1);
      p.bcast(&b, 1);
    }
  });
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].message.find("collective mismatch"),
            std::string::npos);
}

TEST(Collectives, MismatchedRootsAreAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    Bytes b = pack<int>(1);
    p.bcast(&b, p.rank());  // different roots
  });
  EXPECT_FALSE(report.ok());
}

TEST(Collectives, MismatchedReduceLengthsAreAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    std::vector<std::uint64_t> contrib(
        static_cast<std::size_t>(p.rank() + 1), 1);
    p.allreduce(mpism::pack_vec(contrib), ReduceOp::kSumU64);
  });
  EXPECT_FALSE(report.ok());
}

TEST(Collectives, InvalidRootIsAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    Bytes b;
    p.bcast(&b, 7);
  });
  EXPECT_FALSE(report.ok());
}

// Back-to-back collectives on the same communicator use distinct
// generations even when a fast rank races ahead (relaxed completion).
TEST(Collectives, PipelinedGenerationsDoNotCollide) {
  auto report = run_program(3, [](Proc& p) {
    for (int round = 0; round < 20; ++round) {
      Bytes data;
      if (p.rank() == 0) data = pack<int>(round);
      p.bcast(&data, 0);
      EXPECT_EQ(unpack<int>(data), round);
    }
  });
  EXPECT_TRUE(report.ok());
}

// Sweep collective correctness across process counts.
class CollectiveScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveScaleTest, AllreduceSumMatchesFormula) {
  const int n = GetParam();
  auto report = run_program(n, [n](Proc& p) {
    const std::uint64_t sum = p.allreduce_u64(
        static_cast<std::uint64_t>(p.rank()), ReduceOp::kSumU64);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
  });
  EXPECT_TRUE(report.ok());
}

TEST_P(CollectiveScaleTest, BarrierLoopTerminates) {
  const int n = GetParam();
  auto report = run_program(n, [](Proc& p) {
    for (int i = 0; i < 10; ++i) p.barrier();
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.stats.total(mpism::OpCategory::kCollective),
            static_cast<std::uint64_t>(n) * 10);
}

INSTANTIATE_TEST_SUITE_P(Scales, CollectiveScaleTest,
                         ::testing::Values(2, 3, 8, 32, 64));

}  // namespace
}  // namespace dampi::test
