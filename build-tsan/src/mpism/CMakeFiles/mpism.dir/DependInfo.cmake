
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpism/comm.cpp" "src/mpism/CMakeFiles/mpism.dir/comm.cpp.o" "gcc" "src/mpism/CMakeFiles/mpism.dir/comm.cpp.o.d"
  "/root/repo/src/mpism/engine.cpp" "src/mpism/CMakeFiles/mpism.dir/engine.cpp.o" "gcc" "src/mpism/CMakeFiles/mpism.dir/engine.cpp.o.d"
  "/root/repo/src/mpism/policy.cpp" "src/mpism/CMakeFiles/mpism.dir/policy.cpp.o" "gcc" "src/mpism/CMakeFiles/mpism.dir/policy.cpp.o.d"
  "/root/repo/src/mpism/proc.cpp" "src/mpism/CMakeFiles/mpism.dir/proc.cpp.o" "gcc" "src/mpism/CMakeFiles/mpism.dir/proc.cpp.o.d"
  "/root/repo/src/mpism/types.cpp" "src/mpism/CMakeFiles/mpism.dir/types.cpp.o" "gcc" "src/mpism/CMakeFiles/mpism.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/dampi_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/clocks/CMakeFiles/dampi_clocks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
