// Verifying a work-stealing library: mini-ADLB under DAMPI.
//
// ADLB's server loop is one hot wildcard receive — "its non-deterministic
// commands are very difficult to control through all possible outcomes
// during conventional testing" (§I). This demo:
//   1. runs the library natively and shows the server's epoch count;
//   2. explores alternate matching orders with bounded mixing and checks
//      a global invariant (work conservation) in every interleaving;
//   3. shows the loop-iteration abstraction collapsing the server loop.
//
//   $ ./examples/adlb_demo
#include <cstdio>

#include "core/explorer.hpp"
#include "workloads/adlb.hpp"

using namespace dampi;

int main() {
  constexpr int kProcs = 6;  // five workers + one server

  workloads::adlb::Config config;
  config.roots_per_server = 4;
  config.children_per_unit = 2;
  config.spawn_depth = 1;

  std::printf("mini-ADLB: %llu work units over %d workers, 1 server\n",
              static_cast<unsigned long long>(
                  workloads::adlb::total_units(config)),
              kProcs - 1);

  core::ExplorerOptions options;
  options.nprocs = kProcs;
  options.mixing_bound = 1;
  options.max_interleavings = 400;

  std::uint64_t runs = 0;
  std::uint64_t violations = 0;
  const std::uint64_t expected_messages =
      // gets (units + one final per worker) + puts (units - roots) +
      // replies (== gets)
      2 * (workloads::adlb::total_units(config) +
           static_cast<std::uint64_t>(kProcs - 1)) +
      (workloads::adlb::total_units(config) - config.roots_per_server);

  core::Explorer explorer(options);
  const auto result = explorer.explore(
      [config](mpism::Proc& p) { workloads::adlb::run(p, config); },
      [&](const core::RunTrace&, const mpism::RunReport& report,
          const core::Schedule&) {
        ++runs;
        if (!report.completed || report.messages_sent != expected_messages) {
          ++violations;
        }
      });

  std::printf("explored %llu interleavings (k=1)\n",
              static_cast<unsigned long long>(result.interleavings));
  std::printf("server wildcard epochs in the first run: %llu\n",
              static_cast<unsigned long long>(
                  result.wildcard_recv_epochs));
  std::printf("work-conservation invariant: %s (%llu messages expected in "
              "every interleaving)\n",
              violations == 0 ? "HELD in every interleaving" : "VIOLATED",
              static_cast<unsigned long long>(expected_messages));
  if (result.found_bug() || violations != 0) {
    std::printf("unexpected failure!\n");
    return 1;
  }

  // Loop abstraction: bracket the server loop, keep only the self-run.
  workloads::adlb::Config abstracted = config;
  abstracted.abstract_server_loop = true;
  core::Explorer collapsed_explorer(options);
  const auto collapsed = collapsed_explorer.explore(
      [abstracted](mpism::Proc& p) { workloads::adlb::run(p, abstracted); });
  std::printf("with MPI_Pcontrol around the server loop: %llu "
              "interleaving(s)\n",
              static_cast<unsigned long long>(collapsed.interleavings));
  return 0;
}
