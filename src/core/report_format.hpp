// Human-readable rendering of verification results — what a user sees
// at the end of a run (the CLI uses it; library users can too).
#pragma once

#include <string>

#include "core/verifier.hpp"

namespace dampi::core {

/// Multi-line summary: exploration counts, R*, overhead, leaks, alerts,
/// and each bug with its reproducing decision file inline.
std::string format_verify_result(const VerifyResult& result);

/// One bug, with its decisions.
std::string format_bug(const BugRecord& bug);

}  // namespace dampi::core
