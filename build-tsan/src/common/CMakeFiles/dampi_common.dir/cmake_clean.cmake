file(REMOVE_RECURSE
  "CMakeFiles/dampi_common.dir/logging.cpp.o"
  "CMakeFiles/dampi_common.dir/logging.cpp.o.d"
  "CMakeFiles/dampi_common.dir/stats.cpp.o"
  "CMakeFiles/dampi_common.dir/stats.cpp.o.d"
  "CMakeFiles/dampi_common.dir/strutil.cpp.o"
  "CMakeFiles/dampi_common.dir/strutil.cpp.o.d"
  "libdampi_common.a"
  "libdampi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dampi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
