// Verifier: the user-facing facade of DAMPI.
//
//   core::VerifyOptions options;
//   options.explorer.nprocs = 16;
//   core::Verifier verifier(options);
//   core::VerifyResult result = verifier.verify(program);
//
// Runs the program natively (for the overhead baseline), then explores
// the space of non-deterministic matches with the Explorer, and reports
// bugs (deadlocks, program failures) with reproducing schedules, local
// resource leaks (unfreed communicators, unfinished requests), R*, the
// instrumentation slowdown, and §V unsafe-pattern alerts.
#pragma once

#include "core/explorer.hpp"
#include "core/options.hpp"

namespace dampi::core {

struct VerifyOptions {
  ExplorerOptions explorer;
  /// Run once without instrumentation to compute the slowdown (Table II).
  bool measure_native = true;
};

struct VerifyResult {
  ExploreResult exploration;

  /// Overhead of the instrumented first run vs the native run (virtual
  /// time), the paper's Table II "Slowdown" column.
  double native_vtime_us = 0.0;
  double instrumented_vtime_us = 0.0;
  double slowdown = 1.0;

  /// Leak findings from the first completed execution (Table II C-Leak /
  /// R-Leak columns).
  int comm_leaks = 0;
  std::uint64_t request_leaks = 0;

  bool deadlock_found = false;
  bool error_found = false;
  /// A run exceeded its per-run watchdog budget (possible livelock).
  bool hang_found = false;

  bool clean() const {
    return !deadlock_found && !error_found && !hang_found && comm_leaks == 0 &&
           request_leaks == 0;
  }
};

class Verifier {
 public:
  explicit Verifier(VerifyOptions options) : options_(std::move(options)) {}

  VerifyResult verify(const mpism::ProgramFn& program,
                      const Explorer::RunObserver& observer = {});

 private:
  VerifyOptions options_;
};

}  // namespace dampi::core
