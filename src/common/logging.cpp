#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dampi::log {
namespace {

Level parse_level(const char* s) {
  if (s == nullptr) return Level::kWarn;
  if (std::strcmp(s, "trace") == 0) return Level::kTrace;
  if (std::strcmp(s, "debug") == 0) return Level::kDebug;
  if (std::strcmp(s, "info") == 0) return Level::kInfo;
  if (std::strcmp(s, "warn") == 0) return Level::kWarn;
  if (std::strcmp(s, "error") == 0) return Level::kError;
  if (std::strcmp(s, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level g_threshold = parse_level(std::getenv("DAMPI_LOG_LEVEL"));
std::mutex g_mutex;
thread_local int t_rank = -1;

}  // namespace

Level threshold() { return g_threshold; }
void set_threshold(Level level) { g_threshold = level; }

void set_thread_rank(int rank) { t_rank = rank; }
int thread_rank() { return t_rank; }

void write(Level level, const std::string& line) {
  if (level < g_threshold) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%s r%d] %s\n", level_name(level), t_rank,
                 line.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), line.c_str());
  }
}

}  // namespace dampi::log
