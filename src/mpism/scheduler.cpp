#include "mpism/scheduler.hpp"

#include <ucontext.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Sanitizers instrument the OS-thread stack; swapcontext moves execution
// onto a heap stack they know nothing about, so shadow state corrupts
// (TSan) or redzones fire (ASan). Rather than annotate fibers we fall
// back to ThreadScheduler in sanitized builds — the coop paths are
// exercised by the unsanitized tier-1 stages.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DAMPI_COOP_UNSUPPORTED 1
#endif
#if !defined(DAMPI_COOP_UNSUPPORTED) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DAMPI_COOP_UNSUPPORTED 1
#endif
#endif

namespace dampi::mpism {
namespace {

// ---------------------------------------------------------------------------
// ThreadScheduler: one OS thread per rank, per-rank eventcount waiters
// (the engine's original execution model, kept for differential testing
// and for sanitized builds).
//
// The park/wake protocol is an eventcount rather than a cv-on-the-engine
// -mutex because the engine mutex may be *sharded*: a waker completing a
// rendezvous or declaring a verdict publishes through atomics without
// holding the sleeper's shard, so the sleeper cannot rely on "predicate
// flips happen under my lock". Instead each rank has {mutex, cv, gen}:
//
//   parker:  check pred (guard held) → snapshot gen (waiter mutex) →
//            re-check pred → drop guard → wait until gen != snapshot →
//            retake guard → loop
//   waker:   { lock waiter mutex; ++gen; } notify_all()
//
// The post-snapshot re-check closes the race with atomic-published
// state: if the waker bumped gen before our snapshot, the waiter-mutex
// acquire synchronizes-with its release, making the published state
// visible to the re-check; if it bumps after, the wait observes the gen
// change. Shard-published state is simpler still — the waker needs our
// shard, which we hold until the park actually drops it.
// ---------------------------------------------------------------------------

class ThreadScheduler final : public RankScheduler {
 public:
  explicit ThreadScheduler(int nprocs)
      : nprocs_(nprocs),
        waiters_(std::make_unique<Waiter[]>(static_cast<std::size_t>(nprocs))) {
  }

  void run(const Callbacks& cb) override {
    cb_ = &cb;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs_));
    for (Rank r = 0; r < nprocs_; ++r) {
      threads.emplace_back([r, &cb] {
        log::set_thread_rank(r);
        DAMPI_TRACE_THREAD_LANE(strfmt("rank %d", r));
        cb.body(r);
      });
    }
    for (auto& t : threads) t.join();
  }

  void block(EngineGuard& g, Rank r) override {
    Waiter& w = waiters_[static_cast<std::size_t>(r)];
    // An untimed wait is enough even for deadline-armed runs: a parked
    // rank never has to notice the deadline itself. If any peer is still
    // issuing ops, its budget charge declares the timeout within a
    // 32-op stride and the abort wakes everyone here via stop(); if no
    // peer is, the stall detector declares deadlock. Timed waits cost
    // ~150ns each on the message critical path, so they stay out of it.
    for (;;) {
      if (cb_->wake_ready(r) || cb_->stop()) return;
      std::uint64_t gen;
      {
        std::lock_guard<std::mutex> wl(w.mu);
        gen = w.gen;
      }
      // Re-check after the snapshot: a waker that bumped gen first has
      // its published state made visible by the w.mu acquire above.
      if (cb_->wake_ready(r) || cb_->stop()) return;
      g.unlock();
      {
        std::unique_lock<std::mutex> wl(w.mu);
        w.cv.wait(wl, [&w, gen] { return w.gen != gen; });
      }
      g.lock();
    }
  }

  void wake(Rank r) override {
    Waiter& w = waiters_[static_cast<std::size_t>(r)];
    {
      std::lock_guard<std::mutex> wl(w.mu);
      ++w.gen;
    }
    w.cv.notify_all();
  }

  void wake_all() override {
    for (Rank r = 0; r < nprocs_; ++r) wake(r);
  }

  bool detects_stall() const override { return false; }
  const char* name() const override { return "thread"; }

 private:
  struct alignas(64) Waiter {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t gen = 0;
  };

  int nprocs_;
  std::unique_ptr<Waiter[]> waiters_;
  const Callbacks* cb_ = nullptr;
};

// ---------------------------------------------------------------------------
// CoopScheduler: one ucontext fiber per rank, all multiplexed onto the
// thread that called run(). A fiber executes until its rank blocks in an
// MPI operation (block() swaps back here), then the policy picks the
// next runnable rank. Everything the policy consumes — fiber states,
// wake hints, predicate results — is a deterministic function of program
// behaviour, so a (policy, seed) pair fixes the entire interleaving.
//
// The dispatch loop runs without any engine lock: fibers and the loop
// share one OS thread, so rank state reads race only with external
// cancellation — which publishes through atomics by contract. Fibers
// release their engine guard before swapping back (block/yield) and
// retake it on resume.
// ---------------------------------------------------------------------------

class CoopScheduler final : public RankScheduler {
 public:
  CoopScheduler(const SchedOptions& options, int nprocs)
      : opts_(options),
        nprocs_(nprocs),
        rng_(options.seed),
        fibers_(static_cast<std::size_t>(nprocs)) {
    if (opts_.pick == SchedPolicy::kPriority) {
      // Static per-rank priorities drawn once from the seed; ties are
      // impossible in practice (64-bit draws) but break toward the
      // lower rank for full determinism anyway.
      Rng prio_rng(opts_.seed);
      priorities_.reserve(fibers_.size());
      for (int i = 0; i < nprocs_; ++i) {
        priorities_.push_back(prio_rng.next_u64());
      }
    }
  }

  ~CoopScheduler() override {
    for (Fiber& f : fibers_) {
      if (f.lane != nullptr) obs::Tracer::instance().release(f.lane);
    }
  }

  void run(const Callbacks& cb) override {
    cb_ = &cb;
    if (obs::trace_on()) {
      for (Rank r = 0; r < nprocs_; ++r) {
        fibers_[static_cast<std::size_t>(r)].lane =
            obs::Tracer::instance().acquire(strfmt("rank %d", r));
      }
    }
    std::uint64_t switches = 0;
    const bool has_deadline =
        cb.deadline != std::chrono::steady_clock::time_point{};
    while (finished_ < nprocs_) {
      // Run-to-block execution has exactly one preemption point — this
      // dispatch loop — so the per-run deadline is checked here. This
      // is what catches a livelocked spinner that only ever yields
      // (never blocks): every yield funnels back through this loop.
      // The clock read is amortized over 64 dispatches; a spinner
      // cycles through here fast enough that the slack is microseconds.
      if (has_deadline && (switches & 63) == 0 && !cb.stop() &&
          std::chrono::steady_clock::now() >= cb.deadline) {
        cb.on_deadline();
      }
      const Rank r = pick();
      DAMPI_CHECK_MSG(r >= 0, "coop scheduler: no dispatchable rank");
      dispatch(r);
      ++switches;
    }
    for (Fiber& f : fibers_) {
      if (f.lane != nullptr) {
        obs::Tracer::instance().release(f.lane);
        f.lane = nullptr;
      }
    }
    static obs::Counter& runs_metric =
        obs::Registry::instance().counter("scheduler.coop_runs");
    static obs::Counter& switches_metric =
        obs::Registry::instance().counter("scheduler.switches");
    static obs::Counter& stalls_metric =
        obs::Registry::instance().counter("scheduler.stalls");
    runs_metric.add(1);
    switches_metric.add(switches);
    stalls_metric.add(stalls_);
  }

  void block(EngineGuard& g, Rank r) override {
    Fiber& f = fibers_[static_cast<std::size_t>(r)];
    while (!(cb_->wake_ready(r) || cb_->stop())) {
      f.state = State::kBlocked;
      // The fiber must release its engine guard before swapping: the
      // next dispatched rank may need the same shard, and it runs on
      // this very OS thread.
      g.unlock();
      swapcontext(&f.ctx, &sched_ctx_);
      g.lock();
    }
  }

  void yield(EngineGuard& g, Rank r) override {
    Fiber& f = fibers_[static_cast<std::size_t>(r)];
    f.state = State::kYielded;
    g.unlock();
    swapcontext(&f.ctx, &sched_ctx_);
    g.lock();
  }

  void wake(Rank r) override {
    fibers_[static_cast<std::size_t>(r)].hint.store(
        true, std::memory_order_relaxed);
  }

  void wake_all() override {
    for (Fiber& f : fibers_) f.hint.store(true, std::memory_order_relaxed);
  }

  bool detects_stall() const override { return true; }

  const char* name() const override {
    switch (opts_.pick) {
      case SchedPolicy::kRoundRobin: return "coop-rr";
      case SchedPolicy::kRandomSeeded: return "coop-random";
      case SchedPolicy::kPriority: return "coop-priority";
    }
    return "coop";
  }

 private:
  enum class State { kUnstarted, kRunning, kBlocked, kYielded, kFinished };

  struct Fiber {
    State state = State::kUnstarted;
    /// Wake-hint: a wake() targeted this rank since it last ran. Purely
    /// an optimization — candidates are re-validated against the wake
    /// predicate, and an empty hinted set triggers a full scan. Atomic
    /// because external cancellation calls wake_all from its own thread.
    std::atomic<bool> hint{false};
    std::unique_ptr<char[]> stack;
    ucontext_t ctx = {};
    obs::Lane* lane = nullptr;
  };

  /// Selects the next rank to dispatch, declaring a stall first if
  /// nothing is runnable. Returns -1 only when every rank has finished
  /// (the run loop exits before asking again).
  Rank pick() {
    candidates_.clear();
    const bool stopping = cb_->stop();
    bool any_unfinished = false;
    for (Rank r = 0; r < nprocs_; ++r) {
      Fiber& f = fibers_[static_cast<std::size_t>(r)];
      if (f.state == State::kFinished) continue;
      any_unfinished = true;
      if (stopping || f.state == State::kUnstarted ||
          f.state == State::kYielded) {
        // Stopping releases every parked rank so it can observe the
        // abort and unwind; unstarted and poll-yielded ranks are always
        // runnable.
        candidates_.push_back(r);
      } else if (f.hint.load(std::memory_order_relaxed) &&
                 cb_->wake_ready(r)) {
        candidates_.push_back(r);
      }
    }
    if (!any_unfinished) return -1;
    if (candidates_.empty()) {
      // Hints are conservative; a predicate can flip without a wake()
      // (e.g. a probe whose candidate set grew via an unrelated path).
      // Re-scan every blocked rank before concluding anything.
      for (Rank r = 0; r < nprocs_; ++r) {
        const Fiber& f = fibers_[static_cast<std::size_t>(r)];
        if (f.state == State::kBlocked && cb_->wake_ready(r)) {
          candidates_.push_back(r);
        }
      }
    }
    if (candidates_.empty()) {
      // Every live rank is blocked with a false predicate: with eager
      // matching nothing can make progress — an exact deadlock. The
      // engine marks the run stopped, after which all parked ranks
      // become dispatchable and unwind.
      ++stalls_;
      cb_->on_stall();
      DAMPI_CHECK_MSG(cb_->stop(), "on_stall must stop the run");
      for (Rank r = 0; r < nprocs_; ++r) {
        if (fibers_[static_cast<std::size_t>(r)].state != State::kFinished) {
          candidates_.push_back(r);
        }
      }
    }
    return choose_from_candidates();
  }

  Rank choose_from_candidates() {
    DAMPI_CHECK(!candidates_.empty());
    switch (opts_.pick) {
      case SchedPolicy::kRoundRobin: {
        for (Rank r : candidates_) {
          if (r >= rr_cursor_) {
            rr_cursor_ = (r + 1) % nprocs_;
            return r;
          }
        }
        const Rank r = candidates_.front();
        rr_cursor_ = (r + 1) % nprocs_;
        return r;
      }
      case SchedPolicy::kRandomSeeded:
        return candidates_[static_cast<std::size_t>(
            rng_.next_below(candidates_.size()))];
      case SchedPolicy::kPriority: {
        Rank best = candidates_.front();
        for (Rank r : candidates_) {
          if (priorities_[static_cast<std::size_t>(r)] >
              priorities_[static_cast<std::size_t>(best)]) {
            best = r;
          }
        }
        return best;
      }
    }
    return candidates_.front();
  }

  void dispatch(Rank r) {
    Fiber& f = fibers_[static_cast<std::size_t>(r)];
    f.hint.store(false, std::memory_order_relaxed);
    if (f.state == State::kUnstarted) prepare_fiber(f);
    f.state = State::kRunning;
    current_ = r;
    DAMPI_TEVENT(obs::EventKind::kSchedSwitch, obs::Phase::kBegin, r);
    const int host_rank = log::thread_rank();
    log::set_thread_rank(r);
    obs::Lane* host_lane = nullptr;
    if (f.lane != nullptr) host_lane = obs::exchange_thread_lane(f.lane);
    swapcontext(&sched_ctx_, &f.ctx);
    if (f.lane != nullptr) obs::exchange_thread_lane(host_lane);
    log::set_thread_rank(host_rank);
    DAMPI_TEVENT(obs::EventKind::kSchedSwitch, obs::Phase::kEnd, r);
    current_ = -1;
  }

  void prepare_fiber(Fiber& f) {
    f.stack.reset(new char[opts_.stack_bytes]);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = opts_.stack_bytes;
    f.ctx.uc_link = &sched_ctx_;
    // makecontext takes int arguments; smuggle `this` through two
    // halves (the classic portable idiom).
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&CoopScheduler::tramp),
                2, static_cast<int>(static_cast<std::uint32_t>(self >> 32)),
                static_cast<int>(static_cast<std::uint32_t>(self)));
  }

  static void tramp(int hi, int lo) {
    const std::uintptr_t bits =
        (static_cast<std::uintptr_t>(static_cast<std::uint32_t>(hi)) << 32) |
        static_cast<std::uintptr_t>(static_cast<std::uint32_t>(lo));
    reinterpret_cast<CoopScheduler*>(bits)->fiber_main();
  }

  void fiber_main() {
    const Rank r = current_;
    cb_->body(r);
    Fiber& f = fibers_[static_cast<std::size_t>(r)];
    f.state = State::kFinished;
    ++finished_;
    // Yield for good; the scheduler never resumes a finished fiber, so
    // the loop is unreachable after the first swap (it exists so the
    // trampoline can never fall off the end of its makecontext frame).
    for (;;) swapcontext(&f.ctx, &sched_ctx_);
  }

  SchedOptions opts_;
  int nprocs_;
  Rng rng_;
  std::vector<Fiber> fibers_;
  std::vector<std::uint64_t> priorities_;
  std::vector<Rank> candidates_;
  ucontext_t sched_ctx_ = {};
  const Callbacks* cb_ = nullptr;
  Rank current_ = -1;
  Rank rr_cursor_ = 0;
  int finished_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace

bool coop_supported() {
#if defined(DAMPI_COOP_UNSUPPORTED)
  return false;
#else
  return true;
#endif
}

std::unique_ptr<RankScheduler> make_scheduler(const SchedOptions& options,
                                              int nprocs) {
  DAMPI_CHECK(nprocs > 0);
  if (options.kind == SchedulerKind::kCoop) {
    if (coop_supported()) {
      SchedOptions coop = options;
      coop.stack_bytes = std::max<std::size_t>(coop.stack_bytes, 64 * 1024);
      return std::make_unique<CoopScheduler>(coop, nprocs);
    }
    static bool warned = false;
    if (!warned) {
      warned = true;
      DAMPI_LOG(kWarn) << "coop scheduler unavailable in sanitized builds; "
                          "falling back to thread scheduler";
    }
  }
  return std::make_unique<ThreadScheduler>(nprocs);
}

bool parse_sched_spec(const std::string& spec, SchedOptions* out) {
  SchedOptions parsed = *out;
  if (spec == "thread") {
    parsed.kind = SchedulerKind::kThread;
  } else if (spec == "coop" || spec == "coop-rr") {
    parsed.kind = SchedulerKind::kCoop;
    parsed.pick = SchedPolicy::kRoundRobin;
  } else if (spec == "coop-random") {
    parsed.kind = SchedulerKind::kCoop;
    parsed.pick = SchedPolicy::kRandomSeeded;
  } else if (spec == "coop-priority") {
    parsed.kind = SchedulerKind::kCoop;
    parsed.pick = SchedPolicy::kPriority;
  } else {
    return false;
  }
  *out = parsed;
  return true;
}

std::string sched_spec(const SchedOptions& options) {
  if (options.kind == SchedulerKind::kThread) return "thread";
  switch (options.pick) {
    case SchedPolicy::kRoundRobin: return "coop-rr";
    case SchedPolicy::kRandomSeeded: return "coop-random";
    case SchedPolicy::kPriority: return "coop-priority";
  }
  return "coop";
}

const SchedOptions& default_sched_options() {
  static const SchedOptions cached = [] {
    SchedOptions options;
    const char* env = std::getenv("DAMPI_SCHED");
    if (env != nullptr && env[0] != '\0' &&
        !parse_sched_spec(env, &options)) {
      DAMPI_LOG(kWarn) << "ignoring unrecognized DAMPI_SCHED value '" << env
                       << "' (want thread|coop|coop-rr|coop-random|"
                          "coop-priority)";
    }
    return options;
  }();
  return cached;
}

}  // namespace dampi::mpism
