// Message envelope: what travels from a sender to a receiver's queues.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "mpism/pool.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

struct RequestRecord;

/// Message payload with a small-buffer inline store. Most traffic —
/// control messages, piggybacked clock prefixes, the example suites'
/// halo cells — is ≤ 64 bytes; keeping those bytes inside the envelope
/// means matching and queueing never chase a heap `std::vector`, and an
/// eager send of a small message performs no allocation at all. Larger
/// payloads fall back to an owned heap vector, with the source vector's
/// capacity adopted wholesale (no copy).
class Payload {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  Payload() = default;

  /// Implicit on purpose: call sites assign `pack<T>(v)` (a Bytes)
  /// straight into `env.payload`, mirroring the pre-SBO field.
  Payload(Bytes&& bytes) {  // NOLINT(google-explicit-constructor)
    adopt(std::move(bytes), nullptr);
  }
  Payload(const Bytes& bytes) {  // NOLINT(google-explicit-constructor)
    if (bytes.size() <= kInlineCapacity) {
      set_inline(bytes.data(), bytes.size());
    } else {
      heap_ = bytes;
      size_ = heap_.size();
      inline_ = false;
    }
  }

  /// Adopts `bytes`; when the content fits inline, the dead source
  /// vector's capacity is donated to `pool` (if given) so the sender's
  /// next pack() can reuse it.
  Payload(Bytes&& bytes, BufferPool* pool) { adopt(std::move(bytes), pool); }

  Payload(const Payload& other) { copy_from(other); }
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      heap_ = Bytes();
      copy_from(other);
    }
    return *this;
  }

  Payload(Payload&& other) noexcept { move_from(std::move(other)); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      heap_ = Bytes();
      move_from(std::move(other));
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_inline() const { return inline_; }
  const std::byte* data() const {
    return inline_ ? sbo_.data() : heap_.data();
  }

  /// Extracts the content as a Bytes, leaving the payload empty. Inline
  /// content is copied into a (pool-recycled, if given) buffer; heap
  /// content moves out without copying.
  Bytes release(BufferPool* pool) {
    Bytes out;
    if (inline_) {
      out = pool != nullptr ? pool->acquire() : Bytes();
      out.resize(size_);
      if (size_ != 0) std::memcpy(out.data(), sbo_.data(), size_);
    } else {
      out = std::move(heap_);
      heap_ = Bytes();
    }
    size_ = 0;
    inline_ = true;
    return out;
  }

  /// Drops the content, donating heap capacity to `pool`.
  void recycle_into(BufferPool& pool) {
    if (!inline_) pool.recycle(std::move(heap_));
    heap_ = Bytes();
    size_ = 0;
    inline_ = true;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator!=(const Payload& a, const Payload& b) {
    return !(a == b);
  }

 private:
  void set_inline(const std::byte* src, std::size_t n) {
    size_ = n;
    inline_ = true;
    if (n != 0) std::memcpy(sbo_.data(), src, n);
  }

  void adopt(Bytes&& bytes, BufferPool* pool) {
    if (bytes.size() <= kInlineCapacity) {
      set_inline(bytes.data(), bytes.size());
      if (pool != nullptr) pool->recycle(std::move(bytes));
    } else {
      heap_ = std::move(bytes);
      size_ = heap_.size();
      inline_ = false;
    }
  }

  void copy_from(const Payload& other) {
    size_ = other.size_;
    inline_ = other.inline_;
    if (other.inline_) {
      if (size_ != 0) std::memcpy(sbo_.data(), other.sbo_.data(), size_);
    } else {
      heap_ = other.heap_;
    }
  }

  void move_from(Payload&& other) {
    size_ = other.size_;
    inline_ = other.inline_;
    if (other.inline_) {
      if (size_ != 0) std::memcpy(sbo_.data(), other.sbo_.data(), size_);
    } else {
      heap_ = std::move(other.heap_);
      other.heap_ = Bytes();
    }
    other.size_ = 0;
    other.inline_ = true;
  }

  std::size_t size_ = 0;
  bool inline_ = true;
  std::array<std::byte, kInlineCapacity> sbo_;
  Bytes heap_;
};

/// One in-flight (or delivered-but-unmatched) message. Ranks are *world*
/// ranks; user-facing APIs translate to communicator-relative ranks at the
/// boundary.
struct Envelope {
  Rank src_world = -1;
  Rank dst_world = -1;
  Tag tag = 0;
  CommId comm = kCommWorld;
  /// Send order within (src_world, dst_world, comm): the engine enforces
  /// MPI's non-overtaking rule using this.
  std::uint64_t seq = 0;
  /// Globally unique id across the run.
  std::uint64_t msg_id = 0;
  /// Virtual time at which the message becomes visible at the destination
  /// (sender's clock at injection + latency + bandwidth term).
  double arrival_vtime = 0.0;
  Payload payload;
  /// True for messages issued by tool layers (piggyback traffic); excluded
  /// from user-visible op statistics and leak accounting.
  bool tool_internal = false;
  /// Non-null for synchronous sends: the sender's request, which only
  /// completes when this envelope is matched by a receive (rendezvous
  /// semantics — the MPI_Ssend mode eager buffering hides).
  RequestId sender_req = kNullRequest;
  Rank sender_world = -1;
  /// Direct pointer to the sender's request record for synchronous
  /// sends (slab storage, address-stable for the run). Under sharded
  /// locking the receiver completes the rendezvous through this
  /// pointer's atomics without touching the sender's shard.
  RequestRecord* sender_rec = nullptr;
};

}  // namespace dampi::mpism
