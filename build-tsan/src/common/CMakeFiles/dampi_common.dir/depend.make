# Empty dependencies file for dampi_common.
# This may be replaced when dependencies are built.
