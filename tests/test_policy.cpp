// Wildcard match policies — the SELF_RUN "runtime bias" models.
#include <gtest/gtest.h>

#include "mpism/policy.hpp"

namespace dampi::mpism {
namespace {

std::vector<MatchCandidate> candidates() {
  return {
      {3, 0, 5, 107},  // src 3, seq 5, arrived third
      {1, 0, 9, 101},  // src 1, seq 9, arrived first
      {2, 0, 2, 104},  // src 2, seq 2, arrived second
  };
}

TEST(Policy, LowestSourceWins) {
  LowestSourcePolicy policy;
  const auto c = candidates();
  EXPECT_EQ(policy.choose(c), 1u);  // src 1
}

TEST(Policy, FifoArrivalPicksOldestMessage) {
  FifoArrivalPolicy policy;
  const auto c = candidates();
  EXPECT_EQ(policy.choose(c), 1u);  // msg_id 101
}

TEST(Policy, SeededRandomIsReproducibleAndInRange) {
  SeededRandomPolicy a(7), b(7), c(8);
  const auto cands = candidates();
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const auto pick_a = a.choose(cands);
    EXPECT_EQ(pick_a, b.choose(cands));
    EXPECT_LT(pick_a, cands.size());
    if (pick_a != c.choose(cands)) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seeds differ somewhere
}

TEST(Policy, SeededRandomCoversAllCandidates) {
  SeededRandomPolicy policy(11);
  const auto cands = candidates();
  std::vector<int> hits(cands.size(), 0);
  for (int i = 0; i < 300; ++i) ++hits[policy.choose(cands)];
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(Policy, FactoryProducesEachKind) {
  const auto cands = candidates();
  EXPECT_EQ(make_policy(PolicyKind::kLowestSource, 0)->choose(cands), 1u);
  EXPECT_EQ(make_policy(PolicyKind::kFifoArrival, 0)->choose(cands), 1u);
  EXPECT_LT(make_policy(PolicyKind::kSeededRandom, 5)->choose(cands),
            cands.size());
}

TEST(Policy, SingleCandidateAlwaysPicked) {
  std::vector<MatchCandidate> one = {{4, 2, 0, 55}};
  LowestSourcePolicy lowest;
  FifoArrivalPolicy fifo;
  SeededRandomPolicy random(1);
  EXPECT_EQ(lowest.choose(one), 0u);
  EXPECT_EQ(fifo.choose(one), 0u);
  EXPECT_EQ(random.choose(one), 0u);
}

}  // namespace
}  // namespace dampi::mpism
