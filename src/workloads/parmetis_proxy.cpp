#include "workloads/parmetis_proxy.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mpism/types.hpp"

namespace dampi::workloads {

using mpism::Bytes;
using mpism::Proc;
using mpism::RequestId;

int parmetis_neighbors(const ParmetisConfig& config, int nprocs) {
  if (nprocs <= 1) return 0;
  const int raw = static_cast<int>(std::llround(
      config.neighbor_factor *
      std::pow(static_cast<double>(nprocs), config.neighbor_exponent)));
  return std::clamp(raw, std::min(2, nprocs - 1), nprocs - 1);
}

namespace {

/// Deterministic symmetric neighbor set. All ranks derive the same set
/// of canonical offsets from the shared seed, and every rank connects to
/// (rank +/- offset): symmetry holds by construction — if r has r+off
/// then r+off has (r+off)-off = r.
std::vector<int> neighbor_set(const ParmetisConfig& config, int rank,
                              int nprocs) {
  const int degree = parmetis_neighbors(config, nprocs);
  std::set<int> offsets;
  Rng rng(config.seed);
  int guard = 0;
  while (2 * static_cast<int>(offsets.size()) < degree &&
         guard < 16 * (degree + 1)) {
    ++guard;
    const int raw =
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(std::max(1, nprocs - 1))));
    offsets.insert(std::min(raw, nprocs - raw));  // canonicalize +/-off
  }
  std::set<int> out;
  for (const int off : offsets) {
    const int a = (rank + off) % nprocs;
    const int b = (rank + nprocs - off) % nprocs;
    if (a != rank) out.insert(a);
    if (b != rank) out.insert(b);
  }
  return {out.begin(), out.end()};
}

}  // namespace

void parmetis_proxy(Proc& p, const ParmetisConfig& config) {
  const int nprocs = p.size();
  const auto neighbors = neighbor_set(config, p.rank(), nprocs);
  const int degree = static_cast<int>(neighbors.size());

  if (config.leak_communicator && nprocs > 1) {
    p.comm_dup();  // the original's unfreed communicator (Table II)
  }

  // Boundary payload: vertex gains for the shared boundary slice.
  const std::size_t boundary_bytes =
      sizeof(double) *
      static_cast<std::size_t>(
          std::max(8, config.vertices_per_proc / std::max(1, degree)));
  const Bytes boundary(boundary_bytes, std::byte{0});

  // Collectives thin out as P grows (the per-proc Collective row of
  // Table I shrinks): convergence checks are amortized over more ranks.
  const int coll_stride = nprocs <= 16 ? 1 : 2;

  for (int phase = 0; phase < config.phases; ++phase) {
    // Phase prologue: distribute the coarsening decision.
    Bytes decision;
    if (p.rank() == 0) decision = mpism::pack<int>(phase);
    p.bcast(&decision, 0);

    for (int iter = 0; iter < config.iters_per_phase; ++iter) {
      const mpism::Tag tag = iter % 1024;
      std::vector<RequestId> recvs;
      std::vector<RequestId> sends;
      recvs.reserve(neighbors.size());
      sends.reserve(neighbors.size());
      for (const int nb : neighbors) {
        recvs.push_back(p.irecv(nb, tag));
        sends.push_back(p.isend(nb, tag, boundary));
      }
      p.waitall(sends);
      // Receives complete in groups of three (refinement consumes
      // boundary gains incrementally) — this sets the Wait:Send-Recv
      // ratio of the profile.
      for (std::size_t at = 0; at < recvs.size(); at += 3) {
        const std::size_t n = std::min<std::size_t>(3, recvs.size() - at);
        p.waitall(std::span<RequestId>(recvs.data() + at, n));
      }

      p.compute(config.compute_us_per_iter);

      if (iter % coll_stride == 0) {
        // Edge-cut improvement check.
        p.allreduce_u64(static_cast<std::uint64_t>(iter),
                        mpism::ReduceOp::kMinU64);
      }
    }

    // Phase epilogue: global balance summary to rank 0.
    p.gather(mpism::pack<std::uint64_t>(
                 static_cast<std::uint64_t>(p.rank())),
             /*root=*/0);
  }
}

}  // namespace dampi::workloads
