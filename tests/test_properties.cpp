// Property-based verification of the verifier itself, over seeded random
// programs, against the brute-force reachability oracle:
//
//   P1 (soundness)        every outcome the explorer visits is reachable
//                         — in both clock modes;
//   P2 (completeness)     in vector-clock mode the explorer visits every
//                         reachable outcome;
//   P3 (replay fidelity)  guided prefixes reproduce exactly — zero
//                         prefix mismatches and divergences;
//   P4 (non-overtaking)   within every explored run, the matches a
//                         receiver accepts from one sender arrive in
//                         sequence order;
//   P5 (drain soundness)  programs that leave messages unreceived still
//                         satisfy P1/P2 (the finalize drain feeds the
//                         analysis).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/program_gen.hpp"
#include "support/reference_enumerator.hpp"
#include "support/verify_helpers.hpp"

namespace dampi::test {
namespace {

using core::ClockMode;
using core::ExplorerOptions;

struct SweepCase {
  std::uint64_t seed;
  int nprocs;
  int max_messages;
  bool leave_unreceived;
};

void print_case(std::ostream& os, const SweepCase& c) {
  os << "seed" << c.seed << "_p" << c.nprocs << "_m" << c.max_messages
     << (c.leave_unreceived ? "_drain" : "");
}

class RandomProgramSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  GeneratedProgram program() const {
    const SweepCase& c = GetParam();
    return generate_program(c.seed, c.nprocs, c.max_messages,
                            c.leave_unreceived);
  }
};

TEST_P(RandomProgramSweep, SoundAndCompleteAgainstOracle) {
  const GeneratedProgram prog = program();
  const auto run = [prog](mpism::Proc& p) { run_generated(p, prog); };

  ExplorerOptions vec_options = explorer_options(prog.nprocs);
  vec_options.clock_mode = ClockMode::kVector;
  vec_options.max_interleavings = 1u << 14;

  ReferenceEnumerator oracle(vec_options, run);
  const auto reachable = oracle.enumerate(8192);
  ASSERT_FALSE(reachable.empty());
  // Every reachable outcome completes (construction guarantees it).
  for (const auto& outcome : reachable) {
    EXPECT_FALSE(outcome.deadlocked);
    EXPECT_FALSE(outcome.errored);
  }

  // Vector mode: sound and complete.
  {
    std::set<OutcomeSignature> seen;
    core::Explorer explorer(vec_options);
    const auto result = explorer.explore(
        run, [&seen](const core::RunTrace& trace,
                     const mpism::RunReport& report, const core::Schedule&) {
          seen.insert(signature_of(trace, report));
        });
    EXPECT_FALSE(result.found_bug());
    EXPECT_EQ(result.prefix_mismatches, 0u);  // P3
    EXPECT_EQ(result.divergences, 0u);
    for (const auto& outcome : seen) {
      EXPECT_EQ(reachable.count(outcome), 1u) << "P1 violated (vector)";
    }
    EXPECT_EQ(seen, reachable) << "P2 violated";
  }

  // Lamport mode: sound (may under-cover on cross-coupled shapes).
  {
    ExplorerOptions lam_options = explorer_options(prog.nprocs);
    lam_options.max_interleavings = 1u << 14;
    std::set<OutcomeSignature> seen;
    core::Explorer explorer(lam_options);
    const auto result = explorer.explore(
        run, [&seen](const core::RunTrace& trace,
                     const mpism::RunReport& report, const core::Schedule&) {
          seen.insert(signature_of(trace, report));
        });
    EXPECT_FALSE(result.found_bug());
    EXPECT_EQ(result.prefix_mismatches, 0u);
    for (const auto& outcome : seen) {
      EXPECT_EQ(reachable.count(outcome), 1u) << "P1 violated (lamport)";
    }
    EXPECT_LE(seen.size(), reachable.size());
  }
}

TEST_P(RandomProgramSweep, NonOvertakingHeldInEveryExploredRun) {
  const GeneratedProgram prog = program();
  const auto run = [prog](mpism::Proc& p) { run_generated(p, prog); };

  ExplorerOptions options = explorer_options(prog.nprocs);
  options.clock_mode = ClockMode::kVector;
  options.max_interleavings = 1u << 12;
  core::Explorer explorer(options);
  explorer.explore(run, [](const core::RunTrace& trace,
                           const mpism::RunReport& report,
                           const core::Schedule&) {
    if (!report.completed) return;
    // P4: per (receiver, sender), epochs in nd order accept strictly
    // increasing sequence numbers (all receives share comm + ANY tag, so
    // every pair of same-channel matches is order-constrained).
    std::map<std::pair<int, int>, std::uint64_t> last_seq;
    std::map<int, std::vector<const core::EpochRecord*>> by_rank;
    for (const auto& e : trace.epochs) by_rank[e.key.rank].push_back(&e);
    for (auto& [rank, epochs] : by_rank) {
      std::sort(epochs.begin(), epochs.end(),
                [](const core::EpochRecord* a, const core::EpochRecord* b) {
                  return a->key.nd_index < b->key.nd_index;
                });
      for (const auto* e : epochs) {
        if (e->matched_src_world < 0) continue;
        const auto channel = std::make_pair(rank, e->matched_src_world);
        auto it = last_seq.find(channel);
        if (it != last_seq.end()) {
          EXPECT_GT(e->matched_seq, it->second)
              << "non-overtaking violated on channel " << e->matched_src_world
              << " -> " << rank;
        }
        last_seq[channel] = e->matched_seq;
      }
    }
  });
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed : {11u, 23u, 47u, 81u, 105u, 733u}) {
    cases.push_back({seed, 3, 4, false});
  }
  for (std::uint64_t seed : {5u, 19u, 42u}) {
    cases.push_back({seed, 4, 4, false});
  }
  // P5: drain variants.
  for (std::uint64_t seed : {7u, 13u, 29u}) {
    cases.push_back({seed, 3, 4, true});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::ostringstream os;
  print_case(os, info.param);
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

}  // namespace
}  // namespace dampi::test
