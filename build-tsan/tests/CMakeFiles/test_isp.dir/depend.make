# Empty dependencies file for test_isp.
# This may be replaced when dependencies are built.
