// Explorer tests: depth-first coverage of the epoch-decision space,
// cross-checked against the brute-force reachability oracle; bug finding
// with reproducing schedules; bounded mixing; budgets.
#include <gtest/gtest.h>

#include <set>

#include "support/reference_enumerator.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/matmult.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::BugRecord;
using core::ClockMode;
using core::Explorer;
using core::ExplorerOptions;
using core::Schedule;
using mpism::kAnySource;
using mpism::pack;
using mpism::Proc;

TEST(Explorer, Fig3FindsTheBugInTwoInterleavings) {
  ExplorerOptions options = explorer_options(3);
  Explorer explorer(options);
  auto result = explorer.explore(workloads::fig3_wildcard_bug);
  EXPECT_TRUE(result.found_bug());
  EXPECT_LE(result.interleavings, 2u);
  ASSERT_FALSE(result.bugs.empty());
  const BugRecord& bug = result.bugs.back();
  EXPECT_EQ(bug.kind, BugRecord::Kind::kError);
  ASSERT_FALSE(bug.errors.empty());
  EXPECT_NE(bug.errors[0].message.find("x == 33"), std::string::npos);
}

TEST(Explorer, BugScheduleIsAReproducer) {
  ExplorerOptions options = explorer_options(3);
  Explorer explorer(options);
  auto result = explorer.explore(workloads::fig3_wildcard_bug);
  ASSERT_TRUE(result.found_bug());
  // Re-running the recorded schedule deterministically re-triggers it.
  for (int i = 0; i < 3; ++i) {
    auto rerun =
        run_dampi_once(options, result.bugs.back().schedule,
                       workloads::fig3_wildcard_bug);
    ASSERT_FALSE(rerun.report.errors.empty());
    EXPECT_NE(rerun.report.errors[0].message.find("x == 33"),
              std::string::npos);
  }
}

TEST(Explorer, WildcardDependentDeadlockIsFound) {
  // The lowest-source self-run is benign; only the forced alternate match
  // steers rank 1 into the deadlocking branch.
  ExplorerOptions options = explorer_options(3);
  Explorer explorer(options);
  auto result = explorer.explore(workloads::wildcard_dependent_deadlock);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.bugs.back().kind, BugRecord::Kind::kDeadlock);
  // And the schedule reproduces the deadlock.
  auto rerun = run_dampi_once(options, result.bugs.back().schedule,
                              workloads::wildcard_dependent_deadlock);
  EXPECT_TRUE(rerun.report.deadlocked);
}

TEST(Explorer, MatchesOracleOnFig3) {
  ExplorerOptions options = explorer_options(3);
  ReferenceEnumerator oracle(options, workloads::fig3_benign);
  const auto expected = oracle.enumerate();
  const auto explored = explored_outcomes(options, workloads::fig3_benign);
  EXPECT_EQ(explored, expected);
  // Two genuinely distinct outcomes exist (22-first or 33-first).
  EXPECT_EQ(expected.size(), 2u);
}

TEST(Explorer, SoundAndFindsDeadlockOutcome) {
  // Outcome-set *equality* cannot be promised for buggy programs: a
  // deadlocked run aborts before its unreceived competitors are analyzed,
  // so branches below it stay unexplored (true of DAMPI as published).
  // Soundness (subset of reachable) and discovery of the deadlock
  // outcome itself are the guarantees.
  ExplorerOptions options = explorer_options(3);
  ReferenceEnumerator oracle(options,
                             workloads::wildcard_dependent_deadlock);
  const auto reachable = oracle.enumerate();
  const auto explored =
      explored_outcomes(options, workloads::wildcard_dependent_deadlock);
  for (const auto& o : explored) {
    EXPECT_EQ(reachable.count(o), 1u);
  }
  const bool deadlock_seen =
      std::any_of(explored.begin(), explored.end(),
                  [](const OutcomeSignature& s) { return s.deadlocked; });
  EXPECT_TRUE(deadlock_seen);
}

// §II-F quantified: on the cross-coupled pattern the Lamport explorer
// visits a strict subset of the reachable outcomes; the vector-clock
// explorer visits all of them. (Soundness — subset — holds for both.)
//
// Lamport's miss depends on which matching the *initial* self-run
// happens to observe (see Regression.Fig4ExplorationDeterministicFromPinnedRoot),
// so the initial run is pinned to the canonical matching here: rank 1's
// first wildcard takes P0's send, rank 2's takes P3's.
TEST(Explorer, Fig4LamportIncompleteVectorComplete) {
  core::Schedule canonical_first_run;
  canonical_first_run.forced[core::EpochKey{1, 0}] = 0;
  canonical_first_run.forced[core::EpochKey{2, 0}] = 3;

  ExplorerOptions vec_options = explorer_options(4);
  vec_options.clock_mode = ClockMode::kVector;
  vec_options.initial_schedule = canonical_first_run;
  ReferenceEnumerator oracle(vec_options, workloads::fig4_cross_coupled);
  const auto reachable = oracle.enumerate();
  ASSERT_GE(reachable.size(), 3u);

  const auto vec_explored =
      explored_outcomes(vec_options, workloads::fig4_cross_coupled);

  ExplorerOptions lam_options = explorer_options(4);
  lam_options.clock_mode = ClockMode::kLamport;
  lam_options.initial_schedule = canonical_first_run;
  const auto lam_explored =
      explored_outcomes(lam_options, workloads::fig4_cross_coupled);

  // Soundness: nothing outside the reachable set.
  for (const auto& o : lam_explored) EXPECT_TRUE(reachable.count(o));
  for (const auto& o : vec_explored) EXPECT_TRUE(reachable.count(o));
  // Vector completeness vs Lamport's documented miss.
  EXPECT_EQ(vec_explored, reachable);
  EXPECT_LT(lam_explored.size(), reachable.size());
}

TEST(Explorer, DeterministicProgramIsOneInterleaving) {
  ExplorerOptions options = explorer_options(4);
  Explorer explorer(options);
  auto result = explorer.explore([](Proc& p) {
    const std::uint64_t sum =
        p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
    p.require(sum == 4, "bad sum");
    if (p.rank() > 0) p.send(0, 1, pack<int>(p.rank()));
    if (p.rank() == 0) {
      for (int i = 1; i < 4; ++i) p.recv(i, 1);
    }
  });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.interleavings, 1u);
  EXPECT_EQ(result.wildcard_recv_epochs, 0u);
}

TEST(Explorer, PrefixReplayIsExact) {
  ExplorerOptions options = explorer_options(4);
  core::ExploreResult result;
  explored_outcomes(options, workloads::fig3_benign, &result);
  EXPECT_EQ(result.prefix_mismatches, 0u);
  EXPECT_EQ(result.divergences, 0u);
}

TEST(Explorer, StopOnFirstErrorHalts) {
  ExplorerOptions options = explorer_options(3);
  options.stop_on_first_error = true;
  Explorer explorer(options);
  auto result = explorer.explore(workloads::fig3_wildcard_bug);
  EXPECT_TRUE(result.found_bug());
  EXPECT_EQ(result.bugs.size(), 1u);
}

TEST(Explorer, InterleavingBudgetIsHonored) {
  ExplorerOptions options = explorer_options(4);
  options.max_interleavings = 3;
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 1;
  Explorer explorer(options);
  auto result = explorer.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  EXPECT_EQ(result.interleavings, 3u);
  EXPECT_TRUE(result.interleaving_budget_exhausted);
}

TEST(Explorer, MatmultVerifiesCleanAcrossInterleavings) {
  ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 64;
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 2;  // 2 chunks, 2 workers
  Explorer explorer(options);
  auto result = explorer.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_GT(result.interleavings, 1u);
  EXPECT_EQ(result.first_report.comm_leaks, 0);
  EXPECT_EQ(result.first_report.request_leaks, 0u);
}

TEST(Explorer, MatmultOrderBugIsExposedByReplayOnly) {
  // The cursor bug is benign when results return in submission order (the
  // biased native outcome) and corrupts C under any other matching order.
  ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 64;
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 2;
  config.inject_order_bug = true;
  Explorer explorer(options);
  auto result = explorer.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  EXPECT_TRUE(result.found_bug());
  ASSERT_FALSE(result.bugs.empty());
  EXPECT_EQ(result.bugs.back().kind, BugRecord::Kind::kError);
}

// Bounded mixing: interleaving counts grow with k and cap at unbounded;
// k=0 equals 1 + the initial trace's alternatives.
TEST(Explorer, BoundedMixingMonotoneInK) {
  // Deterministic fixture: all candidates are queued before any wildcard
  // posts, so counts are exact run to run.
  const auto program = [](Proc& p) { workloads::fan_in_rounds(p, 2); };
  auto count_with = [&program](std::optional<int> k) {
    ExplorerOptions options = explorer_options(4);
    options.mixing_bound = k;
    options.max_interleavings = 1u << 16;
    Explorer explorer(options);
    return explorer.explore(program).interleavings;
  };
  const auto k0 = count_with(0);
  const auto k1 = count_with(1);
  const auto k2 = count_with(2);
  const auto unbounded = count_with(std::nullopt);
  EXPECT_LE(k0, k1);
  EXPECT_LE(k1, k2);
  EXPECT_LE(k2, unbounded);
  EXPECT_GT(unbounded, k0);  // the space is genuinely larger unbounded
  // And counts are reproducible.
  EXPECT_EQ(count_with(1), k1);
}

TEST(Explorer, MixingBoundZeroEqualsOnePlusInitialAlternatives) {
  ExplorerOptions options = explorer_options(3);
  options.mixing_bound = 0;

  // First measure the initial trace's alternatives.
  auto initial = run_dampi_once(options, {}, workloads::fig3_benign);
  std::size_t alts = 0;
  for (const auto& e : initial.trace.epochs) alts += e.alternatives.size();

  Explorer explorer(options);
  auto result = explorer.explore(workloads::fig3_benign);
  EXPECT_EQ(result.interleavings, 1u + alts);
}

// Loop abstraction at the explorer level: bracketing the master's collect
// loop collapses the interleaving space to a single run.
TEST(Explorer, LoopAbstractionCollapsesExploration) {
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 1;
  config.abstract_loop = true;
  ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 4096;
  Explorer explorer(options);
  auto result = explorer.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.interleavings, 1u);

  // Without the region the same program explores many interleavings.
  config.abstract_loop = false;
  Explorer explorer2(options);
  auto full = explorer2.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  EXPECT_GT(full.interleavings, 1u);
}

// Verifier facade: Table II style fields.
TEST(Verifier, ReportsSlowdownLeaksAndRStar) {
  core::VerifyOptions options;
  options.explorer = explorer_options(4);
  options.explorer.max_interleavings = 1;  // overhead measurement only
  core::Verifier verifier(options);
  auto result = verifier.verify(workloads::leaky_program);
  EXPECT_FALSE(result.deadlock_found);
  EXPECT_FALSE(result.error_found);
  EXPECT_EQ(result.comm_leaks, 1);
  EXPECT_EQ(result.request_leaks, 4u);
  EXPECT_GE(result.slowdown, 1.0);
  EXPECT_GT(result.native_vtime_us, 0.0);
}

TEST(Verifier, CleanProgramIsClean) {
  core::VerifyOptions options;
  options.explorer = explorer_options(3);
  core::Verifier verifier(options);
  auto result = verifier.verify(workloads::fig3_benign);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.exploration.wildcard_recv_epochs, 2u);  // R*
}

TEST(Verifier, UnsafeAlertsSurface) {
  core::VerifyOptions options;
  options.explorer = explorer_options(3);
  core::Verifier verifier(options);
  auto result = verifier.verify(workloads::fig10_unsafe_pattern);
  EXPECT_FALSE(result.exploration.unsafe_alerts.empty());
}

// An Explorer object is reusable: explore() resets its search state.
TEST(Explorer, ReusableAcrossCalls) {
  ExplorerOptions options = explorer_options(3);
  Explorer explorer(options);
  const auto first = explorer.explore(workloads::fig3_benign);
  const auto second = explorer.explore(workloads::fig3_benign);
  EXPECT_EQ(first.interleavings, second.interleavings);
  EXPECT_FALSE(second.found_bug());
}

// Auto loop detection composes with bounded mixing: both bounds apply.
TEST(Explorer, AutoLoopComposesWithBoundedMixing) {
  const auto program = [](Proc& p) { workloads::fan_in_rounds(p, 2); };
  auto count = [&program](std::optional<int> k, int auto_threshold) {
    ExplorerOptions options = explorer_options(4);
    options.mixing_bound = k;
    options.auto_loop_threshold = auto_threshold;
    options.max_interleavings = 1u << 14;
    Explorer explorer(options);
    return explorer.explore(program).interleavings;
  };
  // Tighter in either dimension never explores more.
  EXPECT_LE(count(1, 2), count(1, 0));
  EXPECT_LE(count(0, 2), count(std::nullopt, 2));
  EXPECT_LE(count(0, 2), count(0, 0));
}

// The time budget stops exploration and reports it.
TEST(Explorer, TimeBudgetHonored) {
  ExplorerOptions options = explorer_options(4);
  options.max_wall_seconds = 0.0;  // expire immediately after run 1
  workloads::MatmultConfig config;
  config.n = 6;
  config.chunk_rows = 1;
  Explorer explorer(options);
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  EXPECT_EQ(result.interleavings, 1u);
  EXPECT_TRUE(result.time_budget_exhausted);
}

}  // namespace
}  // namespace dampi::test
