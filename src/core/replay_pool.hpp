// ReplayPool: a deterministic speculative-replay worker pool.
//
// Guided replays are embarrassingly parallel — run_guided_once builds a
// fresh DampiShared/TraceSink/Runtime per call — but the explorer's DFS
// must consume outcomes in a fixed order to stay reproducible. The pool
// reconciles the two: the exploring thread *speculates* schedules it
// knows it will need later (every untried sibling alternative on the DFS
// stack has a pinned prefix, so its decision file is already exact), and
// workers execute them out of order into a cache keyed by the serialized
// decision file. take() then yields outcomes in exactly the order the
// sequential walk would have produced them — from the cache when a
// speculation landed, inline on the calling thread otherwise — so
// exploration results are bit-identical for every jobs value.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/explorer.hpp"

namespace dampi::core {

class ReplayPool {
 public:
  /// Spawns `max(jobs - 1, 0)` workers; the exploring thread is the
  /// remaining job. `options` and `program` must outlive the pool.
  ReplayPool(const ExplorerOptions& options, const mpism::ProgramFn& program);
  ~ReplayPool();

  ReplayPool(const ReplayPool&) = delete;
  ReplayPool& operator=(const ReplayPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Queue `schedule` for speculative execution; a duplicate of an
  /// already queued/running/cached speculation is a harmless no-op.
  /// Returns false when the caller should stop offering work: the
  /// backlog is saturated, the pool has no workers, or shutdown began.
  bool speculate(const Schedule& schedule);

  /// Queued + running + completed-but-unconsumed speculations — what the
  /// caller should count against its interleaving budget before
  /// speculating more.
  std::size_t outstanding() const;

  /// The outcome of running `schedule`, bit-identical to calling
  /// run_guided_once here: consumes a cached speculative result, waits
  /// for an in-flight one, or runs inline on the calling thread.
  /// `interleaving` is the 1-based deterministic index reported to the
  /// RunStats callback.
  SingleRun take(const Schedule& schedule, std::uint64_t interleaving);

  /// Stop the workers: queued-but-unstarted speculations are dropped,
  /// running ones finish into the cache (counted as waste). Idempotent;
  /// the destructor calls it. After shutdown, stats() is final.
  void shutdown();

  /// Aggregate counters; complete once shutdown() has run.
  PoolStats stats() const;

 private:
  struct Entry {
    enum class State { kQueued, kRunning, kDone };
    State state = State::kQueued;
    Schedule schedule;
    SingleRun outcome;
  };

  void worker_main(int index);
  /// Execute one replay (any thread), record its histogram samples, and
  /// deliver the RunStats callback.
  SingleRun execute(const Schedule& schedule, std::uint64_t interleaving,
                    bool speculative);

  const ExplorerOptions& options_;
  const mpism::ProgramFn& program_;
  std::size_t backlog_cap_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers: queue non-empty or stop
  std::condition_variable cv_done_;  ///< consumers: an entry became kDone
  std::map<std::string, Entry> entries_;
  std::deque<std::string> queue_;  ///< keys of kQueued entries, FIFO
  std::size_t done_unconsumed_ = 0;
  std::size_t in_flight_ = 0;  ///< replays executing now (workers + inline)
  bool stop_ = false;
  PoolStats stats_;

  /// Serializes ExplorerOptions::run_stats delivery without holding mu_.
  std::mutex callback_mu_;

  std::vector<std::thread> threads_;
};

}  // namespace dampi::core
