// ISP's centralized scheduler, modelled structurally.
//
// In ISP every MPI call performs a synchronous exchange with one central
// scheduler over Unix/TCP sockets (paper §II-A). The model: the scheduler
// is a single server with its own virtual timeline; a call arrives at
// (rank_time + socket latency), is serviced after the scheduler finishes
// everything before it, and the reply lands at (service completion +
// socket latency). Contention is therefore *emergent* — as ranks×calls
// grow, the single timeline saturates and per-call waiting explodes,
// which is exactly the Fig. 5 behaviour the paper attributes to ISP.
//
// Wildcard operations cost extra service: ISP's scheduler rewrites them
// after computing the match set centrally.
#pragma once

#include <memory>
#include <mutex>

#include "mpism/tool.hpp"

namespace dampi::isp {

struct IspCostParams {
  /// One-way socket latency between an MPI process and the scheduler.
  double sock_latency_us = 10.0;
  /// Scheduler service time per intercepted call.
  double scheduler_service_us = 3.0;
  /// Additional stall for non-deterministic operations: ISP delays each
  /// wildcard until the scheduler has discovered the full set of
  /// potential senders before rewriting it ("ISP must delay
  /// non-deterministic outcomes even at small scales, which leads to
  /// long testing times", §I) — a quiescence wait, not a socket hop.
  double wildcard_service_us = 3000.0;
};

/// The scheduler's serialized virtual timeline. One per run, shared by
/// every rank's IspCostLayer.
class SchedulerSim {
 public:
  /// A request arriving at `arrival_vtime` is serviced for `service_us`
  /// after everything already queued; returns its completion time.
  double transact(double arrival_vtime, double service_us) {
    std::lock_guard<std::mutex> lock(mu_);
    if (arrival_vtime > busy_until_) busy_until_ = arrival_vtime;
    busy_until_ += service_us;
    ++transactions_;
    return busy_until_;
  }

  std::uint64_t transactions() const { return transactions_; }

 private:
  std::mutex mu_;
  double busy_until_ = 0.0;
  std::uint64_t transactions_ = 0;
};

/// Charges every intercepted user call with a scheduler round trip.
class IspCostLayer final : public mpism::ToolLayer {
 public:
  IspCostLayer(std::shared_ptr<SchedulerSim> sim, IspCostParams params)
      : sim_(std::move(sim)), params_(params) {}

  void pre_isend(mpism::ToolCtx& ctx, mpism::SendCall&) override {
    charge(ctx, params_.scheduler_service_us);
  }
  void pre_irecv(mpism::ToolCtx& ctx, mpism::RecvCall& call) override {
    charge(ctx, call.src == mpism::kAnySource
                    ? params_.scheduler_service_us +
                          params_.wildcard_service_us
                    : params_.scheduler_service_us);
  }
  void pre_wait(mpism::ToolCtx& ctx, mpism::RequestId) override {
    charge(ctx, params_.scheduler_service_us);
  }
  void pre_probe(mpism::ToolCtx& ctx, mpism::ProbeCall& call) override {
    charge(ctx, call.src == mpism::kAnySource
                    ? params_.scheduler_service_us +
                          params_.wildcard_service_us
                    : params_.scheduler_service_us);
  }
  void pre_collective(mpism::ToolCtx& ctx, mpism::CollCall&) override {
    charge(ctx, params_.scheduler_service_us);
  }

 private:
  void charge(mpism::ToolCtx& ctx, double service_us) {
    const double now = ctx.vtime();
    const double done =
        sim_->transact(now + params_.sock_latency_us, service_us);
    ctx.add_cost(done + params_.sock_latency_us - now);
  }

  std::shared_ptr<SchedulerSim> sim_;
  IspCostParams params_;
};

}  // namespace dampi::isp
