// Master/worker matrix multiplication — the paper's matmult benchmark
// (§III): the master broadcasts B, deals row chunks of A to workers, and
// collects results with wildcard receives, handing each finishing worker
// the next chunk. The wildcard per completed chunk is what gives the
// benchmark its rich interleaving space (Figs. 6 and 8).
#pragma once

#include <cstdint>

#include "mpism/proc.hpp"

namespace dampi::workloads {

struct MatmultConfig {
  int n = 8;           ///< A and B are n x n
  int chunk_rows = 1;  ///< rows per work unit (chunks = ceil(n/chunk_rows))
  std::uint64_t seed = 42;
  /// Virtual microseconds of compute per multiply-accumulate.
  double flop_cost_us = 0.01;
  /// Bracket the work loop in an MPI_Pcontrol region (loop-iteration
  /// abstraction, §III-B1): epochs inside keep their self-run match.
  bool abstract_loop = false;
  /// Inject the paper-style order-sensitivity bug: the master writes
  /// results into a cursor position instead of the chunk's row index, so
  /// any out-of-submission-order completion corrupts C. Only replay of
  /// alternate matches exposes it.
  bool inject_order_bug = false;
};

/// Run on >= 2 ranks; rank 0 is the master. Verifies C against a serial
/// product at the end (Proc::require), so a wrong matching order under
/// inject_order_bug surfaces as a program error.
void matmult(mpism::Proc& p, const MatmultConfig& config);

}  // namespace dampi::workloads
