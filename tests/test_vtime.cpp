// Virtual-time cost model integration: causality propagates simulated
// time through messages, collectives, and rendezvous completions — the
// foundation under every "time" number the benches report.
#include <gtest/gtest.h>

#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::CostModel;
using mpism::pack;
using mpism::RunOptions;

RunOptions options_with(int nprocs, const CostModel& cost) {
  RunOptions options;
  options.nprocs = nprocs;
  options.cost = cost;
  return options;
}

TEST(Vtime, MessageChainAccumulatesLatency) {
  CostModel cost;
  cost.latency_us = 100.0;  // make latency dominant
  cost.per_byte_us = 0.0;
  auto report = run_program(options_with(4, cost), [](Proc& p) {
    // 0 -> 1 -> 2 -> 3 relay.
    if (p.rank() > 0) p.recv(p.rank() - 1, 1);
    if (p.rank() + 1 < p.size()) p.send(p.rank() + 1, 1, pack<int>(0));
  });
  ASSERT_TRUE(report.ok());
  // Three hops: at least 3 latencies on the critical path.
  EXPECT_GE(report.vtime_us, 300.0);
  EXPECT_LT(report.vtime_us, 400.0);  // and little more than that
}

TEST(Vtime, BandwidthTermScalesWithPayload) {
  CostModel cost;
  cost.per_byte_us = 0.01;
  auto time_for = [&cost](std::size_t bytes) {
    auto report = run_program(options_with(2, cost), [bytes](Proc& p) {
      if (p.rank() == 0) {
        p.send(1, 1, Bytes(bytes, std::byte{0}));
      } else {
        p.recv(0, 1);
      }
    });
    EXPECT_TRUE(report.ok());
    return report.vtime_us;
  };
  const double small = time_for(100);
  const double large = time_for(100'000);
  EXPECT_GT(large - small, 0.009 * (100'000 - 100));
}

TEST(Vtime, ComputeDoesNotSlowUnrelatedRanks) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 0) p.compute(10'000.0);
    if (p.rank() == 1) p.send(2, 1, pack<int>(0));
    if (p.rank() == 2) p.recv(1, 1);
  });
  ASSERT_TRUE(report.ok());
  // The report's vtime is the max (rank 0), but ranks 1/2 were unaffected
  // — observable as the run completing with vtime ~= rank 0's compute.
  EXPECT_GE(report.vtime_us, 10'000.0);
  EXPECT_LT(report.vtime_us, 10'100.0);
}

TEST(Vtime, SynchronousSenderPaysForTheWait) {
  CostModel cost;
  cost.latency_us = 10.0;
  auto report = run_program(options_with(2, cost), [](Proc& p) {
    if (p.rank() == 0) {
      p.ssend(1, 1, pack<int>(0));
      // No further ops: rank 0's final vtime reflects the rendezvous.
    } else {
      p.compute(5'000.0);  // receiver arrives late
      p.recv(0, 1);
    }
  });
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.vtime_us, 5'000.0);

  // Eager flavor: the sender finishes immediately; only the receiver's
  // compute shows.
  auto eager = run_program(options_with(2, cost), [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(0));
    } else {
      p.compute(5'000.0);
      p.recv(0, 1);
    }
  });
  ASSERT_TRUE(eager.ok());
  // Both runs end at ~5ms (receiver), but the sync sender itself ended
  // later than the eager sender — indirectly visible through the ack
  // latency on top of the receiver's timeline.
  EXPECT_GE(report.vtime_us, eager.vtime_us);
}

TEST(Vtime, CollectiveWaitsForSlowestParticipant) {
  CostModel cost;
  cost.collective_alpha_us = 1.0;
  auto report = run_program(options_with(8, cost), [](Proc& p) {
    if (p.rank() == 3) p.compute(2'000.0);
    p.barrier();
    // Everyone's post-barrier time is >= the slowest arrival.
    p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
  });
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.vtime_us, 2'000.0);
}

TEST(Vtime, BcastRootLeavesEarly) {
  // Root's own timeline is not held back by slow leaves: a root-side
  // send issued right after the bcast arrives at rank 2 long before the
  // slow leaf finishes its compute.
  CostModel cost;
  auto report = run_program(options_with(3, cost), [](Proc& p) {
    if (p.rank() == 1) p.compute(50'000.0);  // slow leaf
    Bytes data;
    if (p.rank() == 0) data = pack<int>(1);
    p.bcast(&data, 0);
    if (p.rank() == 0) p.send(2, 7, pack<int>(2));
    if (p.rank() == 2) {
      p.recv(0, 7);
      // Rank 2's time must NOT include the slow leaf's 50ms.
      // (Checked via the send/recv path completing below 10ms.)
    }
  });
  ASSERT_TRUE(report.ok());
  // The max is the slow leaf; but the run as a whole completed, and the
  // slow leaf dominates the report:
  EXPECT_GE(report.vtime_us, 50'000.0);
  EXPECT_LT(report.vtime_us, 51'000.0);
}

TEST(Vtime, ToolRawTrafficCostsTime) {
  // Covered more fully in test_mpism_tools; here: the piggyback of a
  // DAMPI run inflates vtime over native even with zero layer costs.
  core::ExplorerOptions options;
  options.nprocs = 2;
  options.epoch_record_cost_us = 0.0;
  options.late_analysis_cost_us = 0.0;
  const auto program = [](Proc& p) {
    for (int i = 0; i < 50; ++i) {
      if (p.rank() == 0) {
        p.send(1, 1, pack<int>(i));
      } else {
        p.recv(0, 1);
      }
    }
  };
  mpism::RunOptions native_options;
  native_options.nprocs = 2;
  mpism::Runtime native(std::move(native_options));
  const auto native_report = native.run(program);

  const auto instrumented = core::run_guided_once(options, {}, program);
  ASSERT_TRUE(native_report.ok());
  ASSERT_TRUE(instrumented.report.ok());
  EXPECT_GT(instrumented.report.vtime_us, native_report.vtime_us);
}

}  // namespace
}  // namespace dampi::test
