// Fault-sweep vocabulary: per-plan verdicts and the crash-tolerance
// record one injection campaign produces.
//
// A sweep enumerates single-point fault plans over a program's op
// inventory and runs one bounded exploration campaign per plan. Each
// campaign collapses to one Verdict — the cell of the crash-tolerance
// matrix for that injection point.
#pragma once

#include <cstdint>
#include <string>

namespace dampi::sweep {

/// Outcome of one plan's campaign, in report-priority order: a campaign
/// that deadlocked AND errored reports the deadlock (the stronger
/// crash-tolerance failure).
enum class Verdict {
  /// No bug and the injection never fired (the point was unreachable in
  /// the interleavings explored — e.g. a flaky cap consumed by retries
  /// of an earlier run, or divergence moved the op).
  kClean = 0,
  /// Some interleaving deadlocked under the injection: the classic
  /// crash-tolerance bug (peers block forever on a dead rank).
  kDeadlock,
  /// A per-run watchdog budget expired: possible livelock under the
  /// injection.
  kHang,
  /// Some interleaving ended with a program error verdict — the fault
  /// surfaced (propagated) instead of wedging the run. When the error
  /// set contains a message that is NOT the injected fault itself, the
  /// injection exposed a latent program bug; it travels in
  /// PlanRecord::latent_error.
  kErrorPropagated,
  /// The injection fired but every interleaving still completed clean —
  /// the program (or the explorer's retry path, for flaky points)
  /// masked the fault.
  kMasked,
  /// The campaign itself could not be executed (spawn failure even
  /// after bounded-backoff respawns). Coverage hole, not a program
  /// verdict.
  kSweepError,
};

const char* verdict_name(Verdict verdict);
bool parse_verdict(const std::string& name, Verdict* out);

/// One row of the crash-tolerance matrix: the campaign outcome for one
/// single-point fault plan. Serialized verbatim into the sweep journal
/// and the machine-readable report.
struct PlanRecord {
  std::uint64_t index = 0;    ///< position in the deterministic enumeration
  std::string spec;           ///< canonical fault spec (one point)
  Verdict verdict = Verdict::kClean;
  std::uint64_t interleavings = 0;
  std::uint64_t fires = 0;    ///< FaultPlan::total_fires at campaign end
  std::uint64_t bugs = 0;
  /// The campaign ran out of interleaving/wall budget before exhausting
  /// its search space (not a truncated sweep — a truncated campaign).
  bool partial = false;
  /// First program error not caused by the injection itself (empty when
  /// every error was the injected fault).
  std::string latent_error;
  /// Satisfied from the sweep journal on --resume; not executed by this
  /// process. Excluded from the report payload (byte-identity across
  /// kill/resume), counted in SweepResult::resumed.
  bool from_journal = false;
};

/// Which fault families the enumeration emits.
struct SweepKinds {
  bool abort_ = true;
  bool error_ = true;
  bool delay_ = true;
  bool flaky_ = true;
};

/// Canonical comma-joined spelling in fixed family order
/// ("abort,delay,error,flaky" subset); folded into the sweep
/// fingerprint.
std::string sweep_kinds_spec(const SweepKinds& kinds);

/// Parse "abort,delay" etc. ("all" = everything). Returns false and
/// fills *error on an unknown family name.
bool parse_sweep_kinds(const std::string& spec, SweepKinds* out,
                       std::string* error);

}  // namespace dampi::sweep
