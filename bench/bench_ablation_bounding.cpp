// Ablation: the search-bounding toolbox on one workload (mini-ADLB).
//
// Compares the coverage/cost trade-offs of every bounding mechanism this
// repository implements:
//   - full depth-first exploration (the coverage guarantee),
//   - bounded mixing k=0,1,2 (paper §III-B2),
//   - manual loop abstraction via MPI_Pcontrol (paper §III-B1),
//   - automatic loop detection (paper §VI future work, implemented),
// plus the §V deferred-clock-sync mode's effect on coverage (it can only
// add potential matches, never remove them).
#include <optional>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "workloads/adlb.hpp"
#include "workloads/patterns.hpp"

using namespace dampi;

namespace {

struct Variant {
  const char* name;
  std::optional<int> mixing_bound;
  bool abstract_server_loop = false;
  int auto_loop_threshold = 0;
};

}  // namespace

int main() {
  bench::banner(
      "Ablation — search bounding on mini-ADLB",
      "each mechanism trades coverage for cost; loop abstraction "
      "(manual or automatic) collapses fixed patterns, bounded mixing "
      "scales coverage by k");

  const std::uint64_t cap = bench::quick_mode() ? 1500 : 6000;
  const int procs = bench::quick_mode() ? 4 : 6;
  workloads::adlb::Config base_config;
  base_config.roots_per_server = 4;
  base_config.children_per_unit = 1;
  base_config.spawn_depth = 1;

  const Variant variants[] = {
      {"full DFS", std::nullopt},
      {"k=0", 0},
      {"k=1", 1},
      {"k=2", 2},
      {"manual Pcontrol", std::nullopt, true},
      {"auto-loop (t=3)", std::nullopt, false, 3},
      {"auto-loop (t=6)", std::nullopt, false, 6},
  };

  TextTable table;
  table.header({"variant", "interleavings", "auto-abstracted epochs",
                "wall (s)"});

  for (const Variant& variant : variants) {
    workloads::adlb::Config config = base_config;
    config.abstract_server_loop = variant.abstract_server_loop;
    core::ExplorerOptions options;
    options.nprocs = procs;
    options.mixing_bound = variant.mixing_bound;
    options.auto_loop_threshold = variant.auto_loop_threshold;
    options.max_interleavings = cap;

    std::uint64_t auto_abstracted = 0;
    bench::WallTimer timer;
    core::Explorer explorer(options);
    const auto result = explorer.explore(
        [config](mpism::Proc& p) { workloads::adlb::run(p, config); },
        [&auto_abstracted](const core::RunTrace& trace,
                           const mpism::RunReport&, const core::Schedule&) {
          auto_abstracted += trace.auto_abstracted_epochs;
        });
    std::string count = std::to_string(result.interleavings);
    if (result.interleaving_budget_exhausted) count = ">" + count;
    table.row({variant.name, count, std::to_string(auto_abstracted),
               fmt_fixed(timer.seconds(), 2)});
    if (result.found_bug()) {
      std::printf("unexpected bug under %s!\n", variant.name);
      return 1;
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: full DFS is the ceiling; k grows coverage "
              "smoothly; manual and automatic loop abstraction collapse "
              "the server loop to little or no exploration.\n");
  return 0;
}
