# Empty dependencies file for bench_fig9_adlb.
# This may be replaced when dependencies are built.
