file(REMOVE_RECURSE
  "libdampi_common.a"
)
