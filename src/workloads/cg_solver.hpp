// A real distributed conjugate-gradient solver (not a skeleton): solves
// the 2D 5-point Laplacian system A x = b on an n x n grid, block-row
// distributed. Communication per iteration: halo sendrecv with up/down
// neighbors for the matvec plus two allreduce dot products — the NAS CG
// communication pattern with genuine numerics, so correctness under
// instrumentation is checked end-to-end (the residual must converge).
#pragma once

#include <cstdint>

#include "mpism/proc.hpp"

namespace dampi::workloads {

struct CgConfig {
  int grid_n = 32;        ///< grid is grid_n x grid_n (rows split over ranks)
  int max_iterations = 200;
  double tolerance = 1e-8;
  std::uint64_t seed = 3;
  /// Virtual microseconds per owned grid point per matvec.
  double flop_cost_us = 0.002;
};

/// Runs on any nprocs <= grid_n. Calls Proc::fail if CG does not converge
/// or the residual check fails — a genuine end-to-end correctness gate.
void cg_solver(mpism::Proc& p, const CgConfig& config);

}  // namespace dampi::workloads
