file(REMOVE_RECURSE
  "CMakeFiles/test_isp.dir/test_isp.cpp.o"
  "CMakeFiles/test_isp.dir/test_isp.cpp.o.d"
  "test_isp"
  "test_isp.pdb"
  "test_isp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
