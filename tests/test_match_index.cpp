// Matching-index equivalence suite (ctest label `match`):
//
//  - structure-level differential fuzz: random streams of
//    push/find/take/post/match operations driven against the linear and
//    indexed MatchIndex side by side, asserting every query answer is
//    identical (candidate vectors, specific winners, posted-receive
//    matches, drained envelopes);
//  - directed non-overtaking properties: per-source FIFO delivery,
//    wildcard candidates == set of lane heads (tool traffic excluded),
//    earliest-posted-wins across the four posted lanes;
//  - program-level differential: >= 1000 randomized small programs run
//    under the deterministic coop scheduler with both matchers,
//    asserting bit-identical RunReport fingerprints (doubles printed as
//    %a, so "identical" means identical);
//  - thread-scheduler subset: schedule-independent invariants agree
//    between matchers (and gives TSan a workout over the indexed lanes);
//  - deadlock parity: both matchers report the same verdicts on the
//    deadlock patterns under both schedulers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "mpism/match_index.hpp"
#include "support/run_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using dampi::strfmt;
using mpism::Bytes;
using mpism::CommId;
using mpism::Envelope;
using mpism::kAnySource;
using mpism::kAnyTag;
using mpism::kCommWorld;
using mpism::MatchCandidate;
using mpism::MatchIndex;
using mpism::MatchKind;
using mpism::pack;
using mpism::Rank;
using mpism::RequestId;
using mpism::RequestRecord;
using mpism::Tag;

#define SKIP_WITHOUT_COOP()                                              \
  if (!mpism::coop_supported()) {                                        \
    GTEST_SKIP() << "coop fibers unsupported in this build (sanitizer)"; \
  }

// ---------------------------------------------------------------------
// Structure-level differential harness: every operation is applied to
// both implementations; every query must answer identically.

struct IndexPair {
  std::unique_ptr<MatchIndex> linear =
      mpism::make_match_index(MatchKind::kLinear);
  std::unique_ptr<MatchIndex> indexed =
      mpism::make_match_index(MatchKind::kIndexed);
};

Envelope make_env(Rank src, Tag tag, CommId comm, std::uint64_t seq,
                  std::uint64_t msg_id, bool tool) {
  Envelope e;
  e.src_world = src;
  e.dst_world = 0;
  e.tag = tag;
  e.comm = comm;
  e.seq = seq;
  e.msg_id = msg_id;
  e.tool_internal = tool;
  e.payload = pack<std::uint64_t>(msg_id * 31 + 7);
  return e;
}

void expect_env_eq(const Envelope& a, const Envelope& b) {
  EXPECT_EQ(a.src_world, b.src_world);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.comm, b.comm);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.msg_id, b.msg_id);
  EXPECT_EQ(a.tool_internal, b.tool_internal);
  EXPECT_EQ(a.payload, b.payload);
}

void expect_same_specific(const IndexPair& p, Rank src, Tag tag, CommId comm) {
  const Envelope* a = p.linear->find_specific(src, tag, comm);
  const Envelope* b = p.indexed->find_specific(src, tag, comm);
  ASSERT_EQ(a == nullptr, b == nullptr)
      << "find_specific(" << src << "," << tag << "," << comm << ")";
  if (a != nullptr) expect_env_eq(*a, *b);
}

void expect_same_candidates(const IndexPair& p, Tag tag, CommId comm) {
  std::vector<MatchCandidate> a;
  std::vector<MatchCandidate> b;
  p.linear->wildcard_candidates(tag, comm, &a);
  p.indexed->wildcard_candidates(tag, comm, &b);
  ASSERT_EQ(a.size(), b.size())
      << "wildcard_candidates(" << tag << "," << comm << ")";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_world, b[i].src_world) << "candidate " << i;
    EXPECT_EQ(a[i].tag, b[i].tag) << "candidate " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "candidate " << i;
    EXPECT_EQ(a[i].msg_id, b[i].msg_id) << "candidate " << i;
  }
  EXPECT_EQ(p.linear->has_candidates(tag, comm), !a.empty());
  EXPECT_EQ(p.indexed->has_candidates(tag, comm), !b.empty());
}

constexpr Rank kFuzzSources = 5;
constexpr Tag kFuzzTags = 4;
const CommId kFuzzComms[] = {kCommWorld, static_cast<CommId>(kCommWorld + 1)};

struct ShadowState {
  std::vector<std::uint64_t> live_ids;       // queued unexpected messages
  std::vector<RequestRecord*> live_posted;   // still-indexed receives
  std::vector<std::unique_ptr<RequestRecord>> records;  // owns all posted
  std::uint64_t next_msg_id = 1;
  std::uint64_t next_seq[kFuzzSources][2] = {};
  RequestId next_req = 1;
};

void fuzz_step(Rng& rng, IndexPair& p, ShadowState& st) {
  const auto pick_tag = [&](double any_prob) {
    return rng.next_bool(any_prob)
               ? kAnyTag
               : static_cast<Tag>(rng.next_below(kFuzzTags));
  };
  const std::size_t comm_idx = rng.next_below(2);
  const CommId comm = kFuzzComms[comm_idx];
  const auto op = rng.next_below(100);
  if (op < 30) {
    // Push one unexpected message into both (two identical copies).
    const Rank src = static_cast<Rank>(rng.next_below(kFuzzSources));
    const Tag tag = static_cast<Tag>(rng.next_below(kFuzzTags));
    const bool tool = rng.next_bool(0.15);
    const std::uint64_t seq = st.next_seq[src][comm_idx]++;
    const std::uint64_t id = st.next_msg_id++;
    p.linear->push_unexpected(make_env(src, tag, comm, seq, id, tool));
    p.indexed->push_unexpected(make_env(src, tag, comm, seq, id, tool));
    st.live_ids.push_back(id);
  } else if (op < 45) {
    // Specific-receive lookup, concrete or wildcard tag.
    expect_same_specific(p, static_cast<Rank>(rng.next_below(kFuzzSources)),
                         pick_tag(0.3), comm);
  } else if (op < 55) {
    expect_same_candidates(p, pick_tag(0.4), comm);
  } else if (op < 70) {
    // Take a random live message by id (the engine always takes an id it
    // found through a query, but removal must work for any queued id).
    if (st.live_ids.empty()) return;
    const std::size_t at = rng.next_below(st.live_ids.size());
    const std::uint64_t id = st.live_ids[at];
    const Envelope* qa = p.linear->find_by_id(id);
    const Envelope* qb = p.indexed->find_by_id(id);
    ASSERT_NE(qa, nullptr);
    ASSERT_NE(qb, nullptr);
    expect_env_eq(*qa, *qb);
    Envelope a = p.linear->take(id);
    Envelope b = p.indexed->take(id);
    expect_env_eq(a, b);
    st.live_ids.erase(st.live_ids.begin() + static_cast<std::ptrdiff_t>(at));
    EXPECT_EQ(p.linear->find_by_id(id), nullptr);
    EXPECT_EQ(p.indexed->find_by_id(id), nullptr);
  } else if (op < 85) {
    // Post a receive. Neither implementation mutates the record, so the
    // same object can be indexed by both; match_posted must then return
    // the very same pointer on both sides.
    auto rec = std::make_unique<RequestRecord>();
    rec->id = st.next_req++;
    rec->kind = mpism::ReqKind::kRecv;
    rec->posted_src_world = rng.next_bool(0.4)
                                ? kAnySource
                                : static_cast<Rank>(
                                      rng.next_below(kFuzzSources));
    rec->posted_tag = pick_tag(0.4);
    rec->comm = comm;
    p.linear->post_recv(rec.get());
    p.indexed->post_recv(rec.get());
    st.live_posted.push_back(rec.get());
    st.records.push_back(std::move(rec));
  } else {
    // Probe the posted side with a synthetic arrival.
    Envelope e = make_env(static_cast<Rank>(rng.next_below(kFuzzSources)),
                          static_cast<Tag>(rng.next_below(kFuzzTags)), comm,
                          0, 0, rng.next_bool(0.1));
    RequestRecord* a = p.linear->match_posted(e);
    RequestRecord* b = p.indexed->match_posted(e);
    ASSERT_EQ(a, b) << "match_posted diverged";
    if (a != nullptr) std::erase(st.live_posted, a);
  }
}

/// Exhaustive sweep over the whole query space, then drain both queues
/// and check the pool returns to empty.
void final_sweep_and_drain(Rng& rng, IndexPair& p, ShadowState& st) {
  for (const CommId comm : kFuzzComms) {
    for (Tag tag = 0; tag < kFuzzTags; ++tag) {
      expect_same_candidates(p, tag, comm);
      for (Rank src = 0; src < kFuzzSources; ++src) {
        expect_same_specific(p, src, tag, comm);
      }
    }
    expect_same_candidates(p, kAnyTag, comm);
    for (Rank src = 0; src < kFuzzSources; ++src) {
      expect_same_specific(p, src, kAnyTag, comm);
    }
  }
  while (!st.live_ids.empty()) {
    const std::size_t at = rng.next_below(st.live_ids.size());
    const std::uint64_t id = st.live_ids[at];
    expect_env_eq(p.linear->take(id), p.indexed->take(id));
    st.live_ids.erase(st.live_ids.begin() + static_cast<std::ptrdiff_t>(at));
  }
  // Drain the posted side: walk every concrete (src, tag, comm) until
  // both say "no compatible receive"; they must hand out the same
  // records in the same order throughout.
  for (const CommId comm : kFuzzComms) {
    for (Rank src = 0; src < kFuzzSources; ++src) {
      for (Tag tag = 0; tag < kFuzzTags; ++tag) {
        for (;;) {
          const Envelope e = make_env(src, tag, comm, 0, 0, false);
          RequestRecord* a = p.linear->match_posted(e);
          RequestRecord* b = p.indexed->match_posted(e);
          ASSERT_EQ(a, b);
          if (a == nullptr) break;
          std::erase(st.live_posted, a);
        }
      }
    }
  }
  EXPECT_TRUE(st.live_posted.empty());
  EXPECT_EQ(p.indexed->pool_stats().live, 0u);
}

TEST(MatchIndexDifferential, RandomOpStreams) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed * 7919);
    IndexPair pair;
    ShadowState st;
    const int steps = 100 + static_cast<int>(rng.next_below(400));
    for (int i = 0; i < steps; ++i) {
      fuzz_step(rng, pair, st);
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << i;
      }
    }
    final_sweep_and_drain(rng, pair, st);
    ASSERT_FALSE(::testing::Test::HasFatalFailure())
        << "diverged at seed " << seed << " during drain";
  }
}

// A long single stream: deep queues exercise lane growth, bitmap word
// boundaries, and slab-pool reuse after full drains.
TEST(MatchIndexDifferential, DeepQueueStream) {
  Rng rng(0xdeadbeef);
  IndexPair pair;
  ShadowState st;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4000; ++i) fuzz_step(rng, pair, st);
    final_sweep_and_drain(rng, pair, st);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "round " << round;
  }
  // Round 2+ should be served almost entirely from the freelist.
  const auto stats = pair.indexed->pool_stats();
  EXPECT_GT(stats.reused, 0u);
}

// ---------------------------------------------------------------------
// Directed non-overtaking properties.

TEST(MatchIndexProperty, PerSourceFifoOrder) {
  for (const MatchKind kind : {MatchKind::kLinear, MatchKind::kIndexed}) {
    auto idx = mpism::make_match_index(kind);
    std::uint64_t id = 1;
    // Source 1 sends seq 0..9 on tag 7; source 2 interleaves on the same
    // tag. Specific receives from source 1 must drain in seq order no
    // matter how the streams interleave.
    for (std::uint64_t s = 0; s < 10; ++s) {
      idx->push_unexpected(make_env(1, 7, kCommWorld, s, id++, false));
      if (s % 2 == 0) {
        idx->push_unexpected(make_env(2, 7, kCommWorld, s / 2, id++, false));
      }
    }
    for (std::uint64_t s = 0; s < 10; ++s) {
      const Envelope* head = idx->find_specific(1, 7, kCommWorld);
      ASSERT_NE(head, nullptr) << mpism::match_spec(kind) << " seq " << s;
      EXPECT_EQ(head->seq, s) << mpism::match_spec(kind);
      idx->take(head->msg_id);
    }
    EXPECT_EQ(idx->find_specific(1, 7, kCommWorld), nullptr);
    EXPECT_NE(idx->find_specific(2, 7, kCommWorld), nullptr);
  }
}

TEST(MatchIndexProperty, WildcardCandidatesAreLaneHeads) {
  for (const MatchKind kind : {MatchKind::kLinear, MatchKind::kIndexed}) {
    auto idx = mpism::make_match_index(kind);
    // Tool traffic arrives first from source 0 — it must be visible to
    // find_specific but never to wildcard_candidates.
    idx->push_unexpected(make_env(0, 3, kCommWorld, 0, 1, /*tool=*/true));
    idx->push_unexpected(make_env(3, 5, kCommWorld, 0, 2, false));
    idx->push_unexpected(make_env(1, 5, kCommWorld, 0, 3, false));
    idx->push_unexpected(make_env(3, 5, kCommWorld, 1, 4, false));
    idx->push_unexpected(make_env(1, 9, kCommWorld, 1, 5, false));

    std::vector<MatchCandidate> c;
    idx->wildcard_candidates(5, kCommWorld, &c);
    ASSERT_EQ(c.size(), 2u) << mpism::match_spec(kind);
    EXPECT_EQ(c[0].src_world, 1);  // sorted by source
    EXPECT_EQ(c[0].msg_id, 3u);
    EXPECT_EQ(c[1].src_world, 3);
    EXPECT_EQ(c[1].msg_id, 2u);  // lane head = earliest from source 3

    // ANY_TAG: source 1's earliest across tags is msg 3 (tag 5), source
    // 3's is msg 2; the tool message from source 0 stays invisible.
    idx->wildcard_candidates(kAnyTag, kCommWorld, &c);
    ASSERT_EQ(c.size(), 2u) << mpism::match_spec(kind);
    EXPECT_EQ(c[0].src_world, 1);
    EXPECT_EQ(c[0].msg_id, 3u);
    EXPECT_EQ(c[1].src_world, 3);
    EXPECT_EQ(c[1].msg_id, 2u);

    // The tool message is reachable for the piggyback receive path.
    const Envelope* tool_head = idx->find_specific(0, 3, kCommWorld);
    ASSERT_NE(tool_head, nullptr) << mpism::match_spec(kind);
    EXPECT_TRUE(tool_head->tool_internal);
  }
}

TEST(MatchIndexProperty, EarliestPostedWinsAcrossLaneShapes) {
  for (const MatchKind kind : {MatchKind::kLinear, MatchKind::kIndexed}) {
    auto idx = mpism::make_match_index(kind);
    // Four receives, one per lane shape, posted in this order; an
    // arrival from (src 1, tag 5) is compatible with all four and must
    // drain them in post order.
    RequestRecord recs[4];
    const Rank srcs[4] = {kAnySource, 1, kAnySource, 1};
    const Tag tags[4] = {5, kAnyTag, kAnyTag, 5};
    for (int i = 0; i < 4; ++i) {
      recs[i].id = static_cast<RequestId>(i + 1);
      recs[i].kind = mpism::ReqKind::kRecv;
      recs[i].posted_src_world = srcs[i];
      recs[i].posted_tag = tags[i];
      idx->post_recv(&recs[i]);
    }
    const Envelope arrival = make_env(1, 5, kCommWorld, 0, 1, false);
    for (int i = 0; i < 4; ++i) {
      RequestRecord* got = idx->match_posted(arrival);
      ASSERT_NE(got, nullptr) << mpism::match_spec(kind) << " i=" << i;
      EXPECT_EQ(got, &recs[i]) << mpism::match_spec(kind)
                               << " posted order violated at " << i;
    }
    EXPECT_EQ(idx->match_posted(arrival), nullptr);
    // An incompatible arrival never matches a concrete-source receive.
    RequestRecord strict;
    strict.id = 9;
    strict.kind = mpism::ReqKind::kRecv;
    strict.posted_src_world = 2;
    strict.posted_tag = 5;
    idx->post_recv(&strict);
    EXPECT_EQ(idx->match_posted(arrival), nullptr);
    const Envelope from2 = make_env(2, 5, kCommWorld, 0, 2, false);
    EXPECT_EQ(idx->match_posted(from2), &strict);
  }
}

TEST(MatchSpec, ParseAndFormatRoundTrip) {
  mpism::MatchKind kind = MatchKind::kIndexed;
  ASSERT_TRUE(mpism::parse_match_spec("linear", &kind));
  EXPECT_EQ(kind, MatchKind::kLinear);
  EXPECT_STREQ(mpism::match_spec(kind), "linear");
  ASSERT_TRUE(mpism::parse_match_spec("indexed", &kind));
  EXPECT_EQ(kind, MatchKind::kIndexed);
  EXPECT_STREQ(mpism::match_spec(kind), "indexed");
  kind = MatchKind::kLinear;
  EXPECT_FALSE(mpism::parse_match_spec("hashed", &kind));
  EXPECT_FALSE(mpism::parse_match_spec("", &kind));
  EXPECT_EQ(kind, MatchKind::kLinear);  // failed parse leaves *out alone
}

// ---------------------------------------------------------------------
// Program-level differential: randomized programs, both matchers, same
// deterministic coop schedule => bit-identical reports.

struct ProgramCase {
  std::uint64_t seed;
  int nprocs;
  int phases;
  int messages_per_phase;
};

struct ScriptMessage {
  int src;
  int dst;
  int tag;
  bool synchronous;
};

/// Valid-by-construction message soup (receives posted before sends per
/// phase), same shape as test_engine_fuzz but smaller and with per-rank
/// probe sprinkling — probes exercise the candidate queries without
/// consuming messages.
std::vector<std::vector<ScriptMessage>> build_script(const ProgramCase& c) {
  Rng rng(c.seed);
  std::vector<std::vector<ScriptMessage>> phases(
      static_cast<std::size_t>(c.phases));
  for (auto& phase : phases) {
    const int count =
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(c.messages_per_phase)));
    for (int m = 0; m < count; ++m) {
      ScriptMessage msg;
      msg.src = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(c.nprocs)));
      do {
        msg.dst = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(c.nprocs)));
      } while (msg.dst == msg.src);
      msg.tag = static_cast<int>(rng.next_below(3));
      msg.synchronous = rng.next_bool(0.3);
      phase.push_back(msg);
    }
  }
  return phases;
}

void run_script(mpism::Proc& p,
                const std::vector<std::vector<ScriptMessage>>& script,
                std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef);
  int phase_index = 0;
  for (const auto& phase : script) {
    const bool wildcard_phase = rng.next_bool(0.5);
    std::vector<RequestId> recvs;
    for (const ScriptMessage& m : phase) {
      if (m.dst != p.rank()) continue;
      recvs.push_back(
          p.irecv(wildcard_phase ? kAnySource : m.src, kAnyTag));
    }
    std::vector<RequestId> sends;
    for (const ScriptMessage& m : phase) {
      if (m.src != p.rank()) continue;
      sends.push_back(m.synchronous
                          ? p.issend(m.dst, m.tag, pack<int>(m.tag))
                          : p.isend(m.dst, m.tag, pack<int>(m.tag)));
    }
    if (rng.next_bool(0.5)) p.iprobe(kAnySource, kAnyTag);
    p.waitall(recvs);
    p.waitall(sends);
    if (phase_index % 2 == 0) {
      p.barrier();
    } else {
      p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
    }
    ++phase_index;
  }
}

/// Every deterministic field of a RunReport, doubles in %a hex form (the
/// test_sched.cpp fingerprint — wall_seconds is excluded by design).
std::string fingerprint(const mpism::RunReport& r) {
  std::string s = strfmt(
      "completed=%d deadlocked=%d vtime=%a comm_leaks=%d req_leaks=%llu "
      "msgs=%llu tool_msgs=%llu",
      r.completed ? 1 : 0, r.deadlocked ? 1 : 0, r.vtime_us, r.comm_leaks,
      static_cast<unsigned long long>(r.request_leaks),
      static_cast<unsigned long long>(r.messages_sent),
      static_cast<unsigned long long>(r.stats.tool_messages));
  s += "\ndeadlock_detail=" + r.deadlock_detail;
  for (const auto& e : r.errors) {
    s += strfmt("\nerror rank=%d ", e.rank) + e.message;
  }
  for (std::size_t c = 0; c < mpism::OpStats::kNumCategories; ++c) {
    s += strfmt("\ncat%zu:", c);
    for (const auto v : r.stats.counts[c]) {
      s += strfmt(" %llu", static_cast<unsigned long long>(v));
    }
  }
  return s;
}

mpism::RunOptions case_options(const ProgramCase& c, MatchKind match,
                               mpism::SchedulerKind sched_kind) {
  mpism::RunOptions options;
  options.nprocs = c.nprocs;
  options.match = match;
  options.sched.kind = sched_kind;
  options.sched.seed = c.seed;
  if (sched_kind == mpism::SchedulerKind::kCoop) {
    options.sched.pick = (c.seed % 2 == 0)
                             ? mpism::SchedPolicy::kRoundRobin
                             : mpism::SchedPolicy::kRandomSeeded;
  }
  // Cycle the wildcard policies: seeded-random is the sharpest
  // discriminator (any divergence in candidate vector *content or
  // order* changes which source wins and snowballs into the stats).
  switch (c.seed % 3) {
    case 0: options.policy = mpism::PolicyKind::kLowestSource; break;
    case 1: options.policy = mpism::PolicyKind::kFifoArrival; break;
    default: options.policy = mpism::PolicyKind::kSeededRandom; break;
  }
  options.policy_seed = c.seed + 1;
  return options;
}

// Acceptance bar from the issue: >= 1000 randomized programs with
// bit-identical RunReport fingerprints between matchers. The coop
// scheduler makes whole runs deterministic, so any matcher divergence
// (different wildcard winner, different posted receive, different
// message accounting) shows up as a fingerprint mismatch.
TEST(MatchDifferentialPrograms, CoopFingerprintsIdentical1000) {
  SKIP_WITHOUT_COOP();
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    ProgramCase c;
    c.seed = seed * 1315423911u;
    c.nprocs = 2 + static_cast<int>(seed % 5);  // 2..6
    c.phases = 2;
    c.messages_per_phase = 2 * c.nprocs;
    const auto script = build_script(c);
    const auto program = [&script, &c](mpism::Proc& p) {
      run_script(p, script, c.seed + static_cast<std::uint64_t>(p.rank()));
    };
    const auto linear = run_program(
        case_options(c, MatchKind::kLinear, mpism::SchedulerKind::kCoop),
        program);
    const auto indexed = run_program(
        case_options(c, MatchKind::kIndexed, mpism::SchedulerKind::kCoop),
        program);
    ASSERT_TRUE(linear.ok()) << "seed " << seed << ": "
                             << linear.deadlock_detail;
    ASSERT_EQ(fingerprint(linear), fingerprint(indexed))
        << "matchers diverged at seed " << seed << " (nprocs " << c.nprocs
        << ")";
    ++checked;
  }
  EXPECT_EQ(checked, 1000);
}

// Thread-scheduler subset: match order is host-timing-dependent, so only
// schedule-independent invariants are comparable — but those must agree.
// (Also the TSan workout for the indexed lanes: label `match` is in the
// tier-1 sanitizer sweep.)
TEST(MatchDifferentialPrograms, ThreadSchedulerInvariantsAgree) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    ProgramCase c;
    c.seed = seed * 2654435761u;
    c.nprocs = 2 + static_cast<int>(seed % 4);  // 2..5
    c.phases = 2;
    c.messages_per_phase = 2 * c.nprocs;
    const auto script = build_script(c);
    std::uint64_t expected_messages = 0;
    for (const auto& phase : script) expected_messages += phase.size();
    const auto program = [&script, &c](mpism::Proc& p) {
      run_script(p, script, c.seed + static_cast<std::uint64_t>(p.rank()));
    };
    for (const MatchKind kind : {MatchKind::kLinear, MatchKind::kIndexed}) {
      const auto report = run_program(
          case_options(c, kind, mpism::SchedulerKind::kThread), program);
      ASSERT_TRUE(report.completed)
          << mpism::match_spec(kind) << " seed " << seed << ": "
          << report.deadlock_detail;
      ASSERT_TRUE(report.errors.empty())
          << mpism::match_spec(kind) << " seed " << seed << ": "
          << report.errors[0].message;
      EXPECT_EQ(report.messages_sent, expected_messages)
          << mpism::match_spec(kind) << " seed " << seed;
      EXPECT_EQ(report.comm_leaks, 0) << mpism::match_spec(kind);
      EXPECT_EQ(report.request_leaks, 0u) << mpism::match_spec(kind);
    }
  }
}

// Deadlock verdict parity: both matchers reach the same verdict on the
// deadlock patterns under both schedulers, and under coop the whole
// report (detail text included) is bit-identical.
TEST(MatchDifferentialPrograms, DeadlockVerdictParity) {
  struct Pattern {
    const char* name;
    mpism::ProgramFn fn;
    int nprocs;
  };
  const Pattern patterns[] = {
      {"simple_deadlock", workloads::simple_deadlock, 2},
      {"wildcard_dependent_deadlock",
       workloads::wildcard_dependent_deadlock, 3},
  };
  for (const auto& pat : patterns) {
    for (const auto sched_kind : {mpism::SchedulerKind::kThread,
                                  mpism::SchedulerKind::kCoop}) {
      if (sched_kind == mpism::SchedulerKind::kCoop &&
          !mpism::coop_supported()) {
        continue;
      }
      std::optional<std::string> coop_fp;
      for (const MatchKind kind :
           {MatchKind::kLinear, MatchKind::kIndexed}) {
        mpism::RunOptions options;
        options.nprocs = pat.nprocs;
        options.match = kind;
        options.sched.kind = sched_kind;
        // Lowest-source steers wildcard_dependent_deadlock down the
        // benign path deterministically... except simple_deadlock has no
        // wildcard at all; both must deadlock under either policy. Use
        // fifo-arrival so the wildcard pattern's verdict depends only on
        // arrival order, which coop fixes.
        options.policy = mpism::PolicyKind::kFifoArrival;
        const auto report = run_program(options, pat.fn);
        if (std::string(pat.name) == "simple_deadlock") {
          EXPECT_TRUE(report.deadlocked)
              << pat.name << " " << mpism::match_spec(kind);
        }
        if (sched_kind == mpism::SchedulerKind::kCoop) {
          const std::string fp = fingerprint(report);
          if (!coop_fp.has_value()) {
            coop_fp = fp;
          } else {
            EXPECT_EQ(fp, *coop_fp)
                << pat.name << ": matchers disagree under coop";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace dampi::test
