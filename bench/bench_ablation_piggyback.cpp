// Ablation (paper §II-D, citing [15]): piggyback mechanisms.
//
// DAMPI chose the *separate message* mechanism "to ensure simplicity of
// implementation without sacrificing performance". This harness compares
// it against the payload-packing alternative across message-size
// profiles: packing avoids the extra message but copies/resizes every
// payload and inflates probed sizes; separate messages double the
// message count but never touch user data.
#include <vector>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workloads/suites.hpp"

using namespace dampi;

namespace {

double slowdown_with(piggyback::TransportKind kind, int procs,
                     const workloads::SkeletonSpec& spec) {
  core::VerifyOptions options;
  options.explorer.nprocs = procs;
  options.explorer.transport = kind;
  options.explorer.max_interleavings = 1;
  core::Verifier verifier(options);
  return verifier
      .verify([&spec](mpism::Proc& p) { workloads::run_skeleton(p, spec); })
      .slowdown;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation — separate-message vs packed-payload piggyback",
      "the separate-message mechanism performs on par with payload "
      "packing across message-size regimes (DAMPI's §II-D design choice)");

  const int procs = bench::env_procs(/*full=*/256, /*quick=*/64);
  std::printf("processes: %d\n\n", procs);

  TextTable table;
  table.header({"workload", "payload", "separate msg", "packed payload",
                "telepathic (lower bound)"});

  bench::WallTimer total;
  for (const char* name :
       {"126.lammps", "104.milc", "107.leslie3d", "CG", "MG"}) {
    const auto spec = workloads::find_suite_entry(name)->spec;
    table.row({name, std::to_string(spec.payload_bytes) + "B",
               fmt_fixed(slowdown_with(
                             piggyback::TransportKind::kSeparateMessage,
                             procs, spec),
                         2) +
                   "x",
               fmt_fixed(slowdown_with(
                             piggyback::TransportKind::kPackedPayload, procs,
                             spec),
                         2) +
                   "x",
               fmt_fixed(slowdown_with(piggyback::TransportKind::kTelepathic,
                                       procs, spec),
                         2) +
                   "x"});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: packing wins on tiny payloads (no extra "
              "message) but pays a full payload copy as messages grow; "
              "the separate-message mechanism costs a fixed small message "
              "regardless of payload — uniform and simple, which is why "
              "DAMPI picked it. Telepathic (no piggyback traffic at all) "
              "bounds the achievable minimum.\n");
  std::printf("(harness wall time: %.1fs)\n", total.seconds());
  return 0;
}
