file(REMOVE_RECURSE
  "libdampi_piggyback.a"
)
