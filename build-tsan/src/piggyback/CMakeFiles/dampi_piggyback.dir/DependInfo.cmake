
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/piggyback/factory.cpp" "src/piggyback/CMakeFiles/dampi_piggyback.dir/factory.cpp.o" "gcc" "src/piggyback/CMakeFiles/dampi_piggyback.dir/factory.cpp.o.d"
  "/root/repo/src/piggyback/packed_payload.cpp" "src/piggyback/CMakeFiles/dampi_piggyback.dir/packed_payload.cpp.o" "gcc" "src/piggyback/CMakeFiles/dampi_piggyback.dir/packed_payload.cpp.o.d"
  "/root/repo/src/piggyback/separate_message.cpp" "src/piggyback/CMakeFiles/dampi_piggyback.dir/separate_message.cpp.o" "gcc" "src/piggyback/CMakeFiles/dampi_piggyback.dir/separate_message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mpism/CMakeFiles/mpism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/dampi_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/clocks/CMakeFiles/dampi_clocks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
