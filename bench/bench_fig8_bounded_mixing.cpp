// Figure 8: matrix multiplication with bounded mixing — interleavings
// explored vs process count for k = 0, 1, 2 and no bounds.
//
// Paper: unbounded exploration explodes with the process count (off the
// chart past a handful of workers) while bounded mixing grows gently,
// roughly linearly as k increases — the knob that lets users buy
// coverage incrementally.
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "workloads/matmult.hpp"

using namespace dampi;

namespace {

std::string count_str(std::uint64_t n, bool capped) {
  return capped ? (">" + std::to_string(n)) : std::to_string(n);
}

}  // namespace

int main() {
  bench::banner(
      "Figure 8 — matmult with bounded mixing (interleavings vs procs)",
      "unbounded search explodes with procs; k=0,1,2 grow gently and "
      "~linearly in k");

  const std::uint64_t cap = bench::quick_mode() ? 2000 : 20000;
  const std::vector<int> proc_counts =
      bench::quick_mode() ? std::vector<int>{2, 3, 4}
                          : std::vector<int>{2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::optional<int>> bounds = {0, 1, 2, std::nullopt};

  TextTable table;
  table.header({"procs", "k=0", "k=1", "k=2", "no bounds"});

  bench::WallTimer total;
  for (const int procs : proc_counts) {
    workloads::MatmultConfig config;
    // Two chunks per worker: the interleaving space deepens with the
    // process count, as in the paper's runs.
    config.n = 2 * (procs - 1);
    config.chunk_rows = 1;
    std::vector<std::string> cells = {std::to_string(procs)};
    for (const auto& k : bounds) {
      core::ExplorerOptions options;
      options.nprocs = procs;
      options.mixing_bound = k;
      options.max_interleavings = cap;
      core::Explorer explorer(options);
      const auto result = explorer.explore([config](mpism::Proc& p) {
        workloads::matmult(p, config);
      });
      cells.push_back(count_str(result.interleavings,
                                result.interleaving_budget_exhausted));
      if (result.found_bug()) {
        std::printf("unexpected bug at procs=%d!\n", procs);
        return 1;
      }
    }
    table.row(std::move(cells));
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: every column grows with procs; rows are "
              "monotone in k; the no-bounds column dwarfs k<=2 at larger "
              "proc counts (\">N\" marks the exploration cap).\n");
  std::printf("(harness wall time: %.1fs)\n\n", total.seconds());

  // Replay-worker pool on the deepest bounded row (largest procs, k=2):
  // same counts at every width, wall clock drops with free cores.
  const int top_jobs = bench::env_jobs();
  const int jprocs = proc_counts.back();
  workloads::MatmultConfig jconfig;
  jconfig.n = 2 * (jprocs - 1);
  jconfig.chunk_rows = 1;
  std::printf("Replay-worker pool on the procs=%d k=2 row:\n", jprocs);
  TextTable jt;
  jt.header({"jobs", "interleavings", "wall (s)", "speedup"});
  double base_wall = 0;
  std::uint64_t base_count = 0;
  for (const int jobs : {1, top_jobs}) {
    core::ExplorerOptions options;
    options.nprocs = jprocs;
    options.mixing_bound = 2;
    options.max_interleavings = cap;
    options.jobs = jobs;
    core::Explorer explorer(options);
    bench::WallTimer timer;
    const auto result = explorer.explore(
        [jconfig](mpism::Proc& p) { workloads::matmult(p, jconfig); });
    const double wall = timer.seconds();
    if (jobs == 1) {
      base_wall = wall;
      base_count = result.interleavings;
    } else if (result.interleavings != base_count) {
      std::printf("jobs=%d interleaving count diverged!\n", jobs);
      return 1;
    }
    jt.row({std::to_string(jobs), std::to_string(result.interleavings),
            fmt_fixed(wall, 2),
            fmt_fixed(base_wall / std::max(wall, 1e-9), 2) + "x"});
  }
  std::printf("%s\n", jt.str().c_str());
  return 0;
}
