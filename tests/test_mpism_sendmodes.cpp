// Synchronous (rendezvous) sends, sendrecv, and testall/testany — the
// send-mode surface that separates buffering-dependent deadlocks from
// eager-safe code.
#include <gtest/gtest.h>

#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::pack;
using mpism::RequestId;
using mpism::Status;
using mpism::unpack;

TEST(Ssend, CompletesAgainstPostedReceive) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.ssend(1, 1, pack<int>(5));
    } else {
      Bytes data;
      p.recv(0, 1, &data);
      EXPECT_EQ(unpack<int>(data), 5);
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

TEST(Ssend, CompletesAgainstLaterReceive) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      p.ssend(1, 1, pack<int>(7));  // receiver arrives later
    } else {
      p.compute(500.0);
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.ok());
}

// The classic buffering-dependent deadlock: head-to-head blocking sends
// are safe when eager (buffered) but deadlock under rendezvous.
TEST(Ssend, HeadToHeadSynchronousSendsDeadlock) {
  auto report = run_program(2, [](Proc& p) {
    const int other = 1 - p.rank();
    p.ssend(other, 1, pack<int>(p.rank()));
    p.recv(other, 1);
  });
  EXPECT_TRUE(report.deadlocked);
  EXPECT_NE(report.deadlock_detail.find("ssend"), std::string::npos);
}

TEST(Ssend, HeadToHeadEagerSendsStillComplete) {
  auto report = run_program(2, [](Proc& p) {
    const int other = 1 - p.rank();
    p.send(other, 1, pack<int>(p.rank()));
    p.recv(other, 1);
  });
  EXPECT_TRUE(report.ok());
}

TEST(Ssend, IssendNonblockingOverlap) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId s = p.issend(1, 1, pack<int>(9));
      // The request is incomplete until rank 1 posts its receive.
      EXPECT_FALSE(p.test(s));
      p.send(1, 2, pack<int>(0));  // tell rank 1 to go ahead
      p.wait(s);
    } else {
      p.recv(0, 2);
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

TEST(Ssend, WildcardReceiveReleasesSynchronousSender) {
  auto report = run_program(3, [](Proc& p) {
    if (p.rank() == 2) {
      p.recv(kAnySource, 1);
      p.recv(kAnySource, 1);
    } else {
      p.ssend(2, 1, pack<int>(p.rank()));
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Ssend, ProbeDoesNotReleaseSynchronousSender) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId s = p.issend(1, 1, pack<int>(3));
      p.recv(1, 2);  // rank 1 confirms it probed
      EXPECT_FALSE(p.test(s));  // probe alone must not complete the ssend
      p.send(1, 3, pack<int>(0));  // now rank 1 may actually receive
      p.wait(s);
    } else {
      p.probe(0, 1);
      p.send(0, 2, pack<int>(0));
      p.recv(0, 3);
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

// A wildcard-dependent *buffering* deadlock: the bug appears only when
// the wildcard matches the synchronous sender's competitor — exactly the
// class DAMPI's replay must expose.
TEST(Ssend, WildcardDependentSsendDeadlockFoundByVerifier) {
  const auto program = [](Proc& p) {
    constexpr mpism::Tag t = 1;
    switch (p.rank()) {
      case 0:
        p.send(1, t, pack<int>(0));
        break;
      case 1: {
        const Status st = p.recv(kAnySource, t);
        if (st.source == 2) {
          // This branch issues a synchronous send nobody will receive
          // until rank 0's message is drained... which never happens.
          p.ssend(2, 9, pack<int>(1));
        }
        p.recv(kAnySource, t);  // drain the other sender
        break;
      }
      case 2:
        p.send(1, t, pack<int>(2));
        break;
      default:
        break;
    }
  };
  core::ExplorerOptions options = explorer_options(3);
  core::Explorer explorer(options);
  const auto result = explorer.explore(program);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.bugs.back().kind, core::BugRecord::Kind::kDeadlock);
}

TEST(SendRecv, PairsWithoutDeadlock) {
  auto report = run_program(4, [](Proc& p) {
    const int next = (p.rank() + 1) % p.size();
    const int prev = (p.rank() + p.size() - 1) % p.size();
    Bytes data;
    const Status st =
        p.sendrecv(next, 1, pack<int>(p.rank()), prev, 1, &data);
    EXPECT_EQ(st.source, prev);
    EXPECT_EQ(unpack<int>(data), prev);
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

TEST(TestAll, ConsumesAllOrNothing) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      std::vector<RequestId> reqs = {p.irecv(1, 1), p.irecv(1, 2)};
      // Only the tag-1 message is sent initially: testall must fail and
      // consume nothing.
      p.recv(1, 3);  // rank 1 has sent tag 1 by now
      EXPECT_FALSE(p.testall(reqs));
      EXPECT_NE(reqs[0], mpism::kNullRequest);
      EXPECT_NE(reqs[1], mpism::kNullRequest);
      p.send(1, 4, pack<int>(0));  // ask for the second message
      p.recv(1, 5);
      EXPECT_TRUE(p.testall(reqs));
      EXPECT_EQ(reqs[0], mpism::kNullRequest);
      EXPECT_EQ(reqs[1], mpism::kNullRequest);
    } else {
      p.send(0, 1, pack<int>(1));
      p.send(0, 3, pack<int>(0));
      p.recv(0, 4);
      p.send(0, 2, pack<int>(2));
      p.send(0, 5, pack<int>(0));
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
  EXPECT_EQ(report.request_leaks, 0u);
}

TEST(TestAny, ReturnsLowestReadyIndex) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) {
      std::vector<RequestId> reqs = {p.irecv(1, 1), p.irecv(1, 2)};
      EXPECT_EQ(p.testany(reqs), reqs.size());  // nothing ready yet
      p.recv(1, 3);                             // tag-2 sent, then tag-3
      Bytes data;
      Status st;
      const std::size_t idx = p.testany(reqs, &st, &data);
      EXPECT_EQ(idx, 1u);  // tag 2 arrived; tag 1 never sent yet
      EXPECT_EQ(st.tag, 2);
      p.send(1, 4, pack<int>(0));
      p.waitall(reqs);
    } else {
      p.send(0, 2, pack<int>(2));
      p.send(0, 3, pack<int>(0));
      p.recv(0, 4);
      p.send(0, 1, pack<int>(1));
    }
  });
  EXPECT_TRUE(report.ok()) << report.deadlock_detail;
}

// Piggybacking and epoch analysis work identically for synchronous
// sends: a late ssend is a potential match.
TEST(Ssend, LateSynchronousSendIsAPotentialMatch) {
  core::ExplorerOptions options = explorer_options(3);
  auto result = run_dampi_once(options, {}, [](Proc& p) {
    constexpr mpism::Tag t = 0;
    if (p.rank() == 0) {
      p.ssend(1, t, pack<int>(22));
    } else if (p.rank() == 2) {
      p.ssend(1, t, pack<int>(33));
    } else {
      p.recv(kAnySource, t);
      p.recv(kAnySource, t);
    }
  });
  ASSERT_TRUE(result.report.completed);
  const auto* epoch = find_epoch(result.trace, 1, 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->alternatives.size(), 1u);
}

}  // namespace
}  // namespace dampi::test
