# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_clocks[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpism_pt2pt[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpism_collectives[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpism_comm[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpism_deadlock[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpism_tools[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpism_sendmodes[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_dampi_layer[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_explorer[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_explorer_parallel[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_isp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_deferred_sync[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_auto_loop[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_regressions[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_decision_io[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_kernels[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_engine_fuzz[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_report_format[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_vtime[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_policy[1]_include.cmake")
