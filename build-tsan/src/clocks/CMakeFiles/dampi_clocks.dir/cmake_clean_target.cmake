file(REMOVE_RECURSE
  "libdampi_clocks.a"
)
