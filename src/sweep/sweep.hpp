// Fault-sweep campaigns: the crash-tolerance matrix of a program.
//
// One fault-free discovery run harvests the per-rank op inventory
// (inventory.hpp); a deterministic enumeration turns it into
// single-point fault plans under a budget — every (rank, op) abort and
// error point, plus seeded-RNG-sampled delay and flaky perturbations —
// and each plan gets one bounded exploration campaign reusing the
// explorer's watchdog/retry/quarantine machinery. Campaigns are
// independent, so `workers` of them run concurrently; each is forced to
// jobs=1 and classified into one Verdict, making the final report a
// pure function of (program, options, budget, seed) at any worker
// count.
//
// Robustness both ways: per-plan interleaving/wall budgets bound each
// campaign, campaign spawn failures are respawned with bounded backoff,
// and completed plans stream into a crash-safe journal (journal.hpp) so
// a killed sweep resumes without re-running anything it finished.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "core/options.hpp"
#include "sweep/inventory.hpp"
#include "sweep/types.hpp"

namespace dampi::sweep {

struct SweepOptions {
  /// Base verifier configuration for every campaign (and the discovery
  /// run). Must not carry a fault plan of its own — the sweep owns
  /// injection. jobs is forced to 1 per campaign; `workers` below is
  /// the sweep's parallelism.
  core::ExplorerOptions explorer;
  /// Folded into the sweep fingerprint (journal/report identity).
  std::string program_name;

  /// Plan budget: the enumeration is truncated to this many plans
  /// (abort/error points first, then sampled delay/flaky ones).
  std::uint64_t budget = 64;
  /// Seeds the delay/flaky sampler; part of the fingerprint.
  std::uint64_t seed = 1;
  SweepKinds kinds;
  int delay_samples = 8;
  int flaky_samples = 8;

  /// Concurrent plan campaigns (threads in this process). Does not
  /// affect the report payload.
  int workers = 1;

  /// Per-plan campaign budgets (verdict-affecting: fingerprinted).
  std::uint64_t plan_max_interleavings = 256;
  /// Wall-clock safety net per campaign; expiry marks the plan partial.
  double plan_wall_seconds = 60.0;
  /// Deterministic hang watchdog applied when the base options carry no
  /// op budget of their own: a run exceeding this many engine ops under
  /// an injection is a kHang verdict (livelock), independent of host
  /// speed.
  std::uint64_t plan_max_run_ops = 1u << 20;

  /// Campaign spawn failures (exceptions out of the explorer) are
  /// retried with doubling backoff this many times before the plan is
  /// recorded as sweep-error (coverage hole, not a crash of the sweep).
  int max_plan_respawns = 2;
  double respawn_backoff_ms = 10.0;

  /// Crash-safe journal of completed plans (empty = none). With
  /// `resume`, a compatible journal's plans are not re-executed.
  std::string journal_path;
  bool resume = false;

  /// Sweep-wide cancellation (SIGINT bridge): in-flight campaigns are
  /// cancelled, completed plans stay journalled, the sweep reports
  /// interrupted.
  std::shared_ptr<mpism::CancelSource> cancel;

  /// Invoked once per completed plan, serialized (progress display).
  std::function<void(const PlanRecord&)> on_plan_done;
};

struct SweepResult {
  OpInventory inventory;
  /// Completed plans in enumeration order. An interrupted sweep holds
  /// only the plans finished before the cancel.
  std::vector<PlanRecord> records;
  std::uint64_t planned = 0;    ///< plans enumerated before truncation
  std::uint64_t truncated = 0;  ///< dropped by the budget
  std::uint64_t executed = 0;   ///< campaigns run by this process
  std::uint64_t resumed = 0;    ///< satisfied from the journal
  std::uint64_t respawns = 0;   ///< campaign spawn retries
  bool interrupted = false;
  std::string error;  ///< fatal sweep failure (bad options, journal, ...)
};

/// Identity of a sweep for journal/resume validation: the explorer
/// fingerprint (fault-free, tagged with the program name) plus every
/// sweep knob that changes which plans exist or how they are judged.
/// Excludes workers, journal knobs, respawn policy and the wall-clock
/// safety net — a resume may legitimately change those.
std::string sweep_fingerprint(const SweepOptions& options);

/// Deterministic plan enumeration (each plan is one canonical
/// single-point fault spec): abort/error over every inventory
/// coordinate op-major, then seed-sampled delay and flaky points,
/// deduplicated by (kind, rank, op) and truncated to the budget.
/// `*planned` (optional) receives the pre-truncation count.
std::vector<std::string> enumerate_plans(const OpInventory& inventory,
                                         const SweepOptions& options,
                                         std::uint64_t* planned);

/// Collapse one campaign outcome to its matrix cell. `fires` is the
/// plan's total fire count at campaign end.
PlanRecord classify_campaign(std::uint64_t index, const std::string& spec,
                             const core::ExploreResult& result,
                             std::uint64_t fires);

/// Bounded-backoff respawn wrapper around one campaign execution:
/// retries `runner` up to `max_respawns` times when it throws,
/// incrementing `*respawns` per retry; on exhaustion fills `*error`
/// (the sweep-error verdict) and returns a default result.
core::ExploreResult run_plan_with_respawn(
    const std::function<core::ExploreResult()>& runner, int max_respawns,
    double backoff_ms, std::uint64_t* respawns, std::string* error);

SweepResult run_sweep(const SweepOptions& options,
                      const mpism::ProgramFn& program);

/// Machine-readable crash-tolerance report. Byte-identical for the same
/// (program, options, budget, seed) at any worker count and across
/// kill/resume: it carries no timing and no executed/resumed split.
std::string format_sweep_report_json(const SweepOptions& options,
                                     const SweepResult& result);

/// Human summary (verdict matrix, coverage, resume accounting).
std::string format_sweep_summary(const SweepOptions& options,
                                 const SweepResult& result);

/// CLI contract: 3 sweep failure, 1 crash-tolerance bugs found
/// (deadlock/hang/latent-error plans), 2 partial coverage
/// (interrupted, partial campaigns, or sweep-error plans), 0 clean.
int sweep_exit_code(const SweepResult& result);

}  // namespace dampi::sweep
