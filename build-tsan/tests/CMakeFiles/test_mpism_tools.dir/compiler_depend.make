# Empty compiler generated dependencies file for test_mpism_tools.
# This may be replaced when dependencies are built.
