// Lamport logical clocks (Lamport, CACM 1978), as used by DAMPI.
//
// DAMPI's decentralized match detection keys on a single scalar clock per
// process: each non-deterministic receive "starts an epoch" and bumps the
// clock; piggybacked send clocks below the local clock identify *late*
// (potentially matching) sends. The well-known imprecision — LC(a) < LC(b)
// does not imply a happened-before b — is exactly the incompleteness the
// paper analyzes in its Fig. 4 pattern; see clocks/vector_clock.hpp for the
// precise alternative.
#pragma once

#include <cstdint>

namespace dampi::clocks {

/// Scalar Lamport time. Value semantics; all operations are trivial.
class LamportClock {
 public:
  using Value = std::uint64_t;

  constexpr LamportClock() = default;
  constexpr explicit LamportClock(Value v) : value_(v) {}

  constexpr Value value() const { return value_; }

  /// Local event: advance time by one tick.
  constexpr void tick() { ++value_; }

  /// Incorporate a clock received from another process (message receipt,
  /// collective completion): local = max(local, remote).
  constexpr void merge(Value remote) {
    if (remote > value_) value_ = remote;
  }

  friend constexpr bool operator==(LamportClock a, LamportClock b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator<(LamportClock a, LamportClock b) {
    return a.value_ < b.value_;
  }

 private:
  Value value_ = 0;
};

}  // namespace dampi::clocks
