// Shared helpers for tests: compact ways to run a program on N ranks.
#pragma once

#include <functional>

#include "mpism/engine.hpp"
#include "mpism/runtime.hpp"

namespace dampi::test {

using mpism::Proc;
using mpism::RunOptions;
using mpism::RunReport;
using mpism::Runtime;

/// Run `program` on `nprocs` ranks with default options.
inline RunReport run_program(int nprocs, const mpism::ProgramFn& program) {
  RunOptions opts;
  opts.nprocs = nprocs;
  Runtime runtime(opts);
  return runtime.run(program);
}

/// Run with explicit options.
inline RunReport run_program(RunOptions opts, const mpism::ProgramFn& program) {
  Runtime runtime(std::move(opts));
  return runtime.run(program);
}

}  // namespace dampi::test
