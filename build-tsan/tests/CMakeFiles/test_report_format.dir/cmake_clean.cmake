file(REMOVE_RECURSE
  "CMakeFiles/test_report_format.dir/test_report_format.cpp.o"
  "CMakeFiles/test_report_format.dir/test_report_format.cpp.o.d"
  "test_report_format"
  "test_report_format.pdb"
  "test_report_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
