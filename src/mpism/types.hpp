// Fundamental types of the mpism MPI runtime simulator.
//
// mpism is the stand-in for a real MPI library (MVAPICH2 in the paper): an
// in-process runtime with one thread per rank, an eager-send matching
// engine that honors MPI's non-overtaking rule, communicators, collectives
// with relaxed completion semantics, probes, and deadlock detection. The
// verifier layers (src/core, src/isp) sit on top of it through a
// PnMPI-style tool stack (tool.hpp) exactly as DAMPI sits on PnMPI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace dampi::mpism {

/// Process rank. All public Proc APIs take ranks *relative to the
/// communicator* passed alongside; the engine translates to world ranks.
using Rank = int;

/// Message tag. Non-negative in user code; negative values are reserved
/// for the wildcards below and for tool-internal traffic.
using Tag = int;

/// Communicator handle. kCommWorld is always valid.
using CommId = int;

inline constexpr Rank kAnySource = -1;  ///< MPI_ANY_SOURCE
inline constexpr Tag kAnyTag = -1;      ///< MPI_ANY_TAG
inline constexpr CommId kCommWorld = 0;
inline constexpr CommId kCommNull = -1;

/// Untyped message payload.
using Bytes = std::vector<std::byte>;

/// Pack a trivially copyable value into a payload.
template <typename T>
Bytes pack(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  Bytes out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

/// Pack a contiguous array of trivially copyable values.
template <typename T>
Bytes pack_range(const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  Bytes out(sizeof(T) * count);
  if (count != 0) std::memcpy(out.data(), data, out.size());
  return out;
}

template <typename T>
Bytes pack_vec(const std::vector<T>& v) {
  return pack_range(v.data(), v.size());
}

/// Unpack a single value; payload must be exactly sizeof(T).
template <typename T>
T unpack(const Bytes& payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  DAMPI_CHECK_MSG(payload.size() == sizeof(T), "payload size mismatch");
  T value;
  std::memcpy(&value, payload.data(), sizeof(T));
  return value;
}

/// Unpack an array; payload must be a multiple of sizeof(T).
template <typename T>
std::vector<T> unpack_vec(const Bytes& payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  DAMPI_CHECK_MSG(payload.size() % sizeof(T) == 0, "payload size mismatch");
  std::vector<T> out(payload.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), payload.data(), payload.size());
  return out;
}

/// Completion status of a receive or probe, mirroring MPI_Status.
/// `source` is relative to the communicator of the operation.
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::uint64_t bytes = 0;
  /// Per-(sender, receiver, communicator) send sequence number. Not part
  /// of MPI_Status; exposed so tool layers can pair piggyback messages
  /// with their payloads robustly (see piggyback/separate_message.cpp).
  std::uint64_t seq = 0;
  /// Globally unique message id (diagnostics and the telepathic transport).
  std::uint64_t msg_id = 0;
};

/// Request handle returned by nonblocking operations. Valid until waited
/// or tested-to-completion. Value 0 is never a live request.
using RequestId = std::uint64_t;
inline constexpr RequestId kNullRequest = 0;

/// Reduction operators for the typed collective helpers.
enum class ReduceOp { kSumU64, kMaxU64, kMinU64, kSumF64, kMaxF64, kMinF64 };

/// Collective operation kinds (also used for tool hooks and op stats).
enum class CollKind {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAllgather,
  kAlltoall,
  kCommDup,
  kCommSplit,
  kCommFree,
};

const char* coll_kind_name(CollKind kind);

/// Operation categories as reported in the paper's Table I.
enum class OpCategory { kSendRecv, kCollective, kWait, kOther };

/// Error found in the program under test (not a tool failure).
struct ErrorInfo {
  Rank rank = -1;
  std::string message;
};

}  // namespace dampi::mpism
