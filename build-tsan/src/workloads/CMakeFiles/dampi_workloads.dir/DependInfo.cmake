
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adlb.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/adlb.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/adlb.cpp.o.d"
  "/root/repo/src/workloads/cg_solver.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/cg_solver.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/cg_solver.cpp.o.d"
  "/root/repo/src/workloads/matmult.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/matmult.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/matmult.cpp.o.d"
  "/root/repo/src/workloads/parmetis_proxy.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/parmetis_proxy.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/parmetis_proxy.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/patterns.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/patterns.cpp.o.d"
  "/root/repo/src/workloads/skeleton.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/skeleton.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/skeleton.cpp.o.d"
  "/root/repo/src/workloads/suites.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/suites.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/suites.cpp.o.d"
  "/root/repo/src/workloads/wavefront.cpp" "src/workloads/CMakeFiles/dampi_workloads.dir/wavefront.cpp.o" "gcc" "src/workloads/CMakeFiles/dampi_workloads.dir/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mpism/CMakeFiles/mpism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/dampi_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/clocks/CMakeFiles/dampi_clocks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
