file(REMOVE_RECURSE
  "libdampi_isp.a"
)
