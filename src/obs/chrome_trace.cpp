#include "obs/chrome_trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "common/strutil.hpp"

namespace dampi::obs {
namespace {

void append_args(std::string& out, const KindInfo& info,
                 const TraceEvent& event) {
  const std::int64_t values[4] = {event.a, event.b, event.c,
                                  static_cast<std::int64_t>(event.d)};
  bool first = true;
  out += ",\"args\":{";
  for (int i = 0; i < 4; ++i) {
    if (info.args[i] == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += strfmt("\"%s\":%lld", info.args[i],
                  static_cast<long long>(values[i]));
  }
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<LaneSnapshot>& lanes) {
  std::string out = "[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"dampi\"}}";
  for (std::size_t tid = 0; tid < lanes.size(); ++tid) {
    const LaneSnapshot& lane = lanes[tid];
    out += strfmt(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                  tid + 1, lane.name.c_str());
    const std::uint64_t dropped =
        lane.emitted - static_cast<std::uint64_t>(lane.events.size());
    if (dropped > 0) {
      out += strfmt(",\n{\"name\":\"events dropped (ring wrapped)\","
                    "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%zu,"
                    "\"ts\":0.000,\"args\":{\"dropped\":%llu}}",
                    tid + 1, static_cast<unsigned long long>(dropped));
    }
    for (const TraceEvent& event : lane.events) {
      const KindInfo& info = kind_info(event.kind);
      const double ts_us = static_cast<double>(event.ts_ns) / 1000.0;
      const char* ph = event.phase == Phase::kBegin  ? "B"
                       : event.phase == Phase::kEnd  ? "E"
                                                     : "i";
      out += strfmt(",\n{\"name\":\"%s\",\"ph\":\"%s\"", info.name, ph);
      if (event.phase == Phase::kInstant) out += ",\"s\":\"t\"";
      out += strfmt(",\"pid\":1,\"tid\":%zu,\"ts\":%.3f", tid + 1, ts_us);
      append_args(out, info, event);
      out += "}";
    }
  }
  out += "\n]\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json(Tracer::instance().snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

// ---------------------------------------------------------------------------
// Validator: a minimal JSON reader, enough to check structure and the
// per-lane timestamp invariant without a third-party dependency.
// ---------------------------------------------------------------------------

namespace {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool fail(const std::string& message) {
    error_ = strfmt("offset %zu: %s", i_, message.c_str());
    return false;
  }
  const std::string& error() const { return error_; }

  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c) {
      return fail(strfmt("expected '%c'", c));
    }
    ++i_;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return i_ < s_.size() && s_[i_] == c;
  }
  bool at_end() {
    skip_ws();
    return i_ >= s_.size();
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return false;
    std::string value;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return fail("dangling escape");
      }
      value += s_[i_++];
    }
    if (i_ >= s_.size()) return fail("unterminated string");
    ++i_;  // closing quote
    if (out != nullptr) *out = std::move(value);
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    bool digits = false;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '-' || s_[i_] == '+')) {
      digits = true;
      ++i_;
    }
    if (!digits) return fail("expected number");
    if (out != nullptr) *out = std::atof(s_.substr(start, i_ - start).c_str());
    return true;
  }

  /// Parse any value; scalars of interest are returned via the outs.
  bool skip_value() {
    skip_ws();
    if (i_ >= s_.size()) return fail("unexpected end");
    const char c = s_[i_];
    if (c == '"') return parse_string(nullptr);
    if (c == '{') return skip_composite('{', '}');
    if (c == '[') return skip_composite('[', ']');
    if (s_.compare(i_, 4, "true") == 0) {
      i_ += 4;
      return true;
    }
    if (s_.compare(i_, 5, "false") == 0) {
      i_ += 5;
      return true;
    }
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return true;
    }
    return parse_number(nullptr);
  }

  bool skip_composite(char open, char close) {
    if (!eat(open)) return false;
    if (peek(close)) return eat(close);
    while (true) {
      if (open == '{') {
        if (!parse_string(nullptr)) return false;
        if (!eat(':')) return false;
      }
      if (!skip_value()) return false;
      if (peek(',')) {
        eat(',');
        continue;
      }
      return eat(close);
    }
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
  std::string error_;
};

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error,
                           std::size_t* lanes_out) {
  auto set_error = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  JsonReader r(json);
  if (!r.eat('[')) return set_error(r.error());

  std::map<double, double> last_ts_by_tid;
  std::size_t events = 0;
  if (!r.peek(']')) {
    while (true) {
      // One event object: a flat field scan, nested values skipped.
      if (!r.eat('{')) return set_error(r.error());
      std::optional<std::string> name, ph;
      std::optional<double> pid, tid, ts;
      if (!r.peek('}')) {
        while (true) {
          std::string key;
          if (!r.parse_string(&key)) return set_error(r.error());
          if (!r.eat(':')) return set_error(r.error());
          if (key == "name" || key == "ph") {
            std::string value;
            if (!r.parse_string(&value)) return set_error(r.error());
            (key == "name" ? name : ph) = std::move(value);
          } else if (key == "pid" || key == "tid" || key == "ts") {
            double value = 0.0;
            if (!r.parse_number(&value)) return set_error(r.error());
            (key == "pid" ? pid : key == "tid" ? tid : ts) = value;
          } else {
            if (!r.skip_value()) return set_error(r.error());
          }
          if (r.peek(',')) {
            r.eat(',');
            continue;
          }
          break;
        }
      }
      if (!r.eat('}')) return set_error(r.error());
      ++events;

      if (!name || !ph || !pid || !tid) {
        return set_error(
            strfmt("event %zu: missing name/ph/pid/tid", events));
      }
      if (*ph != "M") {
        if (!ts) return set_error(strfmt("event %zu: missing ts", events));
        auto [it, inserted] = last_ts_by_tid.try_emplace(*tid, *ts);
        if (!inserted) {
          if (*ts < it->second) {
            return set_error(strfmt(
                "event %zu: ts went backwards on tid %g (%f < %f)", events,
                *tid, *ts, it->second));
          }
          it->second = *ts;
        }
      }
      if (r.peek(',')) {
        r.eat(',');
        continue;
      }
      break;
    }
  }
  if (!r.eat(']')) return set_error(r.error());
  if (!r.at_end()) return set_error("trailing content after array");
  if (lanes_out != nullptr) *lanes_out = last_ts_by_tid.size();
  return true;
}

}  // namespace dampi::obs
