// Fault-sweep campaigns: inventory discovery, deterministic plan
// enumeration under a budget, per-plan verdict classification, the
// crash-safe journal, and the two acceptance contracts — report
// byte-identity at any worker count and kill-at-K + --resume
// reproducing the uninterrupted sweep without re-running finished
// plans.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpism/cancel.hpp"
#include "mpism/fault.hpp"
#include "support/verify_helpers.hpp"
#include "sweep/inventory.hpp"
#include "sweep/journal.hpp"
#include "sweep/sweep.hpp"
#include "sweep/types.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::BugRecord;
using core::ExploreResult;
using sweep::OpInventory;
using sweep::PlanRecord;
using sweep::SweepJournal;
using sweep::SweepKinds;
using sweep::SweepOptions;
using sweep::SweepResult;
using sweep::Verdict;

#define SKIP_WITHOUT_COOP()                                              \
  if (!mpism::coop_supported()) {                                        \
    GTEST_SKIP() << "coop fibers unsupported in this build (sanitizer)"; \
  }

mpism::SchedOptions sched_named(const char* spec) {
  mpism::SchedOptions sched;
  EXPECT_TRUE(mpism::parse_sched_spec(spec, &sched)) << spec;
  return sched;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "dampi_sweep_" + name;
}

/// Sweep options pinned to the deterministic coop scheduler with tiny
/// budgets — the fixtures here explore in milliseconds.
SweepOptions sweep_options(int nprocs, const char* program_name) {
  SweepOptions options;
  options.explorer = explorer_options(nprocs);
  options.explorer.sched = sched_named("coop");
  options.program_name = program_name;
  options.plan_max_interleavings = 16;
  options.plan_wall_seconds = 60.0;
  return options;
}

// --- Verdict / kinds vocabulary --------------------------------------------

TEST(SweepTypes, VerdictNamesRoundTrip) {
  for (int v = 0; v < 6; ++v) {
    const Verdict verdict = static_cast<Verdict>(v);
    Verdict parsed;
    ASSERT_TRUE(sweep::parse_verdict(sweep::verdict_name(verdict), &parsed))
        << sweep::verdict_name(verdict);
    EXPECT_EQ(parsed, verdict);
  }
  Verdict parsed;
  EXPECT_FALSE(sweep::parse_verdict("nonsense", &parsed));
}

TEST(SweepTypes, KindsParseAndFormatCanonically) {
  SweepKinds kinds;
  std::string error;
  ASSERT_TRUE(sweep::parse_sweep_kinds("all", &kinds, &error)) << error;
  EXPECT_EQ(sweep::sweep_kinds_spec(kinds), "abort,delay,error,flaky");

  // Spelling order does not matter; the canonical spec is fixed-order.
  ASSERT_TRUE(sweep::parse_sweep_kinds("flaky,abort", &kinds, &error)) << error;
  EXPECT_TRUE(kinds.abort_);
  EXPECT_FALSE(kinds.error_);
  EXPECT_FALSE(kinds.delay_);
  EXPECT_TRUE(kinds.flaky_);
  EXPECT_EQ(sweep::sweep_kinds_spec(kinds), "abort,flaky");

  EXPECT_FALSE(sweep::parse_sweep_kinds("abort,explode", &kinds, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(sweep::parse_sweep_kinds("", &kinds, &error));
}

// --- Inventory harvest -----------------------------------------------------

TEST(SweepInventory, HarvestIsDeterministicUnderCoop) {
  SKIP_WITHOUT_COOP();
  core::ExplorerOptions options = explorer_options(3);
  options.sched = sched_named("coop");
  const OpInventory a = sweep::harvest_inventory(options, workloads::fig3_benign);
  const OpInventory b = sweep::harvest_inventory(options, workloads::fig3_benign);
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(a.ops.size(), 3u);
  EXPECT_GT(a.total_ops(), 0u);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_FALSE(a.baseline_deadlocked);
  EXPECT_FALSE(a.baseline_errored);
  // Every harvested op is one of the five hook kinds, and every rank
  // made at least one call in this fixture.
  for (const std::string& rank_ops : a.ops) {
    EXPECT_FALSE(rank_ops.empty());
    for (const char kind : rank_ops) {
      EXPECT_NE(std::string("srwpc").find(kind), std::string::npos)
          << rank_ops;
    }
  }
}

TEST(SweepInventory, DeadlockedBaselineIsReportedNotFatal) {
  // A program that is already buggy fault-free still yields the ops
  // counted up to the stop — valid injection coordinates — with the
  // baseline verdict flagged so the sweep does not attribute the
  // deadlock to every plan.
  core::ExplorerOptions options = explorer_options(2);
  const OpInventory inv =
      sweep::harvest_inventory(options, workloads::simple_deadlock);
  ASSERT_TRUE(inv.error.empty()) << inv.error;
  EXPECT_TRUE(inv.baseline_deadlocked);
  EXPECT_GT(inv.total_ops(), 0u);
}

TEST(SweepInventory, FaultAndResilienceHooksAreStrippedFromTheHarvest) {
  // The harvest must be fault-free even when the base options carry a
  // plan (the CLI rejects that combination, but the library API must
  // not silently inject during discovery).
  core::ExplorerOptions options = explorer_options(3);
  std::string error;
  options.fault = mpism::parse_fault_plan("abort@0:1", &error);
  ASSERT_NE(options.fault, nullptr) << error;
  const OpInventory inv =
      sweep::harvest_inventory(options, workloads::fig3_benign);
  ASSERT_TRUE(inv.error.empty()) << inv.error;
  EXPECT_FALSE(inv.baseline_errored);
  EXPECT_EQ(options.fault->total_fires(), 0u);
}

// --- Plan enumeration ------------------------------------------------------

OpInventory small_inventory() {
  OpInventory inv;
  inv.ops = {"sw", "rrw", "s"};  // 2 + 3 + 1 = 6 coordinates
  return inv;
}

TEST(SweepEnumerate, ExhaustiveFamiliesAreOpMajorAndComplete) {
  SweepOptions options;
  options.budget = 1000;
  options.kinds = SweepKinds{true, true, false, false};  // abort + error
  std::uint64_t planned = 0;
  const auto specs = sweep::enumerate_plans(small_inventory(), options, &planned);
  // Every coordinate appears once per family.
  EXPECT_EQ(planned, 12u);
  EXPECT_EQ(specs.size(), 12u);
  // Op-major: all op-1 points (across the three ranks) precede any op-2
  // point, so a small budget probes every rank's early calls first.
  EXPECT_EQ(specs[0], "abort@0:1");
  EXPECT_EQ(specs[1], "error@0:1");
  EXPECT_EQ(specs[2], "abort@1:1");
  EXPECT_EQ(specs[3], "error@1:1");
  EXPECT_EQ(specs[4], "abort@2:1");
  EXPECT_EQ(specs[5], "error@2:1");
  EXPECT_EQ(specs[6], "abort@0:2");
  // Rank 1 is the only rank with a third op.
  EXPECT_EQ(specs[10], "abort@1:3");
  EXPECT_EQ(specs[11], "error@1:3");
}

TEST(SweepEnumerate, SameSeedSameSpecsDifferentSeedUsuallyDiffers) {
  SweepOptions options;
  options.budget = 1000;
  options.seed = 42;
  const auto a = sweep::enumerate_plans(small_inventory(), options, nullptr);
  const auto b = sweep::enumerate_plans(small_inventory(), options, nullptr);
  EXPECT_EQ(a, b);
  options.seed = 43;
  const auto c = sweep::enumerate_plans(small_inventory(), options, nullptr);
  EXPECT_NE(a, c);  // 8 delay + 8 flaky draws over 6 coordinates
}

TEST(SweepEnumerate, BudgetTruncatesAndReportsPlannedCount) {
  SweepOptions options;
  options.budget = 5;
  std::uint64_t planned = 0;
  const auto specs = sweep::enumerate_plans(small_inventory(), options, &planned);
  EXPECT_EQ(specs.size(), 5u);
  EXPECT_GT(planned, 5u);
}

TEST(SweepEnumerate, KindsFilterAndDedupHold) {
  SweepOptions options;
  options.budget = 1000;
  options.kinds = SweepKinds{false, false, true, true};  // delay + flaky
  options.delay_samples = 64;
  options.flaky_samples = 64;
  const auto specs = sweep::enumerate_plans(small_inventory(), options, nullptr);
  ASSERT_FALSE(specs.empty());
  std::set<std::string> coords;
  for (const std::string& spec : specs) {
    const bool delay = spec.rfind("delay@", 0) == 0;
    const bool flaky = spec.rfind("flaky@", 0) == 0;
    EXPECT_TRUE(delay || flaky) << spec;
    // Dedup is by (kind, rank, op) — the coordinate without the
    // parameter value.
    const std::string coord = spec.substr(0, spec.rfind(':'));
    EXPECT_TRUE(coords.insert(coord).second) << "duplicate point " << spec;
  }
  // 64 draws over 6 coordinates saturate both families.
  EXPECT_EQ(specs.size(), 12u);
}

TEST(SweepEnumerate, EverySpecIsParseable) {
  SweepOptions options;
  options.budget = 1000;
  const auto specs = sweep::enumerate_plans(small_inventory(), options, nullptr);
  for (const std::string& spec : specs) {
    std::string error;
    EXPECT_NE(mpism::parse_fault_plan(spec, &error), nullptr)
        << spec << ": " << error;
  }
}

// --- Verdict classification ------------------------------------------------

ExploreResult result_with(BugRecord::Kind kind, const char* message) {
  ExploreResult result;
  result.interleavings = 3;
  BugRecord bug;
  bug.kind = kind;
  if (message != nullptr) bug.errors.push_back({0, message});
  result.bugs.push_back(bug);
  return result;
}

TEST(SweepClassify, VerdictPriorityAndLatentErrorDetection) {
  // Deadlock outranks everything.
  ExploreResult mixed = result_with(BugRecord::Kind::kDeadlock, nullptr);
  mixed.bugs.push_back(
      result_with(BugRecord::Kind::kError, "fault injected: abort").bugs[0]);
  EXPECT_EQ(sweep::classify_campaign(0, "abort@0:1", mixed, 1).verdict,
            Verdict::kDeadlock);

  EXPECT_EQ(sweep::classify_campaign(
                0, "abort@0:1", result_with(BugRecord::Kind::kHang, nullptr), 1)
                .verdict,
            Verdict::kHang);

  // An error that IS the injection: propagated, no latent bug.
  const PlanRecord propagated = sweep::classify_campaign(
      1, "abort@0:1",
      result_with(BugRecord::Kind::kError, "fault injected: abort@0:1"), 1);
  EXPECT_EQ(propagated.verdict, Verdict::kErrorPropagated);
  EXPECT_TRUE(propagated.latent_error.empty());

  // An error that is NOT the injection: the latent bug travels.
  const PlanRecord latent = sweep::classify_campaign(
      2, "delay@1:2:100",
      result_with(BugRecord::Kind::kError, "assertion failed: sum mismatch"),
      1);
  EXPECT_EQ(latent.verdict, Verdict::kErrorPropagated);
  EXPECT_EQ(latent.latent_error, "assertion failed: sum mismatch");

  // No bugs + fires: masked. No bugs + no fires: clean.
  ExploreResult quiet;
  quiet.interleavings = 4;
  EXPECT_EQ(sweep::classify_campaign(3, "flaky@0:1:2", quiet, 2).verdict,
            Verdict::kMasked);
  EXPECT_EQ(sweep::classify_campaign(4, "abort@2:9", quiet, 0).verdict,
            Verdict::kClean);

  // Budget exhaustion marks the campaign partial.
  quiet.interleaving_budget_exhausted = true;
  EXPECT_TRUE(sweep::classify_campaign(5, "abort@0:1", quiet, 0).partial);
}

TEST(SweepRespawn, TransientSpawnFailuresAreRetriedWithBackoff) {
  int calls = 0;
  std::uint64_t respawns = 0;
  std::string error;
  const ExploreResult result = sweep::run_plan_with_respawn(
      [&calls]() -> ExploreResult {
        if (++calls < 3) throw std::runtime_error("spawn failed");
        ExploreResult ok;
        ok.interleavings = 7;
        return ok;
      },
      3, 0.1, &respawns, &error);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(respawns, 2u);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(result.interleavings, 7u);
}

TEST(SweepRespawn, ExhaustedRespawnsFillTheErrorInsteadOfThrowing) {
  std::uint64_t respawns = 0;
  std::string error;
  const ExploreResult result = sweep::run_plan_with_respawn(
      []() -> ExploreResult { throw std::runtime_error("always down"); }, 1,
      0.1, &respawns, &error);
  EXPECT_EQ(respawns, 1u);
  EXPECT_EQ(error, "always down");
  EXPECT_EQ(result.interleavings, 0u);
}

// --- Journal ---------------------------------------------------------------

SweepJournal sample_journal() {
  SweepJournal journal;
  journal.fingerprint = "fp sweep budget=4";
  PlanRecord a;
  a.index = 0;
  a.spec = "abort@0:1";
  a.verdict = Verdict::kErrorPropagated;
  a.interleavings = 3;
  a.fires = 1;
  a.bugs = 1;
  journal.records[0] = a;
  PlanRecord b;
  b.index = 2;
  b.spec = "delay@1:2:100";
  b.verdict = Verdict::kErrorPropagated;
  b.interleavings = 5;
  b.fires = 1;
  b.bugs = 2;
  b.partial = true;
  b.latent_error = "assertion failed:\nsum mismatch";
  journal.records[2] = b;
  return journal;
}

TEST(SweepJournalTest, SerializeParseRoundTrip) {
  const SweepJournal journal = sample_journal();
  std::string error;
  const auto parsed = sweep::parse_sweep_journal(
      sweep::serialize_sweep_journal(journal), journal.fingerprint, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->fingerprint, journal.fingerprint);
  ASSERT_EQ(parsed->records.size(), 2u);
  const PlanRecord& a = parsed->records.at(0);
  EXPECT_EQ(a.spec, "abort@0:1");
  EXPECT_EQ(a.verdict, Verdict::kErrorPropagated);
  EXPECT_EQ(a.interleavings, 3u);
  EXPECT_EQ(a.fires, 1u);
  EXPECT_EQ(a.bugs, 1u);
  EXPECT_FALSE(a.partial);
  EXPECT_TRUE(a.latent_error.empty());
  EXPECT_TRUE(a.from_journal);
  const PlanRecord& b = parsed->records.at(2);
  EXPECT_EQ(b.spec, "delay@1:2:100");
  EXPECT_TRUE(b.partial);
  EXPECT_EQ(b.latent_error, "assertion failed:\nsum mismatch");
}

TEST(SweepJournalTest, LoadRefusesCorruptOrForeignFiles) {
  const std::string good = sweep::serialize_sweep_journal(sample_journal());
  std::string error;

  // Fingerprint from a different sweep configuration.
  EXPECT_FALSE(
      sweep::parse_sweep_journal(good, "other fingerprint", &error).has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos) << error;

  // Not a sweep journal at all.
  EXPECT_FALSE(sweep::parse_sweep_journal("# some other file\nend\n", "", &error)
                   .has_value());

  // Truncated (missing `end` trailer).
  const std::string truncated = good.substr(0, good.size() - 4);
  EXPECT_FALSE(sweep::parse_sweep_journal(truncated, "", &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  // Duplicate plan index.
  std::string dup = good;
  const auto plan_at = dup.find("plan 0 ");
  ASSERT_NE(plan_at, std::string::npos);
  const auto line_end = dup.find('\n', plan_at);
  dup.insert(line_end + 1, dup.substr(plan_at, line_end + 1 - plan_at));
  EXPECT_FALSE(sweep::parse_sweep_journal(dup, "", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  // `latent` with no preceding plan line.
  EXPECT_FALSE(sweep::parse_sweep_journal(
                   std::string(sweep::kSweepJournalHeader) +
                       "\noptions fp\nlatent 0 boom\nend\n",
                   "", &error)
                   .has_value());
}

TEST(SweepJournalTest, SaveAndLoadThroughTheFilesystem) {
  const std::string path = temp_path("journal");
  std::remove(path.c_str());
  const SweepJournal journal = sample_journal();
  ASSERT_TRUE(sweep::save_sweep_journal(journal, path));
  std::string error;
  const auto loaded =
      sweep::load_sweep_journal(path, journal.fingerprint, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->records.size(), 2u);
  std::remove(path.c_str());
}

// --- Fingerprint -----------------------------------------------------------

TEST(SweepFingerprint, CoversPlanShapingKnobsAndIgnoresExecutionKnobs) {
  SweepOptions base = sweep_options(3, "fig3-benign");
  const std::string fp = sweep::sweep_fingerprint(base);

  SweepOptions changed = base;
  changed.budget = 7;
  EXPECT_NE(sweep::sweep_fingerprint(changed), fp);
  changed = base;
  changed.seed = 9;
  EXPECT_NE(sweep::sweep_fingerprint(changed), fp);
  changed = base;
  changed.kinds = SweepKinds{true, false, false, false};
  EXPECT_NE(sweep::sweep_fingerprint(changed), fp);
  changed = base;
  changed.plan_max_interleavings = 99;
  EXPECT_NE(sweep::sweep_fingerprint(changed), fp);
  changed = base;
  changed.program_name = "other";
  EXPECT_NE(sweep::sweep_fingerprint(changed), fp);

  // Worker count, journal knobs and respawn policy may change across a
  // resume without invalidating the journal.
  changed = base;
  changed.workers = 8;
  changed.journal_path = "/tmp/elsewhere";
  changed.resume = true;
  changed.max_plan_respawns = 9;
  changed.plan_wall_seconds = 1.0;
  EXPECT_EQ(sweep::sweep_fingerprint(changed), fp);
}

// --- Whole-sweep contracts -------------------------------------------------

TEST(Sweep, RejectsAPreInstalledFaultPlanAndBadResume) {
  SweepOptions options = sweep_options(3, "fig3-benign");
  std::string error;
  options.explorer.fault = mpism::parse_fault_plan("abort@0:1", &error);
  ASSERT_NE(options.explorer.fault, nullptr) << error;
  SweepResult result = sweep::run_sweep(options, workloads::fig3_benign);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(sweep::sweep_exit_code(result), 3);

  SweepOptions bad_resume = sweep_options(3, "fig3-benign");
  bad_resume.resume = true;  // no journal path
  result = sweep::run_sweep(bad_resume, workloads::fig3_benign);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(sweep::sweep_exit_code(result), 3);
}

TEST(Sweep, AbortPointsSurfaceAndDelayPointsAreMasked) {
  SKIP_WITHOUT_COOP();
  SweepOptions options = sweep_options(3, "fig3-benign");
  options.budget = 64;
  options.kinds = SweepKinds{true, false, true, false};  // abort + delay
  const SweepResult result = sweep::run_sweep(options, workloads::fig3_benign);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_FALSE(result.records.empty());
  EXPECT_EQ(result.executed, result.records.size());
  EXPECT_FALSE(result.interrupted);

  std::uint64_t aborts_surfaced = 0;
  for (const PlanRecord& record : result.records) {
    if (record.spec.rfind("abort@", 0) == 0) {
      // Killing an op either surfaces as an error or wedges the peers.
      EXPECT_TRUE(record.verdict == Verdict::kErrorPropagated ||
                  record.verdict == Verdict::kDeadlock)
          << record.spec << " -> " << sweep::verdict_name(record.verdict);
      EXPECT_GE(record.fires, 1u) << record.spec;
      ++aborts_surfaced;
    } else {
      // fig3-benign tolerates pure timing perturbation.
      EXPECT_EQ(record.verdict, Verdict::kMasked)
          << record.spec << " -> " << sweep::verdict_name(record.verdict);
    }
  }
  EXPECT_GT(aborts_surfaced, 0u);
  // Exit 1 is reserved for crash-tolerance BUGS (deadlock, hang, latent
  // error). A fault that merely propagates is the tolerant outcome, so
  // the code is 1 exactly when some peer wedged on the dead rank.
  bool any_deadlock = false;
  for (const PlanRecord& record : result.records) {
    any_deadlock = any_deadlock || record.verdict == Verdict::kDeadlock;
  }
  EXPECT_EQ(sweep::sweep_exit_code(result), any_deadlock ? 1 : 0);
}

TEST(Sweep, DeadlockVerdictsRaiseTheBugExitCode) {
  SKIP_WITHOUT_COOP();
  // The fixture deadlocks only under one wildcard outcome; campaigns
  // replay the full interleaving space, so the deadlock surfaces in the
  // matrix and the sweep exits 1 (crash-tolerance bug found).
  SweepOptions options = sweep_options(3, "wildcard-deadlock");
  options.budget = 8;
  options.kinds = SweepKinds{false, false, true, false};  // delay only
  options.delay_samples = 16;
  const SweepResult result =
      sweep::run_sweep(options, workloads::wildcard_dependent_deadlock);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_FALSE(result.records.empty());
  bool any_deadlock = false;
  for (const PlanRecord& record : result.records) {
    any_deadlock = any_deadlock || record.verdict == Verdict::kDeadlock;
  }
  EXPECT_TRUE(any_deadlock);
  EXPECT_EQ(sweep::sweep_exit_code(result), 1);
}

TEST(Sweep, FlakyPointsAreHealedByTheRetryPath) {
  SKIP_WITHOUT_COOP();
  SweepOptions options = sweep_options(3, "fig3-benign");
  options.kinds = SweepKinds{false, false, false, true};  // flaky only
  options.flaky_samples = 4;
  const SweepResult result = sweep::run_sweep(options, workloads::fig3_benign);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_FALSE(result.records.empty());
  for (const PlanRecord& record : result.records) {
    // The campaign is granted enough retries to burn the flaky cap, so
    // the fault fires and is then masked by the retry machinery.
    EXPECT_EQ(record.verdict, Verdict::kMasked)
        << record.spec << " -> " << sweep::verdict_name(record.verdict);
    EXPECT_GE(record.fires, 1u) << record.spec;
  }
  EXPECT_EQ(sweep::sweep_exit_code(result), 0);
}

TEST(Sweep, ReportIsByteIdenticalAtAnyWorkerCount) {
  SKIP_WITHOUT_COOP();
  SweepOptions options = sweep_options(3, "fig3-benign");
  options.budget = 24;
  options.seed = 7;
  const SweepResult one = sweep::run_sweep(options, workloads::fig3_benign);
  ASSERT_TRUE(one.error.empty()) << one.error;
  const std::string reference = sweep::format_sweep_report_json(options, one);
  EXPECT_NE(reference.find("\"plans\""), std::string::npos);

  for (const int workers : {2, 4}) {
    SweepOptions parallel = options;
    parallel.workers = workers;
    const SweepResult result =
        sweep::run_sweep(parallel, workloads::fig3_benign);
    ASSERT_TRUE(result.error.empty()) << result.error;
    EXPECT_EQ(sweep::format_sweep_report_json(parallel, result), reference)
        << "workers=" << workers;
  }
}

TEST(Sweep, KillAtKThenResumeReproducesTheUninterruptedReport) {
  SKIP_WITHOUT_COOP();
  const std::string journal_path = temp_path("kill_resume");
  std::remove(journal_path.c_str());

  SweepOptions options = sweep_options(3, "fig3-benign");
  options.budget = 12;
  options.seed = 3;

  // Reference: the uninterrupted sweep (no journal involved).
  const SweepResult reference = sweep::run_sweep(options, workloads::fig3_benign);
  ASSERT_TRUE(reference.error.empty()) << reference.error;
  const std::string reference_report =
      sweep::format_sweep_report_json(options, reference);
  ASSERT_GT(reference.records.size(), 3u);

  // Kill at K: cancel fires after the third completed plan, exactly as
  // the SIGINT bridge would.
  constexpr std::uint64_t kKill = 3;
  SweepOptions killed = options;
  killed.journal_path = journal_path;
  killed.cancel = std::make_shared<mpism::CancelSource>();
  std::uint64_t completed = 0;
  auto cancel = killed.cancel;
  killed.on_plan_done = [&completed, cancel](const PlanRecord&) {
    if (++completed == kKill) cancel->cancel("test kill");
  };
  const SweepResult interrupted =
      sweep::run_sweep(killed, workloads::fig3_benign);
  ASSERT_TRUE(interrupted.error.empty()) << interrupted.error;
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.records.size(), kKill);
  EXPECT_EQ(sweep::sweep_exit_code(interrupted), 2);

  // Resume: completed plans come from the journal (provably not
  // re-executed — the executed/resumed counters split exactly) and the
  // final report is byte-identical to the uninterrupted run.
  SweepOptions resumed = options;
  resumed.journal_path = journal_path;
  resumed.resume = true;
  resumed.workers = 2;  // resume may change execution knobs freely
  const SweepResult finished = sweep::run_sweep(resumed, workloads::fig3_benign);
  ASSERT_TRUE(finished.error.empty()) << finished.error;
  EXPECT_FALSE(finished.interrupted);
  EXPECT_EQ(finished.resumed, kKill);
  EXPECT_EQ(finished.executed, reference.records.size() - kKill);
  EXPECT_EQ(finished.records.size(), reference.records.size());
  EXPECT_EQ(sweep::format_sweep_report_json(resumed, finished),
            reference_report);

  // Resuming a finished sweep re-runs nothing at all.
  const SweepResult idempotent =
      sweep::run_sweep(resumed, workloads::fig3_benign);
  ASSERT_TRUE(idempotent.error.empty()) << idempotent.error;
  EXPECT_EQ(idempotent.executed, 0u);
  EXPECT_EQ(idempotent.resumed, reference.records.size());
  EXPECT_EQ(sweep::format_sweep_report_json(resumed, idempotent),
            reference_report);
  std::remove(journal_path.c_str());
}

TEST(Sweep, ResumeRefusesAJournalFromADifferentSweep) {
  SKIP_WITHOUT_COOP();
  const std::string journal_path = temp_path("foreign");
  std::remove(journal_path.c_str());

  SweepOptions options = sweep_options(3, "fig3-benign");
  options.budget = 4;
  options.journal_path = journal_path;
  const SweepResult first = sweep::run_sweep(options, workloads::fig3_benign);
  ASSERT_TRUE(first.error.empty()) << first.error;

  SweepOptions other = options;
  other.seed = 99;  // different enumeration → different fingerprint
  other.resume = true;
  const SweepResult refused = sweep::run_sweep(other, workloads::fig3_benign);
  EXPECT_FALSE(refused.error.empty());
  EXPECT_NE(refused.error.find("mismatch"), std::string::npos) << refused.error;
  EXPECT_EQ(sweep::sweep_exit_code(refused), 3);
  std::remove(journal_path.c_str());
}

TEST(Sweep, SummaryCarriesTheMatrixAndTheResumeAccounting) {
  SKIP_WITHOUT_COOP();
  SweepOptions options = sweep_options(3, "fig3-benign");
  options.budget = 8;
  const SweepResult result = sweep::run_sweep(options, workloads::fig3_benign);
  ASSERT_TRUE(result.error.empty()) << result.error;
  const std::string summary = sweep::format_sweep_summary(options, result);
  EXPECT_NE(summary.find("fault sweep: fig3-benign"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("plans: 8 completed"), std::string::npos) << summary;
  EXPECT_NE(summary.find("8 executed, 0 resumed"), std::string::npos)
      << summary;
  EXPECT_EQ(summary.find("INTERRUPTED"), std::string::npos) << summary;
}

}  // namespace
}  // namespace dampi::test
