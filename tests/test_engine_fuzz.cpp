// Engine fuzzer: seeded random operation soups, valid by construction
// (receives are posted before sends within each phase, so every matching
// completes even with synchronous sends), run at a spread of scales.
// Invariants checked per run: completion, exact message accounting, op
// statistics consistency, and zero leaks.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "support/run_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::OpCategory;
using mpism::pack;
using mpism::RequestId;

struct FuzzCase {
  std::uint64_t seed;
  int nprocs;
  int phases;
  int messages_per_phase;
};

struct FuzzMessage {
  int src;
  int dst;
  int tag;
  bool synchronous;
};

std::vector<std::vector<FuzzMessage>> build_script(const FuzzCase& c) {
  Rng rng(c.seed);
  std::vector<std::vector<FuzzMessage>> phases(
      static_cast<std::size_t>(c.phases));
  for (auto& phase : phases) {
    const int count = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(
                                  c.messages_per_phase)));
    for (int m = 0; m < count; ++m) {
      FuzzMessage msg;
      msg.src = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(c.nprocs)));
      do {
        msg.dst = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(c.nprocs)));
      } while (msg.dst == msg.src);
      msg.tag = static_cast<int>(rng.next_below(3));
      msg.synchronous = rng.next_bool(0.3);
      phase.push_back(msg);
    }
  }
  return phases;
}

void run_script(Proc& p, const std::vector<std::vector<FuzzMessage>>& script,
                std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef);
  int phase_index = 0;
  for (const auto& phase : script) {
    // 1. Post all incoming receives. The style is uniform per phase:
    // mixing named and wildcard receives could starve a named one (a
    // wildcard may steal its only message), which would be a bug in the
    // *generated program*, not the engine.
    const bool wildcard_phase = rng.next_bool(0.5);
    std::vector<RequestId> recvs;
    for (const FuzzMessage& m : phase) {
      if (m.dst != p.rank()) continue;
      recvs.push_back(
          p.irecv(wildcard_phase ? kAnySource : m.src, mpism::kAnyTag));
    }
    // 2. Fire all outgoing sends (mixed eager / synchronous).
    std::vector<RequestId> sends;
    for (const FuzzMessage& m : phase) {
      if (m.src != p.rank()) continue;
      sends.push_back(m.synchronous
                          ? p.issend(m.dst, m.tag, pack<int>(m.tag))
                          : p.isend(m.dst, m.tag, pack<int>(m.tag)));
    }
    // 3. Sprinkle harmless probes.
    if (rng.next_bool(0.5)) {
      p.iprobe(kAnySource, mpism::kAnyTag);
    }
    // 4. Complete everything; alternate completion styles.
    if (rng.next_bool(0.5)) {
      p.waitall(recvs);
    } else {
      while (!recvs.empty()) {
        if (p.testall(recvs)) break;
        // waitany consumes one; loop handles the rest.
        std::vector<RequestId> live;
        for (RequestId r : recvs) {
          if (r != mpism::kNullRequest) live.push_back(r);
        }
        recvs = std::move(live);
        if (recvs.empty()) break;
        p.waitany(recvs);
        std::erase(recvs, mpism::kNullRequest);
      }
    }
    p.waitall(sends);
    // 5. Phase boundary collective.
    if (phase_index % 2 == 0) {
      p.barrier();
    } else {
      p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
    }
    ++phase_index;
  }
}

class EngineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EngineFuzz, RandomOpSoupCompletesCleanly) {
  const FuzzCase& c = GetParam();
  const auto script = build_script(c);
  std::uint64_t expected_messages = 0;
  for (const auto& phase : script) expected_messages += phase.size();

  auto report = run_program(c.nprocs, [&script, &c](Proc& p) {
    run_script(p, script, c.seed + static_cast<std::uint64_t>(p.rank()));
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  ASSERT_TRUE(report.errors.empty())
      << (report.errors.empty() ? "" : report.errors[0].message);
  EXPECT_EQ(report.messages_sent, expected_messages);
  EXPECT_EQ(report.comm_leaks, 0);
  EXPECT_EQ(report.request_leaks, 0u);
  // Collectives: nprocs per phase boundary.
  EXPECT_EQ(report.stats.total(OpCategory::kCollective),
            static_cast<std::uint64_t>(c.nprocs) *
                static_cast<std::uint64_t>(c.phases));
  // Every message involved one isend and one irecv, plus probes.
  EXPECT_GE(report.stats.total(OpCategory::kSendRecv),
            2 * expected_messages);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 1000;
  for (int nprocs : {2, 3, 5, 8, 16, 48}) {
    for (int i = 0; i < 3; ++i) {
      cases.push_back(FuzzCase{seed++, nprocs, 4, 3 * nprocs});
    }
  }
  return cases;
}

std::string fuzz_name(const ::testing::TestParamInfo<FuzzCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_p" +
         std::to_string(info.param.nprocs);
}

INSTANTIATE_TEST_SUITE_P(Soups, EngineFuzz, ::testing::ValuesIn(fuzz_cases()),
                         fuzz_name);

}  // namespace
}  // namespace dampi::test
