// Rank-scaling: thread-per-rank vs cooperative fibers, 8..512 ranks.
//
// The coop scheduler's scaling claim: rank counts in the hundreds cost
// fiber stacks instead of OS threads, so a 512-rank verification runs on
// a single core at a usable rate while the thread engine pays OS
// spawn/context-switch overhead per rank per run. Measured here as
// native-engine runs/second of the wavefront workload (real wall clock —
// this bench is about tool cost, not simulated time) plus process peak
// RSS.
//
// ru_maxrss is monotone over the process lifetime, so cells run in
// ascending footprint order (coop first, then thread) and each cell also
// reports the *delta* it added to the peak — the honest per-cell number.
//
// Output: the table on stdout and BENCH_ranks.json (machine-readable,
// referenced by EXPERIMENTS.md).
#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "mpism/runtime.hpp"
#include "mpism/scheduler.hpp"
#include "workloads/wavefront.hpp"

using namespace dampi;

namespace {

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

struct Cell {
  std::string sched;
  int nprocs = 0;
  int runs = 0;
  double wall_seconds = 0.0;
  double runs_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  double rss_delta_mb = 0.0;
};

Cell measure(const mpism::SchedOptions& sched, int nprocs, int runs) {
  const double rss_before = peak_rss_mb();
  mpism::RunOptions options;
  options.nprocs = nprocs;
  options.sched = sched;
  const auto program = [](mpism::Proc& p) {
    workloads::WavefrontConfig config;
    config.sweeps = 1;
    workloads::wavefront(p, config);
  };
  bench::WallTimer timer;
  for (int i = 0; i < runs; ++i) {
    mpism::Runtime runtime(options);
    const auto report = runtime.run(program);
    if (!report.ok()) {
      std::printf("UNEXPECTED FAILURE (%s, %d ranks): %s\n",
                  mpism::sched_spec(sched).c_str(), nprocs,
                  report.deadlock_detail.c_str());
      std::exit(1);
    }
  }
  Cell cell;
  cell.sched = mpism::sched_spec(sched);
  cell.nprocs = nprocs;
  cell.runs = runs;
  cell.wall_seconds = timer.seconds();
  cell.runs_per_sec = runs / cell.wall_seconds;
  cell.peak_rss_mb = peak_rss_mb();
  cell.rss_delta_mb = cell.peak_rss_mb - rss_before;
  return cell;
}

bool write_json(const char* path, const std::vector<Cell>& cells) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"ranks\",\n  \"workload\": "
                  "\"wavefront sweeps=1\",\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"sched\": \"%s\", \"nprocs\": %d, \"runs\": %d, "
                 "\"wall_seconds\": %.6f, \"runs_per_sec\": %.3f, "
                 "\"peak_rss_mb\": %.1f, \"rss_delta_mb\": %.1f}%s\n",
                 c.sched.c_str(), c.nprocs, c.runs, c.wall_seconds,
                 c.runs_per_sec, c.peak_rss_mb, c.rss_delta_mb,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  bench::banner(
      "Rank scaling — thread-per-rank vs cooperative fibers (8..512 ranks)",
      "run-to-block fibers keep a 512-rank verification usable on one "
      "core; OS threads pay per-rank spawn and context-switch cost");

  if (!mpism::coop_supported()) {
    std::printf("coop fibers unsupported in this build (sanitizer); "
                "nothing to compare\n");
    return 0;
  }

  const std::vector<int> scales{8, 32, 128, 512};
  // Repetitions shrink with rank count so every cell takes comparable
  // wall time; quick mode quarters them.
  const auto reps_for = [](int nprocs) {
    const int reps = nprocs <= 8 ? 80 : nprocs <= 32 ? 40 : nprocs <= 128 ? 16 : 6;
    return bench::quick_mode() ? std::max(2, reps / 4) : reps;
  };

  mpism::SchedOptions coop;
  coop.kind = mpism::SchedulerKind::kCoop;
  mpism::SchedOptions thread;
  thread.kind = mpism::SchedulerKind::kThread;

  std::vector<Cell> cells;
  for (const auto* sched : {&coop, &thread}) {  // coop first: see header
    for (const int nprocs : scales) {
      cells.push_back(measure(*sched, nprocs, reps_for(nprocs)));
    }
  }

  TextTable table;
  table.header({"sched", "ranks", "runs", "runs/sec", "peak RSS (MB)",
                "RSS delta (MB)"});
  for (const Cell& c : cells) {
    table.row({c.sched, std::to_string(c.nprocs), std::to_string(c.runs),
               fmt_fixed(c.runs_per_sec, 1), fmt_fixed(c.peak_rss_mb, 1),
               fmt_fixed(c.rss_delta_mb, 1)});
  }
  std::printf("%s\n", table.str().c_str());

  if (write_json("BENCH_ranks.json", cells)) {
    std::printf("wrote BENCH_ranks.json\n");
  } else {
    std::printf("could not write BENCH_ranks.json\n");
    return 1;
  }
  std::printf("Shape check: coop runs/sec should degrade gently with rank "
              "count while thread runs/sec falls off sharply past ~128 "
              "ranks; coop RSS delta stays fiber-stack sized.\n");
  return 0;
}
