#include "core/replay_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strutil.hpp"
#include "core/decision_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dampi::core {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ReplayPool::ReplayPool(const ExplorerOptions& options,
                       const mpism::ProgramFn& program)
    : options_(options), program_(program) {
  const int workers = std::max(options.jobs, 1) - 1;
  stats_.jobs = std::max(options.jobs, 1);
  // Backlog cap: enough speculation to keep every worker busy across a
  // few consume/extend cycles without caching unbounded traces.
  backlog_cap_ = static_cast<std::size_t>(std::max(4 * workers, 8));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ReplayPool::~ReplayPool() { shutdown(); }

bool ReplayPool::speculate(const Schedule& schedule) {
  if (threads_.empty()) return false;
  std::string key = serialize_schedule(schedule);
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_) return false;
  if (entries_.count(key) != 0) return true;  // already on its way
  if (queue_.size() + done_unconsumed_ >= backlog_cap_) return false;
  Entry entry;
  entry.schedule = schedule;
  entries_.emplace(key, std::move(entry));
  queue_.push_back(std::move(key));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  cv_work_.notify_one();
  return true;
}

std::size_t ReplayPool::outstanding() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();  // queued + running + done-unconsumed
}

SingleRun ReplayPool::execute(const Schedule& schedule,
                              std::uint64_t interleaving, bool speculative) {
  std::size_t in_flight = 0;
  std::size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++in_flight_;
    stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
  }
  DAMPI_TEVENT(obs::EventKind::kRun, obs::Phase::kBegin,
               static_cast<std::int32_t>(speculative), 0, 0, interleaving);
  const double t0 = now_seconds();
  SingleRun run = run_guided_once(options_, schedule, program_);
  const double wall = now_seconds() - t0;
  DAMPI_TEVENT(obs::EventKind::kRun, obs::Phase::kEnd,
               static_cast<std::int32_t>(speculative), 0, 0, interleaving);
  static obs::Counter& worker_runs_metric =
      obs::Registry::instance().counter("pool.worker_runs");
  static obs::Counter& inline_runs_metric =
      obs::Registry::instance().counter("pool.inline_runs");
  static obs::FixedHistogram& wall_metric =
      obs::Registry::instance().histogram("pool.run_wall_seconds");
  (speculative ? worker_runs_metric : inline_runs_metric).add(1);
  wall_metric.add(wall);
  {
    std::lock_guard<std::mutex> lk(mu_);
    --in_flight_;
    in_flight = in_flight_;
    queue_depth = queue_.size();
    if (speculative) {
      ++stats_.worker_runs;
    } else {
      ++stats_.inline_runs;
    }
    stats_.run_wall_seconds.add(wall);
    stats_.run_vtime_us.add(run.report.vtime_us);
  }
  if (options_.run_stats) {
    RunStats rs;
    rs.interleaving = interleaving;
    rs.speculative = speculative;
    rs.completed = run.report.completed;
    rs.wall_seconds = wall;
    rs.vtime_us = run.report.vtime_us;
    rs.runs_in_flight = in_flight;
    rs.queue_depth = queue_depth;
    std::lock_guard<std::mutex> lk(callback_mu_);
    options_.run_stats(rs);
  }
  return run;
}

void ReplayPool::worker_main(int index) {
  DAMPI_TRACE_THREAD_LANE(strfmt("worker %d", index));
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_work_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // queued leftovers are dropped by shutdown()
    const std::string key = std::move(queue_.front());
    queue_.pop_front();
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;  // stolen by take()
    it->second.state = Entry::State::kRunning;
    const Schedule schedule = it->second.schedule;
    lk.unlock();
    SingleRun run = execute(schedule, /*interleaving=*/0,
                            /*speculative=*/true);
    lk.lock();
    // The entry may only have been erased by shutdown(); take() waits for
    // kDone before erasing a running entry.
    it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.outcome = std::move(run);
      it->second.state = Entry::State::kDone;
      ++done_unconsumed_;
      cv_done_.notify_all();
    }
  }
}

SingleRun ReplayPool::take(const Schedule& schedule,
                           std::uint64_t interleaving) {
  const std::string key = serialize_schedule(schedule);
  std::unique_lock<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.state == Entry::State::kQueued) {
    // Needed right now: steal it back from the queue and run it here
    // rather than waiting behind other speculations.
    queue_.erase(std::find(queue_.begin(), queue_.end(), key));
    entries_.erase(it);
    it = entries_.end();
  }
  if (it == entries_.end()) {
    lk.unlock();
    return execute(schedule, interleaving, /*speculative=*/false);
  }
  cv_done_.wait(lk, [&] { return it->second.state == Entry::State::kDone; });
  SingleRun out = std::move(it->second.outcome);
  entries_.erase(it);
  --done_unconsumed_;
  ++stats_.speculative_hits;
  static obs::Counter& hits_metric =
      obs::Registry::instance().counter("pool.speculative_hits");
  hits_metric.add(1);
  if (options_.run_stats) {
    // Re-announce the consumed run under its deterministic index so a
    // callback watching exploration order sees every interleaving once.
    std::size_t in_flight = in_flight_;
    std::size_t queue_depth = queue_.size();
    lk.unlock();
    RunStats rs;
    rs.interleaving = interleaving;
    rs.speculative = false;
    rs.completed = out.report.completed;
    rs.vtime_us = out.report.vtime_us;
    rs.runs_in_flight = in_flight;
    rs.queue_depth = queue_depth;
    std::lock_guard<std::mutex> cb(callback_mu_);
    options_.run_stats(rs);
  }
  return out;
}

void ReplayPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
    // Drop queued-but-unstarted work; running replays finish into the
    // cache and are counted as waste below.
    for (const std::string& key : queue_) entries_.erase(key);
    queue_.clear();
    cv_work_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  std::lock_guard<std::mutex> lk(mu_);
  if (done_unconsumed_ > 0) {
    static obs::Counter& waste_metric =
        obs::Registry::instance().counter("pool.speculative_waste");
    waste_metric.add(done_unconsumed_);
    for (std::size_t i = 0; i < done_unconsumed_; ++i) {
      DAMPI_TEVENT(obs::EventKind::kRunDiscard, obs::Phase::kInstant);
    }
  }
  stats_.speculative_waste += done_unconsumed_;
  done_unconsumed_ = 0;
  entries_.clear();
}

PoolStats ReplayPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace dampi::core
