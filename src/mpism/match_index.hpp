// Message-matching structures for the engine: the unexpected-message
// queue and the posted-receive queue behind one interface, with two
// implementations.
//
//  - LinearMatchIndex: the original deque walk. O(queue length) per
//    lookup; kept compiled in as the differential oracle (select with
//    DAMPI_MATCH=linear) because its correctness is self-evident.
//  - IndexedMatchIndex: per-source FIFO lanes hashed by (comm, tag,
//    src) plus (comm, src), so specific-receive lookup, removal by
//    msg_id, and posted-receive matching are O(1) amortized and
//    wildcard candidates are read off precomputed lane heads instead of
//    rescanning the queue. Lane nodes come from a slab pool
//    (allocation-free steady state). Shallow queues (< 32 entries,
//    separately for unexpected and posted) run the linear algorithms
//    unchanged — hashing costs more than a three-entry scan — and the
//    structure migrates to lanes permanently the first time a queue
//    crosses the threshold.
//
// Equivalence contract (what the differential fuzz asserts): both
// implementations must produce identical results for every query —
// same candidate vectors (sorted by source, earliest message per
// source), same find_specific winner, same earliest-posted receive from
// match_posted — because the engine's visible behaviour (wildcard
// nondeterminism included) is a function of exactly these answers.
//
// Key invariants the indexed structure leans on (engine holds one
// global mutex around all of this):
//  - Arrival order within one rank's unexpected queue == msg_id order:
//    msg_id assignment and queue insertion happen in the same critical
//    section, so lane heads can be compared by msg_id to find the
//    queue-order-earliest message.
//  - Per-source lanes are FIFO ⇒ each lane head is the oldest
//    compatible message from that source ⇒ the wildcard candidate set
//    is exactly the set of lane heads (MPI non-overtaking).
//  - A posted receive is compatible with an arrival iff it lives in one
//    of four lanes — (src,tag), (src,ANY), (ANY,tag), (ANY,ANY) — so
//    the earliest-posted compatible receive is the min-post-seq head of
//    those four.
//
// All methods assume the engine mutex is held. Not thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpism/envelope.hpp"
#include "mpism/policy.hpp"
#include "mpism/pool.hpp"
#include "mpism/request.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

enum class MatchKind { kLinear, kIndexed };

/// Parses "linear" / "indexed" into *out (untouched on failure).
bool parse_match_spec(const std::string& spec, MatchKind* out);
const char* match_spec(MatchKind kind);
/// Process default: indexed, unless DAMPI_MATCH says otherwise.
MatchKind default_match_kind();

/// One rank's matching state: queued unexpected messages (owned) and
/// pending posted receives (non-owning pointers into the engine's
/// request table; a record stays indexed until match_posted removes it).
class MatchIndex {
 public:
  virtual ~MatchIndex() = default;

  // --- unexpected-message queue ---------------------------------------
  virtual void push_unexpected(Envelope&& env) = 0;
  /// Earliest compatible message from a concrete source (tool traffic
  /// included). Pointer valid until the next mutation.
  virtual const Envelope* find_specific(Rank src_world, Tag tag,
                                        CommId comm) const = 0;
  /// The queued message with this id, or nullptr.
  virtual const Envelope* find_by_id(std::uint64_t msg_id) const = 0;
  /// True iff wildcard_candidates would be non-empty (cheaper).
  virtual bool has_candidates(Tag tag, CommId comm) const = 0;
  /// Per-source earliest compatible *user* message, sorted by source.
  /// Clears and fills `out` (caller-owned buffer, reused across calls).
  virtual void wildcard_candidates(Tag tag, CommId comm,
                                   std::vector<MatchCandidate>* out) const = 0;
  /// Removes and returns the message with this id (checks it exists).
  virtual Envelope take(std::uint64_t msg_id) = 0;

  // --- posted-receive queue -------------------------------------------
  virtual void post_recv(RequestRecord* rec) = 0;
  /// Removes and returns the earliest-posted receive compatible with
  /// `env`, or nullptr when none is.
  virtual RequestRecord* match_posted(const Envelope& env) = 0;

  /// Lane-node pool stats (zero for the linear matcher).
  virtual PoolStats pool_stats() const = 0;
};

std::unique_ptr<MatchIndex> make_match_index(MatchKind kind);

}  // namespace dampi::mpism
