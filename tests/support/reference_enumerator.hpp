// Brute-force reachability oracle for small programs.
//
// Enumerates every wildcard-match assignment by recursively forcing each
// discovered epoch to every conceivable source and running the program
// under the resulting schedule. An assignment is *valid* when the trace
// shows every forced epoch actually matched its forced source (invalid
// forcings starve the receive and show up as unmatched). The set of
// outcome signatures of valid runs is the ground truth that DAMPI's
// explorer is compared against: equality = completeness, subset =
// soundness.
//
// Exponential by construction — only for programs with a handful of
// epochs.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "support/verify_helpers.hpp"

namespace dampi::test {

/// Signature of one run: every epoch's (rank, nd_index, matched source),
/// sorted, plus whether the run deadlocked or errored. Two runs with the
/// same signature reached the same matching outcome.
struct OutcomeSignature {
  std::vector<std::tuple<int, std::uint64_t, int>> matches;
  bool deadlocked = false;
  bool errored = false;

  friend auto operator<=>(const OutcomeSignature&,
                          const OutcomeSignature&) = default;
};

inline OutcomeSignature signature_of(const core::RunTrace& trace,
                                     const mpism::RunReport& report) {
  OutcomeSignature sig;
  for (const auto& e : trace.epochs) {
    sig.matches.emplace_back(e.key.rank, e.key.nd_index, e.matched_src_world);
  }
  std::sort(sig.matches.begin(), sig.matches.end());
  sig.deadlocked = report.deadlocked;
  sig.errored = !report.errors.empty();
  return sig;
}

/// Outcomes DAMPI's explorer visits (completed runs and failed ones).
inline std::set<OutcomeSignature> explored_outcomes(
    const core::ExplorerOptions& options, const mpism::ProgramFn& program,
    core::ExploreResult* out = nullptr) {
  std::set<OutcomeSignature> outcomes;
  core::Explorer explorer(options);
  auto result = explorer.explore(
      program,
      [&outcomes](const core::RunTrace& trace, const mpism::RunReport& report,
                  const core::Schedule&) {
        outcomes.insert(signature_of(trace, report));
      });
  if (out != nullptr) *out = std::move(result);
  return outcomes;
}

class ReferenceEnumerator {
 public:
  ReferenceEnumerator(core::ExplorerOptions options, mpism::ProgramFn program)
      : options_(std::move(options)), program_(std::move(program)) {}

  /// All reachable outcomes (bounded by max_runs as a safety net).
  std::set<OutcomeSignature> enumerate(std::size_t max_runs = 4096) {
    max_runs_ = max_runs;
    runs_ = 0;
    outcomes_.clear();
    recurse(core::Schedule{});
    return outcomes_;
  }

  std::size_t runs() const { return runs_; }

 private:
  void recurse(const core::Schedule& schedule) {
    if (runs_ >= max_runs_) return;
    ++runs_;
    auto result = run_dampi_once(options_, schedule, program_);

    // Validate the forcing: every decision must have been honored.
    for (const auto& [key, src] : schedule.forced) {
      const auto* epoch =
          find_epoch(result.trace, key.rank, key.nd_index);
      if (epoch == nullptr || epoch->matched_src_world != src) {
        return;  // unreachable forcing; prune without recording
      }
    }

    outcomes_.insert(signature_of(result.trace, result.report));

    // Extend: first epoch (in trace order) without a decision, tried with
    // every other rank as source.
    const auto sorted = result.trace.sorted();
    for (const auto* epoch : sorted) {
      if (schedule.forced.count(epoch->key) != 0) continue;
      for (int src = 0; src < options_.nprocs; ++src) {
        if (src == epoch->key.rank) continue;
        core::Schedule extended = schedule;
        extended.forced[epoch->key] = src;
        recurse(extended);
      }
      break;  // only the first undecided epoch branches at this level
    }
  }

  core::ExplorerOptions options_;
  mpism::ProgramFn program_;
  std::size_t max_runs_ = 0;
  std::size_t runs_ = 0;
  std::set<OutcomeSignature> outcomes_;
};

}  // namespace dampi::test
