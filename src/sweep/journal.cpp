#include "sweep/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strutil.hpp"

namespace dampi::sweep {

namespace {

std::string rest_of_line(const std::string& line, std::size_t keyword_len) {
  if (line.size() <= keyword_len + 1) return "";
  return line.substr(keyword_len + 1);
}

}  // namespace

std::string serialize_sweep_journal(const SweepJournal& journal) {
  std::string out = kSweepJournalHeader;
  out += '\n';
  out += "options " + journal.fingerprint + '\n';
  for (const auto& [index, record] : journal.records) {
    out += strfmt("plan %llu %s %llu %llu %llu %d %s\n",
                  static_cast<unsigned long long>(record.index),
                  verdict_name(record.verdict),
                  static_cast<unsigned long long>(record.interleavings),
                  static_cast<unsigned long long>(record.fires),
                  static_cast<unsigned long long>(record.bugs),
                  record.partial ? 1 : 0, record.spec.c_str());
    if (!record.latent_error.empty()) {
      out += strfmt("latent %llu %s\n",
                    static_cast<unsigned long long>(record.index),
                    escape_line(record.latent_error).c_str());
    }
  }
  out += "end\n";
  return out;
}

std::optional<SweepJournal> parse_sweep_journal(
    const std::string& text, const std::string& expected_fingerprint,
    std::string* error) {
  auto fail = [error](std::string message) -> std::optional<SweepJournal> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  SweepJournal journal;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_options = false;
  bool saw_end = false;

  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (saw_end) {
      return fail(strfmt("line %d: content after 'end' trailer", line_no));
    }
    if (!saw_header) {
      if (line != kSweepJournalHeader) {
        return fail(
            strfmt("line %d: first non-blank line must be the '%s' header",
                   line_no, kSweepJournalHeader));
      }
      saw_header = true;
      continue;
    }
    if (line[0] == '#') continue;

    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;

    if (keyword == "options") {
      journal.fingerprint = rest_of_line(line, keyword.size());
      if (!expected_fingerprint.empty() &&
          journal.fingerprint != expected_fingerprint) {
        return fail(strfmt(
            "sweep fingerprint mismatch — journal was written by a "
            "different sweep configuration\n  journal: %s\n  current: %s",
            journal.fingerprint.c_str(), expected_fingerprint.c_str()));
      }
      saw_options = true;
    } else if (keyword == "plan") {
      PlanRecord record;
      std::string verdict;
      int partial = 0;
      if (!(ls >> record.index >> verdict >> record.interleavings >>
            record.fires >> record.bugs >> partial >> record.spec)) {
        return fail(strfmt("line %d: bad plan line", line_no));
      }
      if (!parse_verdict(verdict, &record.verdict)) {
        return fail(strfmt("line %d: unknown verdict '%s'", line_no,
                           verdict.c_str()));
      }
      record.partial = partial != 0;
      record.from_journal = true;
      if (!journal.records.emplace(record.index, std::move(record)).second) {
        return fail(strfmt("line %d: duplicate plan index", line_no));
      }
    } else if (keyword == "latent") {
      std::uint64_t index = 0;
      if (!(ls >> index)) {
        return fail(strfmt("line %d: bad latent line", line_no));
      }
      auto it = journal.records.find(index);
      if (it == journal.records.end()) {
        return fail(strfmt("line %d: latent line without its plan", line_no));
      }
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      it->second.latent_error = unescape_line(rest);
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      return fail(
          strfmt("line %d: unknown keyword '%s'", line_no, keyword.c_str()));
    }
  }
  if (!saw_header) {
    return fail(strfmt("missing '%s' header", kSweepJournalHeader));
  }
  if (!saw_options) {
    return fail("missing 'options' fingerprint line");
  }
  if (!saw_end) {
    return fail("truncated sweep journal (missing 'end' trailer)");
  }
  return journal;
}

bool save_sweep_journal(const SweepJournal& journal, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << serialize_sweep_journal(journal);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<SweepJournal> load_sweep_journal(
    const std::string& path, const std::string& expected_fingerprint,
    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_sweep_journal(buffer.str(), expected_fingerprint, error);
}

}  // namespace dampi::sweep
