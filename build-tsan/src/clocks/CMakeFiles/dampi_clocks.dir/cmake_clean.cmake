file(REMOVE_RECURSE
  "CMakeFiles/dampi_clocks.dir/vector_clock.cpp.o"
  "CMakeFiles/dampi_clocks.dir/vector_clock.cpp.o.d"
  "libdampi_clocks.a"
  "libdampi_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dampi_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
