#include "mpism/policy.hpp"

#include "common/check.hpp"

namespace dampi::mpism {

std::size_t LowestSourcePolicy::choose(const std::vector<MatchCandidate>& c) {
  DAMPI_CHECK(!c.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (c[i].src_world < c[best].src_world) best = i;
  }
  return best;
}

std::size_t FifoArrivalPolicy::choose(const std::vector<MatchCandidate>& c) {
  DAMPI_CHECK(!c.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (c[i].msg_id < c[best].msg_id) best = i;
  }
  return best;
}

std::size_t SeededRandomPolicy::choose(const std::vector<MatchCandidate>& c) {
  DAMPI_CHECK(!c.empty());
  return static_cast<std::size_t>(rng_.next_below(c.size()));
}

std::unique_ptr<MatchPolicy> make_policy(PolicyKind kind, std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLowestSource:
      return std::make_unique<LowestSourcePolicy>();
    case PolicyKind::kFifoArrival:
      return std::make_unique<FifoArrivalPolicy>();
    case PolicyKind::kSeededRandom:
      return std::make_unique<SeededRandomPolicy>(seed);
  }
  DAMPI_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace dampi::mpism
