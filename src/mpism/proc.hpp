// Proc: the per-rank MPI-like API that programs under verification use.
//
// The surface mirrors the MPI subset the paper's benchmarks exercise:
// nonblocking and blocking point-to-point with MPI_ANY_SOURCE /
// MPI_ANY_TAG, wait/test/waitall/waitany, probe/iprobe, the common
// collectives, communicator management, and MPI_Pcontrol. Blocking
// send/recv are composed from isend/irecv + wait so tool layers observe
// a uniform call stream (the paper's Algorithm 1 likewise presents only
// Irecv/Isend/Wait as the representative operations).
//
// Error-reporting contract: misuse (invalid ranks, mismatched
// collectives) and explicit failures (fail/require) surface as errors in
// the RunReport — they are findings about the program under test, not
// tool crashes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpism/types.hpp"

namespace dampi::mpism {

class Engine;

class Proc {
 public:
  Proc(Engine& engine, Rank world_rank)
      : engine_(&engine), world_rank_(world_rank) {}

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  /// World rank / world size.
  Rank rank() const { return world_rank_; }
  int size() const;

  /// Rank and size within a communicator.
  Rank comm_rank(CommId comm) const;
  int comm_size(CommId comm) const;

  // --- point-to-point -----------------------------------------------------
  RequestId isend(Rank dst, Tag tag, Bytes payload, CommId comm = kCommWorld);
  RequestId irecv(Rank src, Tag tag, CommId comm = kCommWorld);
  void send(Rank dst, Tag tag, Bytes payload, CommId comm = kCommWorld);
  Status recv(Rank src, Tag tag, Bytes* out = nullptr,
              CommId comm = kCommWorld);

  /// Synchronous (rendezvous) sends: the request completes only when a
  /// matching receive is posted — MPI_Ssend/MPI_Issend. Unlike the eager
  /// default, head-to-head ssends deadlock, which the detector reports.
  RequestId issend(Rank dst, Tag tag, Bytes payload, CommId comm = kCommWorld);
  void ssend(Rank dst, Tag tag, Bytes payload, CommId comm = kCommWorld);

  /// MPI_Sendrecv: concurrent send and receive (deadlock-safe pairing).
  Status sendrecv(Rank dst, Tag send_tag, Bytes payload, Rank src,
                  Tag recv_tag, Bytes* out = nullptr,
                  CommId comm = kCommWorld);

  /// Blocks until `req` completes; receives deposit their payload in
  /// *out when non-null.
  Status wait(RequestId req, Bytes* out = nullptr);
  /// Nonblocking completion check; on true the request is consumed.
  bool test(RequestId req, Status* status = nullptr, Bytes* out = nullptr);
  void waitall(std::span<RequestId> reqs);
  /// Blocks until one of `reqs` completes; returns its index and marks the
  /// handle null. Deterministic: the lowest ready index wins.
  std::size_t waitany(std::span<RequestId> reqs, Status* status = nullptr,
                      Bytes* out = nullptr);
  /// MPI_Testall: true iff every live request is complete, in which case
  /// all are consumed; otherwise nothing is consumed.
  bool testall(std::span<RequestId> reqs);
  /// MPI_Testany: consumes and returns the lowest complete index (the
  /// handle becomes null), or reqs.size() when none is ready.
  std::size_t testany(std::span<RequestId> reqs, Status* status = nullptr,
                      Bytes* out = nullptr);

  Status probe(Rank src, Tag tag, CommId comm = kCommWorld);
  bool iprobe(Rank src, Tag tag, Status* status = nullptr,
              CommId comm = kCommWorld);

  // --- collectives --------------------------------------------------------
  void barrier(CommId comm = kCommWorld);
  /// In-place broadcast: root's `*data` is delivered to every member.
  void bcast(Bytes* data, Rank root, CommId comm = kCommWorld);
  /// Element-wise reduction of equal-length u64/f64 arrays (ReduceOp picks
  /// the element type). Non-roots receive an empty vector.
  Bytes reduce(const Bytes& contribution, ReduceOp op, Rank root,
               CommId comm = kCommWorld);
  Bytes allreduce(const Bytes& contribution, ReduceOp op,
                  CommId comm = kCommWorld);
  /// Root receives every member's contribution ordered by comm rank.
  std::vector<Bytes> gather(const Bytes& contribution, Rank root,
                            CommId comm = kCommWorld);
  /// Root supplies one slice per member; each member receives its slice.
  Bytes scatter(std::vector<Bytes> slices_at_root, Rank root,
                CommId comm = kCommWorld);
  std::vector<Bytes> allgather(const Bytes& contribution,
                               CommId comm = kCommWorld);
  /// Member i's out[j] = member j's in[i].
  std::vector<Bytes> alltoall(std::vector<Bytes> in,
                              CommId comm = kCommWorld);

  // Typed conveniences over allreduce/reduce.
  std::uint64_t allreduce_u64(std::uint64_t value, ReduceOp op,
                              CommId comm = kCommWorld);
  double allreduce_f64(double value, ReduceOp op, CommId comm = kCommWorld);

  // --- communicator management --------------------------------------------
  CommId comm_dup(CommId comm = kCommWorld);
  /// Members with the same color form a new communicator, ordered by
  /// (key, world rank); every member receives the id of its color's comm.
  CommId comm_split(int color, int key, CommId comm = kCommWorld);
  void comm_free(CommId comm);

  // --- misc ----------------------------------------------------------------
  /// MPI_Pcontrol: forwarded to tool layers (DAMPI's loop-iteration
  /// abstraction brackets uninteresting loops with level 1 / 0).
  void pcontrol(int level, const std::string& what = {});

  /// Model `us` microseconds of local computation (virtual time only).
  void compute(double us);

  /// Report a bug in the program under test and abort the run.
  [[noreturn]] void fail(const std::string& message);
  /// fail() unless `condition` holds.
  void require(bool condition, const std::string& message);

 private:
  Engine* engine_;
  Rank world_rank_;
};

}  // namespace dampi::mpism
