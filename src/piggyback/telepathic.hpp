// Telepathic transport: clocks move through a shared table keyed by
// message id instead of through messages. Two uses:
//  - modelling ISP's centralized scheduler, which observes every send and
//    receive directly and therefore needs no piggyback protocol;
//  - a zero-interference oracle in tests (no extra traffic, no shadow
//    communicators) against which the real transports are validated.
#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "piggyback/transport.hpp"

namespace dampi::piggyback {

/// Run-wide shared clock table. Thread-safe. take() blocks until the
/// sender has deposited: a receiver can observe a message's completion
/// before the sender's post-injection hook has run (hooks execute outside
/// the engine lock), and the deposit always follows injection in the
/// sender's own call stack, so the wait is short and cannot deadlock.
class TelepathicBoard {
 public:
  void put(std::uint64_t msg_id, mpism::Bytes clock) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      clocks_[msg_id] = std::move(clock);
    }
    cv_.notify_all();
  }

  mpism::Bytes take(std::uint64_t msg_id) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return clocks_.count(msg_id) != 0; });
    auto it = clocks_.find(msg_id);
    mpism::Bytes clock = std::move(it->second);
    clocks_.erase(it);
    return clock;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, mpism::Bytes> clocks_;
};

class TelepathicTransport final : public Transport {
 public:
  explicit TelepathicTransport(std::shared_ptr<TelepathicBoard> board)
      : board_(std::move(board)) {}

  void on_post_send(mpism::ToolCtx&, const mpism::SendCall&,
                    const mpism::SendInfo& info,
                    const mpism::Bytes& clock) override {
    board_->put(info.msg_id, clock);
  }

  mpism::Bytes on_recv_complete(mpism::ToolCtx&,
                                mpism::ReqCompletion& c) override {
    return board_->take(c.msg_id);
  }

 private:
  std::shared_ptr<TelepathicBoard> board_;
};

}  // namespace dampi::piggyback
