// Result of executing one program run under the mpism runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpism/op_stats.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

struct RunReport {
  /// Every rank returned from the program without error.
  bool completed = false;
  /// The run ended with all live ranks blocked and no enabled transition.
  bool deadlocked = false;
  /// Errors raised by the program under test (Proc::fail, failed
  /// Proc::require, uncaught exceptions, MPI usage errors).
  std::vector<ErrorInfo> errors;
  /// Human-readable description of each blocked operation at deadlock.
  std::string deadlock_detail;

  /// The run exceeded one of its RunOptions budgets (wall deadline,
  /// vtime, or op count) — a watchdog verdict for a possible hang or
  /// livelock; the explorer reports it as a kHang bug.
  bool timed_out = false;
  /// The run was ended early by an external CancelSource (global wall
  /// budget, SIGINT); the run's outcome is unusable, not a bug.
  bool cancelled = false;
  /// Which budget or cancel reason ended the run; empty otherwise.
  std::string stop_reason;

  /// Simulated execution time: max over ranks of accumulated virtual
  /// microseconds at completion (or at abort).
  double vtime_us = 0.0;
  /// Host wall-clock seconds spent executing the run.
  double wall_seconds = 0.0;

  OpStats stats;

  /// Resource-leak accounting at finalize (paper Table II): user
  /// communicators never freed; requests never waited/tested to
  /// completion. Tool-internal resources are exempt.
  int comm_leaks = 0;
  std::uint64_t request_leaks = 0;

  /// User payload messages injected (excludes tool traffic).
  std::uint64_t messages_sent = 0;

  bool ok() const { return completed && errors.empty() && !deadlocked; }
};

}  // namespace dampi::mpism
