
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/isp/CMakeFiles/dampi_isp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/dampi_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/piggyback/CMakeFiles/dampi_piggyback.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/dampi_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mpism/CMakeFiles/mpism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/clocks/CMakeFiles/dampi_clocks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/dampi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
