// Microbenchmarks (google-benchmark): substrate costs underpinning the
// experiment harnesses — clock operations, runtime message round trips,
// wildcard matching, and instrumented vs native per-message wall cost.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>

#include "clocks/lamport.hpp"
#include "core/decision.hpp"
#include "clocks/vector_clock.hpp"
#include "core/dampi_layer.hpp"
#include "mpism/runtime.hpp"
#include "workloads/patterns.hpp"

namespace {

using namespace dampi;

void BM_LamportTickMerge(benchmark::State& state) {
  clocks::LamportClock clock;
  std::uint64_t remote = 0;
  for (auto _ : state) {
    clock.tick();
    clock.merge(remote += 3);
    benchmark::DoNotOptimize(clock.value());
  }
}
BENCHMARK(BM_LamportTickMerge);

void BM_VectorClockMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  clocks::VectorClock a(n, 0);
  clocks::VectorClock b(n, 1);
  for (auto _ : state) {
    b.tick();
    a.merge(b);
    benchmark::DoNotOptimize(a.components().data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_VectorClockMerge)->Arg(8)->Arg(64)->Arg(512)->Arg(1024);

void BM_VectorClockCompare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  clocks::VectorClock a(n, 0);
  clocks::VectorClock b(n, 1);
  a.tick();
  b.tick();
  for (auto _ : state) {
    benchmark::DoNotOptimize(clocks::VectorClock::compare(a, b));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(8)->Arg(64)->Arg(512);

/// The schedule-lookup hot path: every wildcard completion queries the
/// forced-decision map. Storage is a sorted flat vector (cache-dense
/// binary search); the std::map baseline is timed alongside to keep the
/// replacement honest.
void BM_ScheduleLookupFlat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::ForcedDecisions forced;
  for (int i = 0; i < n; ++i) {
    forced[core::EpochKey{i % 7, static_cast<std::uint64_t>(i)}] = i % 3;
  }
  core::Schedule schedule;
  schedule.forced = forced;
  int probe = 0;
  for (auto _ : state) {
    const core::EpochKey key{probe % 7, static_cast<std::uint64_t>(probe)};
    benchmark::DoNotOptimize(schedule.lookup(key));
    probe = (probe + 1) % (n + 1);  // n+1: one miss per cycle
  }
}
BENCHMARK(BM_ScheduleLookupFlat)->Arg(4)->Arg(32)->Arg(256);

void BM_ScheduleLookupMapBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::map<core::EpochKey, mpism::Rank> forced;
  for (int i = 0; i < n; ++i) {
    forced[core::EpochKey{i % 7, static_cast<std::uint64_t>(i)}] = i % 3;
  }
  int probe = 0;
  for (auto _ : state) {
    const core::EpochKey key{probe % 7, static_cast<std::uint64_t>(probe)};
    const auto it = forced.find(key);
    benchmark::DoNotOptimize(it == forced.end() ? mpism::kAnySource
                                                : it->second);
    probe = (probe + 1) % (n + 1);
  }
}
BENCHMARK(BM_ScheduleLookupMapBaseline)->Arg(4)->Arg(32)->Arg(256);

/// Wall cost of a full 2-rank run: thread spawn + N ping-pong rounds.
void BM_RuntimePingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpism::RunOptions options;
    options.nprocs = 2;
    mpism::Runtime runtime(std::move(options));
    const auto report = runtime.run([rounds](mpism::Proc& p) {
      for (int i = 0; i < rounds; ++i) {
        if (p.rank() == 0) {
          p.send(1, 1, mpism::pack<int>(i));
          p.recv(1, 2);
        } else {
          p.recv(0, 1);
          p.send(0, 2, mpism::pack<int>(i));
        }
      }
    });
    if (!report.completed) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_RuntimePingPong)->Arg(64)->Arg(1024);

/// Wildcard matching with a deep unexpected queue: the engine must find
/// per-source heads among q queued messages.
void BM_WildcardMatchDepth(benchmark::State& state) {
  const int queued = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpism::RunOptions options;
    options.nprocs = 4;
    mpism::Runtime runtime(std::move(options));
    const auto report = runtime.run([queued](mpism::Proc& p) {
      if (p.rank() == 0) {
        p.barrier();
        for (int i = 0; i < 3 * queued; ++i) {
          p.recv(mpism::kAnySource, 7);
        }
      } else {
        for (int i = 0; i < queued; ++i) {
          p.send(0, 7, mpism::pack<int>(i));
        }
        p.barrier();
      }
    });
    if (!report.completed) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations() * 3 * queued);
}
BENCHMARK(BM_WildcardMatchDepth)->Arg(16)->Arg(128);

/// Native vs DAMPI-instrumented wall cost of the same small program.
void BM_InstrumentationWallOverhead(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  for (auto _ : state) {
    if (instrumented) {
      core::ExplorerOptions options;
      options.nprocs = 3;
      auto sink = std::make_shared<core::TraceSink>();
      auto shared = std::make_shared<core::DampiShared>(options,
                                                        core::Schedule{},
                                                        sink);
      mpism::RunOptions run_options;
      run_options.nprocs = 3;
      run_options.tools = core::make_dampi_setup(shared, nullptr);
      mpism::Runtime runtime(std::move(run_options));
      benchmark::DoNotOptimize(runtime.run(workloads::fig3_benign));
    } else {
      mpism::RunOptions run_options;
      run_options.nprocs = 3;
      mpism::Runtime runtime(std::move(run_options));
      benchmark::DoNotOptimize(runtime.run(workloads::fig3_benign));
    }
  }
}
BENCHMARK(BM_InstrumentationWallOverhead)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"instrumented"});

/// Arms every per-run watchdog budget far above what the run uses, so
/// the measured delta is pure bookkeeping: one branch + counter + clock
/// read per op entry (engine mutex already held).
void arm_generous_watchdogs(mpism::RunOptions& options) {
  options.max_run_wall_seconds = 3600.0;
  options.max_run_vtime_us = 1e15;
  options.max_ops = 1ull << 60;
}

/// Watchdog cost on the hot 2-rank path: identical ping-pong runs with
/// budgets unarmed (0) vs armed (1). EXPERIMENTS.md records the delta.
void BM_WatchdogOverheadPingPong(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  const int rounds = 1024;
  for (auto _ : state) {
    mpism::RunOptions options;
    options.nprocs = 2;
    if (armed) arm_generous_watchdogs(options);
    mpism::Runtime runtime(std::move(options));
    const auto report = runtime.run([](mpism::Proc& p) {
      for (int i = 0; i < rounds; ++i) {
        if (p.rank() == 0) {
          p.send(1, 1, mpism::pack<int>(i));
          p.recv(1, 2);
        } else {
          p.recv(0, 1);
          p.send(0, 2, mpism::pack<int>(i));
        }
      }
    });
    if (!report.completed) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_WatchdogOverheadPingPong)->Arg(0)->Arg(1)->ArgNames({"armed"});

/// Watchdog cost at scale: a 256-rank coop-fiber fan-in, unarmed vs
/// armed (falls back to the thread scheduler under sanitizers).
void BM_WatchdogOverheadRanks256(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  for (auto _ : state) {
    mpism::RunOptions options;
    options.nprocs = 256;
    mpism::parse_sched_spec("coop", &options.sched);
    if (armed) arm_generous_watchdogs(options);
    mpism::Runtime runtime(std::move(options));
    const auto report = runtime.run(
        [](mpism::Proc& p) { workloads::fan_in_rounds(p, 1); });
    if (!report.completed) state.SkipWithError("run failed");
  }
}
BENCHMARK(BM_WatchdogOverheadRanks256)->Arg(0)->Arg(1)->ArgNames({"armed"});

}  // namespace

BENCHMARK_MAIN();
