// Piggyback transports: how a sender's clock travels with each message.
//
// The paper (§II-D, citing Schulz/Bronevetsky/de Supinski) weighs three
// mechanisms — payload packing, datatype packing, separate messages — and
// picks separate messages for DAMPI. This library implements the chosen
// mechanism plus the payload-packing alternative (for the overhead
// ablation) and a "telepathic" transport that moves clocks through shared
// memory without any messages: the latter models ISP's centralized
// scheduler, which has a global view and needs no piggybacking, and is
// also handy as a test oracle.
//
// A transport is owned and driven by the DAMPI tool layer; it is not a
// ToolLayer itself. One instance per rank per run.
#pragma once

#include <memory>

#include "mpism/tool.hpp"
#include "mpism/types.hpp"

namespace dampi::piggyback {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Called once per rank before the program starts (collective-safe:
  /// every rank calls it in the same order).
  virtual void on_init(mpism::ToolCtx&) {}

  /// Called before the payload send is injected. `clock` is the sender's
  /// current clock, serialized. May rewrite the call's payload.
  virtual void on_pre_send(mpism::ToolCtx&, mpism::SendCall&,
                           const mpism::Bytes& /*clock*/) {}

  /// Called after the payload send was injected (its sequence number is
  /// known here).
  virtual void on_post_send(mpism::ToolCtx&, const mpism::SendCall&,
                            const mpism::SendInfo&,
                            const mpism::Bytes& /*clock*/) {}

  /// Called when a receive completes; returns the sender's clock for this
  /// message. May rewrite the completion's payload/status (the packed
  /// mechanism strips its prefix here). For a wildcard receive this runs
  /// only once the source is known — the paper's deferred-posting rule
  /// that avoids tool-induced deadlock falls out of this placement.
  virtual mpism::Bytes on_recv_complete(mpism::ToolCtx&,
                                        mpism::ReqCompletion&) = 0;

  /// Called when the program created a communicator (dup/split product),
  /// in collective order across its members; transports that keep shadow
  /// communicators mirror it here.
  virtual void on_new_comm(mpism::ToolCtx&, mpism::CommId) {}
};

enum class TransportKind { kSeparateMessage, kPackedPayload, kTelepathic };

/// Shared cross-rank state for the telepathic transport (one per run).
class TelepathicBoard;

struct TransportFactoryState {
  std::shared_ptr<TelepathicBoard> board;  ///< only for kTelepathic
};

/// Create one rank's transport. For kTelepathic, `state.board` must be a
/// run-wide shared board.
std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const TransportFactoryState& state);

}  // namespace dampi::piggyback
