// Numerical mini-kernels: the distributed CG solver and the wavefront
// sweep — real math whose end-to-end checks hold under instrumentation
// and across every explored matching order.
#include <gtest/gtest.h>

#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/cg_solver.hpp"
#include "workloads/wavefront.hpp"

namespace dampi::test {
namespace {

using workloads::CgConfig;
using workloads::WavefrontConfig;

class CgScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(CgScaleTest, ConvergesAtEveryDecomposition) {
  CgConfig config;
  config.grid_n = 16;
  auto report = run_program(GetParam(), [config](Proc& p) {
    workloads::cg_solver(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty())
      << (report.errors.empty() ? "" : report.errors[0].message);
}

INSTANTIATE_TEST_SUITE_P(Decompositions, CgScaleTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(Cg, ConvergesUnderInstrumentation) {
  CgConfig config;
  config.grid_n = 12;
  core::ExplorerOptions options = explorer_options(4);
  auto result = run_dampi_once(options, {}, [config](Proc& p) {
    workloads::cg_solver(p, config);
  });
  ASSERT_TRUE(result.report.completed);
  EXPECT_TRUE(result.report.errors.empty());
  // Fully deterministic: sendrecv + allreduce only.
  EXPECT_EQ(result.trace.wildcard_recv_epochs, 0u);
}

TEST(Cg, SingleInterleaving) {
  CgConfig config;
  config.grid_n = 8;
  core::ExplorerOptions options = explorer_options(3);
  core::Explorer explorer(options);
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::cg_solver(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.interleavings, 1u);
}

TEST(Wavefront, GridFactorization) {
  EXPECT_EQ(workloads::wavefront_grid(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(workloads::wavefront_grid(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(workloads::wavefront_grid(6), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(workloads::wavefront_grid(7), (std::pair<int, int>{1, 7}));
  EXPECT_EQ(workloads::wavefront_grid(12), (std::pair<int, int>{3, 4}));
}

TEST(Wavefront, ExpectedCornerRecurrence) {
  EXPECT_DOUBLE_EQ(workloads::wavefront_expected_corner(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(workloads::wavefront_expected_corner(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(workloads::wavefront_expected_corner(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(workloads::wavefront_expected_corner(2, 2),
                   1.0 * 2.0 + 2.0 * 1.0);
}

class WavefrontScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontScaleTest, CornerChecksAtEveryGrid) {
  WavefrontConfig config;
  auto report = run_program(GetParam(), [config](Proc& p) {
    workloads::wavefront(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty())
      << (report.errors.empty() ? "" : report.errors[0].message);
}

INSTANTIATE_TEST_SUITE_P(Grids, WavefrontScaleTest,
                         ::testing::Values(1, 2, 4, 6, 9, 12, 16));

// The headline property: with a commutative-by-source combine, every
// matching order DAMPI forces yields the correct checksum — exploration
// *proves* match-order independence. Vector clocks are required: the
// upstream ranks' own wildcard epochs tick their clocks before they
// send, so the competing inputs carry Lamport clocks equal to the
// downstream epoch's — the paper's §II-F imprecision arises naturally in
// wavefront codes, not just in the constructed Fig. 4.
TEST(Wavefront, CorrectUnderEveryMatchingOrder) {
  WavefrontConfig config;
  config.sweeps = 1;
  core::ExplorerOptions options = explorer_options(4);
  options.clock_mode = core::ClockMode::kVector;
  options.max_interleavings = 256;
  core::Explorer explorer(options);
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::wavefront(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_GT(result.interleavings, 1u);  // there genuinely were choices
  EXPECT_GT(result.wildcard_recv_epochs, 0u);
}

// Lamport mode under-covers here (documented §II-F behaviour, asserted
// so a future "fix" that silently changes it gets noticed).
TEST(Wavefront, LamportModeMissesWavefrontAlternatives) {
  WavefrontConfig config;
  config.sweeps = 1;
  core::ExplorerOptions options = explorer_options(4);
  options.max_interleavings = 256;
  core::Explorer explorer(options);
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::wavefront(p, config); });
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.interleavings, 1u);
}

// And with the arrival-order bug, some forced matching violates the
// checksum — found by replay (vector mode), invisible to the biased
// native run.
TEST(Wavefront, ArrivalOrderBugExposedByExploration) {
  WavefrontConfig config;
  config.sweeps = 1;
  config.inject_order_bug = true;
  core::ExplorerOptions options = explorer_options(4);
  options.clock_mode = core::ClockMode::kVector;
  options.max_interleavings = 256;
  core::Explorer explorer(options);
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::wavefront(p, config); });
  EXPECT_TRUE(result.found_bug());
}

TEST(Wavefront, MultipleSweepsPipeline) {
  WavefrontConfig config;
  config.sweeps = 5;
  auto report = run_program(9, [config](Proc& p) {
    workloads::wavefront(p, config);
  });
  ASSERT_TRUE(report.completed) << report.deadlock_detail;
  EXPECT_TRUE(report.errors.empty());
}

}  // namespace
}  // namespace dampi::test
