// Regression tests for concurrency bugs found and fixed during
// development. Each of these was originally a sub-1% flake, so every
// test hammers its scenario in a loop.
#include <gtest/gtest.h>

#include "isp/isp_verifier.hpp"
#include "support/reference_enumerator.hpp"
#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::pack;
using mpism::unpack;

// Regression: the deadlock detector once declared a deadlock when the
// last runner finished while another rank was satisfied but not yet
// woken (its request had completed but the thread had not re-acquired
// the lock). The fix re-evaluates every blocked rank's wake predicate at
// declaration time.
TEST(Regression, NoFalseDeadlockOnSatisfiedButUnwokenRank) {
  for (int i = 0; i < 300; ++i) {
    auto report = run_program(2, [](Proc& p) {
      const int other = 1 - p.rank();
      p.send(other, 1, pack<int>(p.rank()));
      Bytes data;
      p.recv(other, 1, &data);
      EXPECT_EQ(unpack<int>(data), other);
    });
    ASSERT_TRUE(report.ok()) << "iteration " << i << ": "
                             << report.deadlock_detail;
  }
}

// Regression: the telepathic transport once raced — a receiver could
// complete and look up the sender's clock before the sender's
// post-injection hook deposited it, silently losing the potential match
// (ISP then missed the wildcard-dependent deadlock ~1 run in 50). The
// fix blocks take() until the deposit.
TEST(Regression, TelepathicTransportNeverLosesClocks) {
  for (int i = 0; i < 120; ++i) {
    isp::IspOptions options;
    options.explorer.nprocs = 3;
    options.measure_native = false;
    isp::IspVerifier verifier(options);
    const auto result = verifier.verify(workloads::wildcard_dependent_deadlock);
    ASSERT_TRUE(result.deadlock_found) << "iteration " << i;
  }
}

// Regression: alternatives discovered for a prefix epoch in later runs
// were once dropped, so when the initial self-run happened to take the
// "other" outcome first, part of the reachable space became unreachable.
// The fix merges newly revealed prefix alternatives (unbounded mode).
TEST(Regression, PrefixAlternativesMergedAcrossRuns) {
  // fig4 under vector clocks must reach all three outcomes from *either*
  // initial outcome; repeat to cover both initial timings.
  for (int i = 0; i < 60; ++i) {
    core::ExplorerOptions options = explorer_options(4);
    options.clock_mode = core::ClockMode::kVector;
    std::set<OutcomeSignature> seen;
    core::Explorer explorer(options);
    explorer.explore(workloads::fig4_cross_coupled,
                     [&seen](const core::RunTrace& trace,
                             const mpism::RunReport& report,
                             const core::Schedule&) {
                       seen.insert(signature_of(trace, report));
                     });
    ASSERT_EQ(seen.size(), 3u) << "iteration " << i;
  }
}

// Regression: an unreceived competitor's piggyback never impinged, so
// fig3's bug escaped whenever the benign match came first. The
// finalize-time drain (barrier + probe/receive leftovers) feeds the
// analysis.
TEST(Regression, UnreceivedCompetitorAlwaysAnalyzed) {
  for (int i = 0; i < 120; ++i) {
    core::ExplorerOptions options = explorer_options(3);
    core::Explorer explorer(options);
    const auto result = explorer.explore(workloads::fig3_wildcard_bug);
    ASSERT_TRUE(result.found_bug()) << "iteration " << i;
  }
}

// Regression: a deterministic program must always be exactly one
// interleaving, whatever the thread timing (checks that raw tool traffic
// and the finalize barrier never masquerade as ND events).
TEST(Regression, DeterministicProgramsStayDeterministic) {
  for (int i = 0; i < 100; ++i) {
    core::ExplorerOptions options = explorer_options(4);
    core::Explorer explorer(options);
    const auto result = explorer.explore([](Proc& p) {
      const int next = (p.rank() + 1) % p.size();
      const int prev = (p.rank() + p.size() - 1) % p.size();
      mpism::RequestId r = p.irecv(prev, 1);
      p.send(next, 1, pack<int>(p.rank()));
      p.wait(r);
      p.barrier();
    });
    ASSERT_EQ(result.interleavings, 1u) << "iteration " << i;
    ASSERT_FALSE(result.found_bug());
  }
}

}  // namespace
}  // namespace dampi::test
