#include "mpism/types.hpp"

namespace dampi::mpism {

const char* coll_kind_name(CollKind kind) {
  switch (kind) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kBcast: return "bcast";
    case CollKind::kReduce: return "reduce";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kGather: return "gather";
    case CollKind::kScatter: return "scatter";
    case CollKind::kAllgather: return "allgather";
    case CollKind::kAlltoall: return "alltoall";
    case CollKind::kCommDup: return "comm_dup";
    case CollKind::kCommSplit: return "comm_split";
    case CollKind::kCommFree: return "comm_free";
  }
  return "?";
}

}  // namespace dampi::mpism
