// Deterministic fault injection for robustness campaigns.
//
// A FaultPlan names injection points by (rank, op_index) — the op index
// is a 1-based count of the rank's MPI calls as they cross the tool
// stack, which is a deterministic coordinate under guided replay. Four
// actions exist:
//
//   abort@R:OP      rank R's OP-th MPI call throws (rank crash)
//   error@R:OP      rank R's OP-th MPI call returns an MPI error
//   delay@R:OP:US   rank R's OP-th MPI call costs an extra US virtual us
//   flaky@R:OP:N    like abort, but only the first N times the point is
//                   reached across the whole campaign — the
//                   "transient fault" the explorer's retry path exists
//                   for (deterministic at --jobs 1; wider pools race the
//                   shared fire counter)
//
// One FaultPlan instance is shared by every run of an exploration, so
// flaky fire-counters span the campaign, and its canonical spec string
// is folded into checkpoint fingerprints. Plans are canonicalized at
// parse time — points sorted by (rank, op, kind), duplicate
// (rank, op, kind) points rejected — so two spellings of the same plan
// produce identical fingerprints and sweep-journal dedup keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpism/tool.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

/// Thrown by FaultLayer when an abort/error/flaky point fires; the
/// engine records it as a program error prefixed "fault injected:".
struct FaultInjected : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FaultPoint {
  enum class Kind { kAbort, kError, kDelay, kFlaky };
  Kind kind = Kind::kAbort;
  Rank rank = 0;
  std::uint64_t op_index = 1;  ///< 1-based MPI-call count on `rank`
  double delay_us = 0.0;       ///< kDelay only
  std::uint64_t max_fires = 0; ///< kFlaky only: campaign-wide fire cap
};

/// A parsed fault campaign plus its shared fire counters.
class FaultPlan {
 public:
  explicit FaultPlan(std::vector<FaultPoint> points);

  const std::vector<FaultPoint>& points() const { return points_; }

  /// True when point `i` should fire now; counts the fire. Thread-safe
  /// (replay-pool workers share the plan).
  bool should_fire(std::size_t i);

  /// How many times point `i` has fired so far.
  std::uint64_t fires(std::size_t i) const;
  std::uint64_t total_fires() const;

  /// Per-point fire counters in point order (same clamping as fires()).
  std::vector<std::uint64_t> fire_counts() const;

  /// Restore fire counters from a checkpoint: each counter becomes
  /// max(current, seed[i]) — monotone, so seeding never re-arms a flaky
  /// point this process already exhausted. Sizes must match; a mismatch
  /// is ignored (the seed came from a different plan). This is what
  /// carries flaky accounting across --resume and into distributed
  /// workers (shards embed the discovery-time counters).
  void seed_fires(const std::vector<std::uint64_t>& seed);

 private:
  std::vector<FaultPoint> points_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> fired_;
};

/// Parse a comma-separated fault spec (grammar above). Points are
/// canonicalized — sorted by (rank, op, kind) — and duplicate
/// (rank, op, kind) points are rejected. Returns nullptr and fills
/// `*error` on malformed input.
std::shared_ptr<FaultPlan> parse_fault_plan(const std::string& spec,
                                            std::string* error);

/// Canonical spec of one point (e.g. "delay@2:5:1500").
std::string fault_point_spec(const FaultPoint& point);

/// Canonical spec string (inverse of parse_fault_plan; stable across a
/// parse/print round trip, used in checkpoint fingerprints). Identical
/// for semantically identical plans regardless of input spec order.
std::string fault_spec(const FaultPlan& plan);

/// Semantic validation against a rank count: every point's rank must be
/// in [0, nprocs). Returns the empty string when valid, else a
/// diagnostic naming the offending point spec — callers (the CLI) can
/// reject a plan eagerly instead of letting out-of-range points sit
/// silently unreachable at run time.
std::string validate_fault_plan(const FaultPlan& plan, int nprocs);

/// The interposition layer: one per rank, stacked above every other tool
/// so it sees user-facing MPI calls in program order. Counts this rank's
/// calls across all pre_* hooks and fires matching plan points.
class FaultLayer final : public ToolLayer {
 public:
  FaultLayer(std::shared_ptr<FaultPlan> plan, Rank rank);

  void pre_isend(ToolCtx& ctx, SendCall&) override;
  void pre_irecv(ToolCtx& ctx, RecvCall&) override;
  void pre_wait(ToolCtx& ctx, RequestId) override;
  void pre_probe(ToolCtx& ctx, ProbeCall&) override;
  void pre_collective(ToolCtx& ctx, CollCall&) override;

 private:
  void on_op(ToolCtx& ctx, const char* what);

  std::shared_ptr<FaultPlan> plan_;
  Rank rank_;
  std::uint64_t ops_ = 0;
};

}  // namespace dampi::mpism
