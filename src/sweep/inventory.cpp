#include "sweep/inventory.hpp"

#include <memory>
#include <utility>

#include "common/strutil.hpp"
#include "core/explorer.hpp"
#include "mpism/tool.hpp"

namespace dampi::sweep {

namespace {

/// Counts this rank's MPI calls exactly like FaultLayer does (one count
/// per pre_* hook, in program order) and records each call's kind.
/// Ranks write disjoint slots of a pre-sized shared vector, so
/// concurrent rank threads never contend.
class InventoryLayer final : public mpism::ToolLayer {
 public:
  InventoryLayer(std::shared_ptr<std::vector<std::string>> ops,
                 mpism::Rank rank)
      : ops_(std::move(ops)), rank_(static_cast<std::size_t>(rank)) {}

  void pre_isend(mpism::ToolCtx&, mpism::SendCall&) override { record('s'); }
  void pre_irecv(mpism::ToolCtx&, mpism::RecvCall&) override { record('r'); }
  void pre_wait(mpism::ToolCtx&, mpism::RequestId) override { record('w'); }
  void pre_probe(mpism::ToolCtx&, mpism::ProbeCall&) override { record('p'); }
  void pre_collective(mpism::ToolCtx&, mpism::CollCall&) override {
    record('c');
  }

 private:
  void record(char kind) { (*ops_)[rank_].push_back(kind); }

  std::shared_ptr<std::vector<std::string>> ops_;
  std::size_t rank_;
};

}  // namespace

OpInventory harvest_inventory(const core::ExplorerOptions& base,
                              const mpism::ProgramFn& program) {
  OpInventory inventory;
  if (base.nprocs <= 0) {
    inventory.error = "inventory: nprocs must be positive";
    return inventory;
  }
  auto ops = std::make_shared<std::vector<std::string>>(
      static_cast<std::size_t>(base.nprocs));

  core::ExplorerOptions options = base;
  options.fault.reset();
  options.checkpoint_path.clear();
  options.resume_from.reset();
  options.discovery_only = false;
  options.export_frontier = false;
  options.on_escape = nullptr;
  options.steal_poll = nullptr;
  options.on_steal = nullptr;
  options.run_stats = nullptr;
  // Stack the counter exactly where FaultLayer will sit during the
  // injection campaigns: topmost, above any baseline extras, so both
  // see the same user-facing call sequence and the coordinates line up.
  auto base_extra = options.extra_layers_per_run;
  options.extra_layers_per_run = [ops, base_extra]() {
    core::LayerStackFactory under;
    if (base_extra) under = base_extra();
    return core::LayerStackFactory(
        [ops, under](int rank, int nprocs)
            -> std::vector<std::unique_ptr<mpism::ToolLayer>> {
          std::vector<std::unique_ptr<mpism::ToolLayer>> stack;
          stack.push_back(std::make_unique<InventoryLayer>(
              ops, static_cast<mpism::Rank>(rank)));
          if (under) {
            for (auto& layer : under(rank, nprocs)) {
              stack.push_back(std::move(layer));
            }
          }
          return stack;
        });
  };

  const core::SingleRun run =
      core::run_guided_once(options, options.initial_schedule, program);
  inventory.ops = std::move(*ops);
  inventory.baseline_deadlocked = run.report.deadlocked;
  inventory.baseline_errored = !run.report.errors.empty();
  if (run.report.cancelled) {
    inventory.error =
        strfmt("inventory: discovery run cancelled (%s)",
               run.report.stop_reason.c_str());
  } else if (inventory.total_ops() == 0) {
    inventory.error = "inventory: program issued no MPI calls";
  }
  return inventory;
}

}  // namespace dampi::sweep
