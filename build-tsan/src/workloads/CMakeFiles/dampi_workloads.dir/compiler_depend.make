# Empty compiler generated dependencies file for dampi_workloads.
# This may be replaced when dependencies are built.
