// Small statistics helpers shared by benches and the runtime's op counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dampi {

/// Streaming mean / min / max / stddev accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  /// Combine another accumulator into this one (exact: parallel Welford).
  void merge(const RunningStat& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Render `count` as a compact human string the way the paper prints op
/// counts: 187K, 1315K, 7986K — i.e. thousands with a K suffix once >= 10K.
std::string human_count(std::uint64_t count);

/// Power-of-two bucketed histogram for positive samples (per-run wall
/// times, virtual times). Bucket i covers [first_limit * 2^(i-1),
/// first_limit * 2^i); the last bucket is a catch-all. Mergeable, so
/// per-thread instances can be combined without locking the hot path.
class Histogram {
 public:
  explicit Histogram(double first_limit = 1e-6, int buckets = 32);

  void add(double x);
  void merge(const Histogram& other);

  std::size_t count() const { return stat_.count(); }
  double min() const { return stat_.min(); }
  double max() const { return stat_.max(); }
  double mean() const { return stat_.mean(); }

  /// Smallest bucket upper bound that covers at least fraction `q` of the
  /// samples (0 when empty). Exact within a factor of 2.
  double quantile_bound(double q) const;

  /// Compact one-line rendering: "n=37 mean=1.2e-03 p50<=2.0e-03 ...".
  std::string str() const;

 private:
  double first_limit_;
  std::vector<std::uint64_t> counts_;
  RunningStat stat_;
};

/// Simple fixed-width text table used by the bench harnesses to print
/// paper-style tables. Columns are sized to the widest cell.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// Render with column separators, header underline.
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  bool has_header_ = false;
};

}  // namespace dampi
