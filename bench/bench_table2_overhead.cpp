// Table II: DAMPI overhead on medium-large benchmarks at 1024 procs.
//
// For ParMETIS plus six SpecMPI2007 and eight NAS-PB proxies, one
// instrumented run at scale reports: slowdown vs native (virtual time),
// R* (wildcard receives DAMPI analyzed), and the C-Leak / R-Leak
// findings. Paper's headline: overhead stays 1.0-1.3x for deterministic
// codes, rises with wildcard counts (milc: 51K wildcards -> 15x), and
// the leak checker finds unfreed communicators in 6 of the 15 codes.
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workloads/parmetis_proxy.hpp"
#include "workloads/suites.hpp"

using namespace dampi;

namespace {

struct Row {
  std::string name;
  mpism::ProgramFn program;
  double paper_slowdown;
  std::uint64_t paper_rstar;
  bool paper_cleak;
  bool paper_rleak;
};

std::string yesno(bool b) { return b ? "Yes" : "No"; }

}  // namespace

int main() {
  const int procs = bench::env_procs(/*full=*/1024, /*quick=*/128);
  bench::banner("Table II — DAMPI overhead: medium-large benchmarks",
                "slowdown ~1x for deterministic codes, driven by R* for "
                "wildcard-heavy ones (milc 15x); C-leaks found in 6 codes");
  std::printf("processes: %d (paper: 1024)\n\n", procs);

  std::vector<Row> rows;
  {
    workloads::ParmetisConfig config;
    config.phases = bench::quick_mode() ? 2 : 4;
    config.iters_per_phase = 40;
    rows.push_back(Row{"ParMETIS-3.1",
                       [config](mpism::Proc& p) {
                         workloads::parmetis_proxy(p, config);
                       },
                       1.18, 0, true, false});
  }
  for (const auto& entry : workloads::table2_suite()) {
    rows.push_back(Row{entry.spec.name,
                       [spec = entry.spec](mpism::Proc& p) {
                         workloads::run_skeleton(p, spec);
                       },
                       entry.paper_slowdown, entry.paper_rstar,
                       entry.paper_comm_leak, entry.paper_request_leak});
  }

  TextTable table;
  table.header({"Program", "Slowdown", "R*", "C-Leak", "R-Leak",
                "| paper:", "Slowdown", "R*", "C-Leak", "R-Leak"});

  bench::WallTimer total;
  for (const Row& row : rows) {
    core::VerifyOptions options;
    options.explorer.nprocs = procs;
    options.explorer.max_interleavings = 1;  // overhead of the first run
    core::Verifier verifier(options);
    const auto result = verifier.verify(row.program);
    if (!result.exploration.first_report.completed) {
      std::printf("%s failed: %s\n", row.name.c_str(),
                  result.exploration.first_report.deadlock_detail.c_str());
      continue;
    }
    table.row({row.name, fmt_fixed(result.slowdown, 2) + "x",
               std::to_string(result.exploration.wildcard_recv_epochs),
               yesno(result.comm_leaks > 0),
               yesno(result.request_leaks > 0), "|",
               fmt_fixed(row.paper_slowdown, 2) + "x",
               row.paper_rstar >= 1000
                   ? human_count(row.paper_rstar)
                   : std::to_string(row.paper_rstar),
               yesno(row.paper_cleak), yesno(row.paper_rleak)});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: the leak columns should match the paper "
              "exactly; slowdowns should preserve the ordering milc >> LU "
              "> lammps > the rest (~1.0-1.3x), with R* tracking the "
              "paper's wildcard profile.\n");
  std::printf("(harness wall time: %.1fs)\n", total.seconds());
  return 0;
}
