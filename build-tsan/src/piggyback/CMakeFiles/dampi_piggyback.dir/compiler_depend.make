# Empty compiler generated dependencies file for dampi_piggyback.
# This may be replaced when dependencies are built.
