#include "dist/worker.hpp"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "core/explorer.hpp"
#include "dist/protocol.hpp"
#include "mpism/cancel.hpp"
#include "obs/metrics.hpp"

namespace dampi::dist {

int run_worker(const WorkerConfig& config, const mpism::ProgramFn& program) {
  std::string error;
  const int fd = connect_socket(config.socket_spec, &error);
  if (fd < 0) {
    DAMPI_LOG(kError) << "worker " << config.worker_id << ": " << error;
    return 3;
  }
  MessageChannel channel(fd);

  const std::string fingerprint = core::options_fingerprint(config.options);
  Hello hello;
  hello.worker_id = config.worker_id;
  hello.fingerprint = fingerprint;
  if (!channel.send(MsgType::kHello, serialize_hello(hello))) return 3;

  const std::string journal =
      config.options.checkpoint_path.empty()
          ? std::string()
          : config.options.checkpoint_path + ".w" +
                std::to_string(config.worker_id);

  // One cancel source for the worker's lifetime: a campaign CANCEL tears
  // down the current shard and instantly aborts any shard after it.
  auto cancel = config.options.cancel
                    ? config.options.cancel
                    : std::make_shared<mpism::CancelSource>();
  bool shutdown_requested = false;

  for (;;) {
    WireMessage msg;
    const auto status = channel.recv(&msg, /*timeout_ms=*/-1);
    if (status == MessageChannel::RecvStatus::kClosed) {
      // Coordinator gone: a clean exit if it already said SHUTDOWN,
      // otherwise an orphaned worker with nobody to report to.
      return shutdown_requested ? 0 : 3;
    }
    if (status != MessageChannel::RecvStatus::kMessage) continue;

    switch (msg.type) {
      case MsgType::kShutdown:
        return 0;
      case MsgType::kCancel:
        cancel->cancel("coordinator cancelled the campaign");
        break;
      case MsgType::kSteal:
        // Idle — nothing on the stack to carve.
        channel.send(MsgType::kNoSteal, "");
        break;
      case MsgType::kShard: {
        std::uint64_t shard_id = 0;
        auto shard = parse_shard(msg.payload, fingerprint, &shard_id, &error);
        if (!shard.has_value()) {
          DAMPI_LOG(kError) << "worker " << config.worker_id
                            << ": bad shard: " << error;
          return 3;
        }
        // A fresh shard means the previous journal is fully accounted
        // for (its result was merged) — remove it so a death during this
        // shard can never resurrect the previous shard's final state.
        if (!journal.empty()) std::remove(journal.c_str());

        core::ExplorerOptions options = config.options;
        options.cancel = cancel;
        options.checkpoint_path = journal;
        options.resume_from =
            std::make_shared<const core::Checkpoint>(*std::move(shard));
        options.discovery_only = false;
        options.export_frontier = false;

        // Steal requests arrive on this channel; the explorer polls
        // between runs. Requests landing after the walk ends are
        // declined below.
        int pending_steals = 0;
        options.steal_poll = [&]() {
          WireMessage note;
          while (channel.recv(&note, /*timeout_ms=*/0) ==
                 MessageChannel::RecvStatus::kMessage) {
            if (note.type == MsgType::kSteal) {
              ++pending_steals;
            } else if (note.type == MsgType::kCancel) {
              cancel->cancel("coordinator cancelled the campaign");
            } else if (note.type == MsgType::kShutdown) {
              shutdown_requested = true;
              cancel->cancel("coordinator shut the campaign down");
            }
          }
          if (!channel.valid()) {
            cancel->cancel("coordinator connection lost");
          }
          if (pending_steals > 0) {
            --pending_steals;
            return true;
          }
          return false;
        };
        options.on_steal =
            [&](std::shared_ptr<const core::Checkpoint> stolen) {
              if (stolen) {
                channel.send(MsgType::kStolen,
                             serialize_shard(0, serialize_checkpoint(*stolen)));
              } else {
                channel.send(MsgType::kNoSteal, "");
              }
            };
        // Eager escape shipping: the send precedes the next journal
        // flush, so no escape can hide inside an already-journalled run
        // if this worker is killed.
        options.on_escape = [&](const core::EscapedAlt& escape) {
          channel.send(MsgType::kEscape,
                       serialize_escape(escape, fingerprint));
        };

        core::Explorer explorer(std::move(options));
        core::ExploreResult walk = explorer.explore(program);

        while (pending_steals-- > 0) channel.send(MsgType::kNoSteal, "");

        // Per-shard throughput, from the walk's own run-span timings
        // (sum of replay wall times, not the worker's idle time waiting
        // for shards). merge_dump surfaces it as dist.shard_run_rate
        // (campaign-total runs/sec) and w<id>.shard_run_rate per worker.
        if (walk.total_wall_seconds > 0.0) {
          obs::Registry::instance()
              .counter("shard_run_rate")
              .add(static_cast<std::uint64_t>(
                  static_cast<double>(walk.interleavings) /
                  walk.total_wall_seconds));
        }

        WorkerResult result;
        result.shard_id = shard_id;
        result.result = std::move(walk);
        result.metrics_dump = obs::Registry::instance().dump();
        obs::Registry::instance().reset();
        if (!channel.send(MsgType::kResult,
                          serialize_worker_result(result, fingerprint))) {
          return shutdown_requested ? 0 : 3;
        }
        break;
      }
      default:
        DAMPI_LOG(kWarn) << "worker " << config.worker_id
                         << ": unexpected message type "
                         << static_cast<int>(msg.type);
        break;
    }
    if (shutdown_requested) return 0;
  }
}

}  // namespace dampi::dist
