# Empty compiler generated dependencies file for bench_fig5_parmetis.
# This may be replaced when dependencies are built.
