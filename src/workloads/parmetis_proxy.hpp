// ParMETIS-3.1 proxy: a k-way partition-refinement communication
// skeleton calibrated to the operation profile the paper measures
// (Table I) — about one million MPI calls at 32 processes, total
// operations growing ~2.5x per process doubling while per-process
// operations grow only ~1.3x, and collectives per process shrinking.
//
// Structure: `phases` coarsening/refinement phases, each running
// `iters_per_phase` boundary-exchange iterations. The neighbor set per
// process grows sublinearly with P (boundary degree of a k-way
// partition), which is what produces the paper's scaling profile. The
// computation itself is a seeded stand-in (partition quality is
// irrelevant to the measurement); the code is fully deterministic — no
// wildcard receives — exactly like ParMETIS.
#pragma once

#include <cstdint>

#include "mpism/proc.hpp"

namespace dampi::workloads {

struct ParmetisConfig {
  int phases = 15;
  int iters_per_phase = 125;
  /// Local vertices; sets boundary payload sizes.
  int vertices_per_proc = 512;
  /// Neighbor count ~= neighbor_factor * P^neighbor_exponent, clamped to
  /// [2, P-1].
  double neighbor_factor = 1.55;
  double neighbor_exponent = 0.45;
  /// Virtual microseconds of local refinement per iteration.
  double compute_us_per_iter = 40.0;
  /// The original leaks a communicator (Table II: C-Leak yes, R-Leak no).
  bool leak_communicator = true;
  std::uint64_t seed = 7;

  /// Uniform shrink factor for tests/quick runs (divides phase count).
  ParmetisConfig scaled(int divisor) const {
    ParmetisConfig c = *this;
    c.phases = std::max(1, phases / divisor);
    return c;
  }
};

void parmetis_proxy(mpism::Proc& p, const ParmetisConfig& config);

/// Neighbor count used at a given process count (exposed for tests and
/// the Table I harness).
int parmetis_neighbors(const ParmetisConfig& config, int nprocs);

}  // namespace dampi::workloads
