#include "core/por.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hpp"

namespace dampi::core {

bool parse_por_spec(const std::string& spec, PorMode* out) {
  if (spec == "off") {
    *out = PorMode::kOff;
  } else if (spec == "sleep") {
    *out = PorMode::kSleep;
  } else {
    return false;
  }
  return true;
}

const char* por_spec(PorMode mode) {
  return mode == PorMode::kOff ? "off" : "sleep";
}

PorMode default_por_mode() {
  static const PorMode cached = [] {
    PorMode mode = PorMode::kSleep;
    const char* env = std::getenv("DAMPI_POR");
    if (env != nullptr && env[0] != '\0' && !parse_por_spec(env, &mode)) {
      DAMPI_LOG(kWarn) << "ignoring unrecognized DAMPI_POR value '" << env
                       << "' (want off|sleep)";
    }
    return mode;
  }();
  return cached;
}

namespace {

bool tags_compatible(mpism::Tag a, mpism::Tag b) {
  return a == mpism::kAnyTag || b == mpism::kAnyTag || a == b;
}

/// Both inputs sorted ascending.
bool candidates_intersect(const std::vector<mpism::Rank>& a,
                          const std::vector<mpism::Rank>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

bool contains(const std::vector<mpism::Rank>& sorted, mpism::Rank value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

/// a's epoch-open event is visible to b: b's clock has caught up with
/// a's own component at the instant the epoch opened.
bool happened_before(const DecisionFootprint& a, const DecisionFootprint& b) {
  const auto idx = static_cast<std::size_t>(a.rank);
  if (idx >= a.vc.size() || idx >= b.vc.size()) return true;  // conservative
  return b.vc[idx] >= a.vc[idx];
}

}  // namespace

DecisionFootprint epoch_footprint(const EpochRecord& epoch) {
  DecisionFootprint fp;
  fp.rank = epoch.key.rank;
  fp.comm = epoch.comm;
  fp.tag = epoch.tag;
  fp.candidates.reserve(epoch.alternatives.size() + 1);
  for (const auto& [src, match] : epoch.alternatives) {
    fp.candidates.push_back(src);  // map iteration: already sorted
  }
  if (epoch.matched_src_world >= 0) {
    fp.candidates.insert(std::lower_bound(fp.candidates.begin(),
                                          fp.candidates.end(),
                                          epoch.matched_src_world),
                         epoch.matched_src_world);
  }
  fp.vc = epoch.vc;
  return fp;
}

bool independent(const DecisionFootprint& a, const DecisionFootprint& b) {
  // No vector evidence: Lamport totals order everything, so nothing is
  // provably concurrent. Prune nothing.
  if (a.vc.empty() || b.vc.empty()) return false;
  if (a.rank == b.rank) return false;
  // Contested sender: a source both decisions can bind on a compatible
  // channel — flipping one decision steals (or frees) the other's
  // message, the textbook dependency.
  if (a.comm == b.comm && tags_compatible(a.tag, b.tag) &&
      candidates_intersect(a.candidates, b.candidates)) {
    return false;
  }
  // Receiver involvement: one decision may bind a send from the other's
  // receiver rank, so the other's outcome (what that rank does next) can
  // feed back into this one. Conservative — comm/tag are ignored here
  // because the feedback travels through program control flow, not a
  // message channel.
  if (contains(a.candidates, b.rank) || contains(b.candidates, a.rank)) {
    return false;
  }
  // Causally ordered epochs never commute: the earlier decision's
  // outcome is already in the later epoch's past.
  if (happened_before(a, b) || happened_before(b, a)) return false;
  return true;
}

}  // namespace dampi::core
