// The paper's chosen mechanism: every payload message m is accompanied by
// a piggyback message mp carrying the sender's clock, sent on a *shadow
// communicator* duplicated from the payload's communicator (§II-D).
//
// Pairing: the paper relies on posting the pb receive after m completes
// (so the source is known) and on channel FIFO order. This implementation
// strengthens the pairing by tagging mp with m's per-channel sequence
// number, which makes the association exact even when the receiver waits
// its requests out of post order — a hazard the order-based scheme has.
#pragma once

#include <unordered_map>

#include "piggyback/transport.hpp"

namespace dampi::piggyback {

class SeparateMessageTransport final : public Transport {
 public:
  void on_init(mpism::ToolCtx& ctx) override;
  void on_post_send(mpism::ToolCtx& ctx, const mpism::SendCall& call,
                    const mpism::SendInfo& info,
                    const mpism::Bytes& clock) override;
  mpism::Bytes on_recv_complete(mpism::ToolCtx& ctx,
                                mpism::ReqCompletion& c) override;
  void on_new_comm(mpism::ToolCtx& ctx, mpism::CommId comm) override;

 private:
  mpism::CommId shadow_of(mpism::CommId comm) const;

  /// payload comm -> shadow comm.
  std::unordered_map<mpism::CommId, mpism::CommId> shadow_;
};

}  // namespace dampi::piggyback
