// dampi-verify: a command-line front end over the verifier.
//
// Usage:
//   verify_cli --list
//   verify_cli --program fig3 [--procs 3] [--k 1] [--clock vector]
//              [--max-interleavings 1000] [--deferred-sync]
//              [--auto-loop N] [--jobs N] [--isp]
//
// Programs: the paper's pattern fixtures, matmult, mini-ADLB, the
// ParMETIS proxy, and every Table II suite entry by name (104.milc, BT,
// LU, ...).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/decision_io.hpp"
#include "core/report_format.hpp"
#include "core/verifier.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "mpism/cancel.hpp"
#include "mpism/fault.hpp"
#include "isp/isp_verifier.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sweep/sweep.hpp"
#include "workloads/adlb.hpp"
#include "workloads/matmult.hpp"
#include "workloads/parmetis_proxy.hpp"
#include "workloads/patterns.hpp"
#include "workloads/suites.hpp"

using namespace dampi;

namespace {

std::map<std::string, mpism::ProgramFn> program_registry() {
  std::map<std::string, mpism::ProgramFn> programs;
  programs["fig3"] = workloads::fig3_wildcard_bug;
  programs["fig3-benign"] = workloads::fig3_benign;
  programs["fig4"] = workloads::fig4_cross_coupled;
  programs["fig10"] = workloads::fig10_unsafe_pattern;
  programs["deadlock"] = workloads::simple_deadlock;
  programs["wildcard-deadlock"] = workloads::wildcard_dependent_deadlock;
  programs["leaky"] = workloads::leaky_program;
  programs["livelock"] = workloads::livelock;
  programs["dist-fanout"] = [](mpism::Proc& p) {
    workloads::dist_fanout(p, /*rounds=*/2, /*spin_us=*/200.0);
  };
  programs["fan-in-groups"] = [](mpism::Proc& p) {
    workloads::fan_in_groups(p, /*groups=*/p.size() / 3);
  };
  programs["matmult"] = [](mpism::Proc& p) {
    workloads::MatmultConfig config;
    config.n = 8;
    config.chunk_rows = 1;
    workloads::matmult(p, config);
  };
  programs["matmult-bug"] = [](mpism::Proc& p) {
    workloads::MatmultConfig config;
    config.n = 8;
    config.chunk_rows = 1;
    config.inject_order_bug = true;
    workloads::matmult(p, config);
  };
  programs["adlb"] = [](mpism::Proc& p) {
    workloads::adlb::Config config;
    config.roots_per_server = 4;
    workloads::adlb::run(p, config);
  };
  programs["parmetis"] = [](mpism::Proc& p) {
    workloads::parmetis_proxy(p, workloads::ParmetisConfig{}.scaled(5));
  };
  for (const auto& entry : workloads::table2_suite()) {
    programs[entry.spec.name] = [spec = entry.spec](mpism::Proc& p) {
      workloads::run_skeleton(p, spec);
    };
  }
  return programs;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s --program <name> [options]\n"
      "       %s --list\n"
      "options:\n"
      "  --procs N              ranks to simulate (default 4)\n"
      "  --k N                  bounded mixing window (default: unbounded)\n"
      "  --clock lamport|vector causality tracker (default lamport)\n"
      "  --max-interleavings N  exploration budget (default 4096)\n"
      "  --deferred-sync        enable the par-of-clocks fix for the S5 "
      "pattern\n"
      "  --auto-loop N          automatic loop detection threshold\n"
      "  --jobs N               replay-worker pool width (default 1; "
      "results\n"
      "                         are identical at every width)\n"
      "  --sched KIND           rank scheduler: thread (OS thread per "
      "rank),\n"
      "                         coop / coop-rr, coop-random, coop-priority\n"
      "                         (deterministic run-to-block fibers; "
      "default\n"
      "                         thread, or $DAMPI_SCHED when set)\n"
      "  --sched-seed N         seed for coop-random / coop-priority "
      "picks\n"
      "  --match KIND           message matcher: indexed (O(1) lanes, "
      "default)\n"
      "                         or linear (scan oracle; $DAMPI_MATCH when "
      "set)\n"
      "  --engine-lock KIND     engine locking: sharded (per-rank shards, "
      "default)\n"
      "                         or global (single-mutex baseline; "
      "$DAMPI_ENGINE_LOCK\n"
      "                         when set); verdicts are identical across "
      "modes\n"
      "  --por MODE             partial-order reduction: sleep "
      "(commuting-decision\n"
      "                         sleep sets, default) or off (full "
      "cross-product\n"
      "                         baseline; $DAMPI_POR when set); same bugs "
      "and\n"
      "                         per-epoch outcomes in <= interleavings\n"
      "  --isp                  use the centralized ISP baseline instead\n"
      "  --save-repro FILE      write the first bug's epoch-decisions "
      "file\n"
      "  --replay FILE          run once under a saved epoch-decisions "
      "file\n"
      "  --trace FILE           record a Chrome trace_event JSON of the "
      "run\n"
      "                         (open in chrome://tracing or Perfetto)\n"
      "  --trace-capacity N     events retained per lane (default 16384)\n"
      "  --metrics              print the metrics registry after the run\n"
      "resilience options:\n"
      "  --run-deadline SEC     per-run watchdog: kill any single run "
      "after\n"
      "                         SEC wall seconds and report it as a HANG\n"
      "  --run-max-ops N        per-run watchdog on executed MPI "
      "operations\n"
      "  --max-wall-seconds S   global budget; cancels even an in-flight "
      "run\n"
      "  --retries N            re-run failed replays up to N times with\n"
      "                         exponential backoff before quarantining\n"
      "  --fault SPEC           deterministic fault injection, e.g.\n"
      "                         abort@1:3,delay@0:2:5000,flaky@1:1:2\n"
      "                         (kinds: abort, error, delay, flaky; "
      "points\n"
      "                         are rank:op-index, op indices 1-based)\n"
      "  --checkpoint FILE      journal the DFS frontier to FILE (atomic\n"
      "                         rename) for crash-safe --resume\n"
      "  --checkpoint-interval N  journal every N interleavings (default "
      "64)\n"
      "  --resume               continue from --checkpoint FILE instead "
      "of\n"
      "                         starting over (options must match); in "
      "sweep\n"
      "                         mode, continue from --sweep-journal "
      "without\n"
      "                         re-running completed plans\n"
      "fault-sweep options:\n"
      "  --sweep-faults         enumerate single-point fault plans over "
      "the\n"
      "                         program's op inventory and run one "
      "bounded\n"
      "                         campaign per plan (a crash-tolerance "
      "matrix);\n"
      "                         --max-interleavings bounds each plan's\n"
      "                         campaign, --workers runs plans "
      "concurrently\n"
      "  --sweep-budget N       max plans (default 64; abort/error "
      "points\n"
      "                         first, then sampled delay/flaky ones)\n"
      "  --sweep-seed N         seeds the delay/flaky sampler (default "
      "1)\n"
      "  --sweep-kinds SPEC     fault families to sweep, e.g. "
      "abort,delay\n"
      "                         (default all)\n"
      "  --sweep-report FILE    write the machine-readable JSON report;\n"
      "                         byte-identical for the same (program,\n"
      "                         options, budget, seed) at any --workers\n"
      "                         and across kill/--resume\n"
      "  --sweep-journal FILE   crash-safe journal of completed plans "
      "(atomic\n"
      "                         rename per plan) for --resume\n"
      "distributed options:\n"
      "  --workers N            distributed campaign: shard the frontier "
      "across\n"
      "                         N worker processes with work-stealing; "
      "the\n"
      "                         merged report and exit code are identical "
      "to a\n"
      "                         single-process run's\n"
      "  --dist-socket PATH     rendezvous over an AF_UNIX socket at PATH\n"
      "                         instead of inherited socketpairs\n"
      "  --worker               run as a campaign worker (spawned by the\n"
      "                         coordinator; not for direct use)\n"
      "  --worker-id N          this worker's id within the campaign\n"
      "  --coordinator-socket S worker-side channel: fd:N or a socket "
      "path\n"
      "exit codes: 0 clean, 1 bug(s) found, 2 budget exhausted / "
      "interrupted /\n"
      "            quarantined subtrees, 3 usage or internal error\n",
      argv0, argv0);
  return 3;
}

/// SIGINT lands here; a bridge thread polls the flag and fires the
/// CancelSource (not async-signal-safe, so it cannot run in the
/// handler). A second ^C gets the default disposition: immediate death.
volatile std::sig_atomic_t g_sigint = 0;

void handle_sigint(int) {
  g_sigint = 1;
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  const auto programs = program_registry();

  std::string name;
  int procs = 4;
  std::optional<int> k;
  core::ClockMode clock_mode = core::ClockMode::kLamport;
  std::uint64_t max_interleavings = 4096;
  bool deferred_sync = false;
  int auto_loop = 0;
  int jobs = 1;
  mpism::SchedOptions sched = mpism::default_sched_options();
  mpism::MatchKind match = mpism::default_match_kind();
  mpism::EngineLockKind engine_lock = mpism::default_engine_lock_kind();
  core::PorMode por = core::default_por_mode();
  bool use_isp = false;
  std::string save_repro_path;
  std::string replay_path;
  std::string trace_path;
  std::size_t trace_capacity = 0;
  bool print_metrics = false;
  double run_deadline_seconds = 0.0;
  std::uint64_t run_max_ops = 0;
  double max_wall_seconds = 0.0;  // 0 = unlimited
  int retries = 0;
  std::string fault_spec_arg;
  std::string checkpoint_path;
  std::uint64_t checkpoint_interval = 64;
  bool resume = false;
  bool sweep_faults = false;
  std::uint64_t sweep_budget = 64;
  std::uint64_t sweep_seed = 1;
  sweep::SweepKinds sweep_kinds;
  std::string sweep_report_path;
  std::string sweep_journal_path;
  int workers = 0;  // 0 = in-process exploration (the default)
  std::string dist_socket;
  bool worker_mode = false;
  int worker_id = 0;
  std::string coordinator_socket;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& [prog_name, fn] : programs) {
        std::printf("%s\n", prog_name.c_str());
      }
      return 0;
    } else if (arg == "--program") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      name = v;
    } else if (arg == "--procs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      procs = std::atoi(v);
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      k = std::atoi(v);
    } else if (arg == "--clock") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      clock_mode = std::strcmp(v, "vector") == 0 ? core::ClockMode::kVector
                                                 : core::ClockMode::kLamport;
    } else if (arg == "--max-interleavings") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      max_interleavings = std::strtoull(v, nullptr, 10);
    } else if (arg == "--deferred-sync") {
      deferred_sync = true;
    } else if (arg == "--auto-loop") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      auto_loop = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      jobs = std::atoi(v);
      if (jobs < 1) {
        std::printf("--jobs must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--sched") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!mpism::parse_sched_spec(v, &sched)) {
        std::printf("unknown --sched value: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--sched-seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sched.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--match") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!mpism::parse_match_spec(v, &match)) {
        std::printf("unknown --match value: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--engine-lock") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!mpism::parse_engine_lock_spec(v, &engine_lock)) {
        std::printf("unknown --engine-lock value: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--por") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!core::parse_por_spec(v, &por)) {
        std::printf("unknown --por value: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--isp") {
      use_isp = true;
    } else if (arg == "--save-repro") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      save_repro_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      replay_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trace_path = v;
    } else if (arg == "--trace-capacity") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trace_capacity = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--run-deadline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      run_deadline_seconds = std::atof(v);
    } else if (arg == "--run-max-ops") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      run_max_ops = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-wall-seconds") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      max_wall_seconds = std::atof(v);
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      retries = std::atoi(v);
    } else if (arg == "--fault") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      fault_spec_arg = v;
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      checkpoint_path = v;
    } else if (arg == "--checkpoint-interval") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      checkpoint_interval = std::strtoull(v, nullptr, 10);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--sweep-faults") {
      sweep_faults = true;
    } else if (arg == "--sweep-budget") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sweep_budget = std::strtoull(v, nullptr, 10);
      if (sweep_budget == 0) {
        std::printf("--sweep-budget must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--sweep-seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sweep_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sweep-kinds") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      std::string error;
      if (!sweep::parse_sweep_kinds(v, &sweep_kinds, &error)) {
        std::printf("bad --sweep-kinds: %s\n", error.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--sweep-report") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sweep_report_path = v;
    } else if (arg == "--sweep-journal") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sweep_journal_path = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      workers = std::atoi(v);
      if (workers < 1) {
        std::printf("--workers must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--dist-socket") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      dist_socket = v;
    } else if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--worker-id") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      worker_id = std::atoi(v);
    } else if (arg == "--coordinator-socket") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      coordinator_socket = v;
    } else {
      std::printf("unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  auto it = programs.find(name);
  if (it == programs.end()) {
    std::printf("unknown or missing --program (try --list)\n");
    return usage(argv[0]);
  }

  if (!trace_path.empty()) {
    if (!DAMPI_TRACE_ENABLED) {
      std::printf(
          "warning: this binary was built with DAMPI_TRACE=OFF; the "
          "trace will contain no events\n");
    }
    if (trace_capacity > 0) {
      obs::Tracer::instance().set_capacity(trace_capacity);
    }
    obs::Tracer::instance().set_enabled(true);
  }
  // Emits the trace/metrics on every exit path of the run below.
  auto finish = [&](int code) {
    if (!trace_path.empty()) {
      obs::Tracer::instance().set_enabled(false);
      if (obs::write_chrome_trace(trace_path)) {
        std::printf("trace written          : %s\n", trace_path.c_str());
      } else {
        std::printf("could not write trace %s\n", trace_path.c_str());
        code = code == 0 ? 3 : code;
      }
    }
    if (print_metrics) {
      std::printf("metrics:\n%s", obs::Registry::instance().dump().c_str());
    }
    return code;
  };

  core::ExplorerOptions explorer_options;
  explorer_options.nprocs = procs;
  explorer_options.mixing_bound = k;
  explorer_options.clock_mode = clock_mode;
  explorer_options.max_interleavings = max_interleavings;
  explorer_options.deferred_clock_sync = deferred_sync;
  explorer_options.auto_loop_threshold = auto_loop;
  explorer_options.jobs = jobs;
  explorer_options.sched = sched;
  explorer_options.match = match;
  explorer_options.engine_lock = engine_lock;
  explorer_options.por = por;
  explorer_options.run_deadline_seconds = run_deadline_seconds;
  explorer_options.max_run_ops = run_max_ops;
  if (max_wall_seconds > 0.0) {
    explorer_options.max_wall_seconds = max_wall_seconds;
  }
  explorer_options.max_retries = retries;
  explorer_options.checkpoint_path = checkpoint_path;
  explorer_options.checkpoint_interval = checkpoint_interval;
  explorer_options.checkpoint_tag = name;
  if (!fault_spec_arg.empty()) {
    std::string error;
    explorer_options.fault = mpism::parse_fault_plan(fault_spec_arg, &error);
    if (!explorer_options.fault) {
      std::printf("bad --fault spec: %s\n", error.c_str());
      return usage(argv[0]);
    }
    // Eager semantic validation: a point aimed at a rank this campaign
    // does not simulate would sit silently unreachable for the whole
    // run — reject it now, naming the offending point.
    error = mpism::validate_fault_plan(*explorer_options.fault, procs);
    if (!error.empty()) {
      std::printf("bad --fault spec: %s\n", error.c_str());
      return 3;
    }
  }

  if (sweep_faults) {
    // The sweep owns fault injection, campaign scheduling, and its own
    // journal; modes that would fight over those are rejected eagerly.
    const char* conflict = nullptr;
    if (!fault_spec_arg.empty()) conflict = "--fault";
    if (use_isp) conflict = "--isp";
    if (!replay_path.empty()) conflict = "--replay";
    if (worker_mode) conflict = "--worker";
    if (!checkpoint_path.empty()) conflict = "--checkpoint";
    if (!dist_socket.empty()) conflict = "--dist-socket";
    if (!save_repro_path.empty()) conflict = "--save-repro";
    if (conflict != nullptr) {
      std::printf("--sweep-faults cannot be combined with %s\n", conflict);
      return usage(argv[0]);
    }
    if (resume && sweep_journal_path.empty()) {
      std::printf("--resume in sweep mode requires --sweep-journal FILE\n");
      return usage(argv[0]);
    }
  }
  if (worker_mode) {
    if (coordinator_socket.empty()) {
      std::printf("--worker requires --coordinator-socket\n");
      return usage(argv[0]);
    }
    // A terminal ^C goes to the whole foreground process group; workers
    // must ignore it and let the coordinator cancel them cooperatively
    // over the channel, or every ^C would look like a crash storm.
    std::signal(SIGINT, SIG_IGN);
    dist::WorkerConfig config;
    config.socket_spec = coordinator_socket;
    config.worker_id = worker_id;
    config.options = explorer_options;
    return dist::run_worker(config, it->second);
  }

  if (resume && !sweep_faults) {
    if (checkpoint_path.empty()) {
      std::printf("--resume requires --checkpoint FILE\n");
      return usage(argv[0]);
    }
    std::string error;
    auto cp = core::load_checkpoint(
        checkpoint_path, core::options_fingerprint(explorer_options), &error);
    if (!cp.has_value()) {
      std::printf("cannot resume from %s: %s\n", checkpoint_path.c_str(),
                  error.c_str());
      return 3;
    }
    explorer_options.resume_from =
        std::make_shared<core::Checkpoint>(std::move(*cp));
  }

  // ^C cancels the campaign cooperatively: in-flight runs unwind, the
  // final checkpoint flush journals the frontier, and the partial
  // report is still printed.
  auto cancel = std::make_shared<mpism::CancelSource>();
  explorer_options.cancel = cancel;
  std::signal(SIGINT, handle_sigint);
  std::atomic<bool> bridge_stop{false};
  std::thread sigint_bridge([&] {
    while (!bridge_stop.load(std::memory_order_acquire)) {
      if (g_sigint != 0) {
        cancel->cancel("SIGINT");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });
  auto stop_bridge = [&] {
    bridge_stop.store(true, std::memory_order_release);
    if (sigint_bridge.joinable()) sigint_bridge.join();
  };

  if (sweep_faults) {
    sweep::SweepOptions sweep_options;
    sweep_options.explorer = explorer_options;
    // Per-campaign budget, not a whole-sweep one: each plan's
    // exploration is bounded by the interleaving budget independently.
    sweep_options.plan_max_interleavings = max_interleavings;
    if (max_wall_seconds > 0.0) {
      sweep_options.plan_wall_seconds = max_wall_seconds;
    }
    sweep_options.program_name = name;
    sweep_options.budget = sweep_budget;
    sweep_options.seed = sweep_seed;
    sweep_options.kinds = sweep_kinds;
    // --workers here fans plan campaigns out across threads (no
    // coordinator processes: campaigns are already independent).
    sweep_options.workers = workers > 0 ? workers : 1;
    sweep_options.journal_path = sweep_journal_path;
    sweep_options.resume = resume;
    sweep_options.cancel = cancel;

    const sweep::SweepResult sweep_result =
        sweep::run_sweep(sweep_options, it->second);
    stop_bridge();
    std::printf("%s",
                sweep::format_sweep_summary(sweep_options, sweep_result)
                    .c_str());
    int code = sweep::sweep_exit_code(sweep_result);
    if (!sweep_journal_path.empty() && sweep_result.error.empty()) {
      std::printf("sweep journal          : %s%s\n",
                  sweep_journal_path.c_str(),
                  sweep_result.interrupted ? " (resume with --resume)" : "");
    }
    if (!sweep_report_path.empty() && sweep_result.error.empty()) {
      std::FILE* out = std::fopen(sweep_report_path.c_str(), "w");
      const std::string report =
          sweep::format_sweep_report_json(sweep_options, sweep_result);
      if (out == nullptr ||
          std::fwrite(report.data(), 1, report.size(), out) !=
              report.size()) {
        std::printf("could not write %s\n", sweep_report_path.c_str());
        code = code == 0 ? 3 : code;
      } else {
        std::printf("sweep report           : %s\n",
                    sweep_report_path.c_str());
      }
      if (out != nullptr) std::fclose(out);
    }
    return finish(code);
  }

  if (!replay_path.empty()) {
    std::string error;
    const auto schedule = core::load_schedule(replay_path, &error);
    if (!schedule.has_value()) {
      std::printf("cannot load %s: %s\n", replay_path.c_str(), error.c_str());
      stop_bridge();
      return 3;
    }
    const auto run =
        core::run_guided_once(explorer_options, *schedule, it->second);
    stop_bridge();
    std::printf("replay of %s (%zu decisions):\n", replay_path.c_str(),
                schedule->forced.size());
    if (run.report.deadlocked) {
      std::printf("DEADLOCK reproduced:\n%s",
                  run.report.deadlock_detail.c_str());
      return finish(1);
    }
    if (!run.report.errors.empty()) {
      std::printf("FAILURE reproduced:\n");
      for (const auto& error_info : run.report.errors) {
        std::printf("  rank %d: %s\n", error_info.rank,
                    error_info.message.c_str());
      }
      return finish(1);
    }
    if (run.report.timed_out) {
      std::printf("HANG reproduced: %s\n", run.report.stop_reason.c_str());
      return finish(1);
    }
    if (run.report.cancelled) {
      std::printf("replay interrupted: %s\n", run.report.stop_reason.c_str());
      return finish(2);
    }
    std::printf("run completed cleanly (divergences: %llu)\n",
                static_cast<unsigned long long>(run.divergences));
    return finish(0);
  }

  const bool distributed = workers > 0;
  if (distributed && use_isp) {
    std::printf("--workers is not supported with --isp\n");
    stop_bridge();
    return usage(argv[0]);
  }

  core::VerifyResult result;
  std::string dist_error;
  dist::DistStats dist_stats;
  if (distributed) {
    // Native baseline first (same as Verifier::verify), then the
    // sharded campaign instead of the in-process walk.
    {
      mpism::RunOptions native;
      native.nprocs = explorer_options.nprocs;
      native.cost = explorer_options.cost;
      native.policy = explorer_options.policy;
      native.policy_seed = explorer_options.policy_seed;
      native.sched = explorer_options.sched;
      native.match = explorer_options.match;
      native.engine_lock = explorer_options.engine_lock;
      native.max_run_wall_seconds = explorer_options.run_deadline_seconds;
      native.max_run_vtime_us = explorer_options.max_run_vtime_us;
      native.max_ops = explorer_options.max_run_ops;
      native.cancel = explorer_options.cancel;
      mpism::Runtime runtime(std::move(native));
      result.native_vtime_us = runtime.run(it->second).vtime_us;
    }

    dist::DistOptions dist_options;
    dist_options.workers = workers;
    dist_options.socket_path = dist_socket;
    dist_options.explorer = explorer_options;
    // Workers re-parse this binary's own arguments, minus anything that
    // is coordinator-only (reporting, the distributed flags themselves,
    // --resume: shards already embed the restored state).
    dist_options.worker_argv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--workers" || arg == "--dist-socket" || arg == "--trace" ||
          arg == "--trace-capacity" || arg == "--save-repro") {
        ++i;  // skip the flag's value too
        continue;
      }
      if (arg == "--metrics" || arg == "--resume") continue;
      dist_options.worker_argv.push_back(arg);
    }

    dist::DistResult dist_result = dist::run_distributed(dist_options,
                                                         it->second);
    dist_error = dist_result.error;
    dist_stats = dist_result.stats;
    for (const auto& [wid, dump] : dist_result.worker_metrics) {
      obs::Registry::instance().merge_dump(dump, "w" + std::to_string(wid));
    }
    result.exploration = std::move(dist_result.exploration);
    result.instrumented_vtime_us = result.exploration.first_run_vtime_us;
    if (result.native_vtime_us > 0.0) {
      result.slowdown =
          result.instrumented_vtime_us / result.native_vtime_us;
    }
    result.comm_leaks = result.exploration.first_report.comm_leaks;
    result.request_leaks = result.exploration.first_report.request_leaks;
    for (const core::BugRecord& bug : result.exploration.bugs) {
      if (bug.kind == core::BugRecord::Kind::kDeadlock) {
        result.deadlock_found = true;
      }
      if (bug.kind == core::BugRecord::Kind::kError) result.error_found = true;
      if (bug.kind == core::BugRecord::Kind::kHang) result.hang_found = true;
    }
  } else if (use_isp) {
    isp::IspOptions options;
    options.explorer = explorer_options;
    isp::IspVerifier verifier(options);
    result = verifier.verify(it->second);
  } else {
    core::VerifyOptions options;
    options.explorer = explorer_options;
    core::Verifier verifier(options);
    result = verifier.verify(it->second);
  }
  stop_bridge();

  std::printf("program                : %s (%d ranks, %s, sched %s, match "
              "%s, lock %s, por %s)\n",
              name.c_str(), procs, use_isp ? "ISP baseline" : "DAMPI",
              mpism::sched_spec(sched).c_str(), mpism::match_spec(match),
              mpism::engine_lock_spec(engine_lock).c_str(),
              core::por_spec(por));
  if (distributed) {
    std::printf(
        "distributed campaign   : %d workers (%d spawned), %llu shards "
        "(%llu stolen, %llu escaped, %llu requeued), %d worker deaths\n",
        workers, dist_stats.workers_spawned,
        static_cast<unsigned long long>(dist_stats.shards_initial),
        static_cast<unsigned long long>(dist_stats.shards_stolen),
        static_cast<unsigned long long>(dist_stats.shards_escaped),
        static_cast<unsigned long long>(dist_stats.shards_requeued),
        dist_stats.worker_deaths);
  }
  std::printf("%s", core::format_verify_result(result).c_str());
  if (!dist_error.empty()) {
    std::printf("campaign error         : %s\n", dist_error.c_str());
    return finish(3);
  }
  const core::ExploreResult& e = result.exploration;
  if (e.bugs.empty()) {
    // No verdicts, but a partial search is not a clean bill of health:
    // exhausted budgets, interruption, and quarantined subtrees all mean
    // coverage is incomplete.
    const bool partial = e.interleaving_budget_exhausted ||
                         e.time_budget_exhausted || e.interrupted ||
                         e.quarantined > 0;
    return finish(partial ? 2 : 0);
  }
  if (!save_repro_path.empty()) {
    if (core::save_schedule(result.exploration.bugs.front().schedule,
                            save_repro_path)) {
      std::printf("reproducer saved       : %s (replay with --replay)\n",
                  save_repro_path.c_str());
    } else {
      std::printf("could not write %s\n", save_repro_path.c_str());
    }
  }
  return finish(1);
}
