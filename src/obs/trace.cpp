#include "obs/trace.hpp"

#include <algorithm>

namespace dampi::obs {

namespace detail {
thread_local Lane* tls_lane = nullptr;
}  // namespace detail

const KindInfo& kind_info(EventKind kind) {
  static const KindInfo kTable[] = {
      {"send.match", {"src", "dst", "tag", nullptr}},
      {"send.unexpected", {"src", "dst", "tag", nullptr}},
      {"recv.post", {"posted_src", nullptr, "tag", nullptr}},
      {"recv.match", {"src", "dst", "tag", nullptr}},
      {"blocked", {"rank", "kind", nullptr, nullptr}},
      {"collective", {"kind", "comm", nullptr, nullptr}},
      {"deadlock", {nullptr, nullptr, nullptr, nullptr}},
      {"epoch.open", {"rank", "nd", nullptr, "lc"}},
      {"epoch.close", {"rank", "nd", "src", "seq"}},
      {"late.send", {"src", "nd", "tag", "seq"}},
      {"piggyback.attach", {"bytes", nullptr, nullptr, nullptr}},
      {"decision.push", {"rank", "nd", "alts", nullptr}},
      {"decision.pop", {"rank", "nd", "src", nullptr}},
      {"por.prune", {"rank", "nd", "slept", nullptr}},
      {"replay", {"speculative", nullptr, nullptr, "interleaving"}},
      {"replay.discard", {nullptr, nullptr, nullptr, nullptr}},
      {"sched.run", {"rank", nullptr, nullptr, nullptr}},
      {"run.timeout", {nullptr, nullptr, nullptr, nullptr}},
      {"run.cancel", {nullptr, nullptr, nullptr, nullptr}},
      {"fault.inject", {"rank", "op", "kind", nullptr}},
      {"replay.retry", {"attempt", nullptr, nullptr, nullptr}},
      {"replay.quarantine", {nullptr, nullptr, nullptr, "interleaving"}},
      {"checkpoint.write", {"frames", nullptr, nullptr, "interleaving"}},
      {"sweep.plan", {"plan", "verdict", nullptr, "interleavings"}},
  };
  static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
                static_cast<std::size_t>(EventKind::kKindCount));
  return kTable[static_cast<std::size_t>(kind)];
}

std::uint64_t trace_now_ns() {
  static const auto origin = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Lane::Lane(std::string name, std::size_t capacity_pow2)
    : name_(std::move(name)),
      ring_(capacity_pow2),
      mask_(capacity_pow2 - 1) {}

std::vector<TraceEvent> Lane::events() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h, ring_.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = h - n; i < h; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = round_up_pow2(std::max<std::size_t>(events, 2));
}

Lane* Tracer::acquire(std::string name) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find_if(free_.begin(), free_.end(), [&](const Lane* lane) {
    return lane->name() == name;
  });
  if (it != free_.end()) {
    Lane* lane = *it;
    free_.erase(it);
    return lane;
  }
  lanes_.push_back(std::make_unique<Lane>(std::move(name), capacity_));
  return lanes_.back().get();
}

void Tracer::release(Lane* lane) {
  if (lane == nullptr) return;
  std::lock_guard<std::mutex> lk(mu_);
  free_.push_back(lane);
}

std::vector<LaneSnapshot> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LaneSnapshot> out;
  out.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    LaneSnapshot snap;
    snap.name = lane->name();
    snap.events = lane->events();
    snap.emitted = lane->emitted();
    out.push_back(std::move(snap));
  }
  return out;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  free_.clear();
  lanes_.clear();
}

Lane* exchange_thread_lane(Lane* lane) {
  Lane* prev = detail::tls_lane;
  detail::tls_lane = lane;
  return prev;
}

ThreadLane::ThreadLane(std::string name) {
  prev_ = detail::tls_lane;
  lane_ = Tracer::instance().acquire(std::move(name));
  if (lane_ != nullptr) detail::tls_lane = lane_;
}

ThreadLane::~ThreadLane() {
  if (lane_ != nullptr) {
    detail::tls_lane = prev_;
    Tracer::instance().release(lane_);
  }
}

}  // namespace dampi::obs
