// Figure 9: ADLB with bounded mixing — interleavings explored vs
// process count for k = 0, 1, 2.
//
// Paper: ADLB's degree of non-determinism is "usually far beyond that of
// a typical MPI program"; verifying it unbounded is impractical even for
// a dozen processes, while bounded mixing keeps the counts tractable
// (tens of thousands at 32 procs for k=2) and growing smoothly.
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "workloads/adlb.hpp"

using namespace dampi;

int main() {
  bench::banner(
      "Figure 9 — ADLB with bounded mixing (interleavings vs procs)",
      "bounded mixing keeps ADLB's enormous interleaving space tractable; "
      "counts grow with procs and with k");

  const std::uint64_t cap = bench::quick_mode() ? 1500 : 8000;
  const std::vector<int> proc_counts =
      bench::quick_mode() ? std::vector<int>{4, 8}
                          : std::vector<int>{4, 8, 12, 16, 20, 24, 28, 32};
  const std::vector<std::optional<int>> bounds = {0, 1, 2};

  TextTable table;
  table.header({"procs", "k=0", "k=1", "k=2"});

  bench::WallTimer total;
  for (const int procs : proc_counts) {
    workloads::adlb::Config config;
    config.roots_per_server = 3;
    config.children_per_unit = 1;
    config.spawn_depth = 1;
    config.compute_us_per_unit = 25.0;
    std::vector<std::string> cells = {std::to_string(procs)};
    for (const auto& k : bounds) {
      core::ExplorerOptions options;
      options.nprocs = procs;
      options.mixing_bound = k;
      options.max_interleavings = cap;
      core::Explorer explorer(options);
      const auto result = explorer.explore([config](mpism::Proc& p) {
        workloads::adlb::run(p, config);
      });
      std::string cell = std::to_string(result.interleavings);
      if (result.interleaving_budget_exhausted) cell = ">" + cell;
      cells.push_back(std::move(cell));
      if (result.found_bug()) {
        std::printf("unexpected ADLB bug at procs=%d!\n", procs);
        return 1;
      }
    }
    table.row(std::move(cells));
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: counts rise with both procs and k, staying "
              "far below the astronomic unbounded space (\">N\" marks the "
              "cap).\n");
  std::printf("(harness wall time: %.1fs)\n\n", total.seconds());

  // Replay-worker pool on the smallest ADLB scale (quick to rerun).
  // ADLB's self-run is natively racy, and bounded-mixing windows anchor
  // to whatever it matched, so independent explorations land on slightly
  // different counts at *any* jobs value — no equality check here; the
  // jobs-determinism guarantee is enforced by test_explorer_parallel on
  // deterministic fixtures.
  const int top_jobs = bench::env_jobs();
  const int jprocs = proc_counts.front();
  workloads::adlb::Config jconfig;
  jconfig.roots_per_server = 3;
  jconfig.children_per_unit = 1;
  jconfig.spawn_depth = 1;
  jconfig.compute_us_per_unit = 25.0;
  std::printf("Replay-worker pool on the procs=%d k=2 row:\n", jprocs);
  TextTable jt;
  jt.header({"jobs", "interleavings", "wall (s)", "speedup"});
  double base_wall = 0;
  std::uint64_t base_count = 0;
  for (const int jobs : {1, top_jobs}) {
    core::ExplorerOptions options;
    options.nprocs = jprocs;
    options.mixing_bound = 2;
    options.max_interleavings = cap;
    options.jobs = jobs;
    core::Explorer explorer(options);
    bench::WallTimer timer;
    const auto result = explorer.explore(
        [jconfig](mpism::Proc& p) { workloads::adlb::run(p, jconfig); });
    const double wall = timer.seconds();
    if (jobs == 1) {
      base_wall = wall;
      base_count = result.interleavings;
    }
    jt.row({std::to_string(jobs), std::to_string(result.interleavings),
            fmt_fixed(wall, 2),
            fmt_fixed(base_wall / std::max(wall, 1e-9), 2) + "x"});
  }
  std::printf("%s\n", jt.str().c_str());
  std::printf("(counts may differ a little between rows: each row is an "
              "independent exploration and ADLB's self-run is natively "
              "racy; jobs never changes the result for a fixed self-run)\n");
  (void)base_count;
  return 0;
}
