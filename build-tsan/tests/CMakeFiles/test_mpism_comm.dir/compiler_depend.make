# Empty compiler generated dependencies file for test_mpism_comm.
# This may be replaced when dependencies are built.
