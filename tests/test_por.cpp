// Partial-order reduction suite (ctest label `por`):
//
//  - spec round-trip for --por / DAMPI_POR parsing;
//  - unit coverage of the independence relation's dependent cases
//    (Lamport fallback, same rank, contested sender, receiver
//    involvement, causal order) and its one independent case;
//  - exact interleaving counts on the disjoint fan-in-groups fixture:
//    --por off walks the 2^k cross-product, sleep-set pruning walks
//    k+1 runs with the same per-epoch outcome sets;
//  - the adversarial all-pairs fixture where nothing commutes and sleep
//    must equal off run-for-run;
//  - commutation property: for randomized programs, every pair the
//    relation calls independent really commutes — forcing both flips in
//    either schedule-construction order yields bit-identical reports;
//  - a 64-seed differential (thread|coop x linear|indexed, vector
//    clocks): same bug set, same per-epoch outcome sets, never more
//    interleavings than --por off;
//  - checkpoint round-trip of sleep sets, footprints, and pending-sleep
//    frames (the kill/resume exactness surface).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strutil.hpp"
#include "core/checkpoint.hpp"
#include "core/por.hpp"
#include "core/shard.hpp"
#include "support/program_gen.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::ClockMode;
using core::DecisionFootprint;
using core::EpochKey;
using core::Explorer;
using core::ExplorerOptions;
using core::PorMode;
using core::Schedule;
using dampi::strfmt;
using mpism::MatchKind;
using mpism::SchedulerKind;

#define SKIP_WITHOUT_COOP()                                              \
  if (!mpism::coop_supported()) {                                        \
    GTEST_SKIP() << "coop fibers unsupported in this build (sanitizer)"; \
  }

/// Every deterministic field of a RunReport, doubles in %a hex form
/// (wall_seconds is excluded by design — it is the one
/// non-deterministic field).
std::string fingerprint(const mpism::RunReport& r) {
  std::string s = strfmt(
      "completed=%d deadlocked=%d vtime=%a comm_leaks=%d req_leaks=%llu "
      "msgs=%llu tool_msgs=%llu",
      r.completed ? 1 : 0, r.deadlocked ? 1 : 0, r.vtime_us, r.comm_leaks,
      static_cast<unsigned long long>(r.request_leaks),
      static_cast<unsigned long long>(r.messages_sent),
      static_cast<unsigned long long>(r.stats.tool_messages));
  s += "\ndeadlock_detail=" + r.deadlock_detail;
  for (const auto& e : r.errors) {
    s += strfmt("\nerror rank=%d ", e.rank) + e.message;
  }
  for (std::size_t c = 0; c < mpism::OpStats::kNumCategories; ++c) {
    s += strfmt("\ncat%zu:", c);
    for (const auto v : r.stats.counts[c]) {
      s += strfmt(" %llu", static_cast<unsigned long long>(v));
    }
  }
  return s;
}

TEST(PorSpec, ParseAndFormatRoundTrip) {
  PorMode mode = PorMode::kSleep;
  ASSERT_TRUE(core::parse_por_spec("off", &mode));
  EXPECT_EQ(mode, PorMode::kOff);
  EXPECT_STREQ(core::por_spec(mode), "off");
  ASSERT_TRUE(core::parse_por_spec("sleep", &mode));
  EXPECT_EQ(mode, PorMode::kSleep);
  EXPECT_STREQ(core::por_spec(mode), "sleep");
  mode = PorMode::kOff;
  EXPECT_FALSE(core::parse_por_spec("persistent", &mode));
  EXPECT_FALSE(core::parse_por_spec("", &mode));
  EXPECT_EQ(mode, PorMode::kOff);  // failed parse leaves *out alone
}

// ---------------------------------------------------------------------
// Independence relation unit cases.

DecisionFootprint fp(int rank, std::vector<mpism::Rank> candidates,
                     std::vector<std::uint64_t> vc,
                     mpism::Tag tag = mpism::kAnyTag,
                     mpism::CommId comm = mpism::kCommWorld) {
  DecisionFootprint f;
  f.rank = rank;
  f.comm = comm;
  f.tag = tag;
  f.candidates = std::move(candidates);
  f.vc = std::move(vc);
  return f;
}

TEST(Independence, LamportModeIsAlwaysDependent) {
  // No vector evidence → conservative fallback, nothing prunes.
  EXPECT_FALSE(core::independent(fp(0, {2}, {}), fp(1, {3}, {})));
  EXPECT_FALSE(core::independent(fp(0, {2}, {1, 0, 0, 0}), fp(1, {3}, {})));
}

TEST(Independence, SameRankIsDependent) {
  EXPECT_FALSE(core::independent(fp(0, {2}, {1, 0, 0, 0}),
                                 fp(0, {3}, {2, 0, 0, 0})));
}

TEST(Independence, ContestedSenderIsDependent) {
  // Source 2 feeds both decisions on compatible channels.
  EXPECT_FALSE(core::independent(fp(0, {2, 3}, {5, 0, 0, 0, 0}),
                                 fp(1, {2, 4}, {0, 5, 0, 0, 0})));
  // A wildcard tag is compatible with any concrete tag.
  EXPECT_FALSE(core::independent(
      fp(0, {2, 3}, {5, 0, 0, 0, 0}, /*tag=*/7),
      fp(1, {2, 4}, {0, 5, 0, 0, 0}, mpism::kAnyTag)));
  // Distinct concrete tags cannot contest a message — independent.
  EXPECT_TRUE(core::independent(fp(0, {2, 3}, {5, 0, 0, 0, 0}, /*tag=*/7),
                                fp(1, {2, 4}, {0, 5, 0, 0, 0}, /*tag=*/8)));
}

TEST(Independence, ReceiverInvolvementIsDependent) {
  // Decision b may bind a send from a's receiver rank 0: a's outcome
  // shapes what rank 0 does next, which can change what b sees.
  EXPECT_FALSE(core::independent(fp(0, {2}, {5, 0, 0, 0}),
                                 fp(1, {0, 3}, {0, 5, 0, 0})));
}

TEST(Independence, CausalOrderIsDependent) {
  // b's clock has caught up with a's own component: a happened before b.
  EXPECT_FALSE(core::independent(fp(0, {2}, {5, 0, 0, 0}),
                                 fp(1, {3}, {6, 9, 0, 0})));
}

TEST(Independence, DisjointConcurrentDecisionsCommute) {
  EXPECT_TRUE(core::independent(fp(0, {2}, {5, 0, 0, 0}),
                                fp(1, {3}, {4, 9, 0, 0})));
}

// ---------------------------------------------------------------------
// Whole-walk sweeps.

struct SweepResult {
  core::ExploreResult result;
  std::set<std::string> bug_keys;
  /// Per-epoch outcome basis: every matched source each decision took
  /// across the whole walk. POR preserves this set (and the bug set);
  /// only the joint cross-product shrinks.
  std::map<EpochKey, std::set<int>> outcomes;
};

SweepResult sweep(const ExplorerOptions& options,
                  const mpism::ProgramFn& program) {
  SweepResult s;
  Explorer explorer(options);
  s.result = explorer.explore(
      program, [&s](const core::RunTrace& trace, const mpism::RunReport&,
                    const Schedule&) {
        for (const auto& e : trace.epochs) {
          if (e.matched_src_world >= 0) {
            s.outcomes[e.key].insert(e.matched_src_world);
          }
        }
      });
  for (const auto& bug : s.result.bugs) {
    s.bug_keys.insert(core::bug_key(bug));
  }
  return s;
}

ExplorerOptions vector_options(int nprocs, PorMode por) {
  ExplorerOptions options = explorer_options(nprocs);
  options.clock_mode = ClockMode::kVector;
  options.por = por;
  return options;
}

TEST(Por, FanInGroupsPrunesTheCrossProduct) {
  // 3 disjoint groups = 3 commuting binary decisions: off walks 2^3,
  // sleep needs one extra run per flip beyond the self-run.
  const auto program = [](mpism::Proc& p) {
    workloads::fan_in_groups(p, 3);
  };
  const auto off = sweep(vector_options(9, PorMode::kOff), program);
  const auto sleep = sweep(vector_options(9, PorMode::kSleep), program);

  EXPECT_EQ(off.result.interleavings, 8u);
  EXPECT_EQ(sleep.result.interleavings, 4u);
  EXPECT_GT(sleep.result.por_pruned, 0u);
  EXPECT_EQ(off.result.por_pruned, 0u);

  EXPECT_EQ(off.bug_keys, sleep.bug_keys);
  EXPECT_EQ(off.outcomes, sleep.outcomes);
  // Both receives per root are epochs; flipping the first hands the
  // leftover to the second, so every outcome set holds both senders.
  ASSERT_EQ(sleep.outcomes.size(), 6u);
  for (const auto& [key, sources] : sleep.outcomes) {
    EXPECT_EQ(sources.size(), 2u) << "rank " << key.rank;
  }
}

TEST(Por, LamportModePrunesNothingEvenUnderSleep) {
  // Default clocks record no vectors, so the relation has no evidence
  // and --por sleep must walk exactly the off cross-product.
  const auto program = [](mpism::Proc& p) {
    workloads::fan_in_groups(p, 3);
  };
  ExplorerOptions options = explorer_options(9);
  options.por = PorMode::kSleep;
  const auto lamport = sweep(options, program);
  EXPECT_EQ(lamport.result.interleavings, 8u);
  EXPECT_EQ(lamport.result.por_pruned, 0u);
}

TEST(Por, AllPairsChurnPrunesNothing) {
  // Every candidate set overlaps with every other: nothing commutes,
  // and sleep must match off run-for-run.
  const auto program = [](mpism::Proc& p) {
    workloads::all_pairs_churn(p, 1);
  };
  const auto off = sweep(vector_options(3, PorMode::kOff), program);
  const auto sleep = sweep(vector_options(3, PorMode::kSleep), program);
  EXPECT_EQ(off.result.interleavings, sleep.result.interleavings);
  EXPECT_EQ(sleep.result.por_pruned, 0u);
  EXPECT_GT(sleep.result.por_dependent_pairs, 0u);
  EXPECT_EQ(off.bug_keys, sleep.bug_keys);
  EXPECT_EQ(off.outcomes, sleep.outcomes);
}

// ---------------------------------------------------------------------
// Commutation property: pairs the relation calls independent really do
// commute — forcing both flips is feasible and the result does not
// depend on the order the schedule was assembled in.

TEST(Por, IndependentPairsCommuteOnRandomPrograms) {
  SKIP_WITHOUT_COOP();
  // Random soups on few ranks are all-dependent (every candidate set
  // overlaps), so the sweep mixes wider random programs with the
  // disjoint-groups fixture that is guaranteed to contain commuting
  // pairs — the >0 assertion below is never vacuous.
  std::vector<std::pair<int, mpism::ProgramFn>> programs;
  programs.emplace_back(6, [](mpism::Proc& p) {
    workloads::fan_in_groups(p, 2);
  });
  programs.emplace_back(9, [](mpism::Proc& p) {
    workloads::fan_in_groups(p, 3);
  });
  std::vector<GeneratedProgram> generated;
  generated.reserve(24);
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    generated.push_back(generate_program(seed, 6, 8));
  }
  for (const GeneratedProgram& prog : generated) {
    programs.emplace_back(prog.nprocs, [&prog](mpism::Proc& p) {
      run_generated(p, prog);
    });
  }

  int pairs_checked = 0;
  for (std::size_t pi = 0; pi < programs.size(); ++pi) {
    const int nprocs = programs[pi].first;
    const mpism::ProgramFn& program = programs[pi].second;
    const std::size_t seed = pi;  // for failure messages

    ExplorerOptions options = vector_options(nprocs, PorMode::kOff);
    options.sched.kind = SchedulerKind::kCoop;
    const auto self = run_dampi_once(options, Schedule{}, program);

    for (std::size_t i = 0; i < self.trace.epochs.size(); ++i) {
      for (std::size_t j = i + 1; j < self.trace.epochs.size(); ++j) {
        const auto& a = self.trace.epochs[i];
        const auto& b = self.trace.epochs[j];
        if (a.alternatives.empty() || b.alternatives.empty()) continue;
        if (!core::independent(core::epoch_footprint(a),
                               core::epoch_footprint(b))) {
          continue;
        }
        const mpism::Rank alt_a = a.alternatives.begin()->first;
        const mpism::Rank alt_b = b.alternatives.begin()->first;

        Schedule ab;
        ab.forced[a.key] = alt_a;
        ab.forced[b.key] = alt_b;
        Schedule ba;
        ba.forced[b.key] = alt_b;
        ba.forced[a.key] = alt_a;

        const auto run_ab = run_dampi_once(options, ab, program);
        const auto run_ba = run_dampi_once(options, ba, program);

        // Both flips honored simultaneously (the pair is feasible)...
        const auto* ea = find_epoch(run_ab.trace, a.key.rank, a.key.nd_index);
        const auto* eb = find_epoch(run_ab.trace, b.key.rank, b.key.nd_index);
        ASSERT_NE(ea, nullptr) << "seed " << seed;
        ASSERT_NE(eb, nullptr) << "seed " << seed;
        EXPECT_EQ(ea->matched_src_world, alt_a) << "seed " << seed;
        EXPECT_EQ(eb->matched_src_world, alt_b) << "seed " << seed;
        // ...and construction order is invisible, bit for bit.
        EXPECT_EQ(fingerprint(run_ab.report), fingerprint(run_ba.report))
            << "seed " << seed;
        ++pairs_checked;
      }
    }
  }
  // The generator must actually exercise the relation.
  EXPECT_GT(pairs_checked, 0);
}

// ---------------------------------------------------------------------
// 64-seed differential: --por sleep ≡ --por off on bug sets and
// per-epoch outcome sets, never with more interleavings, across the
// scheduler x matcher grid under vector clocks (the mode where pruning
// actually fires).

TEST(Por, DifferentialSleepEqualsOffAcrossSchedAndMatch) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const bool coop = (seed % 2) == 1;
    if (coop && !mpism::coop_supported()) continue;
    const int nprocs = 3 + static_cast<int>(seed % 2);
    const GeneratedProgram prog = generate_program(seed, nprocs, 5);
    const auto program = [&prog](mpism::Proc& p) { run_generated(p, prog); };

    ExplorerOptions off_options = vector_options(nprocs, PorMode::kOff);
    off_options.sched.kind =
        coop ? SchedulerKind::kCoop : SchedulerKind::kThread;
    off_options.match =
        (seed / 2) % 2 == 0 ? MatchKind::kLinear : MatchKind::kIndexed;
    ExplorerOptions sleep_options = off_options;
    sleep_options.por = PorMode::kSleep;

    const auto off = sweep(off_options, program);
    const auto sleep = sweep(sleep_options, program);

    EXPECT_EQ(off.bug_keys, sleep.bug_keys) << "seed " << seed;
    EXPECT_EQ(off.outcomes, sleep.outcomes) << "seed " << seed;
    EXPECT_LE(sleep.result.interleavings, off.result.interleavings)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Distributed campaigns under --por sleep: sharding must not resurrect
// schedules the sequential sleep walk prunes. Full-depth shard
// skeletons carry the frontier's seen sets into every worker's harvest,
// and the coordinator dedups escapes by canonical site id (commuting
// prefix decisions dropped), so the campaign lands on exactly the
// sequential count.

/// The coordinator's shard/escape loop driven in-process (the same
/// shape as test_dist's harness), accumulating the POR sweep surfaces.
SweepResult sweep_sharded(const ExplorerOptions& base,
                          const mpism::ProgramFn& program,
                          std::size_t max_shards) {
  SweepResult s;
  const auto observe = [&s](const core::RunTrace& trace,
                            const mpism::RunReport&, const Schedule&) {
    for (const auto& e : trace.epochs) {
      if (e.matched_src_world >= 0) {
        s.outcomes[e.key].insert(e.matched_src_world);
      }
    }
  };

  ExplorerOptions disc = base;
  disc.discovery_only = true;
  core::ExploreResult discovered = Explorer(disc).explore(program, observe);
  const std::string fp = core::options_fingerprint(base);
  core::Checkpoint root;
  root.fingerprint = fp;
  root.frames = discovered.frontier;

  core::CampaignMerge merge(std::move(discovered), base.por);
  std::deque<core::Checkpoint> queue;
  for (core::Checkpoint& cp :
       core::split_frontier(root, max_shards, base.por)) {
    merge.register_shard_sites(cp);
    queue.push_back(std::move(cp));
  }
  while (!queue.empty()) {
    core::Checkpoint shard = std::move(queue.front());
    queue.pop_front();
    std::vector<core::EscapedAlt> escapes;
    ExplorerOptions options = base;
    options.resume_from =
        std::make_shared<const core::Checkpoint>(std::move(shard));
    options.on_escape = [&escapes](const core::EscapedAlt& e) {
      escapes.push_back(e);
    };
    merge.add(Explorer(options).explore(program, observe));
    for (const core::EscapedAlt& e : escapes) {
      if (!merge.escape_is_new(e)) continue;
      core::Checkpoint next = core::make_escape_shard(e, fp);
      merge.register_shard_sites(next);
      queue.push_back(std::move(next));
    }
  }
  s.result = merge.finish();
  for (const auto& bug : s.result.bugs) {
    s.bug_keys.insert(core::bug_key(bug));
  }
  return s;
}

TEST(Por, ShardedCampaignMatchesSequentialSleep) {
  const auto program = [](mpism::Proc& p) {
    workloads::fan_in_groups(p, 3);
  };
  const ExplorerOptions options = vector_options(9, PorMode::kSleep);
  const auto seq = sweep(options, program);
  ASSERT_EQ(seq.result.interleavings, 4u);  // the pruned baseline

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{0}}) {
    const auto campaign = sweep_sharded(options, program, shards);
    EXPECT_EQ(campaign.result.interleavings, seq.result.interleavings)
        << "shards=" << shards;
    EXPECT_EQ(campaign.bug_keys, seq.bug_keys) << "shards=" << shards;
    EXPECT_EQ(campaign.outcomes, seq.outcomes) << "shards=" << shards;
  }
}

TEST(Por, ShardedSleepDifferentialAgainstSequentialOff) {
  // Campaign-level soundness on generated programs: the sharded sleep
  // walk keeps the off walk's bug sets and outcome basis while never
  // exploring more interleavings.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const int nprocs = 4 + static_cast<int>(seed % 3);
    const GeneratedProgram prog = generate_program(seed, nprocs, 6);
    const auto program = [&prog](mpism::Proc& p) { run_generated(p, prog); };

    const auto off = sweep(vector_options(nprocs, PorMode::kOff), program);
    const auto campaign =
        sweep_sharded(vector_options(nprocs, PorMode::kSleep), program,
                      2 + seed % 2);

    EXPECT_EQ(off.bug_keys, campaign.bug_keys) << "seed " << seed;
    EXPECT_EQ(off.outcomes, campaign.outcomes) << "seed " << seed;
    EXPECT_LE(campaign.result.interleavings, off.result.interleavings)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Checkpoint round-trip of the POR surfaces.

TEST(Por, CheckpointRoundTripsSleepAndPendingFrames) {
  core::Checkpoint cp;
  cp.fingerprint = "test";
  cp.interleavings = 3;

  core::DfsFrame frame;
  frame.key = EpochKey{1, 2};
  frame.taken_src = 0;
  frame.untried = {2, 3};
  frame.seen = {0, 2, 3, 4};
  frame.sleep = {4};
  frame.comm = 5;
  frame.tag = 7;
  frame.vc = {9, 0, 4};
  cp.frames.push_back(frame);

  core::DfsFrame plain;  // defaults: no sleep, world comm, any tag, no vc
  plain.key = EpochKey{0, 0};
  plain.taken_src = 1;
  plain.seen = {1};
  cp.frames.push_back(plain);

  core::DfsFrame pending = frame;
  pending.key = EpochKey{2, 0};
  pending.untried.clear();
  cp.pending_sleep.push_back(pending);

  const std::string text = core::serialize_checkpoint(cp);
  std::string error;
  const auto parsed = core::parse_checkpoint(text, "test", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->frames.size(), 2u);
  ASSERT_EQ(parsed->pending_sleep.size(), 1u);

  const core::DfsFrame& round = parsed->frames[0];
  EXPECT_EQ(round.key, frame.key);
  EXPECT_EQ(round.untried, frame.untried);
  EXPECT_EQ(round.seen, frame.seen);
  EXPECT_EQ(round.sleep, frame.sleep);
  EXPECT_EQ(round.comm, frame.comm);
  EXPECT_EQ(round.tag, frame.tag);
  EXPECT_EQ(round.vc, frame.vc);

  const core::DfsFrame& round_plain = parsed->frames[1];
  EXPECT_TRUE(round_plain.sleep.empty());
  EXPECT_EQ(round_plain.comm, mpism::kCommWorld);
  EXPECT_EQ(round_plain.tag, mpism::kAnyTag);
  EXPECT_TRUE(round_plain.vc.empty());

  const core::DfsFrame& round_pending = parsed->pending_sleep[0];
  EXPECT_EQ(round_pending.key, pending.key);
  EXPECT_EQ(round_pending.seen, pending.seen);
  EXPECT_EQ(round_pending.sleep, pending.sleep);
  EXPECT_EQ(round_pending.vc, pending.vc);
}

}  // namespace
}  // namespace dampi::test
