// Engine: internal implementation of the mpism runtime.
//
// Shared state is guarded by an EngineLock (engine_lock.hpp): either one
// global mutex (the pre-shard baseline, --engine-lock global) or
// per-destination-rank shards (the default). Under sharding, everything
// owned by rank r — its match index, unexpected/posted queues, request
// table, pools, virtual clock, and block/wake bookkeeping — lives behind
// shard r; a send acquires the {sender, receiver} shard pair in
// ascending order; collectives, communicator management, and the
// count-based deadlock scan take all shards (ascending); verdict flags,
// counters, and id assignment are atomics. How ranks execute — one OS
// thread each, or cooperative fibers multiplexed run-to-block onto the
// calling thread — is delegated to a pluggable RankScheduler
// (mpism/scheduler.hpp); the engine only tells it when a rank blocks and
// whose wake predicate may have flipped. Matching is *eager*: every send
// is matched against posted receives at injection time and every receive
// against queued sends at post time, so the invariant "no pending posted
// receive is compatible with any queued unexpected message" holds at all
// times. Under eager sends this makes "every live rank is blocked" an
// exact deadlock criterion.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpism/comm.hpp"
#include "mpism/engine_lock.hpp"
#include "mpism/envelope.hpp"
#include "mpism/match_index.hpp"
#include "mpism/pool.hpp"
#include "mpism/report.hpp"
#include "mpism/request.hpp"
#include "mpism/runtime.hpp"
#include "mpism/scheduler.hpp"
#include "mpism/tool.hpp"

namespace dampi::mpism {

/// Thrown inside a rank thread when the run has been aborted elsewhere
/// (another rank failed, or a deadlock was detected). Control flow only.
struct AbortRun {};

/// Thrown to report a bug in the program under test.
struct ProgramFailure {
  std::string message;
};

/// User data flowing into a collective (fields used depend on the kind).
struct CollUserData {
  Bytes single;              ///< bcast (root) / reduce / gather / allgather
  std::vector<Bytes> multi;  ///< scatter (root) / alltoall
  ReduceOp op = ReduceOp::kSumU64;
  int color = 0;
  int key = 0;
};

/// User data flowing out of a collective.
struct CollUserResult {
  Bytes single;              ///< bcast / reduce@root / allreduce / scatter
  std::vector<Bytes> multi;  ///< gather@root / allgather / alltoall
  CommId new_comm = kCommNull;
};

class Engine {
 public:
  explicit Engine(RunOptions options);
  ~Engine();

  RunReport run(const ProgramFn& program);

  /// External cancellation: ends the run (RunReport::cancelled) from any
  /// thread. Safe at any time — before run() (the run aborts on entry),
  /// during (every rank unwinds), or after completion (no-op). Loses to
  /// an already-declared verdict (deadlock/abort), never overrides one.
  void cancel(const std::string& reason);

  // --- Proc-facing API (travels through the tool stack) -------------------
  RequestId api_isend(Rank r, Rank dst, Tag tag, Bytes payload, CommId comm,
                      bool blocking, bool synchronous);
  RequestId api_irecv(Rank r, Rank src, Tag tag, CommId comm, bool blocking);
  Status api_wait(Rank r, RequestId req, Bytes* out, bool count_stat);
  bool api_test(Rank r, RequestId req, Status* status, Bytes* out);
  void api_waitall(Rank r, std::span<RequestId> reqs);
  std::size_t api_waitany(Rank r, std::span<RequestId> reqs, Status* status,
                          Bytes* out);
  bool api_testall(Rank r, std::span<RequestId> reqs);
  std::size_t api_testany(Rank r, std::span<RequestId> reqs, Status* status,
                          Bytes* out);
  /// flag == nullptr -> blocking probe; otherwise iprobe semantics.
  Status api_probe(Rank r, Rank src, Tag tag, CommId comm, bool* flag);
  CollUserResult api_collective(Rank r, CollKind kind, CommId comm, Rank root,
                                CollUserData data);
  void api_comm_free(Rank r, CommId comm);
  void api_pcontrol(Rank r, int level, const std::string& what);
  void api_compute(Rank r, double us);
  [[noreturn]] void api_fail(Rank r, const std::string& message);

  // --- translation / introspection ----------------------------------------
  int world_size() const { return opts_.nprocs; }
  int comm_size_of(CommId comm);
  Rank comm_rank_of(CommId comm, Rank world);
  Rank to_world(CommId comm, Rank rel);
  Rank to_rel(CommId comm, Rank world);

  // --- ToolCtx raw services (bypass the tool stack) ------------------------
  RequestId raw_isend(Rank r, Rank dst, Tag tag, CommId comm, Bytes payload);
  RequestId raw_irecv(Rank r, Rank src, Tag tag, CommId comm);
  Status raw_wait(Rank r, RequestId req, Bytes* out);
  Status raw_recv(Rank r, Rank src, Tag tag, CommId comm, Bytes* out);
  bool raw_iprobe(Rank r, Rank src, Tag tag, CommId comm, Status* status);
  void raw_barrier(Rank r, CommId comm);
  CommId raw_comm_dup(Rank r, CommId comm);
  void add_cost(Rank r, double us);
  double vtime_of(Rank r);

 private:
  enum class BlockKind { kNone, kWait, kProbe, kColl };

  struct PerRank {
    /// Pools are declared before the request table and match index so
    /// they outlive the structures that release into them at teardown.
    /// Owned by this rank's shard (every access holds it).
    SlabPool<RequestRecord> req_pool;
    BufferPool buf_pool;
    /// Virtual clock. Single-writer (the owning rank, under its shard);
    /// read cross-shard by budget charges and the final report, so it is
    /// atomic with relaxed ordering.
    std::atomic<double> vtime{0.0};
    bool finished = false;
    bool blocked = false;
    BlockKind block_kind = BlockKind::kNone;
    std::string block_desc;
    /// Wake predicate of the blocked operation; consulted by the deadlock
    /// detector so a satisfied-but-not-yet-woken rank is not misread as
    /// stuck.
    std::function<bool()> block_pred;
    /// Unexpected-message and posted-receive queues (linear or indexed,
    /// per RunOptions::match). Holds non-owning pointers into `reqs` for
    /// posted receives; a record stays indexed until matched.
    std::unique_ptr<MatchIndex> match;
    /// Wildcard-candidate out-buffer, reused across queries so the hot
    /// path stops allocating a vector per receive/probe.
    std::vector<MatchCandidate> cand_buf;
    std::unordered_map<RequestId, PoolPtr<RequestRecord>> reqs;
    std::unordered_map<CommId, std::uint64_t> coll_gen;
    /// Per-(dst, comm) send sequence counters, owned by the *sender*
    /// shard (key packs dst and comm).
    std::unordered_map<std::uint64_t, std::uint64_t> seq_counters;
    std::vector<std::unique_ptr<ToolLayer>> tools;
    std::unique_ptr<ToolCtx> ctx;

    double vt() const { return vtime.load(std::memory_order_relaxed); }
    void vt_store(double v) { vtime.store(v, std::memory_order_relaxed); }
    void vt_add(double us) { vt_store(vt() + us); }
    void vt_floor(double v) {
      if (v > vt()) vt_store(v);
    }
  };

  struct CollSlot {
    CollKind kind = CollKind::kBarrier;
    Rank root_world = -1;
    int arrived = 0;
    int departed = 0;
    bool root_arrived = false;
    double max_arrival_vtime = 0.0;
    double root_arrival_vtime = 0.0;
    std::vector<Bytes> pb;
    std::vector<Bytes> data;
    std::vector<std::vector<Bytes>> multi;
    std::vector<int> colors;
    std::vector<int> keys;
    ReduceOp op = ReduceOp::kSumU64;
    bool op_set = false;
    // Lazily computed results.
    bool merged_pb_done = false;
    Bytes merged_pb;
    bool reduced_done = false;
    Bytes reduced;
    bool split_done = false;
    std::vector<CommId> comm_of_member;
    CommId dup_comm = kCommNull;
  };

  // Internal primitives; `g` must cover the shards named per method (at
  // minimum shard r; do_isend additionally dst_world; collective paths
  // hold all shards).
  RequestId do_isend(EngineGuard& g, Rank r, Rank dst_world, Tag tag,
                     CommId comm, Bytes payload, bool tool_internal,
                     bool synchronous, SendInfo* info);
  RequestId do_irecv(EngineGuard& g, Rank r, Rank src_world, Tag tag,
                     CommId comm, bool tool_internal);
  /// Blocks until `req` completes; does not consume.
  void block_until_complete(EngineGuard& g, Rank r, RequestId req);
  /// Runs post_wait hooks (guard dropped) and consumes the request.
  Status finish_request(EngineGuard& g, Rank r, RequestId req, Bytes* out,
                        bool run_hooks);
  /// Try to match a newly arrived envelope against dst's posted receives
  /// (guard must cover shard dst). Returns true when matched (request
  /// completed).
  bool match_arrival(Rank dst, Envelope&& env);
  void complete_recv(Rank r, RequestRecord& rec, Envelope&& env);
  /// Fresh pooled request record from r's slab (shard r held).
  PoolPtr<RequestRecord> new_request(PerRank& me);

  /// Enter the blocked state and wait for `pred`; throws AbortRun when the
  /// run aborts or deadlocks while waiting.
  template <typename Pred>
  void blocking_wait(EngineGuard& g, Rank r, BlockKind kind, std::string desc,
                     Pred pred);
  /// Called right before a rank would block (or after it finishes); if
  /// every other live rank is already blocked, declares a deadlock.
  /// Escalates `g` to all shards for the scan (dropping and retaking it
  /// when it holds fewer). A no-op under schedulers that detect stalls
  /// themselves (coop): there a rank can be runnable-but-unscheduled,
  /// which this count-based check cannot see, so the scheduler's
  /// no-candidate scan is authoritative.
  void maybe_declare_deadlock(EngineGuard& g, Rank r);
  /// Declares the deadlock verdict; `g` must hold all shards.
  void declare_deadlock(EngineGuard& g);
  /// Watchdog verdict: a per-run budget expired. Idempotent; loses to an
  /// already-declared abort/deadlock. Takes the verdict mutex itself;
  /// callable with or without shards held.
  void declare_timeout(std::string reason);
  /// Budget accounting at MPI-call entry (shard r held): counts the op,
  /// checks the op/vtime/wall budgets, and unwinds via AbortRun when one
  /// expired. A single predicted-false branch when no budget is armed;
  /// the wall-clock read is amortized over a 32-op stride.
  void charge_op(EngineGuard& g, Rank r);
  void abort_all();
  [[noreturn]] void throw_program_error(EngineGuard& g, Rank r,
                                        const std::string& message);
  void check_abort(EngineGuard& g);
  bool stopped() const {
    return aborted_.load(std::memory_order_acquire) ||
           deadlocked_.load(std::memory_order_acquire);
  }

  // Tool hook dispatch (no shards held: hooks may re-enter).
  void hooks_init(Rank r);
  void hooks_finalize(Rank r);
  void hooks_pre_isend(Rank r, SendCall& call);
  void hooks_post_isend(Rank r, const SendCall& call, RequestId id,
                        const SendInfo& info);
  void hooks_pre_irecv(Rank r, RecvCall& call);
  void hooks_post_irecv(Rank r, const RecvCall& call, RequestId id);
  void hooks_pre_wait(Rank r, RequestId id);
  void hooks_post_wait(Rank r, ReqCompletion& completion);
  void hooks_pre_probe(Rank r, ProbeCall& call);
  void hooks_post_probe(Rank r, const ProbeCall& call, bool flag,
                        Status& status);
  void hooks_pre_collective(Rank r, CollCall& call);
  void hooks_post_collective(Rank r, const CollCall& call,
                             const CollResult& result);
  void hooks_pcontrol(Rank r, int level, const std::string& what);

  CollUserResult collective_impl(Rank r, CollKind kind, CommId comm,
                                 Rank root_rel, CollUserData data,
                                 Bytes pb_contribution, bool tool_internal,
                                 CollResult* tool_result);
  void compute_slot_results(CollSlot& slot, const CommRecord& comm_rec,
                            CollKind kind);
  Bytes apply_reduce(EngineGuard& g, Rank r, const CollSlot& slot,
                     const CommRecord& comm_rec);

  void validate_comm_member(EngineGuard& g, Rank r, CommId comm);
  std::uint64_t& seq_counter(PerRank& sender, Rank dst, CommId comm);

  PerRank& pr(Rank r) { return *ranks_[static_cast<std::size_t>(r)]; }

  /// One rank's whole life: tool-stack setup, the program, finalize, and
  /// result accounting. Runs on whatever execution context (OS thread or
  /// fiber) the scheduler provides; must not leak exceptions into it.
  void rank_body(Rank r, const ProgramFn& program);

  RunOptions opts_;
  EngineLock lock_;
  std::unique_ptr<RankScheduler> sched_;
  std::vector<std::unique_ptr<PerRank>> ranks_;
  /// Guarded by all-shards sections for writes; readers hold any shard
  /// (writers exclude them by holding every shard).
  CommTable comms_;
  /// choose() mutates the policy RNG; serialized by a leaf mutex so
  /// wildcard draws stay well-defined under sharded locking.
  std::mutex policy_mu_;
  std::unique_ptr<MatchPolicy> policy_;
  /// Collective bookkeeping: only touched under all-shards sections.
  std::map<std::pair<CommId, std::uint64_t>, CollSlot> coll_slots_;
  std::atomic<std::uint64_t> next_msg_id_{1};
  std::atomic<RequestId> next_req_id_{1};

  std::atomic<int> blocked_count_{0};
  std::atomic<int> finished_count_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadlocked_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> cancelled_{false};
  /// Leaf mutex (ordered after all shards) guarding the verdict strings
  /// and one-winner arbitration between deadlock/timeout/cancel/error.
  std::mutex verdict_mu_;
  std::string stop_reason_;
  std::string deadlock_detail_;
  std::vector<ErrorInfo> errors_;
  bool budgets_armed_ = false;
  bool has_wall_deadline_ = false;
  std::chrono::steady_clock::time_point run_deadline_{};
  std::atomic<std::uint64_t> ops_executed_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> tool_messages_{0};
  std::atomic<std::uint64_t> request_leaks_{0};
  /// Per-rank slots are written under the owning rank's shard; the
  /// tool-message total lives in tool_messages_ above (cross-rank).
  OpStats stats_;
  /// Envelope small-buffer counters (published as engine.envelope.*).
  std::atomic<std::uint64_t> payload_inline_hits_{0};
  std::atomic<std::uint64_t> payload_heap_spills_{0};

  friend class ToolCtxImpl;
};

}  // namespace dampi::mpism
