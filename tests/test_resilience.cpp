// Resilience: per-run watchdogs (wall / vtime / op budgets) under both
// rank schedulers, external cancellation, deterministic fault injection,
// retry/quarantine accounting, and crash-safe checkpoint/resume.
//
// The central fixture is workloads::livelock — a program that never
// terminates yet always has a live (spinning) rank, which defeats the
// blocked-count deadlock detector by construction. Every test that runs
// it MUST arm a budget or a cancel source.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "mpism/cancel.hpp"
#include "mpism/fault.hpp"
#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::BugRecord;
using core::Checkpoint;
using core::Explorer;
using core::ExplorerOptions;
using core::ExploreResult;
using core::Schedule;
using mpism::CancelSource;
using mpism::FaultPlan;

#define SKIP_WITHOUT_COOP()                                              \
  if (!mpism::coop_supported()) {                                        \
    GTEST_SKIP() << "coop fibers unsupported in this build (sanitizer)"; \
  }

mpism::SchedOptions sched_named(const char* spec) {
  mpism::SchedOptions sched;
  EXPECT_TRUE(mpism::parse_sched_spec(spec, &sched)) << spec;
  return sched;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "dampi_resil_" + name;
}

// --- Engine watchdogs ------------------------------------------------------

TEST(Watchdog, WallDeadlineKillsLivelockUnderThreadSched) {
  RunOptions opts;
  opts.nprocs = 2;
  opts.sched = sched_named("thread");
  opts.max_run_wall_seconds = 0.5;
  const auto report = run_program(std::move(opts), workloads::livelock);
  EXPECT_TRUE(report.timed_out);
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_FALSE(report.cancelled);
  EXPECT_NE(report.stop_reason.find("wall deadline"), std::string::npos)
      << report.stop_reason;
}

TEST(Watchdog, WallDeadlineKillsLivelockUnderCoopSched) {
  SKIP_WITHOUT_COOP();
  RunOptions opts;
  opts.nprocs = 2;
  opts.sched = sched_named("coop");
  opts.max_run_wall_seconds = 0.5;
  const auto report = run_program(std::move(opts), workloads::livelock);
  EXPECT_TRUE(report.timed_out);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.stop_reason.find("wall deadline"), std::string::npos);
}

TEST(Watchdog, OpBudgetExpires) {
  RunOptions opts;
  opts.nprocs = 2;
  opts.max_ops = 200;  // the spinner alone burns this in milliseconds
  const auto report = run_program(std::move(opts), workloads::livelock);
  EXPECT_TRUE(report.timed_out);
  EXPECT_NE(report.stop_reason.find("op budget"), std::string::npos);
}

TEST(Watchdog, VirtualTimeBudgetExpires) {
  RunOptions opts;
  opts.nprocs = 2;
  opts.max_run_vtime_us = 1000.0;
  const auto report = run_program(std::move(opts), workloads::livelock);
  EXPECT_TRUE(report.timed_out);
  EXPECT_NE(report.stop_reason.find("virtual-time"), std::string::npos);
}

TEST(Watchdog, BudgetsDoNotMisfireOnRealDeadlocks) {
  // A genuine deadlock inside a generous wall budget stays a deadlock:
  // timed_out / deadlocked / cancelled are mutually exclusive verdicts.
  RunOptions opts;
  opts.nprocs = 2;
  opts.max_run_wall_seconds = 60.0;
  const auto report = run_program(std::move(opts), workloads::simple_deadlock);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_FALSE(report.timed_out);
  EXPECT_FALSE(report.cancelled);
}

TEST(Cancel, ExternalCancelUnwindsAnInFlightRun) {
  RunOptions opts;
  opts.nprocs = 2;
  opts.cancel = std::make_shared<CancelSource>();
  auto cancel = opts.cancel;
  std::thread firer([cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    cancel->cancel("test cancel");
  });
  const auto report = run_program(std::move(opts), workloads::livelock);
  firer.join();
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.stop_reason, "test cancel");
}

TEST(Cancel, AlreadyFiredSourceAbortsTheRunImmediately) {
  RunOptions opts;
  opts.nprocs = 2;
  opts.cancel = std::make_shared<CancelSource>();
  opts.cancel->cancel("fired before the run");
  // Even the livelock returns promptly: the subscription fires on
  // registration when the source has already been cancelled.
  const auto report = run_program(std::move(opts), workloads::livelock);
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.completed);
}

// --- Fault injection -------------------------------------------------------

TEST(Fault, SpecParsesAndFormatsCanonically) {
  // Points are canonicalized at parse time — sorted by (rank, op, kind)
  // — so the round-tripped spec is the canonical order, not the input
  // order.
  std::string error;
  auto plan = mpism::parse_fault_plan(
      "abort@1:3,error@0:2,delay@2:5:1500,flaky@1:1:2", &error);
  ASSERT_NE(plan, nullptr) << error;
  EXPECT_EQ(mpism::fault_spec(*plan),
            "error@0:2,flaky@1:1:2,abort@1:3,delay@2:5:1500");
}

TEST(Fault, SpellingOrderDoesNotChangeTheCanonicalSpec) {
  // Identical plans in different spellings must fingerprint (and
  // journal-dedup) identically: checkpoint fingerprints embed
  // fault_spec verbatim.
  std::string error;
  auto a = mpism::parse_fault_plan("abort@1:3,error@0:2", &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = mpism::parse_fault_plan("error@0:2,abort@1:3", &error);
  ASSERT_NE(b, nullptr) << error;
  EXPECT_EQ(mpism::fault_spec(*a), mpism::fault_spec(*b));
}

TEST(Fault, BadSpecsAreRejectedWithAMessage) {
  for (const char* bad :
       {"", "abort", "abort@", "abort@1", "abort@x:1", "abort@1:0",
        "delay@1:1", "flaky@1:1:0", "abort@1:1:9", "explode@1:1",
        "abort@1:1,,abort@0:1",
        // Duplicate (rank, op, kind) points — including ones that only
        // differ in their parameter, which would silently double-fire.
        "abort@1:1,abort@1:1", "delay@0:2:100,delay@0:2:900",
        "flaky@2:3:1,flaky@2:3:2"}) {
    std::string error;
    EXPECT_EQ(mpism::parse_fault_plan(bad, &error), nullptr) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  std::string error;
  EXPECT_EQ(mpism::parse_fault_plan("abort@1:1,error@0:2,abort@1:1", &error),
            nullptr);
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("abort@1:1"), std::string::npos) << error;
}

TEST(Fault, OutOfRangeRanksAreCaughtByValidation) {
  std::string error;
  auto plan = mpism::parse_fault_plan("abort@0:1,error@4:2", &error);
  ASSERT_NE(plan, nullptr) << error;
  EXPECT_EQ(mpism::validate_fault_plan(*plan, 5), "");
  const std::string diagnostic = mpism::validate_fault_plan(*plan, 4);
  EXPECT_NE(diagnostic.find("error@4:2"), std::string::npos) << diagnostic;
  EXPECT_NE(diagnostic.find("out of range"), std::string::npos) << diagnostic;
}

TEST(Fault, SeedFiresIsAMonotoneMerge) {
  std::string error;
  auto plan = mpism::parse_fault_plan("flaky@0:1:3,abort@1:2", &error);
  ASSERT_NE(plan, nullptr) << error;
  // Canonical order: flaky@0:1:3 first, abort@1:2 second.
  plan->seed_fires({2, 0});
  EXPECT_EQ(plan->fires(0), 2u);
  EXPECT_EQ(plan->fires(1), 0u);
  // Seeding never re-arms a point: lower counters are ignored.
  plan->seed_fires({1, 1});
  EXPECT_EQ(plan->fires(0), 2u);
  EXPECT_EQ(plan->fires(1), 1u);
  // A size-mismatched seed came from a different plan; it is ignored.
  plan->seed_fires({9, 9, 9});
  EXPECT_EQ(plan->fires(0), 2u);
  // Third arm of flaky@0:1:3 still fires (2 < 3), fourth does not.
  EXPECT_TRUE(plan->should_fire(0));
  EXPECT_FALSE(plan->should_fire(0));
}

TEST(Fault, InjectedAbortFailsTheRunAndCleanRerunsAreUnaffected) {
  ExplorerOptions options = explorer_options(3);
  const ExploreResult baseline =
      Explorer(options).explore(workloads::fig3_benign);
  EXPECT_FALSE(baseline.found_bug());

  ExplorerOptions faulted = explorer_options(3);
  std::string error;
  faulted.fault = mpism::parse_fault_plan("abort@1:1", &error);
  ASSERT_NE(faulted.fault, nullptr) << error;
  const ExploreResult result =
      Explorer(faulted).explore(workloads::fig3_benign);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.bugs.front().kind, BugRecord::Kind::kError);
  ASSERT_FALSE(result.bugs.front().errors.empty());
  EXPECT_NE(result.bugs.front().errors.front().message.find("fault injected"),
            std::string::npos);

  // The injection is a tool layer, not a program change: removing the
  // plan restores the baseline outcome exactly.
  const ExploreResult rerun =
      Explorer(explorer_options(3)).explore(workloads::fig3_benign);
  EXPECT_EQ(rerun.interleavings, baseline.interleavings);
  EXPECT_FALSE(rerun.found_bug());
}

TEST(Fault, DelayChargesVirtualTimeDeterministically) {
  ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 1;
  const ExploreResult baseline =
      Explorer(options).explore(workloads::fig3_benign);

  ExplorerOptions delayed = explorer_options(3);
  delayed.max_interleavings = 1;
  std::string error;
  delayed.fault = mpism::parse_fault_plan("delay@0:1:5000", &error);
  ASSERT_NE(delayed.fault, nullptr) << error;
  const ExploreResult result =
      Explorer(delayed).explore(workloads::fig3_benign);
  EXPECT_FALSE(result.found_bug());
  // The delay lands on rank 0's first op; the run's critical path must
  // now carry it (the baseline fixture finishes well under 5 ms).
  EXPECT_GE(result.first_run_vtime_us, 5000.0);
  EXPECT_GT(result.first_run_vtime_us, baseline.first_run_vtime_us);
}

TEST(Fault, FlakyFaultIsHealedByRetries) {
  // flaky@1:1:2 fires twice campaign-wide; with three retries allowed
  // the third attempt of the discovery run goes through and the
  // exploration ends clean — the retry counter records the recovery.
  ExplorerOptions options = explorer_options(3);
  std::string error;
  options.fault = mpism::parse_fault_plan("flaky@1:1:2", &error);
  ASSERT_NE(options.fault, nullptr) << error;
  options.max_retries = 3;
  const ExploreResult result =
      Explorer(options).explore(workloads::fig3_benign);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.quarantined, 0u);
}

// --- Explorer-level watchdog / retry / quarantine --------------------------

TEST(ExplorerResilience, LivelockBecomesAHangVerdictUnderEveryConfig) {
  struct Config {
    const char* sched;
    int jobs;
  };
  for (const Config& config : {Config{"thread", 1}, Config{"thread", 4},
                               Config{"coop", 1}, Config{"coop", 4}}) {
    if (std::string(config.sched) == "coop" && !mpism::coop_supported()) {
      continue;
    }
    ExplorerOptions options = explorer_options(2);
    options.sched = sched_named(config.sched);
    options.jobs = config.jobs;
    options.run_deadline_seconds = 1.0;
    options.max_interleavings = 4;
    const ExploreResult result =
        Explorer(options).explore(workloads::livelock);
    ASSERT_TRUE(result.found_bug())
        << config.sched << " jobs=" << config.jobs;
    EXPECT_EQ(result.bugs.front().kind, BugRecord::Kind::kHang);
    EXPECT_NE(result.bugs.front().deadlock_detail.find("deadline"),
              std::string::npos);
    EXPECT_GE(result.timeouts, 1u);
  }
}

TEST(ExplorerResilience, HangScheduleReproducesTheHang) {
  ExplorerOptions options = explorer_options(2);
  options.run_deadline_seconds = 0.5;
  const ExploreResult result = Explorer(options).explore(workloads::livelock);
  ASSERT_TRUE(result.found_bug());
  ASSERT_EQ(result.bugs.front().kind, BugRecord::Kind::kHang);
  const auto rerun = core::run_guided_once(options, result.bugs.front().schedule,
                                           workloads::livelock);
  EXPECT_TRUE(rerun.report.timed_out);
}

TEST(ExplorerResilience, GlobalWallBudgetCancelsAnInFlightRun) {
  // No per-run deadline: only the campaign budget can end this. Before
  // this fix the budget was only checked *between* runs, so a wedged
  // discovery run hung the explorer forever.
  ExplorerOptions options = explorer_options(2);
  options.max_wall_seconds = 0.5;
  const auto t0 = std::chrono::steady_clock::now();
  const ExploreResult result = Explorer(options).explore(workloads::livelock);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(result.time_budget_exhausted);
  EXPECT_FALSE(result.interrupted);
  EXPECT_LT(took, 30.0);
  EXPECT_EQ(result.interleavings, 1u);  // partial campaign still reported
}

TEST(ExplorerResilience, ExternalCancelMarksTheWalkInterrupted) {
  ExplorerOptions options = explorer_options(2);
  options.cancel = std::make_shared<CancelSource>();
  auto cancel = options.cancel;
  std::thread firer([cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    cancel->cancel("SIGINT");
  });
  const ExploreResult result = Explorer(options).explore(workloads::livelock);
  firer.join();
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.time_budget_exhausted);
}

TEST(ExplorerResilience, RetriesDoNotChangeTheOutcomeSet) {
  // fig3's failing interleaving fails deterministically: the retry burns
  // attempts, the verdict and the walk shape stay identical, and the
  // still-failing subtree root is quarantined. Pinned to the coop
  // scheduler so the discovery run (and hence which interleaving fails)
  // is deterministic.
  SKIP_WITHOUT_COOP();
  ExplorerOptions options = explorer_options(3);
  options.sched = sched_named("coop");
  const ExploreResult baseline =
      Explorer(options).explore(workloads::fig3_wildcard_bug);
  ASSERT_TRUE(baseline.found_bug());
  ASSERT_GE(baseline.interleavings, 2u);  // benign self-run, failing flip

  ExplorerOptions retried_options = explorer_options(3);
  retried_options.sched = sched_named("coop");
  retried_options.max_retries = 1;
  retried_options.retry_backoff_ms = 0.1;
  const ExploreResult retried =
      Explorer(retried_options).explore(workloads::fig3_wildcard_bug);
  EXPECT_EQ(retried.interleavings, baseline.interleavings);
  ASSERT_EQ(retried.bugs.size(), baseline.bugs.size());
  EXPECT_EQ(retried.bugs.front().kind, baseline.bugs.front().kind);
  EXPECT_EQ(retried.bugs.front().interleaving,
            baseline.bugs.front().interleaving);
  EXPECT_GE(retried.retries, 1u);
  EXPECT_GE(retried.quarantined, 1u);
}

// --- Checkpoint / resume ---------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint cp;
  cp.fingerprint = "sample";
  cp.interleavings = 7;
  cp.retries = 1;
  cp.timeouts = 2;
  cp.quarantined = 3;
  cp.divergences = 4;
  cp.prefix_mismatches = 5;
  core::DfsFrame frame;
  frame.key.rank = 1;
  frame.key.nd_index = 3;
  frame.lc = 9;
  frame.taken_src = 2;
  frame.untried = {0, 2};
  frame.seen = {0, 1, 2};
  frame.record_alts = false;
  frame.mix_budget = 4;
  cp.frames.push_back(frame);
  BugRecord bug;
  bug.kind = BugRecord::Kind::kHang;
  bug.interleaving = 5;
  bug.deadlock_detail = "line one\nline two";
  bug.errors.push_back({1, "rank died \\ badly"});
  bug.schedule.forced[{1, 3}] = 0;
  cp.bugs.push_back(bug);
  cp.unsafe_alerts.push_back("alert with\nnewline");
  cp.fault_fires = {2, 0, 1};
  return cp;
}

TEST(Checkpoint, SerializeParseRoundTrip) {
  const Checkpoint cp = sample_checkpoint();
  std::string error;
  const auto parsed =
      core::parse_checkpoint(core::serialize_checkpoint(cp), "sample", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->fingerprint, cp.fingerprint);
  EXPECT_EQ(parsed->interleavings, cp.interleavings);
  EXPECT_EQ(parsed->retries, cp.retries);
  EXPECT_EQ(parsed->timeouts, cp.timeouts);
  EXPECT_EQ(parsed->quarantined, cp.quarantined);
  EXPECT_EQ(parsed->divergences, cp.divergences);
  EXPECT_EQ(parsed->prefix_mismatches, cp.prefix_mismatches);
  ASSERT_EQ(parsed->frames.size(), 1u);
  EXPECT_EQ(parsed->frames[0].key.rank, 1);
  EXPECT_EQ(parsed->frames[0].key.nd_index, 3u);
  EXPECT_EQ(parsed->frames[0].lc, 9u);
  EXPECT_EQ(parsed->frames[0].taken_src, 2);
  EXPECT_EQ(parsed->frames[0].untried, (std::vector<mpism::Rank>{0, 2}));
  EXPECT_EQ(parsed->frames[0].seen, (std::set<mpism::Rank>{0, 1, 2}));
  EXPECT_FALSE(parsed->frames[0].record_alts);
  EXPECT_EQ(parsed->frames[0].mix_budget, 4);
  ASSERT_EQ(parsed->bugs.size(), 1u);
  EXPECT_EQ(parsed->bugs[0].kind, BugRecord::Kind::kHang);
  EXPECT_EQ(parsed->bugs[0].deadlock_detail, "line one\nline two");
  ASSERT_EQ(parsed->bugs[0].errors.size(), 1u);
  EXPECT_EQ(parsed->bugs[0].errors[0].message, "rank died \\ badly");
  EXPECT_EQ(parsed->bugs[0].schedule.forced.size(), 1u);
  ASSERT_EQ(parsed->unsafe_alerts.size(), 1u);
  EXPECT_EQ(parsed->unsafe_alerts[0], "alert with\nnewline");
  EXPECT_EQ(parsed->fault_fires, (std::vector<std::uint64_t>{2, 0, 1}));
}

TEST(Checkpoint, LoadRefusesCorruptOrForeignFiles) {
  const std::string good = core::serialize_checkpoint(sample_checkpoint());
  std::string error;

  // Fingerprint from a different configuration.
  EXPECT_FALSE(core::parse_checkpoint(good, "other", &error).has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos);

  // Not a checkpoint at all (decision-file-style header discipline).
  EXPECT_FALSE(
      core::parse_checkpoint("# some other file\nend\n", "", &error)
          .has_value());

  // Truncated: a crash mid-write never survives the atomic rename, but a
  // hand-edited file might.
  const std::string truncated = good.substr(0, good.size() - 4);
  EXPECT_FALSE(core::parse_checkpoint(truncated, "", &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);

  // Structural corruption.
  EXPECT_FALSE(core::parse_checkpoint(
                   "# dampi-checkpoint v1\noptions x\nframe 0 bad\nend\n", "",
                   &error)
                   .has_value());
  EXPECT_FALSE(
      core::parse_checkpoint(good + "trailing garbage\n", "", &error)
          .has_value());
}

TEST(Checkpoint, KillAtKThenResumeMatchesTheUninterruptedWalk) {
  SKIP_WITHOUT_COOP();  // pin the deterministic scheduler for equality
  auto base_options = [] {
    ExplorerOptions options = explorer_options(3);
    options.sched = sched_named("coop");
    return options;
  };
  const auto fan_in = [](mpism::Proc& p) { workloads::fan_in_rounds(p, 3); };

  const ExploreResult baseline = Explorer(base_options()).explore(fan_in);
  ASSERT_GE(baseline.interleavings, 4u);
  const std::uint64_t kill_at = baseline.interleavings / 2;

  // Interrupted walk: fire the campaign cancel from the run observer
  // after K judged runs, journaling every interleaving.
  const std::string path = temp_path("resume.ckpt");
  ExplorerOptions interrupted_options = base_options();
  interrupted_options.checkpoint_path = path;
  interrupted_options.checkpoint_interval = 1;
  interrupted_options.cancel = std::make_shared<CancelSource>();
  std::uint64_t runs = 0;
  auto cancel = interrupted_options.cancel;
  const ExploreResult partial = Explorer(interrupted_options)
                                    .explore(fan_in, [&](auto&, auto&, auto&) {
                                      if (++runs == kill_at) {
                                        cancel->cancel("kill -INT");
                                      }
                                    });
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.interleavings, kill_at);
  EXPECT_GE(partial.checkpoint_writes, kill_at);

  // Resumed walk: same semantics-bearing options, frontier from disk.
  ExplorerOptions resume_options = base_options();
  resume_options.checkpoint_path = path;
  std::string error;
  auto cp = core::load_checkpoint(
      path, core::options_fingerprint(resume_options), &error);
  ASSERT_TRUE(cp.has_value()) << error;
  resume_options.resume_from = std::make_shared<Checkpoint>(std::move(*cp));
  const ExploreResult resumed = Explorer(resume_options).explore(fan_in);

  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.interleavings, baseline.interleavings);
  EXPECT_EQ(resumed.bugs.size(), baseline.bugs.size());
  EXPECT_EQ(resumed.unsafe_alerts, baseline.unsafe_alerts);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeFindsABugTheInterruptedWalkHadNotReached) {
  SKIP_WITHOUT_COOP();
  auto base_options = [] {
    ExplorerOptions options = explorer_options(3);
    options.sched = sched_named("coop");
    return options;
  };
  const ExploreResult baseline =
      Explorer(base_options()).explore(workloads::fig3_wildcard_bug);
  ASSERT_TRUE(baseline.found_bug());
  ASSERT_GE(baseline.interleavings, 2u);

  const std::string path = temp_path("bug.ckpt");
  ExplorerOptions interrupted_options = base_options();
  interrupted_options.checkpoint_path = path;
  interrupted_options.checkpoint_interval = 1;
  interrupted_options.cancel = std::make_shared<CancelSource>();
  auto cancel = interrupted_options.cancel;
  const ExploreResult partial =
      Explorer(interrupted_options)
          .explore(workloads::fig3_wildcard_bug,
                   [&](auto&, auto&, auto&) { cancel->cancel("^C"); });
  EXPECT_TRUE(partial.interrupted);
  EXPECT_FALSE(partial.found_bug());  // killed after the benign self-run

  ExplorerOptions resume_options = base_options();
  std::string error;
  auto cp = core::load_checkpoint(
      path, core::options_fingerprint(resume_options), &error);
  ASSERT_TRUE(cp.has_value()) << error;
  resume_options.resume_from = std::make_shared<Checkpoint>(std::move(*cp));
  const ExploreResult resumed =
      Explorer(resume_options).explore(workloads::fig3_wildcard_bug);
  ASSERT_TRUE(resumed.found_bug());
  EXPECT_EQ(resumed.interleavings, baseline.interleavings);
  EXPECT_EQ(resumed.bugs.front().kind, baseline.bugs.front().kind);
  EXPECT_EQ(resumed.bugs.front().interleaving,
            baseline.bugs.front().interleaving);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeRefusesAMismatchedConfiguration) {
  const std::string path = temp_path("mismatch.ckpt");
  ExplorerOptions options = explorer_options(3);
  options.checkpoint_path = path;
  Explorer(options).explore(workloads::fig3_benign);

  ExplorerOptions other = explorer_options(4);  // different nprocs
  std::string error;
  EXPECT_FALSE(core::load_checkpoint(path, core::options_fingerprint(other),
                                     &error)
                   .has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dampi::test
