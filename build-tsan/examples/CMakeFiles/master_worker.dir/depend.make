# Empty dependencies file for master_worker.
# This may be replaced when dependencies are built.
