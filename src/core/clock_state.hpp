// Unified view over Lamport / vector clocks for the DAMPI layer: tick,
// merge serialized remote clocks, and decide lateness ("is this message
// not causally after that epoch?") under either mode.
#pragma once

#include <cstdint>
#include <vector>

#include "clocks/lamport.hpp"
#include "clocks/vector_clock.hpp"
#include "core/options.hpp"
#include "mpism/types.hpp"

namespace dampi::core {

class ClockState {
 public:
  ClockState(ClockMode mode, int nprocs, int rank);

  void tick();
  /// Merge a serialized remote clock (no-op if empty — e.g. a message
  /// that predates instrumentation in tests).
  void merge(const mpism::Bytes& remote);
  mpism::Bytes serialize() const;
  /// serialize() into a caller-owned buffer, reusing its capacity — the
  /// per-send piggyback attach path latches into the same buffer every
  /// time, so steady-state sends stop allocating.
  void serialize_into(mpism::Bytes* out) const;

  std::uint64_t lamport_value() const { return lamport_.value(); }
  const std::vector<clocks::VectorClock::Value>& vector_components() const {
    return vector_.components();
  }

  /// Is a message carrying `msg_clock` (serialized) late with respect to
  /// an epoch whose clocks were (epoch_lc, epoch_vc)? Lamport mode:
  /// msg.LC < epoch.LC (paper §II-C). Vector mode: msg not causally after
  /// the epoch.
  bool is_late(const mpism::Bytes& msg_clock, std::uint64_t epoch_lc,
               const std::vector<clocks::VectorClock::Value>& epoch_vc) const;

  /// True when the message is causally *after* the epoch — the early-exit
  /// condition when scanning a rank's epochs newest-to-oldest (anything
  /// after epoch_i is also after every older epoch of the same rank).
  bool is_after(const mpism::Bytes& msg_clock, std::uint64_t epoch_lc,
                const std::vector<clocks::VectorClock::Value>& epoch_vc) const;

  ClockMode mode() const { return mode_; }

  /// Merge a raw epoch timestamp (the deferred-sync path: a transmittal
  /// clock catches up to a completed wildcard's epoch without absorbing
  /// the ticks of still-pending epochs).
  void merge_epoch(std::uint64_t lc,
                   const std::vector<clocks::VectorClock::Value>& vc);

  /// Merge function for collective piggyback routing (component-wise /
  /// scalar max), suitable for mpism::ToolSetup::coll_merge.
  static mpism::Bytes merge_serialized(const std::vector<mpism::Bytes>& all);

 private:
  ClockMode mode_;
  clocks::LamportClock lamport_;
  clocks::VectorClock vector_;
};

}  // namespace dampi::core
