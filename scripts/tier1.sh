#!/usr/bin/env bash
# Tier-1 gate: the full build + test sweep, then the concurrent explorer
# tests again under ThreadSanitizer (-DDAMPI_SANITIZE=thread; only the
# `concurrency`-labelled tests rerun there, so the TSan stage stays fast).
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "tier1: skipping ThreadSanitizer stage"
  exit 0
fi

cmake -B build-tsan -S . -DDAMPI_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" --target test_explorer_parallel
(cd build-tsan && ctest --output-on-failure -L concurrency -j "${jobs}")
echo "tier1: OK (including TSan concurrency stage)"
