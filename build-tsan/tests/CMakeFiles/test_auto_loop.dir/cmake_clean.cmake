file(REMOVE_RECURSE
  "CMakeFiles/test_auto_loop.dir/test_auto_loop.cpp.o"
  "CMakeFiles/test_auto_loop.dir/test_auto_loop.cpp.o.d"
  "test_auto_loop"
  "test_auto_loop.pdb"
  "test_auto_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
