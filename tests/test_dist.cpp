// Distributed sharding tests: a sharded campaign driven entirely
// in-process (discovery -> split_frontier -> per-shard walks -> escape
// routing -> CampaignMerge) must reproduce the single-process walk's
// interleaving set exactly — same count, same schedule multiset, same
// bugs — for every shard width, scheduler, and matcher. Plus the
// supporting machinery: work-steal carving, journal requeue after a
// mid-shard cancel, escape_alts checkpoint round-trips, and the wire
// protocol over a real socketpair.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/decision_io.hpp"
#include "core/explorer.hpp"
#include "core/shard.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "mpism/cancel.hpp"
#include "mpism/fault.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::CampaignMerge;
using core::Checkpoint;
using core::EscapedAlt;
using core::ExploreResult;
using core::Explorer;
using core::ExplorerOptions;
using core::Schedule;

mpism::ProgramFn fan_in(int rounds) {
  return [rounds](mpism::Proc& p) { workloads::fan_in_rounds(p, rounds); };
}

/// Multiset of serialized schedules — one entry per interleaving, the
/// exact identity of "which runs did this walk perform".
using ScheduleBag = std::multiset<std::string>;

ScheduleBag::value_type bag_key(const Schedule& schedule) {
  return core::serialize_schedule(schedule);
}

std::set<std::string> bug_keys(const std::vector<core::BugRecord>& bugs) {
  std::set<std::string> keys;
  for (const auto& bug : bugs) keys.insert(core::bug_key(bug));
  return keys;
}

/// Drives a whole sharded campaign on the calling thread: exactly the
/// coordinator's shard/escape loop, minus the processes. Returns the
/// merged result and appends every run's schedule to `bag`.
ExploreResult run_sharded_campaign(const ExplorerOptions& base,
                                   const mpism::ProgramFn& program,
                                   std::size_t max_shards,
                                   ScheduleBag* bag) {
  ExplorerOptions disc = base;
  disc.discovery_only = true;
  ExploreResult discovered = Explorer(disc).explore(
      program, [&](const core::RunTrace&, const mpism::RunReport&,
                   const Schedule& s) { bag->insert(bag_key(s)); });

  const std::string fingerprint = core::options_fingerprint(base);
  Checkpoint root;
  root.fingerprint = fingerprint;
  root.frames = discovered.frontier;

  CampaignMerge merge(std::move(discovered), base.por);
  std::deque<Checkpoint> queue;
  for (Checkpoint& cp : core::split_frontier(root, max_shards, base.por)) {
    merge.register_shard_sites(cp);
    queue.push_back(std::move(cp));
  }

  while (!queue.empty()) {
    Checkpoint shard = std::move(queue.front());
    queue.pop_front();
    std::vector<EscapedAlt> escapes;
    ExplorerOptions options = base;
    options.resume_from = std::make_shared<const Checkpoint>(std::move(shard));
    options.on_escape = [&](const EscapedAlt& e) { escapes.push_back(e); };
    ExploreResult result = Explorer(options).explore(
        program, [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { bag->insert(bag_key(s)); });
    merge.add(result);
    for (const EscapedAlt& e : escapes) {
      if (!merge.escape_is_new(e)) continue;
      Checkpoint next = core::make_escape_shard(e, fingerprint);
      merge.register_shard_sites(next);
      queue.push_back(std::move(next));
    }
  }
  return merge.finish();
}

/// Sharded campaign with a fault plan, mirroring the coordinator's
/// propagation exactly: every walk (discovery, shards, escapes) gets a
/// FRESH plan instance — as every worker process does — and the
/// discovery-time fire counters ride in via Checkpoint::fault_fires
/// (split_frontier copies them; escape shards are stamped the way
/// add_shard stamps them).
struct FaultCampaign {
  ExploreResult result;
  std::uint64_t discovery_fires = 0;
  std::uint64_t shard_extra_fires = 0;  ///< fires beyond the seeded counters
};

FaultCampaign run_sharded_fault_campaign(const ExplorerOptions& base,
                                         const std::string& spec,
                                         const mpism::ProgramFn& program,
                                         std::size_t max_shards,
                                         ScheduleBag* bag) {
  std::string parse_error;
  ExplorerOptions disc = base;
  disc.fault = mpism::parse_fault_plan(spec, &parse_error);
  EXPECT_NE(disc.fault, nullptr) << parse_error;
  disc.discovery_only = true;
  ExploreResult discovered = Explorer(disc).explore(
      program, [&](const core::RunTrace&, const mpism::RunReport&,
                   const Schedule& s) { bag->insert(bag_key(s)); });

  const std::string fingerprint = core::options_fingerprint(disc);
  Checkpoint root;
  root.fingerprint = fingerprint;
  root.frames = discovered.frontier;
  root.fault_fires = disc.fault->fire_counts();

  FaultCampaign campaign;
  campaign.discovery_fires = disc.fault->total_fires();

  CampaignMerge merge(std::move(discovered), base.por);
  std::deque<Checkpoint> queue;
  for (Checkpoint& cp : core::split_frontier(root, max_shards, base.por)) {
    merge.register_shard_sites(cp);
    queue.push_back(std::move(cp));
  }

  while (!queue.empty()) {
    Checkpoint shard = std::move(queue.front());
    queue.pop_front();
    // Coordinator stamping: escape/steal shards carry no discovery
    // counters of their own.
    if (shard.fault_fires.empty()) shard.fault_fires = root.fault_fires;
    std::uint64_t seeded = 0;
    for (const std::uint64_t f : shard.fault_fires) seeded += f;

    std::vector<EscapedAlt> escapes;
    ExplorerOptions options = base;
    options.fault = mpism::parse_fault_plan(spec, &parse_error);
    EXPECT_NE(options.fault, nullptr) << parse_error;
    options.resume_from = std::make_shared<const Checkpoint>(std::move(shard));
    options.on_escape = [&](const EscapedAlt& e) { escapes.push_back(e); };
    ExploreResult result = Explorer(options).explore(
        program, [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { bag->insert(bag_key(s)); });
    campaign.shard_extra_fires += options.fault->total_fires() - seeded;
    merge.add(result);
    for (const EscapedAlt& e : escapes) {
      if (!merge.escape_is_new(e)) continue;
      Checkpoint next = core::make_escape_shard(e, fingerprint);
      merge.register_shard_sites(next);
      queue.push_back(std::move(next));
    }
  }
  campaign.result = merge.finish();
  return campaign;
}

// --- Sharded == unsharded, across widths, schedulers, matchers -------------

class ShardEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, mpism::SchedulerKind, mpism::MatchKind>> {};

TEST_P(ShardEquivalence, CampaignMatchesSingleWalk) {
  const auto [shards, sched, match] = GetParam();
  ExplorerOptions options = explorer_options(4);
  options.sched.kind = sched;
  options.match = match;

  ScheduleBag single_bag;
  ExploreResult single = Explorer(options).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { single_bag.insert(bag_key(s)); });

  ScheduleBag campaign_bag;
  ExploreResult campaign =
      run_sharded_campaign(options, fan_in(2), shards, &campaign_bag);

  // The campaign must have walked the same interleavings, not merely the
  // same number of them: every run is identified by its forced schedule.
  EXPECT_EQ(campaign.interleavings, single.interleavings);
  EXPECT_EQ(campaign_bag, single_bag);
  EXPECT_EQ(bug_keys(campaign.bugs), bug_keys(single.bugs));
  EXPECT_GT(single.interleavings, 1u);  // the fixture must actually branch
}

INSTANTIATE_TEST_SUITE_P(
    Widths, ShardEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8}),
                       ::testing::Values(mpism::SchedulerKind::kThread,
                                         mpism::SchedulerKind::kCoop),
                       ::testing::Values(mpism::MatchKind::kLinear,
                                         mpism::MatchKind::kIndexed)));

// A buggy program: cross-shard bug dedup must leave exactly the bugs the
// single walk reports (fig3's single failing interleaving).
TEST(Dist, ShardedCampaignFindsAndDedupsBugs) {
  ExplorerOptions options = explorer_options(3);
  options.sched.kind = mpism::SchedulerKind::kCoop;

  ScheduleBag single_bag;
  ExploreResult single = Explorer(options).explore(
      workloads::fig3_wildcard_bug,
      [&](const core::RunTrace&, const mpism::RunReport&, const Schedule& s) {
        single_bag.insert(bag_key(s));
      });
  ASSERT_TRUE(single.found_bug());

  ScheduleBag campaign_bag;
  ExploreResult campaign = run_sharded_campaign(
      options, workloads::fig3_wildcard_bug, 4, &campaign_bag);
  EXPECT_TRUE(campaign.found_bug());
  EXPECT_EQ(campaign.interleavings, single.interleavings);
  EXPECT_EQ(campaign_bag, single_bag);
  EXPECT_EQ(bug_keys(campaign.bugs), bug_keys(single.bugs));
}

// --- Fault-plan propagation through the distributed path -------------------

// An error injection deep enough to leave the wildcard branching intact
// must produce the same interleaving multiset, the same bug set, and
// the same fire accounting at every shard width.
TEST(DistFault, ErrorInjectionMatchesSequentialAcrossWidths) {
  ExplorerOptions options = explorer_options(4);
  options.sched.kind = mpism::SchedulerKind::kCoop;
  const char* spec = "error@0:5";  // root's receive loop, after branching

  std::string parse_error;
  ExplorerOptions sequential = options;
  sequential.fault = mpism::parse_fault_plan(spec, &parse_error);
  ASSERT_NE(sequential.fault, nullptr) << parse_error;
  ScheduleBag single_bag;
  ExploreResult single = Explorer(sequential).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { single_bag.insert(bag_key(s)); });
  ASSERT_TRUE(single.found_bug());
  ASSERT_GT(single.interleavings, 1u);
  const std::uint64_t sequential_fires = sequential.fault->total_fires();

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    ScheduleBag campaign_bag;
    const FaultCampaign campaign = run_sharded_fault_campaign(
        options, spec, fan_in(2), shards, &campaign_bag);
    EXPECT_EQ(campaign.result.interleavings, single.interleavings)
        << "shards=" << shards;
    EXPECT_EQ(campaign_bag, single_bag) << "shards=" << shards;
    EXPECT_EQ(bug_keys(campaign.result.bugs), bug_keys(single.bugs))
        << "shards=" << shards;
    // The error point fires once per run reaching it, in both worlds.
    EXPECT_EQ(campaign.discovery_fires + campaign.shard_extra_fires,
              sequential_fires)
        << "shards=" << shards;
  }
}

// Delay perturbs timing, never outcomes: verdicts stay clean and the
// per-run fire accounting (one per interleaving) splits exactly across
// discovery + shards.
TEST(DistFault, DelayInjectionKeepsVerdictsAndFireAccounting) {
  ExplorerOptions options = explorer_options(4);
  options.sched.kind = mpism::SchedulerKind::kCoop;
  const char* spec = "delay@1:1:500";

  std::string parse_error;
  ExplorerOptions sequential = options;
  sequential.fault = mpism::parse_fault_plan(spec, &parse_error);
  ASSERT_NE(sequential.fault, nullptr) << parse_error;
  ScheduleBag single_bag;
  ExploreResult single = Explorer(sequential).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { single_bag.insert(bag_key(s)); });
  EXPECT_FALSE(single.found_bug());
  ASSERT_GT(single.interleavings, 4u);
  EXPECT_EQ(sequential.fault->total_fires(), single.interleavings);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    ScheduleBag campaign_bag;
    const FaultCampaign campaign = run_sharded_fault_campaign(
        options, spec, fan_in(2), shards, &campaign_bag);
    EXPECT_FALSE(campaign.result.found_bug()) << "shards=" << shards;
    EXPECT_EQ(campaign.result.interleavings, single.interleavings)
        << "shards=" << shards;
    EXPECT_EQ(campaign_bag, single_bag) << "shards=" << shards;
    EXPECT_EQ(campaign.discovery_fires + campaign.shard_extra_fires,
              single.interleavings)
        << "shards=" << shards;
  }
}

// A flaky cap saturated during discovery must stay saturated in every
// shard: the discovery-time counters ride in via Checkpoint::fault_fires
// and seed each worker's fresh plan, so no shard re-arms the fault. This
// is the --fault ... --workers N == --workers 1 accounting contract.
TEST(DistFault, SaturatedFlakyCounterPropagatesIntoShards) {
  ExplorerOptions options = explorer_options(4);
  options.sched.kind = mpism::SchedulerKind::kCoop;
  options.max_retries = 3;
  options.retry_backoff_ms = 0.1;
  const char* spec = "flaky@0:2:2";  // burned by the discovery run's retries

  std::string parse_error;
  ExplorerOptions sequential = options;
  sequential.fault = mpism::parse_fault_plan(spec, &parse_error);
  ASSERT_NE(sequential.fault, nullptr) << parse_error;
  ScheduleBag single_bag;
  ExploreResult single = Explorer(sequential).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { single_bag.insert(bag_key(s)); });
  EXPECT_FALSE(single.found_bug());
  EXPECT_EQ(single.retries, 2u);
  EXPECT_EQ(sequential.fault->total_fires(), 2u);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    ScheduleBag campaign_bag;
    const FaultCampaign campaign = run_sharded_fault_campaign(
        options, spec, fan_in(2), shards, &campaign_bag);
    EXPECT_FALSE(campaign.result.found_bug()) << "shards=" << shards;
    EXPECT_EQ(campaign.result.interleavings, single.interleavings)
        << "shards=" << shards;
    EXPECT_EQ(campaign_bag, single_bag) << "shards=" << shards;
    EXPECT_EQ(campaign.discovery_fires, 2u) << "shards=" << shards;
    EXPECT_EQ(campaign.shard_extra_fires, 0u)
        << "a shard re-armed the exhausted flaky point (shards=" << shards
        << ")";
    EXPECT_EQ(campaign.result.retries, single.retries) << "shards=" << shards;
  }
}

// --- Work stealing ---------------------------------------------------------

// Carving half a shard's frontier mid-walk and exploring the stolen
// checkpoint separately must cover exactly the un-stolen walk's set.
TEST(Dist, StealSplitsWorkWithoutLossOrDuplication) {
  ExplorerOptions options = explorer_options(4);
  options.sched.kind = mpism::SchedulerKind::kCoop;

  ScheduleBag baseline_bag;
  ExploreResult baseline = Explorer(options).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { baseline_bag.insert(bag_key(s)); });
  ASSERT_GT(baseline.interleavings, 4u);

  // Discovery + a single shard holding the whole frontier.
  ExplorerOptions disc = options;
  disc.discovery_only = true;
  ScheduleBag bag;
  ExploreResult discovered = Explorer(disc).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { bag.insert(bag_key(s)); });
  const std::string fingerprint = core::options_fingerprint(options);
  Checkpoint root;
  root.fingerprint = fingerprint;
  root.frames = discovered.frontier;
  auto shards = core::split_frontier(root, 1);
  ASSERT_EQ(shards.size(), 1u);

  CampaignMerge merge(std::move(discovered));
  merge.register_shard_sites(shards[0]);

  // Victim walk: after 2 runs, serve one steal request.
  std::shared_ptr<const Checkpoint> stolen;
  int runs = 0;
  bool steal_pending = false;
  std::vector<EscapedAlt> escapes;
  ExplorerOptions victim = options;
  victim.resume_from = std::make_shared<const Checkpoint>(shards[0]);
  victim.steal_poll = [&] {
    if (runs == 2 && stolen == nullptr && !steal_pending) {
      steal_pending = true;
      return true;
    }
    return false;
  };
  victim.on_steal = [&](std::shared_ptr<const Checkpoint> cp) {
    stolen = std::move(cp);
  };
  victim.on_escape = [&](const EscapedAlt& e) { escapes.push_back(e); };
  ExploreResult victim_result = Explorer(victim).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) {
        ++runs;
        bag.insert(bag_key(s));
      });
  merge.add(victim_result);
  ASSERT_NE(stolen, nullptr) << "the fixture is too small to steal from";

  // Thief walk over the stolen checkpoint (plus any escaped work).
  std::deque<Checkpoint> queue;
  merge.register_shard_sites(*stolen);
  queue.push_back(*stolen);
  for (const EscapedAlt& e : escapes) {
    if (merge.escape_is_new(e)) {
      Checkpoint next = core::make_escape_shard(e, fingerprint);
      merge.register_shard_sites(next);
      queue.push_back(std::move(next));
    }
  }
  while (!queue.empty()) {
    Checkpoint shard = std::move(queue.front());
    queue.pop_front();
    std::vector<EscapedAlt> more;
    ExplorerOptions thief = options;
    thief.resume_from = std::make_shared<const Checkpoint>(std::move(shard));
    thief.on_escape = [&](const EscapedAlt& e) { more.push_back(e); };
    ExploreResult r = Explorer(thief).explore(
        fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                       const Schedule& s) { bag.insert(bag_key(s)); });
    merge.add(r);
    for (const EscapedAlt& e : more) {
      if (merge.escape_is_new(e)) {
        Checkpoint next = core::make_escape_shard(e, fingerprint);
        merge.register_shard_sites(next);
        queue.push_back(std::move(next));
      }
    }
  }

  ExploreResult merged = merge.finish();
  EXPECT_EQ(merged.interleavings, baseline.interleavings);
  EXPECT_EQ(bag, baseline_bag);
}

// A frontier whose every untried list is below the steal threshold is
// not worth a process handoff: carving must refuse (the worker replies
// kNoSteal) instead of stripping the victim's last alternative — and
// the victim then finishes every interleaving itself.
TEST(Dist, StealRefusesSubThresholdFrontier) {
  ExplorerOptions options = explorer_options(3);
  options.sched.kind = mpism::SchedulerKind::kCoop;

  ScheduleBag baseline_bag;
  ExploreResult baseline = Explorer(options).explore(
      fan_in(1), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { baseline_bag.insert(bag_key(s)); });

  ExplorerOptions disc = options;
  disc.discovery_only = true;
  ScheduleBag bag;
  ExploreResult discovered = Explorer(disc).explore(
      fan_in(1), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { bag.insert(bag_key(s)); });
  // The fixture's whole point: one alternative per frame, all lists
  // below the threshold.
  for (const auto& frame : discovered.frontier) {
    ASSERT_LT(frame.untried.size(), 2u);
  }
  const std::string fingerprint = core::options_fingerprint(options);
  Checkpoint root;
  root.fingerprint = fingerprint;
  root.frames = discovered.frontier;
  auto shards = core::split_frontier(root, 1);
  ASSERT_EQ(shards.size(), 1u);

  CampaignMerge merge(std::move(discovered));
  merge.register_shard_sites(shards[0]);

  int steal_attempts = 0;
  int steal_grants = 0;
  bool steal_pending = false;
  std::vector<EscapedAlt> escapes;
  ExplorerOptions victim = options;
  victim.resume_from = std::make_shared<const Checkpoint>(shards[0]);
  victim.steal_poll = [&] {
    if (steal_attempts == 0 && !steal_pending) {
      steal_pending = true;
      return true;
    }
    return false;
  };
  victim.on_steal = [&](std::shared_ptr<const Checkpoint> cp) {
    ++steal_attempts;
    if (cp != nullptr) ++steal_grants;
  };
  victim.on_escape = [&](const EscapedAlt& e) { escapes.push_back(e); };
  ExploreResult victim_result = Explorer(victim).explore(
      fan_in(1), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule& s) { bag.insert(bag_key(s)); });
  merge.add(victim_result);
  EXPECT_EQ(steal_attempts, 1);
  EXPECT_EQ(steal_grants, 0) << "sub-threshold frontier must not be carved";

  // Whatever escaped still runs (coordinator loop), so nothing is lost.
  std::deque<Checkpoint> queue;
  for (const EscapedAlt& e : escapes) {
    if (merge.escape_is_new(e)) {
      Checkpoint next = core::make_escape_shard(e, fingerprint);
      merge.register_shard_sites(next);
      queue.push_back(std::move(next));
    }
  }
  while (!queue.empty()) {
    Checkpoint shard = std::move(queue.front());
    queue.pop_front();
    std::vector<EscapedAlt> more;
    ExplorerOptions follow = options;
    follow.resume_from = std::make_shared<const Checkpoint>(std::move(shard));
    follow.on_escape = [&](const EscapedAlt& e) { more.push_back(e); };
    ExploreResult r = Explorer(follow).explore(
        fan_in(1), [&](const core::RunTrace&, const mpism::RunReport&,
                       const Schedule& s) { bag.insert(bag_key(s)); });
    merge.add(r);
    for (const EscapedAlt& e : more) {
      if (merge.escape_is_new(e)) {
        Checkpoint next = core::make_escape_shard(e, fingerprint);
        merge.register_shard_sites(next);
        queue.push_back(std::move(next));
      }
    }
  }

  ExploreResult merged = merge.finish();
  EXPECT_EQ(merged.interleavings, baseline.interleavings);
  EXPECT_EQ(bag, baseline_bag);
}

// --- Journal requeue after a mid-shard cancel ------------------------------

// A shard cancelled mid-walk leaves a per-worker journal; requeueing
// from it (the coordinator's death-recovery path) finishes the shard
// with every interleaving counted exactly once.
TEST(Dist, CancelledShardResumesFromJournalExactlyOnce) {
  ExplorerOptions options = explorer_options(4);
  options.sched.kind = mpism::SchedulerKind::kCoop;

  ExploreResult baseline = Explorer(options).explore(fan_in(2));
  ASSERT_GT(baseline.interleavings, 4u);

  ExplorerOptions disc = options;
  disc.discovery_only = true;
  ExploreResult discovered = Explorer(disc).explore(fan_in(2));
  const std::uint64_t discovery_runs = discovered.interleavings;
  const std::string fingerprint = core::options_fingerprint(options);
  Checkpoint root;
  root.fingerprint = fingerprint;
  root.frames = discovered.frontier;
  auto shards = core::split_frontier(root, 1);
  ASSERT_EQ(shards.size(), 1u);

  const std::string journal =
      ::testing::TempDir() + "/dist_requeue.ckpt.w7";
  std::remove(journal.c_str());

  // First attempt: cancel after 2 shard runs, journalling every run.
  auto cancel = std::make_shared<mpism::CancelSource>();
  ExplorerOptions attempt = options;
  attempt.resume_from = std::make_shared<const Checkpoint>(shards[0]);
  attempt.checkpoint_path = journal;
  attempt.checkpoint_interval = 1;
  attempt.cancel = cancel;
  int runs = 0;
  ExploreResult aborted = Explorer(attempt).explore(
      fan_in(2), [&](const core::RunTrace&, const mpism::RunReport&,
                     const Schedule&) {
        if (++runs == 2) cancel->cancel("test: simulated worker death");
      });
  ASSERT_TRUE(aborted.interrupted);
  ASSERT_LT(aborted.interleavings, baseline.interleavings);

  // Requeue: reload the journal exactly as handle_death does and finish
  // it. The journalled counters ride in (resumed walks fold them in),
  // so the aborted attempt's partial result must NOT be merged.
  std::string error;
  auto requeued = core::load_checkpoint(journal, fingerprint, &error);
  ASSERT_TRUE(requeued.has_value()) << error;
  ExplorerOptions retry = options;
  retry.resume_from =
      std::make_shared<const Checkpoint>(std::move(*requeued));
  ExploreResult finished = Explorer(retry).explore(fan_in(2));
  EXPECT_FALSE(finished.interrupted);

  EXPECT_EQ(discovery_runs + finished.interleavings, baseline.interleavings);
  std::remove(journal.c_str());
}

// --- Checkpoint escape_alts round-trip -------------------------------------

TEST(Dist, EscapeAltsFlagSurvivesCheckpointRoundTrip) {
  Checkpoint cp;
  cp.fingerprint = "fp";
  cp.interleavings = 3;
  core::DfsFrame owned;
  owned.key = core::EpochKey{1, 0};
  owned.taken_src = 2;
  owned.seen = {0, 2};
  owned.escape_alts = true;
  core::DfsFrame local;
  local.key = core::EpochKey{0, 1};
  local.taken_src = 1;
  local.untried = {3};
  local.seen = {1, 3};
  cp.frames = {owned, local};

  std::string error;
  auto parsed =
      core::parse_checkpoint(core::serialize_checkpoint(cp), "fp", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->frames.size(), 2u);
  EXPECT_TRUE(parsed->frames[0].escape_alts);
  EXPECT_FALSE(parsed->frames[1].escape_alts);
  EXPECT_EQ(parsed->frames[0].seen, owned.seen);
  EXPECT_EQ(parsed->frames[1].untried, local.untried);
}

// A shard built from an escape explores exactly the escaped source, and
// the per-site seen set admits each (site, source) only once.
TEST(Dist, EscapeShardAndSiteDedup) {
  core::DfsFrame site;
  site.key = core::EpochKey{2, 1};
  site.taken_src = 0;
  site.seen = {0, 1};
  EscapedAlt escape;
  escape.frames = {site};
  escape.src = 3;

  Checkpoint shard = core::make_escape_shard(escape, "fp");
  ASSERT_EQ(shard.frames.size(), 1u);
  EXPECT_TRUE(shard.frames[0].escape_alts);
  EXPECT_EQ(shard.frames[0].untried, std::vector<mpism::Rank>{3});
  EXPECT_EQ(shard.frames[0].seen.count(3), 1u);

  CampaignMerge merge{ExploreResult{}};
  EXPECT_TRUE(merge.escape_is_new(escape));
  EXPECT_FALSE(merge.escape_is_new(escape));  // second arrival: dedup
  // Same site, different source: new again.
  EscapedAlt other = escape;
  other.src = 4;
  EXPECT_TRUE(merge.escape_is_new(other));
  // register_shard_sites pre-poisons the seen set of a queued shard.
  EscapedAlt third = escape;
  third.src = 5;
  Checkpoint queued = core::make_escape_shard(third, "fp");
  CampaignMerge fresh{ExploreResult{}};
  fresh.register_shard_sites(queued);
  EXPECT_FALSE(fresh.escape_is_new(third));
}

// --- Wire protocol over a real socketpair ----------------------------------

TEST(Dist, ProtocolRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  dist::MessageChannel a(fds[0]);
  dist::MessageChannel b(fds[1]);

  dist::Hello hello;
  hello.worker_id = 5;
  // Fingerprints are single-line by construction (options_fingerprint),
  // same as the `options` line of the checkpoint format.
  hello.fingerprint = "nprocs=4 clock=1 sched=coop";
  ASSERT_TRUE(a.send(dist::MsgType::kHello, dist::serialize_hello(hello)));

  dist::WireMessage msg;
  ASSERT_EQ(b.recv(&msg, /*timeout_ms=*/1000),
            dist::MessageChannel::RecvStatus::kMessage);
  ASSERT_EQ(msg.type, dist::MsgType::kHello);
  std::string error;
  auto parsed_hello = dist::parse_hello(msg.payload, &error);
  ASSERT_TRUE(parsed_hello.has_value()) << error;
  EXPECT_EQ(parsed_hello->worker_id, 5);
  EXPECT_EQ(parsed_hello->fingerprint, hello.fingerprint);

  // A shard big enough to span several reads.
  Checkpoint cp;
  cp.fingerprint = "fp";
  for (int i = 0; i < 2000; ++i) {
    core::DfsFrame f;
    f.key = core::EpochKey{i % 4, static_cast<std::uint64_t>(i)};
    f.taken_src = i % 3;
    f.untried = {(i + 1) % 3, (i + 2) % 3};
    f.seen = {0, 1, 2};
    f.escape_alts = (i % 2) == 0;
    cp.frames.push_back(std::move(f));
  }
  const std::string text = core::serialize_checkpoint(cp);
  ASSERT_TRUE(b.send(dist::MsgType::kShard, dist::serialize_shard(42, text)));

  ASSERT_EQ(a.recv(&msg, 1000), dist::MessageChannel::RecvStatus::kMessage);
  ASSERT_EQ(msg.type, dist::MsgType::kShard);
  std::uint64_t shard_id = 0;
  auto parsed_shard = dist::parse_shard(msg.payload, "fp", &shard_id, &error);
  ASSERT_TRUE(parsed_shard.has_value()) << error;
  EXPECT_EQ(shard_id, 42u);
  ASSERT_EQ(parsed_shard->frames.size(), cp.frames.size());
  EXPECT_TRUE(parsed_shard->frames[0].escape_alts);
  EXPECT_FALSE(parsed_shard->frames[1].escape_alts);
  EXPECT_EQ(parsed_shard->frames[1999].untried, cp.frames[1999].untried);

  // Escape round-trip preserves the frame prefix and source.
  core::DfsFrame site;
  site.key = core::EpochKey{1, 7};
  site.taken_src = 0;
  site.seen = {0, 2};
  EscapedAlt escape;
  escape.frames = {site};
  escape.src = 2;
  ASSERT_TRUE(
      a.send(dist::MsgType::kEscape, dist::serialize_escape(escape, "fp")));
  ASSERT_EQ(b.recv(&msg, 1000), dist::MessageChannel::RecvStatus::kMessage);
  auto parsed_escape = dist::parse_escape(msg.payload, "fp", &error);
  ASSERT_TRUE(parsed_escape.has_value()) << error;
  EXPECT_EQ(parsed_escape->src, 2);
  ASSERT_EQ(parsed_escape->frames.size(), 1u);
  EXPECT_EQ(parsed_escape->frames[0].key.rank, 1);
  EXPECT_EQ(parsed_escape->frames[0].key.nd_index, 7u);

  // Worker result round-trip: counters, a bug, metrics.
  dist::WorkerResult wr;
  wr.shard_id = 42;
  wr.result.interleavings = 9;
  wr.result.total_vtime_us = 123.5;
  wr.result.retries = 1;
  core::BugRecord bug;
  bug.kind = core::BugRecord::Kind::kDeadlock;
  bug.interleaving = 4;
  bug.deadlock_detail = "all ranks blocked";
  bug.schedule.forced[core::EpochKey{1, 0}] = 2;
  wr.result.bugs.push_back(bug);
  wr.metrics_dump = "engine.messages 17\npool.worker_runs 3\n";
  ASSERT_TRUE(b.send(dist::MsgType::kResult,
                     dist::serialize_worker_result(wr, "fp")));
  ASSERT_EQ(a.recv(&msg, 1000), dist::MessageChannel::RecvStatus::kMessage);
  auto parsed_result = dist::parse_worker_result(msg.payload, "fp", &error);
  ASSERT_TRUE(parsed_result.has_value()) << error;
  EXPECT_EQ(parsed_result->shard_id, 42u);
  EXPECT_EQ(parsed_result->result.interleavings, 9u);
  EXPECT_EQ(parsed_result->result.retries, 1u);
  ASSERT_EQ(parsed_result->result.bugs.size(), 1u);
  EXPECT_EQ(parsed_result->result.bugs[0].kind,
            core::BugRecord::Kind::kDeadlock);
  EXPECT_EQ(core::bug_key(parsed_result->result.bugs[0]),
            core::bug_key(bug));
  EXPECT_EQ(parsed_result->metrics_dump, wr.metrics_dump);

  // EOF: closing one end turns the other into kClosed, after any
  // buffered frames have been drained.
  b.close();
  EXPECT_EQ(a.recv(&msg, 1000), dist::MessageChannel::RecvStatus::kClosed);
}

TEST(Dist, ProtocolRejectsFingerprintMismatch) {
  Checkpoint cp;
  cp.fingerprint = "fp-a";
  const std::string payload =
      dist::serialize_shard(1, core::serialize_checkpoint(cp));
  std::uint64_t id = 0;
  std::string error;
  EXPECT_FALSE(dist::parse_shard(payload, "fp-b", &id, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// --- Cancel with a SIGKILLed straggler terminates --------------------------

// Regression: a worker that ignores CANCEL while holding an assigned
// shard is SIGKILLed at the grace deadline. Its death must drop the
// shard — under cancel nothing will ever run it again — not requeue it,
// or the coordinator's exit condition (empty queue) never holds and the
// grace period re-arms forever. The fake worker below is this binary
// re-executed with --dampi-hang-worker: it completes HELLO (so it gets
// a shard assigned) and then ignores every subsequent message.
TEST(Dist, CancelWithSigkilledStragglerTerminates) {
  ExplorerOptions options = explorer_options(4);
  auto cancel = std::make_shared<mpism::CancelSource>();
  options.cancel = cancel;

  dist::DistOptions dopt;
  dopt.workers = 2;
  dopt.shutdown_grace_seconds = 0.2;
  dopt.explorer = options;
  dopt.worker_argv = {"/proc/self/exe", "--dampi-hang-worker",
                      core::options_fingerprint(options)};

  std::thread canceller([cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    cancel->cancel("test: external cancel");
  });
  dist::DistResult result = dist::run_distributed(dopt, fan_in(2));
  canceller.join();

  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.exploration.interrupted);
  EXPECT_EQ(result.stats.shards_requeued, 0u);
  EXPECT_EQ(result.stats.shards_quarantined, 0u);
}

// Regression: in --dist-socket (path) mode a worker whose exec fails
// dies before it ever connects, so it has no channel and the EOF-based
// death detection never fires. The waitpid reap loop must route such
// workers through handle_death so spawn-failure accounting aborts the
// campaign instead of polling forever on a non-empty queue.
TEST(Dist, PathModeSpawnFailureAborts) {
  dist::DistOptions dopt;
  dopt.workers = 1;
  dopt.socket_path = ::testing::TempDir() + "/dampi_spawnfail.sock";
  dopt.explorer = explorer_options(4);
  dopt.worker_argv = {"/nonexistent-dampi-worker-binary"};

  dist::DistResult result = dist::run_distributed(dopt, fan_in(2));
  EXPECT_FALSE(result.error.empty());
  EXPECT_NE(result.error.find("died before HELLO"), std::string::npos)
      << result.error;
}

}  // namespace

/// Fake worker body for CancelWithSigkilledStragglerTerminates: HELLO
/// with the fingerprint passed as argv[2], then swallow every message
/// (kShard, kCancel, kShutdown) until SIGKILL or channel EOF.
int hang_worker_main(int argc, char** argv) {
  std::string spec;
  int worker_id = -1;
  const std::string fingerprint = argc > 2 ? argv[2] : "";
  for (int i = 3; i + 1 < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--worker-id") worker_id = std::atoi(argv[i + 1]);
    if (arg == "--coordinator-socket") spec = argv[i + 1];
  }
  std::string error;
  const int fd = dist::connect_socket(spec, &error);
  if (fd < 0) return 1;
  dist::MessageChannel chan(fd);
  dist::Hello hello;
  hello.worker_id = worker_id;
  hello.fingerprint = fingerprint;
  if (!chan.send(dist::MsgType::kHello, dist::serialize_hello(hello))) {
    return 1;
  }
  for (;;) {
    dist::WireMessage msg;
    if (chan.recv(&msg, -1) == dist::MessageChannel::RecvStatus::kClosed) {
      return 0;
    }
  }
}

}  // namespace dampi::test

// Custom main (overrides gtest_main): a first argument of
// --dampi-hang-worker turns this binary into the fake worker instead of
// running the test suite.
int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "--dampi-hang-worker") {
    return dampi::test::hang_worker_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
