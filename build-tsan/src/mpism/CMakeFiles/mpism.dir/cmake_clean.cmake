file(REMOVE_RECURSE
  "CMakeFiles/mpism.dir/comm.cpp.o"
  "CMakeFiles/mpism.dir/comm.cpp.o.d"
  "CMakeFiles/mpism.dir/engine.cpp.o"
  "CMakeFiles/mpism.dir/engine.cpp.o.d"
  "CMakeFiles/mpism.dir/policy.cpp.o"
  "CMakeFiles/mpism.dir/policy.cpp.o.d"
  "CMakeFiles/mpism.dir/proc.cpp.o"
  "CMakeFiles/mpism.dir/proc.cpp.o.d"
  "CMakeFiles/mpism.dir/types.cpp.o"
  "CMakeFiles/mpism.dir/types.cpp.o.d"
  "libmpism.a"
  "libmpism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
