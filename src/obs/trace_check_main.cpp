// trace_check: validate an exported Chrome trace_event JSON file.
//
//   trace_check out.json [--min-lanes N]
//
// Exits 0 when the file is a well-formed trace with monotonic per-lane
// timestamps (and at least N event-carrying lanes when requested);
// prints the failure and exits 1 otherwise. Used by scripts/tier1.sh as
// the trace smoke-test gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/chrome_trace.hpp"

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t min_lanes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-lanes") == 0 && i + 1 < argc) {
      min_lanes = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <trace.json> [--min-lanes N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <trace.json> [--min-lanes N]\n", argv[0]);
    return 2;
  }

  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path);
    return 1;
  }
  std::string json;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
  std::fclose(f);

  std::string error;
  std::size_t lanes = 0;
  if (!dampi::obs::validate_chrome_trace(json, &error, &lanes)) {
    std::fprintf(stderr, "trace_check: %s: INVALID: %s\n", path,
                 error.c_str());
    return 1;
  }
  if (lanes < min_lanes) {
    std::fprintf(stderr, "trace_check: %s: only %zu event lanes (need %zu)\n",
                 path, lanes, min_lanes);
    return 1;
  }
  std::printf("trace_check: %s: OK (%zu event lanes)\n", path, lanes);
  return 0;
}
