# Empty dependencies file for test_report_format.
# This may be replaced when dependencies are built.
