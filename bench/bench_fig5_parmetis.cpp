// Figure 5: ParMETIS-3.1 — DAMPI vs ISP verification time, 4..32 procs.
//
// The paper's claim: ISP's centralized, per-call-synchronous scheduler
// makes its verification time blow up as processes (and the ~1M MPI
// calls at 32 procs) grow, switching from linear to exponential-looking
// slowdown around 32 procs; DAMPI's decentralized algorithm stays at
// negligible overhead over the native run.
//
// ParMETIS is deterministic (no wildcards), so "verification" is a
// single instrumented execution; the reported time is simulated virtual
// time (see DESIGN.md on the substitution of wall-clock measurements).
#include <vector>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "isp/isp_verifier.hpp"
#include "workloads/parmetis_proxy.hpp"

using namespace dampi;

int main() {
  bench::banner(
      "Figure 5 — ParMETIS-3.1: DAMPI vs ISP (time vs processes)",
      "ISP grows super-linearly and becomes infeasible past ~32 procs; "
      "DAMPI tracks the native run");

  workloads::ParmetisConfig config;
  if (bench::quick_mode()) {
    config.phases = 4;
    config.iters_per_phase = 40;
  }

  TextTable table;
  table.header({"procs", "MPI calls", "native (s)", "DAMPI (s)", "ISP (s)",
                "DAMPI overhead", "ISP overhead"});

  bench::WallTimer total;
  const std::vector<int> scales = bench::quick_mode()
                                      ? std::vector<int>{4, 8, 16}
                                      : std::vector<int>{4, 8, 12, 16, 20,
                                                         24, 28, 32};
  for (const int procs : scales) {
    const auto program = [&config](mpism::Proc& p) {
      workloads::parmetis_proxy(p, config);
    };

    core::VerifyOptions dampi_options;
    dampi_options.explorer.nprocs = procs;
    dampi_options.explorer.max_interleavings = 1;
    core::Verifier dampi(dampi_options);
    const auto dampi_result = dampi.verify(program);

    isp::IspOptions isp_options;
    isp_options.explorer.nprocs = procs;
    isp_options.explorer.max_interleavings = 1;
    isp_options.measure_native = false;
    isp::IspVerifier ispv(isp_options);
    const auto isp_result = ispv.verify(program);

    const double native_s = dampi_result.native_vtime_us / 1e6;
    const double dampi_s = dampi_result.instrumented_vtime_us / 1e6;
    const double isp_s = isp_result.instrumented_vtime_us / 1e6;
    table.row({std::to_string(procs),
               human_count(dampi_result.exploration.first_report.stats
                               .total_reported()),
               fmt_fixed(native_s, 3), fmt_fixed(dampi_s, 3),
               fmt_fixed(isp_s, 3),
               fmt_fixed(dampi_s / native_s, 2) + "x",
               fmt_fixed(isp_s / native_s, 2) + "x"});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Shape check: ISP time should grow super-linearly with procs "
              "while DAMPI stays within a few percent of native.\n");
  std::printf("(harness wall time: %.1fs)\n", total.seconds());
  return 0;
}
