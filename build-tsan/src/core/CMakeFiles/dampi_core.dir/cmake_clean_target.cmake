file(REMOVE_RECURSE
  "libdampi_core.a"
)
