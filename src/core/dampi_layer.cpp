#include "core/dampi_layer.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dampi::core {

DampiShared::DampiShared(ExplorerOptions opts, Schedule sched,
                         std::shared_ptr<TraceSink> trace_sink)
    : options(std::move(opts)),
      schedule(std::move(sched)),
      sink(std::move(trace_sink)) {
  max_decided_index.assign(static_cast<std::size_t>(options.nprocs), -1);
  for (const auto& [key, src] : schedule.forced) {
    auto& slot = max_decided_index[static_cast<std::size_t>(key.rank)];
    slot = std::max(slot, static_cast<std::int64_t>(key.nd_index));
  }
}

DampiLayer::DampiLayer(int rank, int nprocs,
                       std::shared_ptr<DampiShared> shared,
                       std::unique_ptr<piggyback::Transport> transport)
    : rank_(rank),
      nprocs_(nprocs),
      shared_(std::move(shared)),
      options_(shared_->options),
      transport_(std::move(transport)),
      clock_(options_.clock_mode, nprocs, rank),
      xmit_clock_(options_.clock_mode, nprocs, rank) {}

DampiLayer::~DampiLayer() {
  // Aborted runs never reach on_finalize; the trace still matters (the
  // explorer reports and backtracks over it), so flush at teardown too.
  flush(/*from_finalize=*/false);
}

void DampiLayer::on_init(mpism::ToolCtx& ctx) { transport_->on_init(ctx); }

void DampiLayer::on_finalize(mpism::ToolCtx& ctx) {
  drain_unreceived(ctx);
  flush(true);
}

void DampiLayer::drain_unreceived(mpism::ToolCtx& ctx) {
  // MPI_Finalize is collective: after this barrier every user send of the
  // run has been injected, so the drain below sees all leftovers.
  ctx.raw_barrier(mpism::kCommWorld);
  for (const mpism::CommId comm : known_comms_) {
    mpism::Status st;
    while (ctx.raw_iprobe(mpism::kAnySource, mpism::kAnyTag, comm, &st)) {
      mpism::Bytes payload;
      const mpism::Status got =
          ctx.raw_recv(st.source, st.tag, comm, &payload);
      mpism::ReqCompletion c;
      c.kind = mpism::ReqKind::kRecv;
      c.comm = comm;
      c.src_world = ctx.to_world(comm, got.source);
      c.tag = got.tag;
      c.seq = got.seq;
      c.msg_id = got.msg_id;
      c.status = got;
      c.payload = &payload;
      const mpism::Bytes msg_clock = transport_->on_recv_complete(ctx, c);
      find_potential_matches(ctx, c.src_world, c.seq, c.tag, comm, msg_clock);
      merge_incoming(msg_clock);
    }
  }
}

void DampiLayer::flush(bool) {
  if (flushed_) return;
  flushed_ = true;
  static obs::Counter& epochs_recv_metric =
      obs::Registry::instance().counter("layer.epochs_recv");
  static obs::Counter& epochs_probe_metric =
      obs::Registry::instance().counter("layer.epochs_probe");
  static obs::Counter& potential_metric =
      obs::Registry::instance().counter("layer.potential_matches");
  static obs::Counter& late_metric =
      obs::Registry::instance().counter("layer.late_messages");
  epochs_recv_metric.add(recv_epoch_count_);
  epochs_probe_metric.add(probe_epoch_count_);
  potential_metric.add(potential_count_);
  late_metric.add(late_count_);
  shared_->sink->flush_rank(std::move(epochs_), std::move(alerts_),
                            recv_epoch_count_, probe_epoch_count_,
                            potential_count_, late_count_);
}

mpism::Rank DampiLayer::guided_source() {
  const std::int64_t frontier =
      shared_->max_decided_index[static_cast<std::size_t>(rank_)];
  if (static_cast<std::int64_t>(nd_index_) > frontier) {
    return mpism::kAnySource;  // past the guided_epoch: SELF_RUN
  }
  const mpism::Rank forced =
      shared_->schedule.lookup(EpochKey{rank_, nd_index_});
  if (forced == mpism::kAnySource) {
    // Inside the frontier but no decision: the ND event sequence shifted
    // relative to the recorded run (timing-dependent probes). Degrade to
    // self-run and count the divergence.
    shared_->divergences.fetch_add(1, std::memory_order_relaxed);
  }
  return forced;
}

EpochRecord& DampiLayer::record_epoch(mpism::CommId comm, mpism::Tag tag,
                                      bool is_probe) {
  // The ND event is itself a clock event: tick first, then stamp the
  // epoch with the post-increment value. This is what makes both
  // concurrent sends of the paper's Fig. 3 (sender clocks 0) late with
  // respect to the epoch (clock 1): late iff m.LC < epoch.LC.
  clock_.tick();
  EpochRecord rec;
  rec.key = EpochKey{rank_, nd_index_++};
  rec.lc = clock_.lamport_value();
  if (options_.clock_mode == ClockMode::kVector) {
    rec.vc = clock_.vector_components();
  }
  rec.comm = comm;
  rec.tag = tag;
  rec.is_probe = is_probe;
  rec.in_ignored_region = options_.loop_abstraction && region_depth_ > 0;
  // Automatic loop detection: after `auto_loop_threshold` consecutive ND
  // events with the same signature, the streak is a fixed communication
  // pattern; keep its self-run matches (the first `threshold` events of
  // the streak stay fully explored).
  const EpochSignature signature{comm, tag, is_probe};
  if (signature == last_signature_) {
    ++signature_streak_;
  } else {
    last_signature_ = signature;
    signature_streak_ = 1;
  }
  if (options_.auto_loop_threshold > 0 &&
      signature_streak_ > options_.auto_loop_threshold) {
    rec.in_ignored_region = true;
    rec.auto_abstracted = true;
  }
  epochs_.push_back(std::move(rec));
  if (is_probe) {
    ++probe_epoch_count_;
  } else {
    ++recv_epoch_count_;
  }
  DAMPI_TEVENT(obs::EventKind::kEpochOpen, obs::Phase::kInstant, rank_,
               static_cast<std::int32_t>(epochs_.back().key.nd_index), 0,
               epochs_.back().lc);
  return epochs_.back();
}

// --- sends -----------------------------------------------------------------

void DampiLayer::pre_isend(mpism::ToolCtx& ctx, mpism::SendCall& call) {
  if (options_.unsafe_monitor) unsafe_check(ctx, "send");
  transmit_clock().serialize_into(&latch_send_clock_);
  DAMPI_TEVENT(obs::EventKind::kPiggybackAttach, obs::Phase::kInstant,
               static_cast<std::int32_t>(latch_send_clock_.size()));
  transport_->on_pre_send(ctx, call, latch_send_clock_);
}

void DampiLayer::post_isend(mpism::ToolCtx& ctx, const mpism::SendCall& call,
                            mpism::RequestId, const mpism::SendInfo& info) {
  transport_->on_post_send(ctx, call, info, latch_send_clock_);
}

// --- receives ---------------------------------------------------------------

void DampiLayer::pre_irecv(mpism::ToolCtx& ctx, mpism::RecvCall& call) {
  latch_irecv_was_wildcard_ = (call.src == mpism::kAnySource);
  if (!latch_irecv_was_wildcard_) return;
  const mpism::Rank forced = guided_source();
  if (forced != mpism::kAnySource) {
    // GUIDED_RUN: determinize the receive (paper: PMPI_Irecv with
    // GetSrcFromEpoch(LCi)).
    call.src = ctx.to_rel(call.comm, forced);
    DAMPI_CHECK_MSG(call.src != mpism::kAnySource,
                    "forced source is not a member of the communicator");
  }
}

void DampiLayer::post_irecv(mpism::ToolCtx& ctx, const mpism::RecvCall& call,
                            mpism::RequestId id) {
  if (!latch_irecv_was_wildcard_) return;
  latch_irecv_was_wildcard_ = false;
  record_epoch(call.comm, call.tag, /*is_probe=*/false);
  wildcard_reqs_[id] = epochs_.size() - 1;
  pending_wildcards_.insert(id);
  ctx.add_cost(options_.epoch_record_cost_us);
}

void DampiLayer::post_wait(mpism::ToolCtx& ctx, mpism::ReqCompletion& c) {
  if (c.kind != mpism::ReqKind::kRecv) return;
  // Retrieve the sender's clock (deferred until the source is known —
  // the paper's wildcard piggyback rule).
  const mpism::Bytes msg_clock = transport_->on_recv_complete(ctx, c);

  // If this completion resolves one of our wildcard epochs, bind its
  // outcome first so it cannot be recorded as its own alternative.
  auto it = wildcard_reqs_.find(c.id);
  if (it != wildcard_reqs_.end()) {
    EpochRecord& epoch = epochs_[it->second];
    epoch.matched_src_world = c.src_world;
    epoch.matched_seq = c.seq;
    DAMPI_TEVENT(obs::EventKind::kEpochClose, obs::Phase::kInstant, rank_,
                 static_cast<std::int32_t>(epoch.key.nd_index),
                 c.src_world, c.seq);
    wildcard_reqs_.erase(it);
    pending_wildcards_.erase(c.id);
    if (options_.deferred_clock_sync) {
      // §V: the Wait/Test is the synchronization point — only now may
      // outgoing traffic advertise this epoch's tick.
      xmit_clock_.merge_epoch(epoch.lc, epoch.vc);
    }
  }

  find_potential_matches(ctx, c.src_world, c.seq, c.tag, c.comm, msg_clock);

  // LCi = max(LCi, m.LC).
  merge_incoming(msg_clock);
}

void DampiLayer::find_potential_matches(mpism::ToolCtx& ctx,
                                        mpism::Rank src_world,
                                        std::uint64_t seq, mpism::Tag tag,
                                        mpism::CommId comm,
                                        const mpism::Bytes& msg_clock) {
  if (msg_clock.empty()) return;
  bool late_for_any = false;
  // Newest-to-oldest; epochs of one rank are totally ordered by program
  // order, so once the message is causally after an epoch it is after all
  // older ones too.
  for (auto rit = epochs_.rbegin(); rit != epochs_.rend(); ++rit) {
    EpochRecord& epoch = *rit;
    if (clock_.is_after(msg_clock, epoch.lc, epoch.vc)) break;
    ctx.add_cost(options_.late_analysis_cost_us);
    if (!clock_.is_late(msg_clock, epoch.lc, epoch.vc)) continue;
    late_for_any = true;
    if (epoch.in_ignored_region) continue;      // loop abstraction
    if (epoch.comm != comm) continue;
    if (epoch.tag != mpism::kAnyTag && epoch.tag != tag) continue;
    if (epoch.matched_src_world == src_world) continue;
    // Keep the earliest late send per source — MPI non-overtaking means
    // only the head of each channel could have matched instead.
    auto [slot, inserted] = epoch.alternatives.try_emplace(
        src_world, PotentialMatch{src_world, seq, tag, 0});
    if (inserted) {
      ++potential_count_;
      DAMPI_TEVENT(obs::EventKind::kLateSend, obs::Phase::kInstant, src_world,
                   static_cast<std::int32_t>(epoch.key.nd_index), tag, seq);
    } else if (seq < slot->second.seq) {
      slot->second = PotentialMatch{src_world, seq, tag, 0};
    }
  }
  if (late_for_any) ++late_count_;
}

// --- probes -----------------------------------------------------------------

void DampiLayer::pre_probe(mpism::ToolCtx& ctx, mpism::ProbeCall& call) {
  latch_probe_was_wildcard_ = (call.src == mpism::kAnySource);
  if (!latch_probe_was_wildcard_) return;
  const mpism::Rank forced = guided_source();
  if (forced != mpism::kAnySource) {
    call.src = ctx.to_rel(call.comm, forced);
    // A forced nonblocking probe must actually observe the decided
    // message: block for it (the decision came from a run where the
    // message was seen, so the source will send it).
    call.blocking = true;
  }
}

void DampiLayer::post_probe(mpism::ToolCtx& ctx, const mpism::ProbeCall& call,
                            bool flag, mpism::Status& status) {
  if (!latch_probe_was_wildcard_) return;
  latch_probe_was_wildcard_ = false;
  // Only a successful probe is a committed ND event (paper: record an
  // Iprobe only when the runtime sets its flag).
  if (!flag) return;
  EpochRecord& epoch = record_epoch(call.comm, call.tag, /*is_probe=*/true);
  epoch.matched_src_world = ctx.to_world(call.comm, status.source);
  epoch.matched_seq = status.seq;
  DAMPI_TEVENT(obs::EventKind::kEpochClose, obs::Phase::kInstant, rank_,
               static_cast<std::int32_t>(epoch.key.nd_index),
               epoch.matched_src_world, epoch.matched_seq);
  if (options_.deferred_clock_sync) {
    // A probe completes its own epoch; synchronize immediately.
    xmit_clock_.merge_epoch(epoch.lc, epoch.vc);
  }
  ctx.add_cost(options_.epoch_record_cost_us);
  // No piggyback is received: probes do not dequeue the message (§II-E).
}

// --- collectives ------------------------------------------------------------

void DampiLayer::pre_collective(mpism::ToolCtx& ctx, mpism::CollCall& call) {
  if (options_.unsafe_monitor) unsafe_check(ctx, "collective");
  transmit_clock().serialize_into(&call.pb_contribution);
}

void DampiLayer::post_collective(mpism::ToolCtx& ctx,
                                 const mpism::CollCall& call,
                                 const mpism::CollResult& result) {
  if (result.has_incoming) merge_incoming(result.incoming);
  if (result.new_comm != mpism::kCommNull) {
    transport_->on_new_comm(ctx, result.new_comm);
    known_comms_.push_back(result.new_comm);
  }
  if (call.kind == mpism::CollKind::kCommFree) {
    std::erase(known_comms_, call.comm);
  }
}

// --- misc --------------------------------------------------------------------

void DampiLayer::on_pcontrol(mpism::ToolCtx&, int level, const std::string&) {
  if (!options_.loop_abstraction) return;
  if (level == 1) {
    ++region_depth_;
  } else if (level == 0 && region_depth_ > 0) {
    --region_depth_;
  }
}

void DampiLayer::unsafe_check(mpism::ToolCtx&, const char* op) {
  if (pending_wildcards_.empty()) return;
  // With deferred clock sync the transmitted clock excludes pending
  // epochs, so the pattern is handled, not merely detected.
  if (options_.deferred_clock_sync) return;
  // A clock-transmitting operation while a wildcard Irecv is still
  // pending: the paper's §V omission pattern. The transmitted clock
  // already reflects the epoch's tick even though the match has not
  // completed, so late-message analysis at the peers may under-report.
  alerts_.push_back(UnsafeAlert{
      rank_, strfmt("rank %d issued a clock-transmitting %s while %zu "
                    "wildcard receive(s) were pending completion",
                    rank_, op, pending_wildcards_.size())});
}

// --- setup -------------------------------------------------------------------

mpism::ToolSetup make_dampi_setup(
    std::shared_ptr<DampiShared> shared,
    std::shared_ptr<piggyback::TelepathicBoard> board) {
  mpism::ToolSetup setup;
  LayerStackFactory extra;
  if (shared->options.extra_layers_per_run) {
    extra = shared->options.extra_layers_per_run();
  }
  setup.make_stack = [shared, board, extra](int rank, int nprocs) {
    std::vector<std::unique_ptr<mpism::ToolLayer>> stack;
    if (extra) {
      auto extras = extra(rank, nprocs);
      for (auto& layer : extras) stack.push_back(std::move(layer));
    }
    piggyback::TransportFactoryState state;
    state.board = board;
    stack.push_back(std::make_unique<DampiLayer>(
        rank, nprocs, shared,
        piggyback::make_transport(shared->options.transport, state)));
    return stack;
  };
  setup.coll_merge = &ClockState::merge_serialized;
  return setup;
}

}  // namespace dampi::core
