file(REMOVE_RECURSE
  "CMakeFiles/test_explorer_parallel.dir/test_explorer_parallel.cpp.o"
  "CMakeFiles/test_explorer_parallel.dir/test_explorer_parallel.cpp.o.d"
  "test_explorer_parallel"
  "test_explorer_parallel.pdb"
  "test_explorer_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explorer_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
