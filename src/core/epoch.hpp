// Epochs and potential matches — the paper's central data structure.
//
// Every non-deterministic event (wildcard receive, flagged wildcard
// probe) starts an epoch on its rank. During the run, each incoming
// message whose piggybacked clock shows it is not causally after an
// epoch, and that is tag/communicator-compatible with it, is recorded as
// a *potential match* for that epoch — keeping only the earliest late
// send per source, which is what MPI's non-overtaking rule permits as an
// alternative.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "mpism/types.hpp"

namespace dampi::core {

/// Stable identity of an epoch across replays: the rank plus the ordinal
/// of the ND event on that rank. (The paper keys its Epoch Decisions file
/// by Lamport clock value, which replays identically under a forced
/// prefix; the ordinal is the same bookkeeping, robust even if clock
/// update rules change.)
struct EpochKey {
  int rank = -1;
  std::uint64_t nd_index = 0;

  friend auto operator<=>(const EpochKey&, const EpochKey&) = default;
};

/// One alternative match for an epoch: the earliest late send observed
/// from one source.
struct PotentialMatch {
  mpism::Rank src_world = -1;
  std::uint64_t seq = 0;
  mpism::Tag tag = mpism::kAnyTag;
  std::uint64_t msg_id = 0;
};

struct EpochRecord {
  EpochKey key;
  /// Lamport clock value when the epoch began (before the tick). Used as
  /// the global trace-ordering component; monotone per rank.
  std::uint64_t lc = 0;
  /// Vector timestamp at the same instant (vector mode only; empty in
  /// Lamport mode).
  std::vector<clocks::VectorClock::Value> vc;

  mpism::CommId comm = mpism::kCommWorld;
  /// Tag as posted by the program (may be kAnyTag).
  mpism::Tag tag = mpism::kAnyTag;
  bool is_probe = false;
  /// Epoch fell inside an MPI_Pcontrol loop-abstraction region: keep the
  /// self-run match, record no alternatives.
  bool in_ignored_region = false;
  /// in_ignored_region was set by the automatic loop detector rather
  /// than a user Pcontrol bracket.
  bool auto_abstracted = false;

  /// Outcome of this epoch in this run (world rank of the matched/probed
  /// sender). -1 until completion is observed.
  mpism::Rank matched_src_world = -1;
  std::uint64_t matched_seq = 0;

  /// Earliest late send per source (excluding the matched source).
  std::map<mpism::Rank, PotentialMatch> alternatives;
};

/// One unsafe-pattern alert (paper §V).
struct UnsafeAlert {
  int rank = -1;
  std::string detail;
};

/// Everything one run left behind, flushed per rank by the DAMPI layer
/// (at finalize, or at teardown for aborted runs).
struct RunTrace {
  std::vector<EpochRecord> epochs;
  std::vector<UnsafeAlert> alerts;
  std::uint64_t wildcard_recv_epochs = 0;  ///< Table II's R* for this run
  std::uint64_t wildcard_probe_epochs = 0;
  std::uint64_t potential_matches = 0;
  std::uint64_t late_messages_seen = 0;
  std::uint64_t auto_abstracted_epochs = 0;

  /// Epochs in canonical trace order: (lc, rank, nd_index). Stable for a
  /// replayed prefix because forced matches reproduce clock propagation.
  /// Sorted once and memoized — the explorer consults the order after
  /// every run, and re-sorting an unchanged trace was pure waste. The
  /// cache is identity-keyed on the epochs buffer: copies and moves
  /// invalidate it (it never travels — the cached pointers would dangle
  /// into the source's buffer), and in-place growth of an already-sorted
  /// trace trips a DAMPI_CHECK, because mutating epochs after sorted()
  /// invalidates pointers callers may still hold.
  std::vector<const EpochRecord*> sorted() const;

 private:
  /// Memoized canonical order; see sorted(). Deliberately non-copying:
  /// any copy/move of the trace starts with a cold cache.
  struct SortCache {
    SortCache() = default;
    SortCache(const SortCache&) {}
    SortCache(SortCache&& other) noexcept { other.reset(); }
    SortCache& operator=(const SortCache&) { return reset(); }
    SortCache& operator=(SortCache&& other) noexcept {
      other.reset();
      return reset();
    }
    SortCache& reset() {
      order.clear();
      data = nullptr;
      size = 0;
      valid = false;
      return *this;
    }
    std::vector<const EpochRecord*> order;
    const EpochRecord* data = nullptr;  ///< epochs.data() at sort time
    std::size_t size = 0;               ///< epochs.size() at sort time
    bool valid = false;
  };
  mutable SortCache sort_cache_;
};

/// Thread-safe sink the per-rank layers flush into. One per run.
class TraceSink {
 public:
  void flush_rank(std::vector<EpochRecord> epochs,
                  std::vector<UnsafeAlert> alerts, std::uint64_t recv_epochs,
                  std::uint64_t probe_epochs, std::uint64_t potentials,
                  std::uint64_t lates);

  /// Take the accumulated trace (call after the run's Runtime is gone).
  RunTrace take();

 private:
  std::mutex mu_;
  RunTrace trace_;
};

}  // namespace dampi::core
