// Communication skeletons: parameterized stand-ins for the paper's
// NAS-PB 3.3 and SpecMPI2007 benchmarks.
//
// Table II measures instrumentation overhead and local-resource checking,
// which depend on a code's *operation profile* — how many point-to-point
// / collective / wait operations it issues, how many wildcard receives it
// posts, its message sizes and compute density — not on the physics it
// computes. Each proxy is therefore a skeleton with the communication
// structure of the original (stencil halos, transposes, butterfly
// reductions, pipelined sweeps) and the wildcard counts / leaks the paper
// reports for it.
#pragma once

#include <cstdint>
#include <string>

#include "mpism/proc.hpp"

namespace dampi::workloads {

/// Which partner set a rank exchanges with each iteration.
enum class Topology {
  kRing,       ///< left/right neighbors (1D stencil)
  kGrid2D,     ///< 4-neighbor halo on a near-square process grid
  kGrid3D,     ///< 6-neighbor halo on a near-cubic process grid
  kHypercube,  ///< log2(P) partners (FFT/transpose butterflies)
  kAlltoall,   ///< collective alltoall instead of point-to-point
};

/// Which collective punctuates iterations.
enum class CollectiveFlavor { kNone, kAllreduce, kBarrier, kBcast };

struct SkeletonSpec {
  std::string name;

  int iterations = 10;
  Topology topology = Topology::kGrid2D;

  /// Messages exchanged with each partner per iteration.
  int messages_per_partner = 1;
  /// Payload bytes per message.
  std::size_t payload_bytes = 1024;

  /// Every `wildcard_stride`-th iteration receives its halo with
  /// MPI_ANY_SOURCE instead of named partners (0 = never). This is what
  /// separates milc/LU-style codes (high R*) from the deterministic rest.
  int wildcard_stride = 0;
  /// Only ranks with rank % wildcard_rank_stride == 0 post wildcards
  /// (models codes where only boundary/pipeline-head ranks are
  /// non-deterministic, e.g. 137.lu's 732 wildcards across 1024 ranks).
  int wildcard_rank_stride = 1;

  /// Collective cadence: one `collective` every `collective_stride`
  /// iterations (0 = never).
  CollectiveFlavor collective = CollectiveFlavor::kAllreduce;
  int collective_stride = 1;

  /// Virtual microseconds of local compute per iteration.
  double compute_us_per_iter = 50.0;

  /// Resource bugs to reproduce (Table II C-Leak / R-Leak columns).
  bool leak_communicator = false;
  bool leak_request = false;

  /// Nonblocking receives are completed with waitall on groups of this
  /// size (controls the Wait:Send-Recv operation ratio).
  int waitall_group = 4;
};

/// Run the skeleton on all ranks of the communicator (world).
void run_skeleton(mpism::Proc& p, const SkeletonSpec& spec);

/// Partner list for a rank under a topology (exposed for tests).
std::vector<int> skeleton_partners(Topology topology, int rank, int nprocs);

}  // namespace dampi::workloads
