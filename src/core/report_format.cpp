#include "core/report_format.hpp"

#include "common/strutil.hpp"

namespace dampi::core {

std::string format_bug(const BugRecord& bug) {
  std::string out;
  if (bug.kind == BugRecord::Kind::kDeadlock) {
    out += strfmt("DEADLOCK in interleaving %llu:\n",
                  static_cast<unsigned long long>(bug.interleaving));
    out += bug.deadlock_detail;
  } else if (bug.kind == BugRecord::Kind::kHang) {
    out += strfmt("HANG (watchdog) in interleaving %llu:\n",
                  static_cast<unsigned long long>(bug.interleaving));
    out += strfmt("  %s\n", bug.deadlock_detail.c_str());
  } else {
    out += strfmt("FAILURE in interleaving %llu:\n",
                  static_cast<unsigned long long>(bug.interleaving));
    for (const auto& error : bug.errors) {
      out += strfmt("  rank %d: %s\n", error.rank, error.message.c_str());
    }
  }
  if (bug.schedule.empty()) {
    out += "  (no decisions: the initial self-run hit it)\n";
  } else {
    out += "  epoch decisions to replay it:\n";
    for (const auto& [key, src] : bug.schedule.forced) {
      out += strfmt("    rank %d nd#%llu -> source %d\n", key.rank,
                    static_cast<unsigned long long>(key.nd_index), src);
    }
  }
  return out;
}

std::string format_verify_result(const VerifyResult& result) {
  const ExploreResult& e = result.exploration;
  std::string out;
  out += strfmt("interleavings explored : %llu%s\n",
                static_cast<unsigned long long>(e.interleavings),
                e.interleaving_budget_exhausted ? " (budget exhausted)"
                : e.time_budget_exhausted       ? " (time budget exhausted)"
                : e.interrupted                 ? " (interrupted)"
                                                : "");
  if (e.resumed) {
    out += "resumed from checkpoint: yes (first-run stats reflect the "
           "original walk)\n";
  }
  if (e.retries > 0 || e.timeouts > 0 || e.quarantined > 0) {
    out += strfmt("resilience             : %llu retries, %llu watchdog "
                  "timeouts, %llu quarantined\n",
                  static_cast<unsigned long long>(e.retries),
                  static_cast<unsigned long long>(e.timeouts),
                  static_cast<unsigned long long>(e.quarantined));
  }
  if (e.checkpoint_writes > 0) {
    out += strfmt("checkpoint writes      : %llu\n",
                  static_cast<unsigned long long>(e.checkpoint_writes));
  }
  out += strfmt("wildcard epochs (R*)   : %llu recv, %llu probe\n",
                static_cast<unsigned long long>(e.wildcard_recv_epochs),
                static_cast<unsigned long long>(e.wildcard_probe_epochs));
  out += strfmt("potential matches      : %llu (first run)\n",
                static_cast<unsigned long long>(
                    e.potential_matches_first_run));
  if (result.native_vtime_us > 0.0) {
    out += strfmt("slowdown vs native     : %.2fx\n", result.slowdown);
  }
  if (e.pool.jobs > 1) {
    out += strfmt(
        "replay jobs            : %d (%llu worker runs: %llu consumed, "
        "%llu wasted; peak in-flight %zu, peak queue %zu)\n",
        e.pool.jobs,
        static_cast<unsigned long long>(e.pool.worker_runs),
        static_cast<unsigned long long>(e.pool.speculative_hits),
        static_cast<unsigned long long>(e.pool.speculative_waste),
        e.pool.max_in_flight, e.pool.max_queue_depth);
    out += strfmt("per-run wall (s)       : %s\n",
                  e.pool.run_wall_seconds.str().c_str());
    out += strfmt("per-run vtime (us)     : %s\n",
                  e.pool.run_vtime_us.str().c_str());
  }
  out += strfmt("communicator leaks     : %d\n", result.comm_leaks);
  out += strfmt("request leaks          : %llu\n",
                static_cast<unsigned long long>(result.request_leaks));
  if (e.divergences > 0) {
    out += strfmt("replay divergences     : %llu (timing-dependent ND "
                  "event sequence)\n",
                  static_cast<unsigned long long>(e.divergences));
  }
  for (const auto& alert : e.unsafe_alerts) {
    out += strfmt("unsafe pattern (S5)    : %s\n", alert.c_str());
  }
  if (e.bugs.empty()) {
    out += "verdict                : no deadlock or failure found\n";
  } else {
    out += strfmt("verdict                : %zu bug(s) found\n",
                  e.bugs.size());
    for (const auto& bug : e.bugs) out += format_bug(bug);
  }
  return out;
}

}  // namespace dampi::core
