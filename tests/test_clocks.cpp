// Unit tests for Lamport and vector clocks — the causality substrate of
// DAMPI's late-message analysis.
#include <gtest/gtest.h>

#include "clocks/lamport.hpp"
#include "clocks/vector_clock.hpp"

namespace dampi::clocks {
namespace {

TEST(LamportClock, StartsAtZeroAndTicks) {
  LamportClock c;
  EXPECT_EQ(c.value(), 0u);
  c.tick();
  c.tick();
  EXPECT_EQ(c.value(), 2u);
}

TEST(LamportClock, MergeTakesMax) {
  LamportClock c(5);
  c.merge(3);
  EXPECT_EQ(c.value(), 5u);
  c.merge(9);
  EXPECT_EQ(c.value(), 9u);
  c.merge(9);
  EXPECT_EQ(c.value(), 9u);
}

TEST(LamportClock, Comparisons) {
  EXPECT_TRUE(LamportClock(1) < LamportClock(2));
  EXPECT_FALSE(LamportClock(2) < LamportClock(2));
  EXPECT_TRUE(LamportClock(2) == LamportClock(2));
}

// The defining property: happened-before implies clock order, via the
// message rule merge-then-tick. (The converse fails; that is exactly the
// imprecision the paper's Fig. 4 exploits — tested at the verifier level.)
TEST(LamportClock, MessageChainMonotone) {
  LamportClock sender;
  sender.tick();  // event a
  const auto sent = sender.value();
  LamportClock receiver;
  receiver.merge(sent);
  receiver.tick();  // event b, causally after a
  EXPECT_LT(sent, receiver.value());
}

TEST(VectorClock, ZeroInitialized) {
  VectorClock v(4, 2);
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.owner(), 2);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v.component(i), 0u);
}

TEST(VectorClock, TickBumpsOwnComponentOnly) {
  VectorClock v(3, 1);
  v.tick();
  v.tick();
  EXPECT_EQ(v.component(0), 0u);
  EXPECT_EQ(v.component(1), 2u);
  EXPECT_EQ(v.component(2), 0u);
  EXPECT_EQ(v.own(), 2u);
}

TEST(VectorClock, MergeIsComponentwiseMax) {
  VectorClock a(3, 0);
  VectorClock b(3, 1);
  a.tick();  // [1,0,0]
  b.tick();
  b.tick();  // [0,2,0]
  a.merge(b);
  EXPECT_EQ(a.component(0), 1u);
  EXPECT_EQ(a.component(1), 2u);
  EXPECT_EQ(a.component(2), 0u);
}

TEST(VectorClock, CompareEqual) {
  VectorClock a(2, 0), b(2, 1);
  EXPECT_EQ(VectorClock::compare(a, b), Ordering::kEqual);
}

TEST(VectorClock, CompareBeforeAfter) {
  VectorClock a(2, 0), b(2, 1);
  a.tick();      // a = [1,0]
  b.merge(a);    // b = [1,0]
  b.tick();      // b = [1,1]
  EXPECT_EQ(VectorClock::compare(a, b), Ordering::kBefore);
  EXPECT_EQ(VectorClock::compare(b, a), Ordering::kAfter);
}

TEST(VectorClock, CompareConcurrent) {
  VectorClock a(2, 0), b(2, 1);
  a.tick();  // [1,0]
  b.tick();  // [0,1]
  EXPECT_EQ(VectorClock::compare(a, b), Ordering::kConcurrent);
  EXPECT_EQ(VectorClock::compare(b, a), Ordering::kConcurrent);
}

TEST(VectorClock, NotAfterAcceptsBeforeAndConcurrent) {
  VectorClock a(2, 0), b(2, 1);
  a.tick();
  b.tick();
  // Concurrent both ways.
  EXPECT_TRUE(VectorClock::not_after(a.components(), b.components()));
  EXPECT_TRUE(VectorClock::not_after(b.components(), a.components()));
  // Strictly after is rejected.
  VectorClock c(2, 1);
  c.merge(a);
  c.tick();  // c causally after a
  EXPECT_FALSE(VectorClock::not_after(c.components(), a.components()));
  EXPECT_TRUE(VectorClock::not_after(a.components(), c.components()));
}

TEST(VectorClock, StrFormat) {
  VectorClock v(3, 0);
  v.tick();
  EXPECT_EQ(v.str(), "[1,0,0]");
}

// Property sweep: along any causal chain of message exchanges, vector
// clock order and Lamport order both respect happened-before, and the
// Lamport value is always dominated by the sum of vector components.
class ClockChainTest : public ::testing::TestWithParam<int> {};

TEST_P(ClockChainTest, CausalChainsAgree) {
  const int hops = GetParam();
  const int n = 4;
  std::vector<VectorClock> vcs;
  std::vector<LamportClock> lcs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) vcs.emplace_back(n, i);

  VectorClock prev_vc = vcs[0];
  LamportClock prev_lc = lcs[0];
  for (int h = 0; h < hops; ++h) {
    const int dst = (h + 1) % n;
    auto& vc = vcs[static_cast<std::size_t>(dst)];
    auto& lc = lcs[static_cast<std::size_t>(dst)];
    vc.merge(prev_vc);
    vc.tick();
    lc.merge(prev_lc.value());
    lc.tick();
    // Each hop is causally after the previous state.
    EXPECT_EQ(VectorClock::compare(prev_vc, vc), Ordering::kBefore);
    EXPECT_LT(prev_lc.value(), lc.value());
    prev_vc = vc;
    prev_lc = lc;
  }
}

INSTANTIATE_TEST_SUITE_P(Hops, ClockChainTest,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace dampi::clocks
