file(REMOVE_RECURSE
  "CMakeFiles/dampi_core.dir/clock_state.cpp.o"
  "CMakeFiles/dampi_core.dir/clock_state.cpp.o.d"
  "CMakeFiles/dampi_core.dir/dampi_layer.cpp.o"
  "CMakeFiles/dampi_core.dir/dampi_layer.cpp.o.d"
  "CMakeFiles/dampi_core.dir/decision_io.cpp.o"
  "CMakeFiles/dampi_core.dir/decision_io.cpp.o.d"
  "CMakeFiles/dampi_core.dir/epoch.cpp.o"
  "CMakeFiles/dampi_core.dir/epoch.cpp.o.d"
  "CMakeFiles/dampi_core.dir/explorer.cpp.o"
  "CMakeFiles/dampi_core.dir/explorer.cpp.o.d"
  "CMakeFiles/dampi_core.dir/replay_pool.cpp.o"
  "CMakeFiles/dampi_core.dir/replay_pool.cpp.o.d"
  "CMakeFiles/dampi_core.dir/report_format.cpp.o"
  "CMakeFiles/dampi_core.dir/report_format.cpp.o.d"
  "CMakeFiles/dampi_core.dir/verifier.cpp.o"
  "CMakeFiles/dampi_core.dir/verifier.cpp.o.d"
  "libdampi_core.a"
  "libdampi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dampi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
