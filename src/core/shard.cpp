#include "core/shard.hpp"

#include <algorithm>
#include <utility>

#include "common/strutil.hpp"

namespace dampi::core {

namespace {

/// Shard skeleton covering root frames 0..max_pos: every frame becomes a
/// coordinator-owned (escape_alts) site with an empty untried list; the
/// split then re-adds exactly the alternatives this shard is assigned.
Checkpoint shard_skeleton(const Checkpoint& root, std::size_t max_pos) {
  Checkpoint shard;
  shard.fingerprint = root.fingerprint;
  shard.fault_fires = root.fault_fires;
  shard.frames.assign(root.frames.begin(),
                      root.frames.begin() +
                          static_cast<std::ptrdiff_t>(max_pos) + 1);
  for (DfsFrame& frame : shard.frames) {
    frame.untried.clear();
    frame.escape_alts = true;
  }
  return shard;
}

}  // namespace

std::vector<Checkpoint> split_frontier(const Checkpoint& root,
                                       std::size_t max_shards, PorMode por) {
  // One unit of work per untried alternative, shallow frames first —
  // round-robin over that order spreads the biggest subtrees across
  // shards instead of stacking them into one.
  std::vector<std::pair<std::size_t, mpism::Rank>> units;
  for (std::size_t pos = 0; pos < root.frames.size(); ++pos) {
    for (const mpism::Rank src : root.frames[pos].untried) {
      units.emplace_back(pos, src);
    }
  }
  if (units.empty()) return {};

  const std::size_t nshards =
      max_shards == 0 ? units.size() : std::min(max_shards, units.size());
  // Gather each shard's units, then build it once over its deepest frame.
  std::vector<std::vector<std::pair<std::size_t, mpism::Rank>>> assigned(
      nshards);
  for (std::size_t i = 0; i < units.size(); ++i) {
    assigned[i % nshards].push_back(units[i]);
  }

  std::vector<Checkpoint> shards;
  shards.reserve(nshards);
  for (const auto& mine : assigned) {
    std::size_t max_pos = 0;
    for (const auto& [pos, src] : mine) max_pos = std::max(max_pos, pos);
    // Sleep-set pruning needs the whole frontier's seen sets in every
    // shard (see the declaration); off mode keeps the minimal prefix.
    if (por == PorMode::kSleep) max_pos = root.frames.size() - 1;
    Checkpoint shard = shard_skeleton(root, max_pos);
    for (const auto& [pos, src] : mine) {
      shard.frames[pos].untried.push_back(src);
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

std::string site_id(const std::vector<DfsFrame>& frames, std::size_t pos) {
  std::string id;
  for (std::size_t j = 0; j < pos; ++j) {
    id += strfmt("%d:%llu=%d|", frames[j].key.rank,
                 static_cast<unsigned long long>(frames[j].key.nd_index),
                 frames[j].taken_src);
  }
  id += strfmt("@%d:%llu", frames[pos].key.rank,
               static_cast<unsigned long long>(frames[pos].key.nd_index));
  return id;
}

std::string canonical_site_id(const std::vector<DfsFrame>& frames,
                              std::size_t pos, PorMode por) {
  if (por != PorMode::kSleep) return site_id(frames, pos);
  const DecisionFootprint site = frame_footprint(frames[pos]);
  std::string id;
  for (std::size_t j = 0; j < pos; ++j) {
    // A commuting prefix decision does not change what the site's
    // subtree can do — two prefixes differing only there denote the
    // same site. Under Lamport clocks independent() is always false,
    // so the canonical id degenerates to site_id and the off-mode
    // dedup behaviour is preserved bit for bit.
    if (independent(frame_footprint(frames[j]), site)) continue;
    id += strfmt("%d:%llu=%d|", frames[j].key.rank,
                 static_cast<unsigned long long>(frames[j].key.nd_index),
                 frames[j].taken_src);
  }
  id += strfmt("@%d:%llu", frames[pos].key.rank,
               static_cast<unsigned long long>(frames[pos].key.nd_index));
  return id;
}

Checkpoint make_escape_shard(const EscapedAlt& escape,
                             const std::string& fingerprint) {
  Checkpoint shard;
  shard.fingerprint = fingerprint;
  shard.frames = escape.frames;
  for (DfsFrame& frame : shard.frames) {
    frame.untried.clear();
    frame.escape_alts = true;
  }
  shard.frames.back().untried.push_back(escape.src);
  shard.frames.back().seen.insert(escape.src);
  return shard;
}

std::string bug_key(const BugRecord& bug) {
  std::string key = strfmt("k%d", static_cast<int>(bug.kind));
  for (const auto& [epoch, src] : bug.schedule.forced) {
    key += strfmt("|%d:%llu=%d", epoch.rank,
                  static_cast<unsigned long long>(epoch.nd_index), src);
  }
  return key;
}

CampaignMerge::CampaignMerge(ExploreResult discovery, PorMode por)
    : por_(por), merged_(std::move(discovery)) {
  for (const BugRecord& bug : merged_.bugs) bug_keys_.insert(bug_key(bug));
  for (const std::string& alert : merged_.unsafe_alerts) {
    alert_keys_.insert(alert);
  }
  // The frontier travels to split_frontier separately; the merged report
  // must not carry a stale copy of it.
  merged_.frontier.clear();
  merged_.escaped.clear();
}

void CampaignMerge::register_shard_sites(const Checkpoint& shard) {
  for (std::size_t pos = 0; pos < shard.frames.size(); ++pos) {
    const DfsFrame& frame = shard.frames[pos];
    if (!frame.escape_alts) continue;
    std::set<mpism::Rank>& seen =
        site_seen_[canonical_site_id(shard.frames, pos, por_)];
    seen.insert(frame.seen.begin(), frame.seen.end());
    seen.insert(frame.untried.begin(), frame.untried.end());
  }
}

bool CampaignMerge::escape_is_new(const EscapedAlt& escape) {
  if (escape.frames.empty()) return false;
  return site_seen_[canonical_site_id(escape.frames,
                                      escape.frames.size() - 1, por_)]
      .insert(escape.src)
      .second;
}

void CampaignMerge::add(const ExploreResult& shard) {
  merged_.interleavings += shard.interleavings;
  merged_.por_pruned += shard.por_pruned;
  merged_.por_dependent_pairs += shard.por_dependent_pairs;
  merged_.por_sleep_hits += shard.por_sleep_hits;
  merged_.total_vtime_us += shard.total_vtime_us;
  merged_.divergences += shard.divergences;
  merged_.prefix_mismatches += shard.prefix_mismatches;
  merged_.retries += shard.retries;
  merged_.timeouts += shard.timeouts;
  merged_.quarantined += shard.quarantined;
  merged_.checkpoint_writes += shard.checkpoint_writes;
  merged_.interleaving_budget_exhausted |= shard.interleaving_budget_exhausted;
  merged_.time_budget_exhausted |= shard.time_budget_exhausted;
  merged_.interrupted |= shard.interrupted;
  merged_.pool.inline_runs += shard.pool.inline_runs;
  merged_.pool.worker_runs += shard.pool.worker_runs;
  merged_.pool.speculative_hits += shard.pool.speculative_hits;
  merged_.pool.speculative_waste += shard.pool.speculative_waste;
  merged_.pool.max_in_flight =
      std::max(merged_.pool.max_in_flight, shard.pool.max_in_flight);
  merged_.pool.max_queue_depth =
      std::max(merged_.pool.max_queue_depth, shard.pool.max_queue_depth);
  for (const BugRecord& bug : shard.bugs) {
    if (bug_keys_.insert(bug_key(bug)).second) merged_.bugs.push_back(bug);
  }
  for (const std::string& alert : shard.unsafe_alerts) {
    if (alert_keys_.insert(alert).second) {
      merged_.unsafe_alerts.push_back(alert);
    }
  }
}

void CampaignMerge::quarantine_shard() { ++merged_.quarantined; }

ExploreResult CampaignMerge::finish() {
  std::sort(merged_.bugs.begin(), merged_.bugs.end(),
            [](const BugRecord& a, const BugRecord& b) {
              return bug_key(a) < bug_key(b);
            });
  return std::move(merged_);
}

}  // namespace dampi::core
