file(REMOVE_RECURSE
  "CMakeFiles/verify_cli.dir/verify_cli.cpp.o"
  "CMakeFiles/verify_cli.dir/verify_cli.cpp.o.d"
  "verify_cli"
  "verify_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
