
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clock_state.cpp" "src/core/CMakeFiles/dampi_core.dir/clock_state.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/clock_state.cpp.o.d"
  "/root/repo/src/core/dampi_layer.cpp" "src/core/CMakeFiles/dampi_core.dir/dampi_layer.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/dampi_layer.cpp.o.d"
  "/root/repo/src/core/decision_io.cpp" "src/core/CMakeFiles/dampi_core.dir/decision_io.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/decision_io.cpp.o.d"
  "/root/repo/src/core/epoch.cpp" "src/core/CMakeFiles/dampi_core.dir/epoch.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/epoch.cpp.o.d"
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/dampi_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/explorer.cpp.o.d"
  "/root/repo/src/core/replay_pool.cpp" "src/core/CMakeFiles/dampi_core.dir/replay_pool.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/replay_pool.cpp.o.d"
  "/root/repo/src/core/report_format.cpp" "src/core/CMakeFiles/dampi_core.dir/report_format.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/report_format.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/core/CMakeFiles/dampi_core.dir/verifier.cpp.o" "gcc" "src/core/CMakeFiles/dampi_core.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mpism/CMakeFiles/mpism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/piggyback/CMakeFiles/dampi_piggyback.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/clocks/CMakeFiles/dampi_clocks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/dampi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
