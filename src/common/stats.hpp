// Small statistics helpers shared by benches and the runtime's op counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dampi {

/// Streaming mean / min / max / stddev accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Render `count` as a compact human string the way the paper prints op
/// counts: 187K, 1315K, 7986K — i.e. thousands with a K suffix once >= 10K.
std::string human_count(std::uint64_t count);

/// Simple fixed-width text table used by the bench harnesses to print
/// paper-style tables. Columns are sized to the widest cell.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// Render with column separators, header underline.
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  bool has_header_ = false;
};

}  // namespace dampi
