// The PnMPI-style tool stack: hook coverage, argument rewriting, raw
// operations, collective piggyback routing, and cost accounting — the
// substrate contract DAMPI's layers rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "support/run_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::CollCall;
using mpism::CollKind;
using mpism::CollResult;
using mpism::CommId;
using mpism::kAnySource;
using mpism::kCommWorld;
using mpism::pack;
using mpism::ProbeCall;
using mpism::RecvCall;
using mpism::ReqCompletion;
using mpism::ReqKind;
using mpism::RequestId;
using mpism::SendCall;
using mpism::SendInfo;
using mpism::Status;
using mpism::ToolCtx;
using mpism::ToolLayer;
using mpism::ToolSetup;
using mpism::unpack;

/// Records every hook invocation into a shared, mutex-guarded journal.
struct Journal {
  std::mutex mu;
  std::vector<std::string> events;
  void add(std::string e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(std::move(e));
  }
  bool contains(const std::string& needle) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& e : events) {
      if (e == needle) return true;
    }
    return false;
  }
};

class RecordingLayer final : public ToolLayer {
 public:
  RecordingLayer(std::shared_ptr<Journal> journal, int rank,
                 const std::string& name)
      : journal_(std::move(journal)), rank_(rank), name_(name) {}

  void on_init(ToolCtx&) override { note("init"); }
  void on_finalize(ToolCtx&) override { note("finalize"); }
  void pre_isend(ToolCtx&, SendCall&) override { note("pre_isend"); }
  void post_isend(ToolCtx&, const SendCall&, RequestId,
                  const SendInfo&) override {
    note("post_isend");
  }
  void pre_irecv(ToolCtx&, RecvCall&) override { note("pre_irecv"); }
  void post_irecv(ToolCtx&, const RecvCall&, RequestId) override {
    note("post_irecv");
  }
  void post_wait(ToolCtx&, ReqCompletion& c) override {
    note(c.kind == ReqKind::kRecv ? "post_wait_recv" : "post_wait_send");
  }
  void pre_collective(ToolCtx&, CollCall& call) override {
    note(std::string("pre_coll_") + mpism::coll_kind_name(call.kind));
  }
  void post_collective(ToolCtx&, const CollCall& call,
                       const CollResult&) override {
    note(std::string("post_coll_") + mpism::coll_kind_name(call.kind));
  }
  void on_pcontrol(ToolCtx&, int level, const std::string& what) override {
    note("pcontrol_" + std::to_string(level) + "_" + what);
  }

 private:
  void note(const std::string& what) {
    journal_->add(name_ + ":" + std::to_string(rank_) + ":" + what);
  }
  std::shared_ptr<Journal> journal_;
  int rank_;
  std::string name_;
};

ToolSetup recording_setup(std::shared_ptr<Journal> journal) {
  ToolSetup setup;
  setup.make_stack = [journal](int rank, int) {
    std::vector<std::unique_ptr<ToolLayer>> stack;
    stack.push_back(std::make_unique<RecordingLayer>(journal, rank, "L"));
    return stack;
  };
  return setup;
}

TEST(Tools, AllHooksFire) {
  auto journal = std::make_shared<Journal>();
  RunOptions opts;
  opts.nprocs = 2;
  opts.tools = recording_setup(journal);
  auto report = run_program(opts, [](Proc& p) {
    if (p.rank() == 0) {
      RequestId s = p.isend(1, 1, pack<int>(1));
      p.wait(s);
    } else {
      RequestId r = p.irecv(0, 1);
      p.wait(r);
    }
    p.barrier();
    p.pcontrol(1, "loop");
  });
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(journal->contains("L:0:init"));
  EXPECT_TRUE(journal->contains("L:0:pre_isend"));
  EXPECT_TRUE(journal->contains("L:0:post_isend"));
  EXPECT_TRUE(journal->contains("L:0:post_wait_send"));
  EXPECT_TRUE(journal->contains("L:1:pre_irecv"));
  EXPECT_TRUE(journal->contains("L:1:post_irecv"));
  EXPECT_TRUE(journal->contains("L:1:post_wait_recv"));
  EXPECT_TRUE(journal->contains("L:1:pre_coll_barrier"));
  EXPECT_TRUE(journal->contains("L:1:post_coll_barrier"));
  EXPECT_TRUE(journal->contains("L:0:pcontrol_1_loop"));
  EXPECT_TRUE(journal->contains("L:0:finalize"));
}

/// A layer that determinizes every wildcard receive to a fixed source —
/// the exact mechanism of DAMPI's GUIDED_RUN.
class ForceSourceLayer final : public ToolLayer {
 public:
  explicit ForceSourceLayer(int forced) : forced_(forced) {}
  void pre_irecv(ToolCtx&, RecvCall& call) override {
    if (call.src == kAnySource && !used_) {
      call.src = forced_;
      used_ = true;  // only the first epoch is guided; the rest self-run
    }
  }

 private:
  int forced_;
  bool used_ = false;
};

TEST(Tools, RewritingWildcardSourceForcesTheMatch) {
  // Without the layer, lowest-source policy would pick rank 0; the layer
  // forces rank 2 — exactly how a replay enforces an alternate match.
  ToolSetup setup;
  setup.make_stack = [](int rank, int) {
    std::vector<std::unique_ptr<ToolLayer>> stack;
    if (rank == 3) stack.push_back(std::make_unique<ForceSourceLayer>(2));
    return stack;
  };
  RunOptions opts;
  opts.nprocs = 4;
  opts.tools = setup;
  auto report = run_program(opts, [](Proc& p) {
    if (p.rank() == 3) {
      p.barrier();
      Status st = p.recv(kAnySource, 1);
      EXPECT_EQ(st.source, 2);
      p.recv(kAnySource, 1);
      p.recv(kAnySource, 1);
    } else {
      p.send(3, 1, pack<int>(p.rank()));
      p.barrier();
    }
  });
  EXPECT_TRUE(report.ok());
}

/// A layer exercising raw ops: every user payload send is mirrored by a
/// tool message on a shadow communicator; the receiver fetches it at
/// completion — a miniature of the separate-message piggyback protocol.
class ShadowEchoLayer final : public ToolLayer {
 public:
  void on_init(ToolCtx& ctx) override { shadow_ = ctx.raw_comm_dup(kCommWorld); }
  void post_isend(ToolCtx& ctx, const SendCall& call, RequestId,
                  const SendInfo& info) override {
    if (call.comm != kCommWorld) return;
    ctx.raw_isend(call.dst, static_cast<int>(info.seq % 1024), shadow_,
                  pack<std::uint64_t>(info.seq + 1000));
  }
  void post_wait(ToolCtx& ctx, ReqCompletion& c) override {
    if (c.kind != ReqKind::kRecv || c.comm != kCommWorld) return;
    Bytes pb;
    ctx.raw_recv(c.status.source, static_cast<int>(c.seq % 1024), shadow_,
                 &pb);
    last_pb = unpack<std::uint64_t>(pb);
  }
  std::uint64_t last_pb = 0;
  CommId shadow_ = mpism::kCommNull;
};

TEST(Tools, RawOpsOnShadowCommunicatorDeliverToolData) {
  auto values = std::make_shared<std::mutex>();
  auto seen = std::make_shared<std::vector<std::uint64_t>>();
  ToolSetup setup;
  setup.make_stack = [values, seen](int, int) {
    std::vector<std::unique_ptr<ToolLayer>> stack;
    struct Checker final : ToolLayer {
      Checker(std::shared_ptr<std::mutex> mu,
              std::shared_ptr<std::vector<std::uint64_t>> out)
          : mu_(std::move(mu)), out_(std::move(out)) {}
      ShadowEchoLayer inner;
      void on_init(ToolCtx& ctx) override { inner.on_init(ctx); }
      void post_isend(ToolCtx& ctx, const SendCall& c, RequestId r,
                      const SendInfo& i) override {
        inner.post_isend(ctx, c, r, i);
      }
      void post_wait(ToolCtx& ctx, ReqCompletion& c) override {
        inner.post_wait(ctx, c);
        if (c.kind == ReqKind::kRecv) {
          std::lock_guard<std::mutex> lock(*mu_);
          out_->push_back(inner.last_pb);
        }
      }
      std::shared_ptr<std::mutex> mu_;
      std::shared_ptr<std::vector<std::uint64_t>> out_;
    };
    stack.push_back(std::make_unique<Checker>(values, seen));
    return stack;
  };
  RunOptions opts;
  opts.nprocs = 2;
  opts.tools = setup;
  auto report = run_program(opts, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(42));
      p.send(1, 1, pack<int>(43));
    } else {
      p.recv(0, 1);
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.ok());
  // seq 0 and 1 -> pb payloads 1000, 1001, in order.
  ASSERT_EQ(seen->size(), 2u);
  EXPECT_EQ((*seen)[0], 1000u);
  EXPECT_EQ((*seen)[1], 1001u);
  EXPECT_GT(report.stats.tool_messages, 0u);
}

/// Collective piggyback routing: each rank contributes its rank value;
/// the merge function is max. Checks the paper's per-collective clock
/// update directions.
class CollPbLayer final : public ToolLayer {
 public:
  explicit CollPbLayer(std::shared_ptr<Journal> journal)
      : journal_(std::move(journal)) {}
  void pre_collective(ToolCtx& ctx, CollCall& call) override {
    call.pb_contribution =
        pack<std::uint64_t>(static_cast<std::uint64_t>(ctx.world_rank() + 1));
  }
  void post_collective(ToolCtx& ctx, const CollCall& call,
                       const CollResult& result) override {
    std::string what = std::string(mpism::coll_kind_name(call.kind)) + ":" +
                       std::to_string(ctx.world_rank()) + ":";
    what += result.has_incoming
                ? std::to_string(unpack<std::uint64_t>(result.incoming))
                : std::string("none");
    journal_->add(what);
  }

 private:
  std::shared_ptr<Journal> journal_;
};

TEST(Tools, CollectivePiggybackRouting) {
  auto journal = std::make_shared<Journal>();
  ToolSetup setup;
  setup.make_stack = [journal](int, int) {
    std::vector<std::unique_ptr<ToolLayer>> stack;
    stack.push_back(std::make_unique<CollPbLayer>(journal));
    return stack;
  };
  setup.coll_merge = [](const std::vector<Bytes>& contribs) {
    std::uint64_t best = 0;
    for (const Bytes& b : contribs) {
      best = std::max(best, unpack<std::uint64_t>(b));
    }
    return pack(best);
  };
  RunOptions opts;
  opts.nprocs = 3;
  opts.tools = setup;
  auto report = run_program(opts, [](Proc& p) {
    p.barrier();  // all-style: everyone merges max = 3
    Bytes b;
    if (p.rank() == 1) b = pack<int>(5);
    p.bcast(&b, 1);  // root 1: leaves get root's contribution (2)
    p.reduce(pack<std::uint64_t>(1), mpism::ReduceOp::kSumU64,
             /*root=*/2);  // root 2 merges all (3); leaves get none
  });
  EXPECT_TRUE(report.ok());
  // Barrier: every rank sees the max contribution 3.
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(journal->contains("barrier:" + std::to_string(r) + ":3"));
  }
  // Bcast from root 1: leaves see root's value (2), root sees none.
  EXPECT_TRUE(journal->contains("bcast:0:2"));
  EXPECT_TRUE(journal->contains("bcast:2:2"));
  EXPECT_TRUE(journal->contains("bcast:1:none"));
  // Reduce at root 2: root merges max (3), leaves see none.
  EXPECT_TRUE(journal->contains("reduce:2:3"));
  EXPECT_TRUE(journal->contains("reduce:0:none"));
  EXPECT_TRUE(journal->contains("reduce:1:none"));
}

/// Layer cost accounting feeds the overhead benchmarks.
class CostLayer final : public ToolLayer {
 public:
  void pre_isend(ToolCtx& ctx, SendCall&) override { ctx.add_cost(500.0); }
};

TEST(Tools, AddCostInflatesVirtualTime) {
  auto run_with = [](bool with_tool) {
    RunOptions opts;
    opts.nprocs = 2;
    if (with_tool) {
      opts.tools.make_stack = [](int, int) {
        std::vector<std::unique_ptr<ToolLayer>> stack;
        stack.push_back(std::make_unique<CostLayer>());
        return stack;
      };
    }
    return run_program(opts, [](Proc& p) {
      if (p.rank() == 0) {
        for (int i = 0; i < 10; ++i) p.send(1, 1, pack<int>(i));
      } else {
        for (int i = 0; i < 10; ++i) p.recv(0, 1);
      }
    });
  };
  const auto native = run_with(false);
  const auto tooled = run_with(true);
  EXPECT_TRUE(native.ok());
  EXPECT_TRUE(tooled.ok());
  EXPECT_GT(tooled.vtime_us, native.vtime_us + 10 * 500.0 - 1.0);
}

/// Tool raw messages are excluded from user stats and leak accounting.
TEST(Tools, ToolTrafficDoesNotPolluteUserAccounting) {
  ToolSetup setup;
  setup.make_stack = [](int, int) {
    struct NoisyLayer final : ToolLayer {
      CommId shadow = mpism::kCommNull;
      void on_init(ToolCtx& ctx) override {
        shadow = ctx.raw_comm_dup(kCommWorld);
      }
      void post_isend(ToolCtx& ctx, const SendCall& call, RequestId,
                      const SendInfo&) override {
        ctx.raw_isend(call.dst, 0, shadow, pack<int>(0));
      }
      void post_wait(ToolCtx& ctx, ReqCompletion& c) override {
        if (c.kind == ReqKind::kRecv) {
          ctx.raw_recv(c.status.source, 0, shadow, nullptr);
        }
      }
    };
    std::vector<std::unique_ptr<ToolLayer>> stack;
    stack.push_back(std::make_unique<NoisyLayer>());
    return stack;
  };
  RunOptions opts;
  opts.nprocs = 2;
  opts.tools = setup;
  auto report = run_program(opts, [](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, pack<int>(1));
    } else {
      p.recv(0, 1);
    }
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.messages_sent, 1u);        // user payload only
  EXPECT_GT(report.stats.tool_messages, 0u);  // pb traffic counted apart
  EXPECT_EQ(report.comm_leaks, 0);            // shadow comm exempt
  EXPECT_EQ(report.request_leaks, 0u);
  EXPECT_EQ(report.stats.total(mpism::OpCategory::kSendRecv), 2u);
}

}  // namespace
}  // namespace dampi::test
