# Empty dependencies file for bench_fig8_bounded_mixing.
# This may be replaced when dependencies are built.
