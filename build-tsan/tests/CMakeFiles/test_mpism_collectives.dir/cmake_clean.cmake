file(REMOVE_RECURSE
  "CMakeFiles/test_mpism_collectives.dir/test_mpism_collectives.cpp.o"
  "CMakeFiles/test_mpism_collectives.dir/test_mpism_collectives.cpp.o.d"
  "test_mpism_collectives"
  "test_mpism_collectives.pdb"
  "test_mpism_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpism_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
