// Sleep-set pruning: interleavings explored with --por off vs sleep on
// the POR workload family, under vector clocks (the mode where the
// independence relation has evidence to act on).
//
//  - fan-in-groups k={2,3,4}: k disjoint wildcard fan-ins — the
//    commuting case. off walks the 2^k cross-product, sleep walks k+1
//    runs; the ratio grows geometrically with k.
//  - all-pairs-churn: every candidate set overlaps, nothing commutes —
//    the honest 1.0x row proving pruning never fires without evidence.
//  - fan-in / dist-fanout: single-root fan-ins, all decisions contest
//    the same receiver — more 1.0x rows.
//
// Every row is an equivalence check, not just a count: both walks must
// report the same bug set and the same per-epoch outcome sets, or the
// bench exits non-zero. Emits BENCH_por.json (override with
// DAMPI_BENCH_OUT) for scripts/bench_compare.py --por.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "core/por.hpp"
#include "core/shard.hpp"
#include "workloads/patterns.hpp"

namespace {

namespace mpism = dampi::mpism;

using dampi::core::ClockMode;
using dampi::core::EpochKey;
using dampi::core::Explorer;
using dampi::core::ExplorerOptions;
using dampi::core::PorMode;
using dampi::core::Schedule;

struct Sweep {
  std::uint64_t interleavings = 0;
  std::uint64_t pruned = 0;
  double wall_s = 0.0;
  std::set<std::string> bug_keys;
  std::map<EpochKey, std::set<int>> outcomes;
};

Sweep sweep(int nprocs, PorMode por, const mpism::ProgramFn& program) {
  ExplorerOptions options;
  options.nprocs = nprocs;
  options.clock_mode = ClockMode::kVector;
  // coop: deterministic counts; fall back to threads where fibers are
  // unavailable (sanitizer builds) — counts stay exact, sets still match.
  if (mpism::coop_supported()) {
    options.sched.kind = mpism::SchedulerKind::kCoop;
  }
  options.por = por;
  Sweep s;
  dampi::bench::WallTimer timer;
  Explorer explorer(options);
  auto result = explorer.explore(
      program, [&s](const dampi::core::RunTrace& trace,
                    const mpism::RunReport&, const Schedule&) {
        for (const auto& e : trace.epochs) {
          if (e.matched_src_world >= 0) {
            s.outcomes[e.key].insert(e.matched_src_world);
          }
        }
      });
  s.wall_s = timer.seconds();
  s.interleavings = result.interleavings;
  s.pruned = result.por_pruned;
  for (const auto& bug : result.bugs) {
    s.bug_keys.insert(dampi::core::bug_key(bug));
  }
  return s;
}

struct Row {
  std::string workload;
  int procs = 0;
  std::uint64_t off_runs = 0;
  std::uint64_t sleep_runs = 0;
  std::uint64_t pruned = 0;
  double off_wall_s = 0.0;
  double sleep_wall_s = 0.0;
  bool equivalent = false;
};

Row measure(const std::string& name, int nprocs,
            const mpism::ProgramFn& program) {
  const Sweep off = sweep(nprocs, PorMode::kOff, program);
  const Sweep sleep = sweep(nprocs, PorMode::kSleep, program);
  Row row;
  row.workload = name;
  row.procs = nprocs;
  row.off_runs = off.interleavings;
  row.sleep_runs = sleep.interleavings;
  row.pruned = sleep.pruned;
  row.off_wall_s = off.wall_s;
  row.sleep_wall_s = sleep.wall_s;
  row.equivalent = off.bug_keys == sleep.bug_keys &&
                   off.outcomes == sleep.outcomes &&
                   sleep.interleavings <= off.interleavings;
  const double ratio =
      sleep.interleavings == 0
          ? 0.0
          : static_cast<double>(off.interleavings) /
                static_cast<double>(sleep.interleavings);
  std::printf("%-18s %6d %10llu %12llu %8llu %7.2fx  %s\n", name.c_str(),
              nprocs, static_cast<unsigned long long>(off.interleavings),
              static_cast<unsigned long long>(sleep.interleavings),
              static_cast<unsigned long long>(sleep.pruned), ratio,
              row.equivalent ? "equivalent" : "DIVERGED");
  return row;
}

}  // namespace

int main() {
  dampi::bench::banner(
      "Sleep-set POR: interleavings --por off vs sleep (vector clocks)",
      "pruning commuting decisions shrinks the walk geometrically on "
      "disjoint wildcard groups while preserving bug and outcome sets");

  std::printf("%-18s %6s %10s %12s %8s %8s  %s\n", "workload", "procs",
              "off_runs", "sleep_runs", "pruned", "ratio", "check");

  std::vector<Row> rows;
  std::vector<int> group_counts = {2, 3, 4};
  if (dampi::bench::quick_mode()) group_counts = {2, 3};
  for (const int k : group_counts) {
    rows.push_back(measure("fan-in-groups-" + std::to_string(k), 3 * k,
                           [k](mpism::Proc& p) {
                             dampi::workloads::fan_in_groups(p, k);
                           }));
  }
  rows.push_back(measure("all-pairs-churn", 3, [](mpism::Proc& p) {
    dampi::workloads::all_pairs_churn(p, 1);
  }));
  rows.push_back(measure("fan-in", 4, [](mpism::Proc& p) {
    dampi::workloads::fan_in_rounds(p, 2);
  }));
  rows.push_back(measure("dist-fanout", 4, [](mpism::Proc& p) {
    dampi::workloads::dist_fanout(p, 2, /*spin_us=*/5.0);
  }));

  bool all_equivalent = true;
  double best_ratio = 0.0;
  for (const Row& row : rows) {
    all_equivalent &= row.equivalent;
    if (row.sleep_runs > 0) {
      best_ratio = std::max(
          best_ratio, static_cast<double>(row.off_runs) /
                          static_cast<double>(row.sleep_runs));
    }
  }
  std::printf("\nbest reduction: %.2fx; equivalence: %s\n", best_ratio,
              all_equivalent ? "all rows" : "DIVERGED");

  const char* out_path = std::getenv("DAMPI_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_por.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_por: cannot write %s\n", out_path);
    return 2;
  }
  std::fprintf(f, "{\n  \"best_ratio\": %.4f,\n  \"rows\": [\n", best_ratio);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"procs\": %d, \"off_runs\": %llu, "
        "\"sleep_runs\": %llu, \"pruned\": %llu, \"off_wall_s\": %.6f, "
        "\"sleep_wall_s\": %.6f, \"equivalent\": %s}%s\n",
        row.workload.c_str(), row.procs,
        static_cast<unsigned long long>(row.off_runs),
        static_cast<unsigned long long>(row.sleep_runs),
        static_cast<unsigned long long>(row.pruned), row.off_wall_s,
        row.sleep_wall_s, row.equivalent ? "true" : "false",
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!all_equivalent) {
    std::fprintf(stderr,
                 "bench_por: --por sleep diverged from --por off\n");
    return 1;
  }
  return 0;
}
