// Request records for nonblocking operations.
#pragma once

#include <atomic>
#include <cstdint>

#include "mpism/envelope.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

enum class ReqKind { kSend, kRecv };

/// Engine-side state of a nonblocking operation. Owned by the per-rank
/// request table; user code refers to it by RequestId.
struct RequestRecord {
  RequestId id = kNullRequest;
  ReqKind kind = ReqKind::kSend;
  Rank owner_world = -1;

  // As posted (receives). src is a *world* rank or kAnySource; tag may be
  // kAnyTag. The posted values reflect any tool-layer rewrites (a guided
  // replay posts the determinized source here).
  Rank posted_src_world = kAnySource;
  Tag posted_tag = kAnyTag;
  CommId comm = kCommWorld;

  /// True once matched (recv) / injected (send). Eager sends complete at
  /// creation time. Atomic because under sharded locking a synchronous
  /// send completes *cross-shard*: the receiver publishes completion
  /// through Envelope::sender_rec (store-release) without holding the
  /// sender's shard, and the sender's wake predicate load-acquires it.
  std::atomic<bool> complete{false};
  /// True once consumed by wait/test; consumed requests are removed from
  /// the table (leak accounting counts unconsumed ones at finalize).
  bool consumed = false;

  /// Matched message (receives only; valid when complete).
  Envelope msg;

  /// Issued by a tool layer; excluded from stats and leak accounting.
  bool tool_internal = false;

  /// Virtual time at which the operation completed remotely (synchronous
  /// sends: when the matching receive released it, plus the ack
  /// latency). 0 for operations that complete locally. Written before
  /// the `complete` release-store; read after its acquire-load.
  std::atomic<double> complete_vtime{0.0};

  /// Virtual time at which the operation was posted.
  double post_vtime = 0.0;

  bool is_wildcard_src() const { return posted_src_world == kAnySource; }
};

}  // namespace dampi::mpism
