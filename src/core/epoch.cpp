#include "core/epoch.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dampi::core {

std::vector<const EpochRecord*> RunTrace::sorted() const {
  if (sort_cache_.valid) {
    // Same buffer grown or shrunk in place means someone mutated epochs
    // after sorting — the cached pointers (and any the caller kept from
    // an earlier sorted() call) may already dangle past a reallocation.
    DAMPI_CHECK_MSG(sort_cache_.data != epochs.data() ||
                        sort_cache_.size == epochs.size(),
                    "RunTrace::epochs mutated after sorted()");
    if (sort_cache_.data == epochs.data() &&
        sort_cache_.size == epochs.size()) {
      return sort_cache_.order;
    }
    sort_cache_.reset();
  }
  std::vector<const EpochRecord*> out;
  out.reserve(epochs.size());
  for (const EpochRecord& e : epochs) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const EpochRecord* a, const EpochRecord* b) {
              if (a->lc != b->lc) return a->lc < b->lc;
              return a->key < b->key;
            });
  sort_cache_.order = out;
  sort_cache_.data = epochs.data();
  sort_cache_.size = epochs.size();
  sort_cache_.valid = true;
  return out;
}

void TraceSink::flush_rank(std::vector<EpochRecord> epochs,
                           std::vector<UnsafeAlert> alerts,
                           std::uint64_t recv_epochs,
                           std::uint64_t probe_epochs,
                           std::uint64_t potentials, std::uint64_t lates) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : epochs) {
    if (e.auto_abstracted) ++trace_.auto_abstracted_epochs;
    trace_.epochs.push_back(std::move(e));
  }
  for (auto& a : alerts) trace_.alerts.push_back(std::move(a));
  trace_.wildcard_recv_epochs += recv_epochs;
  trace_.wildcard_probe_epochs += probe_epochs;
  trace_.potential_matches += potentials;
  trace_.late_messages_seen += lates;
}

RunTrace TraceSink::take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(trace_);
}

}  // namespace dampi::core
