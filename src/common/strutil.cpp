#include "common/strutil.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace dampi {

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace dampi
