// Explorer: DAMPI's Schedule Generator. Runs the program once in
// SELF_RUN, then performs a depth-first walk over the recorded epoch
// decisions, forcing alternate matches in guided replays — "successively
// force alternate matches at the last step; then at the penultimate
// step; and so on until all Epoch Decisions are exhausted" (§II-B).
//
// Stateless search: every interleaving is a fresh run of the program
// under a decision file. Bounded mixing caps how deep below a freshly
// flipped decision new alternatives are recorded.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/decision.hpp"
#include "core/epoch.hpp"
#include "core/options.hpp"
#include "core/por.hpp"
#include "mpism/report.hpp"
#include "mpism/runtime.hpp"

namespace dampi::core {

class ReplayPool;

/// Aggregate replay-pool observability counters for one explore() call.
/// Populated for every jobs value (at jobs=1 all runs are inline).
struct PoolStats {
  int jobs = 1;
  std::uint64_t inline_runs = 0;  ///< replays run on the exploring thread
  std::uint64_t worker_runs = 0;  ///< speculative replays run by workers
  /// Worker runs the walk consumed / never needed (early stop only).
  std::uint64_t speculative_hits = 0;
  std::uint64_t speculative_waste = 0;
  std::size_t max_in_flight = 0;    ///< peak concurrent replays
  std::size_t max_queue_depth = 0;  ///< peak speculation backlog
  /// Per-run histograms over every replay (inline + speculative).
  Histogram run_wall_seconds{1e-5, 28};
  Histogram run_vtime_us{1.0, 40};
};

/// A bug found during exploration, with the decision file that reproduces
/// the interleaving exposing it.
struct BugRecord {
  /// kHang: the run exceeded its per-run watchdog budget (a possible
  /// livelock / hang); the stop reason travels in deadlock_detail.
  enum class Kind { kDeadlock, kError, kHang };
  Kind kind = Kind::kError;
  std::uint64_t interleaving = 0;  ///< 1-based run index
  std::vector<mpism::ErrorInfo> errors;
  std::string deadlock_detail;
  Schedule schedule;
};

/// One pending decision of the DFS walk. Namespace-scope (not
/// Explorer-private) because the checkpoint journal persists the frame
/// stack verbatim — it IS the search frontier.
struct DfsFrame {
  EpochKey key;
  std::uint64_t lc = 0;
  mpism::Rank taken_src = -1;
  std::vector<mpism::Rank> untried;
  /// Every source ever queued for this epoch (taken, untried, or slept);
  /// later runs may reveal alternatives the creating run could not see,
  /// and those are merged exactly once.
  std::set<mpism::Rank> seen;
  /// Sleep set (POR, DESIGN.md §4.14): sources fully explored at this
  /// decision site in a commuting sibling subtree. They sit in `seen` as
  /// well — that is what keeps prefix-merging and the distributed
  /// per-site dedup from resurrecting a pruned schedule — and are kept
  /// separately so checkpoints, escapes, and metrics can tell a pruned
  /// source from an explored one.
  std::set<mpism::Rank> sleep;
  /// Decision footprint for the independence relation, captured from the
  /// creating run's EpochRecord: communicator, posted tag, and the
  /// vector timestamp at epoch open (empty under Lamport clocks). The
  /// candidate source set is `seen`.
  mpism::CommId comm = mpism::kCommWorld;
  mpism::Tag tag = mpism::kAnyTag;
  std::vector<std::uint64_t> vc;
  /// False when the frame was created outside the bounded-mixing
  /// window or inside a loop-abstraction region: it takes whatever the
  /// run gives it and never accumulates alternatives.
  bool record_alts = true;
  /// Remaining bounded-mixing budget: how many epochs below a flip of
  /// this frame may still record alternatives. Windows are anchored,
  /// not sliding — a frame discovered at depth d inside a window of
  /// budget b carries b - d, so exploration below an initial-trace
  /// epoch never exceeds k levels (paper §III-B2: "recursively explore
  /// all paths below that option up to depth k").
  int mix_budget = 0;
  /// Sharded exploration: this frame's decision site is owned by the
  /// campaign coordinator, not this walk. Newly revealed alternatives
  /// are reported in ExploreResult::escaped (for central dedup and
  /// re-sharding) instead of being merged into `untried` locally — the
  /// mechanism behind the exactly-once shard accounting invariant
  /// (DESIGN.md §4.12). Set on every prefix frame of a shard checkpoint
  /// and on frames whose site ownership was transferred by a steal.
  bool escape_alts = false;
};

/// The independence relation's view of one pending decision (por.hpp):
/// candidates are every source ever seen at the site. Shared with the
/// campaign coordinator, which uses it to canonicalize escape site ids
/// under --por sleep.
DecisionFootprint frame_footprint(const DfsFrame& frame);

/// An alternative revealed for an escape_alts frame: the walk did not
/// explore it; the coordinator dedups it against the site's global seen
/// set and spawns a new shard if it is genuinely new. Carries a snapshot
/// of the stack prefix 0..pos (the site frame and everything above it)
/// because the live stack's taken_src values can change after the escape
/// — later flips of the site frame, or a steal that transfers deeper
/// locally-grown frames — and the site is defined by the decisions in
/// force when the alternative was revealed.
struct EscapedAlt {
  std::vector<DfsFrame> frames;  ///< stack[0..pos] at escape time
  mpism::Rank src = -1;
};

struct ExploreResult {
  std::uint64_t interleavings = 0;
  std::vector<BugRecord> bugs;

  /// --- Partial-order reduction (--por sleep) ----------------------------
  /// Sources put to sleep instead of re-enumerated (each is one whole
  /// replay subtree the walk skipped re-rooting).
  std::uint64_t por_pruned = 0;
  /// Harvested/new frame pairs the relation judged dependent (kept).
  std::uint64_t por_dependent_pairs = 0;
  /// Alternative enumerations suppressed because the source was asleep.
  std::uint64_t por_sleep_hits = 0;

  /// First (SELF_RUN) execution data — what Table II reports.
  mpism::RunReport first_report;
  std::uint64_t wildcard_recv_epochs = 0;  ///< R*
  std::uint64_t wildcard_probe_epochs = 0;
  std::uint64_t potential_matches_first_run = 0;
  double first_run_vtime_us = 0.0;

  /// Aggregates over every interleaving.
  double total_vtime_us = 0.0;  ///< sum of per-run virtual times
  double total_wall_seconds = 0.0;
  std::vector<std::string> unsafe_alerts;  ///< deduplicated
  std::uint64_t divergences = 0;
  std::uint64_t prefix_mismatches = 0;

  bool interleaving_budget_exhausted = false;
  bool time_budget_exhausted = false;

  /// --- Resilience accounting -------------------------------------------
  /// Failed (errored/timed-out) replays re-executed with backoff.
  std::uint64_t retries = 0;
  /// Runs ended by the per-run watchdog (each also yields a kHang bug).
  std::uint64_t timeouts = 0;
  /// Decision subtrees skipped because their root replay failed even
  /// after retries (the walk degrades gracefully instead of aborting).
  std::uint64_t quarantined = 0;
  std::uint64_t checkpoint_writes = 0;
  /// An external CancelSource (SIGINT etc.) ended the walk early; the
  /// final checkpoint flush holds the frontier for --resume.
  bool interrupted = false;
  /// This walk continued from a checkpoint: bugs/interleavings include
  /// the journalled portion, first-run (R*) stats are zero — only the
  /// original walk executed the discovery run.
  bool resumed = false;

  /// Replay-pool counters (ExplorerOptions::jobs and friends).
  PoolStats pool;

  /// --- Distributed sharding ---------------------------------------------
  /// Alternatives revealed for coordinator-owned (escape_alts) frames;
  /// empty outside sharded walks. See EscapedAlt.
  std::vector<EscapedAlt> escaped;
  /// Final frame stack, exported when ExplorerOptions::export_frontier
  /// (or discovery_only) is set — the unit of work split_frontier()
  /// shards across worker processes.
  std::vector<DfsFrame> frontier;

  bool found_bug() const { return !bugs.empty(); }
};

/// One instrumented execution under an explicit decision file — the
/// replay primitive (used by the explorer, by tests, and by
/// verify_cli --replay to re-run saved reproducers).
struct SingleRun {
  mpism::RunReport report;
  RunTrace trace;
  std::uint64_t divergences = 0;
};

SingleRun run_guided_once(const ExplorerOptions& options,
                          const Schedule& schedule,
                          const mpism::ProgramFn& program);

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options);

  /// Called after every run; lets tests collect per-interleaving
  /// outcomes (e.g. to compare coverage against a brute-force oracle).
  using RunObserver = std::function<void(
      const RunTrace&, const mpism::RunReport&, const Schedule&)>;

  ExploreResult explore(const mpism::ProgramFn& program,
                        const RunObserver& observer = {});

 private:
  /// Append new frames discovered by a run; `flip_pos` is the stack index
  /// that was flipped to trigger it (-1 for the initial run).
  void extend_stack(const RunTrace& trace, int flip_pos,
                    ExploreResult& result);

  /// Prefix of the schedule a flip of stack_[i] would force: decisions of
  /// frames 0..i-1 plus frame i's key mapped to `alt`.
  Schedule schedule_for(int frame_pos, mpism::Rank alt) const;

  /// Feed the worker pool every untried alternative currently on the
  /// stack (deepest first — the order DFS will consume them), up to the
  /// interleaving budget and the pool's backlog cap.
  void speculate_frontier(ReplayPool& pool, const ExploreResult& result);

  ExplorerOptions options_;
  std::vector<DfsFrame> stack_;
  /// Fully explored frames harvested at the last stack truncation
  /// (--por sleep): each carries the seen set of a subtree that is done.
  /// extend_stack() puts those sources to sleep in the sibling subtree's
  /// matching frames when the decision commutes with the flip, then
  /// clears the harvest. Journalled in the checkpoint so a kill between
  /// the truncation and the extension does not lose pruning state (the
  /// resumed walk must replay the uninterrupted walk exactly).
  std::vector<DfsFrame> pending_sleep_;
};

}  // namespace dampi::core
