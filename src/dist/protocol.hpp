// Wire protocol between the campaign coordinator and its worker
// processes (DESIGN.md §4.12).
//
// Transport: a connected AF_UNIX stream per worker — either one end of
// a socketpair inherited across exec (`--coordinator-socket fd:N`, the
// default when the coordinator spawns its own workers) or a filesystem
// socket the coordinator listens on (`--coordinator-socket PATH`, which
// also lets externally launched workers join a campaign).
//
// Framing: little machine-endian binary header {magic "DMP1", u16 type,
// u32 payload length} followed by the payload. Payloads are the same
// line-oriented, versioned text formats the rest of the tree uses —
// shard payloads embed a checkpoint journal verbatim, result payloads
// embed one by byte length — so every message is inspectable with
// nothing fancier than cat.
//
// Conversation:
//   worker     -> coordinator   HELLO   {worker id, options fingerprint}
//   coordinator-> worker        SHARD   {shard id, checkpoint}
//   worker     -> coordinator   RESULT  {shard id, counters, bugs,
//                                        escapes, metrics, checkpoint}
//   coordinator-> worker        STEAL   (carve off frontier work)
//   worker     -> coordinator   STOLEN  {checkpoint} | NO_STEAL
//   coordinator-> worker        CANCEL  (unwind the in-flight shard)
//   coordinator-> worker        SHUTDOWN
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/checkpoint.hpp"
#include "core/explorer.hpp"

namespace dampi::dist {

enum class MsgType : std::uint16_t {
  kHello = 1,
  kShard = 2,
  kResult = 3,
  kSteal = 4,
  kStolen = 5,
  kNoSteal = 6,
  kCancel = 7,
  kShutdown = 8,
  /// Worker -> coordinator, sent eagerly the moment an alternative is
  /// escaped (before the revealing run can reach the worker's journal),
  /// so a worker death never strands an escape. Payload: the candidate
  /// shard checkpoint (see serialize_escape).
  kEscape = 9,
};

struct WireMessage {
  MsgType type = MsgType::kHello;
  std::string payload;
};

/// Buffered, framed message stream over a connected fd. Not thread-safe;
/// each endpoint owns its channel on one thread.
class MessageChannel {
 public:
  enum class RecvStatus { kMessage, kWouldBlock, kClosed };

  MessageChannel() = default;
  explicit MessageChannel(int fd) : fd_(fd) {}
  ~MessageChannel() { close(); }
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  /// Writes the whole frame (retrying short writes). False on error —
  /// typically EPIPE from a dead peer.
  bool send(MsgType type, std::string_view payload);

  /// timeout_ms < 0 blocks until a full message or EOF; 0 polls;
  /// > 0 waits at most that long. kWouldBlock means "no complete frame
  /// yet", kClosed means EOF or a framing/IO error (channel unusable).
  RecvStatus recv(WireMessage* out, int timeout_ms);

 private:
  int fd_ = -1;
  std::string rx_;
};

/// "fd:N" (inherited descriptor) or a filesystem path to connect() to.
/// Returns -1 and sets `error` on failure; path connects are retried
/// briefly so a worker can win the race with the coordinator's bind.
int connect_socket(const std::string& spec, std::string* error);

/// Bound + listening AF_UNIX socket at `path` (stale file replaced).
int listen_socket(const std::string& path, std::string* error);

// --- Payload formats -------------------------------------------------------

struct Hello {
  int worker_id = -1;
  /// options_fingerprint() — single-line by construction, same as the
  /// checkpoint format's `options` line.
  std::string fingerprint;
};

std::string serialize_hello(const Hello& hello);
std::optional<Hello> parse_hello(const std::string& payload,
                                 std::string* error);

/// SHARD / STOLEN payload: a shard id line plus a checkpoint journal.
std::string serialize_shard(std::uint64_t shard_id,
                            const std::string& checkpoint_text);
std::optional<core::Checkpoint> parse_shard(
    const std::string& payload, const std::string& expected_fingerprint,
    std::uint64_t* shard_id, std::string* error);

/// ESCAPE payload: the escaped alternative packaged as the candidate
/// shard it would become (make_escape_shard), because its site identity
/// is the frame prefix in force at escape time — nothing the coordinator
/// could reconstruct from the shard it originally assigned.
std::string serialize_escape(const core::EscapedAlt& escape,
                             const std::string& fingerprint);
std::optional<core::EscapedAlt> parse_escape(
    const std::string& payload, const std::string& expected_fingerprint,
    std::string* error);

/// Everything one shard walk sends home. `result` carries the subset of
/// ExploreResult a merge consumes (counts, bugs, alerts, escapes, pool
/// counters, partial-coverage flags); discovery-run statistics stay
/// zero — only the coordinator executed a discovery run.
struct WorkerResult {
  std::uint64_t shard_id = 0;
  core::ExploreResult result;
  std::string metrics_dump;  ///< obs registry increment for this shard
};

std::string serialize_worker_result(const WorkerResult& result,
                                    const std::string& fingerprint);
std::optional<WorkerResult> parse_worker_result(
    const std::string& payload, const std::string& expected_fingerprint,
    std::string* error);

}  // namespace dampi::dist
