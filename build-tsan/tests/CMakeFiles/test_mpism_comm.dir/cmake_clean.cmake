file(REMOVE_RECURSE
  "CMakeFiles/test_mpism_comm.dir/test_mpism_comm.cpp.o"
  "CMakeFiles/test_mpism_comm.dir/test_mpism_comm.cpp.o.d"
  "test_mpism_comm"
  "test_mpism_comm.pdb"
  "test_mpism_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpism_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
