# Empty dependencies file for mpism.
# This may be replaced when dependencies are built.
