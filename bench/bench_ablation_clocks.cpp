// Ablation (paper §II-C/F): Lamport clocks vs vector clocks.
//
// Two claims to quantify:
//  1. Cost — vector clocks piggyback 8N bytes instead of 8, so their
//     instrumentation overhead grows with the process count while
//     Lamport's stays flat ("vector clocks would provide completeness at
//     the cost of scalability").
//  2. Coverage — on the Fig. 4 cross-coupled pattern, Lamport mode
//     misses the cross alternatives and explores fewer outcomes than
//     vector mode; on ordinary patterns the two coincide (the paper: "we
//     have not encountered any other pattern where Lamport clocks lose
//     precision").
#include <vector>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workloads/patterns.hpp"
#include "workloads/suites.hpp"

using namespace dampi;

namespace {

double slowdown_with(core::ClockMode mode, int procs,
                     const workloads::SkeletonSpec& spec) {
  core::VerifyOptions options;
  options.explorer.nprocs = procs;
  options.explorer.clock_mode = mode;
  options.explorer.max_interleavings = 1;
  core::Verifier verifier(options);
  return verifier
      .verify([&spec](mpism::Proc& p) { workloads::run_skeleton(p, spec); })
      .slowdown;
}

std::uint64_t outcomes_with(core::ClockMode mode,
                            const mpism::ProgramFn& program, int procs) {
  core::ExplorerOptions options;
  options.nprocs = procs;
  options.clock_mode = mode;
  options.max_interleavings = 4096;
  core::Explorer explorer(options);
  return explorer.explore(program).interleavings;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation — Lamport vs vector clocks (cost and coverage)",
      "vector clocks restore completeness on cross-coupled wildcards but "
      "their piggyback grows with P; Lamport stays flat and misses only "
      "that rare pattern");

  // Cost side: instrumentation slowdown vs process count on a
  // deterministic, small-message-bound code (the lammps proxy) where the
  // piggyback is the whole overhead: a Lamport clock is 8 bytes per
  // message, a vector clock 8P bytes.
  const auto lammps = workloads::find_suite_entry("126.lammps")->spec;
  TextTable cost;
  cost.header({"procs", "Lamport slowdown", "Vector slowdown"});
  const std::vector<int> scales = bench::quick_mode()
                                      ? std::vector<int>{32, 64}
                                      : std::vector<int>{32, 64, 128, 256,
                                                         512};
  bench::WallTimer total;
  for (const int procs : scales) {
    cost.row(
        {std::to_string(procs),
         fmt_fixed(slowdown_with(core::ClockMode::kLamport, procs, lammps),
                   2) +
             "x",
         fmt_fixed(slowdown_with(core::ClockMode::kVector, procs, lammps),
                   2) +
             "x"});
  }
  std::printf("%s\n", cost.str().c_str());

  // Coverage side: interleavings explored.
  TextTable coverage;
  coverage.header({"pattern", "Lamport", "Vector", "note"});
  coverage.row({"fig4 cross-coupled",
                std::to_string(outcomes_with(core::ClockMode::kLamport,
                                             workloads::fig4_cross_coupled,
                                             4)),
                std::to_string(outcomes_with(core::ClockMode::kVector,
                                             workloads::fig4_cross_coupled,
                                             4)),
                "Lamport misses the cross matches"});
  coverage.row({"fig3 wildcard pair",
                std::to_string(outcomes_with(core::ClockMode::kLamport,
                                             workloads::fig3_benign, 3)),
                std::to_string(outcomes_with(core::ClockMode::kVector,
                                             workloads::fig3_benign, 3)),
                "ordinary pattern: identical coverage"});
  const auto fan_in = [](mpism::Proc& p) { workloads::fan_in_rounds(p, 2); };
  coverage.row({"fan-in x2 rounds",
                std::to_string(outcomes_with(core::ClockMode::kLamport,
                                             fan_in, 4)),
                std::to_string(outcomes_with(core::ClockMode::kVector,
                                             fan_in, 4)),
                "ordinary pattern: identical coverage"});
  std::printf("%s\n", coverage.str().c_str());

  std::printf("Shape check: vector slowdown rises with procs while "
              "Lamport's is flat; coverage differs only on the "
              "cross-coupled row.\n");
  std::printf("(harness wall time: %.1fs)\n", total.seconds());
  return 0;
}
