// External cancellation for in-flight runs.
//
// A CancelSource is a thread-safe, shareable token: anything holding a
// reference may request cancellation once (SIGINT bridge, the explorer's
// global wall-budget watchdog, a test); every Engine whose RunOptions
// carry the token subscribes for the duration of its run and aborts the
// run when the token fires. One token may span many concurrent runs —
// the replay pool hands the same source to every speculative worker, so
// a single cancel() stops the whole campaign.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace dampi::mpism {

class CancelSource {
 public:
  /// Requests cancellation. Idempotent — the first call wins and its
  /// reason sticks; later calls are no-ops. Subscribers registered at
  /// fire time are invoked (under the source's lock, so a subscriber
  /// must not call back into this source).
  void cancel(std::string reason) {
    std::lock_guard<std::mutex> lk(mu_);
    if (fired_) {
      return;
    }
    fired_ = true;
    reason_ = std::move(reason);
    requested_.store(true, std::memory_order_release);
    for (const auto& [id, fn] : subscribers_) {
      fn(reason_);
    }
  }

  /// Lock-free fast path for polling call sites.
  bool requested() const { return requested_.load(std::memory_order_acquire); }

  std::string reason() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reason_;
  }

  /// Registers a callback invoked with the cancel reason when the
  /// source fires; if it already fired, the callback runs immediately
  /// (on the calling thread) and is not retained. The callback must not
  /// call back into this source. Returns a token for unsubscribe().
  std::uint64_t subscribe(std::function<void(const std::string&)> fn) {
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t id = next_id_++;
    if (fired_) {
      std::function<void(const std::string&)> run_now = std::move(fn);
      const std::string reason = reason_;
      lk.unlock();
      run_now(reason);
      return id;
    }
    subscribers_.emplace(id, std::move(fn));
    return id;
  }

  /// After this returns, the callback is not running and never will
  /// again (a concurrently firing cancel() finishes its callbacks before
  /// this acquires the lock) — safe to destroy the callback's targets.
  void unsubscribe(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(mu_);
    subscribers_.erase(id);
  }

 private:
  mutable std::mutex mu_;
  std::atomic<bool> requested_{false};
  bool fired_ = false;
  std::string reason_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::function<void(const std::string&)>> subscribers_;
};

}  // namespace dampi::mpism
