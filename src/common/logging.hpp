// Minimal thread-safe leveled logger.
//
// The runtime hosts many rank threads; log lines are serialized under a
// single mutex and prefixed with level and (when set) the calling rank.
// Verbosity defaults to Warn so tests and benches stay quiet; the
// DAMPI_LOG_LEVEL environment variable (trace|debug|info|warn|error|off)
// overrides it.
#pragma once

#include <sstream>
#include <string>

namespace dampi::log {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold. Reads DAMPI_LOG_LEVEL once at first use.
Level threshold();
void set_threshold(Level level);

/// Emit one line (no trailing newline required) if `level` >= threshold.
void write(Level level, const std::string& line);

/// Per-thread rank tag included in log prefixes; -1 means "no rank"
/// (scheduler / driver threads). Set by the runtime when a rank starts.
void set_thread_rank(int rank);
int thread_rank();

namespace detail {
struct LineStream {
  Level level;
  std::ostringstream os;
  ~LineStream() { write(level, os.str()); }
};
}  // namespace detail

}  // namespace dampi::log

#define DAMPI_LOG(lvl)                                               \
  if (::dampi::log::Level::lvl < ::dampi::log::threshold()) {        \
  } else                                                             \
    ::dampi::log::detail::LineStream{::dampi::log::Level::lvl, {}}.os
