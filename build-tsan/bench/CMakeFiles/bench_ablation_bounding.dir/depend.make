# Empty dependencies file for bench_ablation_bounding.
# This may be replaced when dependencies are built.
