# Empty compiler generated dependencies file for test_auto_loop.
# This may be replaced when dependencies are built.
